//! The grid service, end to end: `cmpsim submit` through a `cmpsim
//! serve` coordinator must render byte-identical stdout and results
//! JSON to a local `cmpsim grid` run of the same spec — including when
//! a worker child is SIGKILL'd mid-sweep (the daemon's chaos hook) and
//! when the client resumes a finished run through the daemon. Two
//! concurrent clients with overlapping grids must execute each
//! distinct cell exactly once between them. And with remote agents
//! attached to an agents-only coordinator, SIGKILLing one agent
//! mid-sweep must reclaim its leased cells onto the survivor with
//! byte-identical output and exactly one `job_done` per cell in the
//! journal.
//!
//! The harshest case: the *coordinator itself* dies mid-sweep (the
//! `--chaos-crash-label` hook aborts it after journalling a
//! `job_start`) and is restarted on the same address. The restarted
//! daemon must rebuild the run from its journal, the agent must redial
//! on its own, the client must reattach on its own — and the bytes the
//! client renders must still be identical to an uninterrupted local
//! run.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmpsim-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn cmpsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cmpsim"))
}

const GRID_FLAGS: &[&str] = &["--cores", "8", "--scale", "tiny", "--seed", "7"];

/// A local (serverless) grid run — the byte-identity reference.
fn local_grid(workloads: &str, metrics_out: &Path) -> std::process::Output {
    let out = cmpsim()
        .arg("grid")
        .args(GRID_FLAGS)
        .args(["--workloads", workloads, "--no-cache", "--metrics-out"])
        .arg(metrics_out)
        .output()
        .expect("spawn local grid");
    assert!(
        out.status.success(),
        "local grid failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// Starts a coordinator with `--listen 127.0.0.1:0` and waits for its
/// port file; returns the daemon process and its bound address.
fn start_daemon(dir: &Path, extra: &[&str]) -> (Child, String) {
    let port_file = dir.join("port");
    let daemon = cmpsim()
        .args(["serve", "--listen", "127.0.0.1:0", "--workers", "2"])
        .args(["--cache-dir"])
        .arg(dir.join("cache"))
        .args(["--journal-dir"])
        .arg(dir.join("journal"))
        .args(["--port-file"])
        .arg(&port_file)
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn cmpsim serve");
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&port_file) {
            if !addr.is_empty() {
                break addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon did not write its port file in time"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    (daemon, addr)
}

fn submit_cmd(addr: &str, workloads: &str, metrics_out: &Path, extra: &[&str]) -> Command {
    let mut cmd = cmpsim();
    cmd.arg("submit")
        .args(["--connect", addr])
        .args(GRID_FLAGS)
        .args(["--workloads", workloads, "--metrics-out"])
        .arg(metrics_out)
        .args(extra);
    cmd
}

fn read_doc(path: &Path) -> cmpsim_telemetry::JsonValue {
    let text = std::fs::read_to_string(path).expect("read json twin");
    cmpsim_telemetry::parse(&text).expect("parse json twin")
}

fn runner_counter(doc: &cmpsim_telemetry::JsonValue, key: &str) -> u64 {
    doc.get_path(&["runner", key])
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("runner.{key} missing"))
}

/// One job object from the twin's `runner.jobs`, by label.
fn job<'a>(doc: &'a cmpsim_telemetry::JsonValue, label: &str) -> &'a cmpsim_telemetry::JsonValue {
    doc.get_path(&["runner", "jobs"])
        .and_then(|j| j.as_array())
        .and_then(|jobs| {
            jobs.iter()
                .find(|j| j.get("label").and_then(|l| l.as_str()) == Some(label))
        })
        .unwrap_or_else(|| panic!("no runner job labelled {label}"))
}

#[test]
fn submit_matches_local_grid_through_worker_crash_and_resume() {
    let dir = temp_dir("service-submit");
    let baseline = local_grid("FIMI,SHOT,MDS", &dir.join("base.json"));

    // The daemon SIGKILLs the first worker child dispatched for SHOT —
    // a genuine mid-sweep crash the retry machinery must absorb.
    let (mut daemon, addr) = start_daemon(&dir, &["--retries", "2", "--chaos-kill-label", "SHOT"]);

    let submitted = submit_cmd(
        &addr,
        "FIMI,SHOT,MDS",
        &dir.join("sub.json"),
        &["--run-id", "svc1"],
    )
    .output()
    .expect("spawn cmpsim submit");
    assert!(
        submitted.status.success(),
        "submit failed:\n{}",
        String::from_utf8_lossy(&submitted.stderr)
    );
    assert_eq!(
        baseline.stdout, submitted.stdout,
        "service stdout differs from the local grid run"
    );
    let base_doc = read_doc(&dir.join("base.json"));
    let sub_doc = read_doc(&dir.join("sub.json"));
    assert_eq!(
        base_doc.get("results"),
        sub_doc.get("results"),
        "service results JSON differs from the local grid run"
    );
    // The chaos kill really happened: SHOT took more than one attempt
    // and still produced the right answer.
    let shot = job(&sub_doc, "SHOT");
    assert!(
        shot.get("attempts").and_then(|a| a.as_u64()).unwrap_or(0) >= 2,
        "SHOT was not retried after the chaos kill: {}",
        shot.to_json()
    );
    assert_eq!(shot.get("outcome").and_then(|o| o.as_str()), Some("ok"));
    assert_eq!(runner_counter(&sub_doc, "failed"), 0);

    // Resuming the same run id through the daemon replays every cell
    // from the server-side journal — and still renders the same bytes.
    let resumed = submit_cmd(
        &addr,
        "FIMI,SHOT,MDS",
        &dir.join("res.json"),
        &["--resume", "svc1"],
    )
    .output()
    .expect("spawn resumed submit");
    assert!(
        resumed.status.success(),
        "resumed submit failed:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        baseline.stdout, resumed.stdout,
        "resumed service stdout differs from the local grid run"
    );
    let res_doc = read_doc(&dir.join("res.json"));
    assert_eq!(base_doc.get("results"), res_doc.get("results"));
    assert_eq!(runner_counter(&res_doc, "replayed"), 3);

    // The daemon journalled and traced the run where `cmpsim report`
    // looks for it.
    let report = cmpsim()
        .args(["report", "svc1", "--journal-dir"])
        .arg(dir.join("journal"))
        .output()
        .expect("spawn cmpsim report");
    assert!(
        report.status.success(),
        "report on the service run failed:\n{}",
        String::from_utf8_lossy(&report.stderr)
    );
    let report_text = String::from_utf8_lossy(&report.stdout);
    assert!(report_text.contains("run svc1"), "{report_text}");
    assert!(report_text.contains("cells: 3 done"), "{report_text}");

    daemon.kill().expect("stop daemon");
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Starts a `cmpsim agent` dialing `addr`.
fn start_agent(addr: &str, extra: &[&str]) -> Child {
    cmpsim()
        .args(["agent", "--connect", addr])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn cmpsim agent")
}

/// One parsed `cmpsim status` reply.
fn status_doc(addr: &str) -> cmpsim_telemetry::JsonValue {
    let out = cmpsim()
        .args(["status", "--connect", addr])
        .output()
        .expect("spawn cmpsim status");
    assert!(
        out.status.success(),
        "status failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    cmpsim_telemetry::parse(&String::from_utf8_lossy(&out.stdout)).expect("parse status")
}

fn status_counter(doc: &cmpsim_telemetry::JsonValue, key: &str) -> u64 {
    doc.get(key)
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("counter {key} missing: {}", doc.to_json()))
}

/// Polls `probe` until it yields, or panics after 120 s.
fn wait_for<T>(what: &str, mut probe: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Some(v) = probe() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn multi_agent_sweep_survives_sigkill_of_one_agent() {
    let dir = temp_dir("service-agents");
    const WORKLOADS: &str = "SNP,SVM-RFE,RSEARCH,FIMI,PLSA,MDS,SHOT,VIEWTYPE";
    let baseline = local_grid(WORKLOADS, &dir.join("base.json"));

    // An agents-only coordinator: every cell must travel to a remote
    // agent — there are no local workers to fall back on.
    let (mut daemon, addr) = start_daemon(
        &dir,
        &["--agents-only", "--heartbeat-ms", "300", "--retries", "2"],
    );
    let mut agent_a = start_agent(&addr, &["--slots", "2"]);
    let mut agent_b = start_agent(&addr, &["--slots", "2"]);
    wait_for("both agents to register", || {
        (status_doc(&addr)
            .get("agents")
            .and_then(|a| a.as_array())
            .map_or(0, <[cmpsim_telemetry::JsonValue]>::len)
            == 2)
            .then_some(())
    });

    let submit = submit_cmd(
        &addr,
        WORKLOADS,
        &dir.join("sub.json"),
        &["--run-id", "svcma"],
    )
    .stdout(Stdio::piped())
    .stderr(Stdio::piped())
    .spawn()
    .expect("spawn background submit");

    // Catch an agent holding leases mid-sweep and SIGKILL it — the
    // busiest one, so the reclaim path has real work to do.
    let victim_pid = wait_for("an agent to hold in-flight cells", || {
        status_doc(&addr)
            .get("agents")
            .and_then(|a| a.as_array())
            .and_then(|rows| {
                rows.iter()
                    .filter(|r| r.get("in_flight").and_then(|v| v.as_u64()).unwrap_or(0) > 0)
                    .max_by_key(|r| r.get("in_flight").and_then(|v| v.as_u64()).unwrap_or(0))
                    .and_then(|r| r.get("pid").and_then(|v| v.as_u64()))
            })
    });
    let victim = if victim_pid == u64::from(agent_a.id()) {
        &mut agent_a
    } else {
        assert_eq!(victim_pid, u64::from(agent_b.id()), "unknown agent pid");
        &mut agent_b
    };
    victim.kill().expect("SIGKILL the busy agent");
    let _ = victim.wait();

    // The survivor absorbs the reclaimed cells and the run completes
    // with byte-identical output to a local, single-process grid.
    let submitted = submit.wait_with_output().expect("wait for submit");
    assert!(
        submitted.status.success(),
        "submit through the agent fleet failed:\n{}",
        String::from_utf8_lossy(&submitted.stderr)
    );
    assert_eq!(
        baseline.stdout, submitted.stdout,
        "fleet stdout differs from the local grid run"
    );
    assert_eq!(
        read_doc(&dir.join("base.json")).get("results"),
        read_doc(&dir.join("sub.json")).get("results"),
        "fleet results JSON differs from the local grid run"
    );

    // The counters tell the story: two joined, one lost, its cells
    // reclaimed, and nothing ran locally.
    let counters = status_doc(&addr);
    assert_eq!(status_counter(&counters, "agents_joined"), 2);
    assert_eq!(status_counter(&counters, "agents_lost"), 1);
    assert!(
        status_counter(&counters, "cells_reclaimed") >= 1,
        "the killed agent held no leases: {}",
        counters.to_json()
    );
    assert_eq!(status_counter(&counters, "workers"), 0);

    // The journal converged on exactly one job_done per cell — the
    // dead agent's cells were re-run, not duplicated.
    let journal = std::fs::read_to_string(dir.join("journal").join("svcma.jsonl"))
        .expect("read the run journal");
    let mut done_keys = std::collections::HashMap::<String, usize>::new();
    for line in journal.lines() {
        let rec = cmpsim_telemetry::parse(line).expect("parse journal line");
        if rec.get_path(&["record", "kind"]).and_then(|k| k.as_str()) == Some("job_done") {
            let key = rec
                .get_path(&["record", "key"])
                .and_then(|k| k.as_str())
                .expect("job_done has a key")
                .to_owned();
            *done_keys.entry(key).or_default() += 1;
        }
    }
    assert_eq!(done_keys.len(), 8, "one journal entry per distinct cell");
    for (key, count) in &done_keys {
        assert_eq!(*count, 1, "cell {key} journalled {count} job_done records");
    }

    let _ = agent_a.kill();
    let _ = agent_b.kill();
    let _ = agent_a.wait();
    let _ = agent_b.wait();
    daemon.kill().expect("stop daemon");
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_survives_coordinator_sigkill_and_restart() {
    let dir = temp_dir("service-coord-loss");
    const WORKLOADS: &str = "SNP,SVM-RFE,RSEARCH,FIMI,PLSA,MDS,SHOT,VIEWTYPE";
    let baseline = local_grid(WORKLOADS, &dir.join("base.json"));

    // Daemon #1 aborts itself the moment it claims PLSA — after the
    // `job_start` hits the journal, so the cell dangles in-flight
    // exactly as a real mid-dispatch crash would leave it.
    let chaos = &[
        "--agents-only",
        "--heartbeat-ms",
        "300",
        "--retries",
        "2",
        "--chaos-crash-label",
        "PLSA",
    ];
    let (mut daemon, addr) = start_daemon(&dir, chaos);
    let mut agent = start_agent(&addr, &["--slots", "2"]);
    wait_for("the agent to register", || {
        (status_doc(&addr)
            .get("agents")
            .and_then(|a| a.as_array())
            .map_or(0, <[cmpsim_telemetry::JsonValue]>::len)
            == 1)
            .then_some(())
    });

    let submit = submit_cmd(
        &addr,
        WORKLOADS,
        &dir.join("sub.json"),
        &["--run-id", "svcloss"],
    )
    .stdout(Stdio::piped())
    .stderr(Stdio::piped())
    .spawn()
    .expect("spawn background submit");

    // The chaos hook fires mid-sweep and takes the whole daemon down.
    let status = daemon.wait().expect("wait for the crashed daemon");
    assert!(!status.success(), "the chaos crash did not happen");

    // Restart on the *same* address (SO_REUSEADDR makes the rebind
    // immediate). The stale port file must go first so start_daemon
    // waits for the new incarnation's write.
    std::fs::remove_file(dir.join("port")).expect("remove stale port file");
    let (mut daemon2, addr2) = start_daemon(
        &dir,
        &[
            "--agents-only",
            "--heartbeat-ms",
            "300",
            "--retries",
            "2",
            "--listen",
            &addr,
        ],
    );
    assert_eq!(addr2, addr, "the restart must reuse the address");

    // No operator action from here: the agent redials, the client
    // reattaches, the recovered run executes its remaining cells — and
    // the client still renders exactly the local-run bytes.
    let submitted = submit.wait_with_output().expect("wait for submit");
    assert!(
        submitted.status.success(),
        "submit did not survive the coordinator restart:\n{}",
        String::from_utf8_lossy(&submitted.stderr)
    );
    assert_eq!(
        baseline.stdout, submitted.stdout,
        "post-restart stdout differs from the local grid run"
    );
    assert_eq!(
        read_doc(&dir.join("base.json")).get("results"),
        read_doc(&dir.join("sub.json")).get("results"),
        "post-restart results JSON differs from the local grid run"
    );

    // The recovery counters tell the story on the new incarnation.
    let counters = status_doc(&addr);
    assert_eq!(status_counter(&counters, "runs_recovered"), 1);
    assert!(
        status_counter(&counters, "cells_requeued") >= 1,
        "the dangling cell was not re-enqueued: {}",
        counters.to_json()
    );
    // Present (and countable) even when the TCP race delivered
    // everything before the crash reached the client.
    let _ = status_counter(&counters, "jobs_replayed_to_client");
    assert_eq!(status_counter(&counters, "runs_degraded"), 0);

    // Across both incarnations the journal converged on exactly one
    // job_done per cell: recovery re-ran the dangling work, and the
    // agent's re-reported results were settled as stale, not doubled.
    let journal = std::fs::read_to_string(dir.join("journal").join("svcloss.jsonl"))
        .expect("read the run journal");
    let mut done_keys = std::collections::HashMap::<String, usize>::new();
    for line in journal.lines() {
        let rec = cmpsim_telemetry::parse(line).expect("parse journal line");
        if rec.get_path(&["record", "kind"]).and_then(|k| k.as_str()) == Some("job_done") {
            let key = rec
                .get_path(&["record", "key"])
                .and_then(|k| k.as_str())
                .expect("job_done has a key")
                .to_owned();
            *done_keys.entry(key).or_default() += 1;
        }
    }
    assert_eq!(done_keys.len(), 8, "one journal entry per distinct cell");
    for (key, count) in &done_keys {
        assert_eq!(*count, 1, "cell {key} journalled {count} job_done records");
    }

    let _ = agent.kill();
    let _ = agent.wait();
    daemon2.kill().expect("stop daemon");
    let _ = daemon2.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_with_overlapping_grids_execute_shared_cells_once() {
    let dir = temp_dir("service-dedup");
    let base_a = local_grid("FIMI,SHOT,MDS", &dir.join("base_a.json"));
    let base_b = local_grid("SHOT,MDS,PLSA", &dir.join("base_b.json"));

    let (mut daemon, addr) = start_daemon(&dir, &[]);

    // Two clients in flight at once, overlapping on SHOT and MDS.
    let client_a = submit_cmd(&addr, "FIMI,SHOT,MDS", &dir.join("a.json"), &[])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn client A");
    let client_b = submit_cmd(&addr, "SHOT,MDS,PLSA", &dir.join("b.json"), &[])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn client B");
    let out_a = client_a.wait_with_output().expect("wait for client A");
    let out_b = client_b.wait_with_output().expect("wait for client B");
    assert!(
        out_a.status.success(),
        "client A failed:\n{}",
        String::from_utf8_lossy(&out_a.stderr)
    );
    assert!(
        out_b.status.success(),
        "client B failed:\n{}",
        String::from_utf8_lossy(&out_b.stderr)
    );

    // Both clients rendered exactly what a local run would have.
    assert_eq!(base_a.stdout, out_a.stdout, "client A stdout differs");
    assert_eq!(base_b.stdout, out_b.stdout, "client B stdout differs");
    assert_eq!(
        read_doc(&dir.join("base_a.json")).get("results"),
        read_doc(&dir.join("a.json")).get("results")
    );
    assert_eq!(
        read_doc(&dir.join("base_b.json")).get("results"),
        read_doc(&dir.join("b.json")).get("results")
    );

    // The coordinator's counters prove the dedup: 6 cells were
    // submitted, 4 were distinct, and the 2 overlapping ones were
    // served from the shared cache or joined in flight.
    let status = cmpsim()
        .args(["status", "--connect", &addr])
        .output()
        .expect("spawn cmpsim status");
    assert!(
        status.status.success(),
        "status failed:\n{}",
        String::from_utf8_lossy(&status.stderr)
    );
    let counters =
        cmpsim_telemetry::parse(&String::from_utf8_lossy(&status.stdout)).expect("parse status");
    let get = |key: &str| {
        counters
            .get(key)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("counter {key} missing: {}", counters.to_json()))
    };
    assert_eq!(get("cells_total"), 6);
    assert_eq!(get("executed"), 4, "a shared cell executed twice");
    assert_eq!(
        get("cache_hits") + get("dedup_joins"),
        2,
        "overlapping cells were not deduplicated: {}",
        counters.to_json()
    );
    assert_eq!(get("runs_completed"), 2);

    daemon.kill().expect("stop daemon");
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
