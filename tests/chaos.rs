//! Chaos suite: seeded fault-injection scenarios on the co-simulated
//! bus.
//!
//! Every scenario perturbs the FSB stream between the virtual platform
//! and the Dragonhead board through a deterministic [`SeededFaults`]
//! plan, then requires one of exactly two endings:
//!
//! 1. **Recovery** — the run completes, the report passes the full
//!    invariant catalogue, and the injection census plus the board's
//!    anomaly counters are in the report's metrics; or
//! 2. **A clean [`CoSimError`]** — a named category, not a panic.
//!
//! A panic anywhere is a failure of the robustness layer itself.

use cmpsim_core::cosim::{CoSimConfig, CoSimReport, CoSimulation};
use cmpsim_core::error::CoSimError;
use cmpsim_core::faults::{FaultInjector, FaultPlan, NoFaults, SeededFaults};
use cmpsim_core::{Scale, WorkloadId};

fn config() -> CoSimConfig {
    let mut cfg = CoSimConfig::new(2, 1 << 20).unwrap();
    cfg.sample_period = 1000;
    cfg
}

/// Runs FIMI/tiny under `injector`, returning the outcome and the
/// number of faults actually injected.
fn scenario(injector: &mut SeededFaults) -> (Result<CoSimReport, CoSimError>, u64) {
    let wl = WorkloadId::Fimi.build(Scale::tiny(), 1);
    let result = CoSimulation::new(config()).run_with_faults(wl.as_ref(), injector);
    (result, injector.faults_injected())
}

/// Total anomalies the board itself counted (exported only when > 0).
fn anomalies(r: &CoSimReport) -> u64 {
    r.metrics.counter_total("desyncs_detected")
        + r.metrics.counter_total("transactions_quarantined")
        + r.metrics.counter_total("cycle_regressions")
}

/// The contract every scenario must honour: recovery with a counted
/// census, or a categorized error — reaching this function at all means
/// nothing panicked.
fn assert_recovered_or_clean_error(
    tag: &str,
    result: &Result<CoSimReport, CoSimError>,
    injected: u64,
) {
    match result {
        Ok(r) => {
            assert!(r.run.instructions > 0, "{tag}: empty run");
            assert_eq!(
                r.metrics.counter_total("faults_injected"),
                injected,
                "{tag}: injection census missing from metrics"
            );
        }
        Err(e) => {
            assert!(
                ["protocol", "invariant", "io", "timeout"].contains(&e.category()),
                "{tag}: unknown error category {}",
                e.category()
            );
        }
    }
}

#[test]
fn drop_heavy_channel() {
    let (result, injected) = scenario(&mut FaultPlan::none(11).with_drop(0.05).build());
    assert!(injected > 0, "a 5% drop rate must fire on a real stream");
    assert_recovered_or_clean_error("drop", &result, injected);
}

#[test]
fn duplicated_transactions() {
    let (result, injected) = scenario(&mut FaultPlan::none(22).with_duplicate(0.05).build());
    assert!(injected > 0);
    assert_recovered_or_clean_error("duplicate", &result, injected);
}

#[test]
fn reordered_transactions() {
    let (result, injected) = scenario(&mut FaultPlan::none(33).with_reorder(0.05).build());
    assert!(injected > 0);
    assert_recovered_or_clean_error("reorder", &result, injected);
}

#[test]
fn corrupted_message_addresses_are_counted_anomalies() {
    let (result, injected) = scenario(&mut FaultPlan::none(44).with_corrupt_addr(0.05).build());
    assert_recovered_or_clean_error("corrupt_addr", &result, injected);
    if let (Ok(r), true) = (&result, injected > 0) {
        assert!(
            anomalies(r) > 0,
            "corrupted message addresses recovered without a single counted anomaly"
        );
    }
}

#[test]
fn torn_payload_pairs() {
    let (result, injected) = scenario(&mut FaultPlan::none(55).with_tear_pair(0.5).build());
    assert_recovered_or_clean_error("tear_pair", &result, injected);
}

#[test]
fn wrong_core_attribution() {
    let (result, injected) = scenario(&mut FaultPlan::none(66).with_wrong_core(0.1).build());
    assert_recovered_or_clean_error("wrong_core", &result, injected);
}

#[test]
fn jittered_cycle_stamps() {
    let (result, injected) = scenario(&mut FaultPlan::none(77).with_cycle_jitter(0.2, 500).build());
    assert_recovered_or_clean_error("cycle_jitter", &result, injected);
}

#[test]
fn combined_chaos() {
    let mut injector = FaultPlan::none(88)
        .with_drop(0.02)
        .with_duplicate(0.02)
        .with_reorder(0.02)
        .with_corrupt_addr(0.02)
        .with_tear_pair(0.2)
        .with_wrong_core(0.05)
        .with_cycle_jitter(0.05, 200)
        .build();
    let (result, injected) = scenario(&mut injector);
    assert!(injected > 0);
    assert_recovered_or_clean_error("combined", &result, injected);
    // The per-class census is in the metrics whenever the run recovered.
    if let Ok(r) = &result {
        let per_class = r.metrics.counter_total("faults_injected_class");
        assert_eq!(
            per_class, injected,
            "per-class census does not sum to the total"
        );
    }
}

#[test]
fn chaos_is_deterministic_per_seed() {
    let (a, ia) = scenario(
        &mut FaultPlan::none(99)
            .with_drop(0.03)
            .with_corrupt_addr(0.03)
            .build(),
    );
    let (b, ib) = scenario(
        &mut FaultPlan::none(99)
            .with_drop(0.03)
            .with_corrupt_addr(0.03)
            .build(),
    );
    assert_eq!(ia, ib);
    match (a, b) {
        (Ok(ra), Ok(rb)) => {
            assert_eq!(ra.llc.accesses, rb.llc.accesses);
            assert_eq!(ra.llc.misses, rb.llc.misses);
            assert_eq!(anomalies(&ra), anomalies(&rb));
        }
        (Err(ea), Err(eb)) => assert_eq!(ea, eb),
        _ => panic!("same seed produced different outcome kinds"),
    }
}

#[test]
fn fault_free_path_matches_the_clean_run_exactly() {
    let wl = WorkloadId::Fimi.build(Scale::tiny(), 1);
    let clean = CoSimulation::new(config())
        .run_checked(wl.as_ref())
        .unwrap();

    let wl = WorkloadId::Fimi.build(Scale::tiny(), 1);
    let mut none = NoFaults;
    let faultless = CoSimulation::new(config())
        .run_with_faults(wl.as_ref(), &mut none)
        .unwrap();

    assert_eq!(clean.llc.accesses, faultless.llc.accesses);
    assert_eq!(clean.llc.hits, faultless.llc.hits);
    assert_eq!(clean.llc.misses, faultless.llc.misses);
    assert_eq!(clean.run.instructions, faultless.run.instructions);
    assert_eq!(clean.samples.len(), faultless.samples.len());
    // No census rows and no anomaly rows: the metric registries match
    // byte for byte.
    assert_eq!(clean.metrics.to_json(), faultless.metrics.to_json());
    assert_eq!(faultless.metrics.counter_total("faults_injected"), 0);
    assert_eq!(anomalies(&faultless), 0);
}
