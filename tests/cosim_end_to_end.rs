//! Workspace integration: every workload through the full co-simulation
//! stack (kernels → DEX platform → coherent private caches → FSB with
//! message protocol → Dragonhead → counters).

use cmpsim_core::cosim::{CoSimConfig, CoSimulation};
use cmpsim_core::{Scale, WorkloadId};
use cmpsim_softsdv::HostNoiseConfig;

fn tiny_cfg(cores: usize) -> CoSimConfig {
    CoSimConfig::new(cores, 1 << 20).expect("valid geometry")
}

#[test]
fn every_workload_completes_with_consistent_counters() {
    for id in WorkloadId::all() {
        let wl = id.build(Scale::tiny(), 7);
        let r = CoSimulation::new(tiny_cfg(4)).run(wl.as_ref());
        assert!(r.run.instructions > 0, "{id}: no instructions");
        assert!(r.llc.accesses > 0, "{id}: LLC never accessed");
        assert_eq!(
            r.llc.hits + r.llc.misses,
            r.llc.accesses,
            "{id}: stats identity broken"
        );
        // Core attribution covers exactly the demand accesses.
        let per_core: u64 = r.per_core_llc.iter().map(|c| c.accesses).sum();
        assert_eq!(per_core, r.llc.accesses, "{id}: attribution mismatch");
        // All four virtual cores executed work.
        assert!(
            r.run.per_core.iter().all(|c| c.instructions > 0),
            "{id}: idle virtual core"
        );
        // Instruction mix should match the Table 2 calibration within
        // tolerance (the kernels' memory fractions are Table 2 inputs).
        let frac = r.run.memory_fraction();
        assert!(
            (0.3..0.95).contains(&frac),
            "{id}: memory fraction {frac} implausible"
        );
    }
}

#[test]
fn cosim_is_deterministic() {
    for id in [WorkloadId::Fimi, WorkloadId::Shot, WorkloadId::Mds] {
        let run = || {
            let wl = id.build(Scale::tiny(), 11);
            let r = CoSimulation::new(tiny_cfg(2)).run(wl.as_ref());
            (
                r.run.instructions,
                r.llc.accesses,
                r.llc.misses,
                r.run.l1.misses,
            )
        };
        assert_eq!(run(), run(), "{id}: nondeterministic co-simulation");
    }
}

#[test]
fn host_noise_is_fully_excluded() {
    let id = WorkloadId::Plsa;
    let base = {
        let wl = id.build(Scale::tiny(), 3);
        CoSimulation::new(tiny_cfg(2)).run(wl.as_ref())
    };
    let noisy = {
        let wl = id.build(Scale::tiny(), 3);
        let mut cfg = tiny_cfg(2);
        cfg.host_noise = Some(HostNoiseConfig {
            transactions_per_switch: 16,
        });
        CoSimulation::new(cfg).run(wl.as_ref())
    };
    // The AF must drop every injected host transaction: LLC counters
    // identical with and without noise.
    assert_eq!(base.llc.accesses, noisy.llc.accesses);
    assert_eq!(base.llc.misses, noisy.llc.misses);
}

#[test]
fn samples_accumulate_over_the_run() {
    let wl = WorkloadId::Viewtype.build(Scale::tiny(), 5);
    let mut cfg = tiny_cfg(2);
    cfg.sample_period = 2_000;
    let r = CoSimulation::new(cfg).run(wl.as_ref());
    assert!(
        r.samples.len() >= 4,
        "expected several 500us samples, got {}",
        r.samples.len()
    );
    // Samples are monotone in every cumulative field.
    for w in r.samples.windows(2) {
        assert!(w[1].cycle > w[0].cycle);
        assert!(w[1].accesses >= w[0].accesses);
        assert!(w[1].misses >= w[0].misses);
        assert!(w[1].instructions >= w[0].instructions);
    }
}

#[test]
fn more_cores_do_not_lose_work() {
    // The same workload partitioned over more virtual cores retires a
    // comparable instruction total (work is split, not duplicated).
    let total = |cores: usize| {
        let wl = WorkloadId::Mds.build(Scale::tiny(), 9);
        CoSimulation::new(tiny_cfg(cores))
            .run(wl.as_ref())
            .run
            .instructions
    };
    let one = total(1) as f64;
    let eight = total(8) as f64;
    assert!(
        (eight / one - 1.0).abs() < 0.1,
        "instructions changed too much: {one} vs {eight}"
    );
}
