//! Crash-safety guarantee of the experiment runner, end to end: a grid
//! run killed mid-flight (SIGKILL — no cleanup, no handlers) must
//! resume via `--resume` to the byte-identical final JSON of an
//! uninterrupted run, without re-executing the cells that finished
//! before the kill. A SIGTERM'd run must drain gracefully and print the
//! exact resume command.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmpsim-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

const WORKLOADS: &str = "FIMI,SHOT,MDS";

fn grid_cmd(extra: &[&str], metrics_out: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cmpsim"));
    cmd.args([
        "grid",
        "--cores",
        "8",
        "--scale",
        "tiny",
        "--seed",
        "7",
        "--workloads",
        WORKLOADS,
        "--no-cache",
        "--metrics-out",
    ])
    .arg(metrics_out)
    .args(extra);
    cmd
}

fn read_doc(path: &Path) -> cmpsim_telemetry::JsonValue {
    let text = std::fs::read_to_string(path).expect("read json twin");
    cmpsim_telemetry::parse(&text).expect("parse json twin")
}

/// Waits until the journal records at least one finished cell, so a
/// kill afterwards is guaranteed to land mid-flight (some cells done,
/// some not — or, in the worst race, all done; both are asserted
/// resumable).
fn wait_for_first_result(journal: &Path, child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if std::fs::read_to_string(journal)
            .map(|t| t.contains("\"job_done\""))
            .unwrap_or(false)
        {
            return;
        }
        assert!(
            child.try_wait().expect("poll child").is_none(),
            "grid run exited before its first cell finished"
        );
        assert!(
            Instant::now() < deadline,
            "no cell finished within the deadline"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn runner_counter(doc: &cmpsim_telemetry::JsonValue, key: &str) -> u64 {
    doc.get_path(&["runner", key])
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("runner.{key} missing"))
}

#[test]
fn sigkilled_grid_run_resumes_to_byte_identical_results() {
    let dir = temp_dir("crash-resume");
    let journal_dir = dir.join("journal");
    let journal = journal_dir.join("kr.jsonl");
    let jflag = journal_dir.to_str().unwrap().to_owned();

    // The uninterrupted reference run.
    let baseline = grid_cmd(&[], &dir.join("base.json"))
        .output()
        .expect("spawn baseline grid");
    assert!(
        baseline.status.success(),
        "baseline grid failed:\n{}",
        String::from_utf8_lossy(&baseline.stderr)
    );

    // A journalled, process-isolated run, SIGKILL'd after its first
    // cell lands in the journal: no signal handler runs, no flush
    // happens — only the write-ahead journal survives.
    let mut victim = grid_cmd(
        &[
            "--isolate",
            "process",
            "--journal-dir",
            &jflag,
            "--run-id",
            "kr",
        ],
        &dir.join("dead.json"),
    )
    .stdout(Stdio::null())
    .stderr(Stdio::null())
    .spawn()
    .expect("spawn victim grid");
    wait_for_first_result(&journal, &mut victim);
    victim.kill().expect("SIGKILL victim");
    let _ = victim.wait();

    // Resume: completed cells replay from the journal, the rest run.
    let resumed = grid_cmd(
        &["--journal-dir", &jflag, "--resume", "kr"],
        &dir.join("resumed.json"),
    )
    .output()
    .expect("spawn resumed grid");
    assert!(
        resumed.status.success(),
        "resumed grid failed:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );

    // Byte-identical deliverables: same text figure, same results JSON.
    assert_eq!(
        baseline.stdout, resumed.stdout,
        "resumed stdout differs from the uninterrupted run"
    );
    let base_doc = read_doc(&dir.join("base.json"));
    let resumed_doc = read_doc(&dir.join("resumed.json"));
    assert_eq!(
        base_doc.get("results"),
        resumed_doc.get("results"),
        "resumed results JSON differs from the uninterrupted run"
    );

    // The journal replay actually carried cells across the crash: at
    // least the one we waited for was served without re-executing.
    let replayed = runner_counter(&resumed_doc, "replayed");
    assert!(replayed >= 1, "no cell was replayed from the journal");
    assert_eq!(runner_counter(&resumed_doc, "ok"), 3);
    assert_eq!(runner_counter(&resumed_doc, "failed"), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_drains_gracefully_and_prints_the_resume_command() {
    let dir = temp_dir("drain-resume");
    let journal_dir = dir.join("journal");
    let journal = journal_dir.join("dr.jsonl");
    let jflag = journal_dir.to_str().unwrap().to_owned();

    let mut victim = grid_cmd(
        &["--journal-dir", &jflag, "--run-id", "dr"],
        &dir.join("drained.json"),
    )
    .stdout(Stdio::null())
    .stderr(Stdio::piped())
    .spawn()
    .expect("spawn victim grid");
    wait_for_first_result(&journal, &mut victim);
    // SIGTERM (std has no signal API; /bin/kill does): the handler
    // must drain in-flight work and exit on its own.
    let term = Command::new("kill")
        .args(["-TERM", &victim.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");
    let out = victim.wait_with_output().expect("wait for drained run");
    let stderr = String::from_utf8_lossy(&out.stderr);

    if out.status.success() {
        // Raced: every cell finished before the signal landed. The run
        // is complete; resuming it must replay everything.
        assert!(std::fs::read_to_string(&journal)
            .expect("journal exists")
            .contains("\"run_end\""));
    } else {
        // Drained: the run says exactly how to pick up the rest.
        assert!(
            stderr.contains("interrupted — resume with:") && stderr.contains("--resume dr"),
            "no resume hint in stderr:\n{stderr}"
        );
    }

    // Either way, `--resume` completes the grid losslessly.
    let resumed = grid_cmd(
        &["--journal-dir", &jflag, "--resume", "dr"],
        &dir.join("resumed.json"),
    )
    .output()
    .expect("spawn resumed grid");
    assert!(
        resumed.status.success(),
        "resumed grid failed:\n{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let resumed_doc = read_doc(&dir.join("resumed.json"));
    assert_eq!(runner_counter(&resumed_doc, "ok"), 3);
    assert_eq!(runner_counter(&resumed_doc, "failed"), 0);
    assert!(runner_counter(&resumed_doc, "replayed") >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}
