//! The robustness layer's no-regression pin: with no fault injector and
//! no anomalies, a figure binary's output is **byte-identical** to the
//! golden capture taken before the fault-injection layer existed.
//!
//! This is the guarantee that the state-machine decoder, the fallible
//! sampler flush, the watchdog-capable pool, and the checksummed result
//! cache cost a clean run nothing — not a reordered metric row, not a
//! reformatted digit. The golden files live in `tests/golden/` and were
//! captured from
//! `fig4_scmp --scale tiny --workloads FIMI,SHOT --seed 7 --jobs 1 --no-cache`.

use std::path::{Path, PathBuf};
use std::process::Command;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

#[test]
fn clean_run_is_byte_identical_to_pre_fault_layer_golden() {
    let dir = std::env::temp_dir().join(format!("cmpsim-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let json_path = dir.join("fig4.json");

    let out = Command::new(env!("CARGO_BIN_EXE_fig4_scmp"))
        .args(["--scale", "tiny", "--workloads", "FIMI,SHOT", "--seed", "7"])
        .args(["--jobs", "1", "--no-cache", "--metrics-out"])
        .arg(&json_path)
        .output()
        .expect("spawn fig4_scmp");
    assert!(
        out.status.success(),
        "fig4_scmp failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Stdout: every byte of the tables and ASCII plots matches.
    let golden_stdout =
        std::fs::read(golden_dir().join("fig4_tiny_stdout.txt")).expect("read golden stdout");
    assert_eq!(
        out.stdout,
        golden_stdout,
        "clean-run stdout drifted from the golden capture:\n--- golden\n{}\n--- current\n{}",
        String::from_utf8_lossy(&golden_stdout),
        String::from_utf8_lossy(&out.stdout)
    );

    // JSON: the `results` subtree matches exactly. (The manifest's wall
    // time and version stamp vary by design, so only `results` is
    // pinned.)
    let golden_text =
        std::fs::read_to_string(golden_dir().join("fig4_tiny.json")).expect("read golden json");
    let golden_doc = cmpsim_telemetry::parse(&golden_text).expect("parse golden json");
    let current_text = std::fs::read_to_string(&json_path).expect("read current json");
    let current_doc = cmpsim_telemetry::parse(&current_text).expect("parse current json");
    let golden_results = golden_doc.get("results").expect("golden results key");
    assert_eq!(
        Some(golden_results),
        current_doc.get("results"),
        "clean-run JSON results drifted from the golden capture"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
