//! Tier-1 determinism guarantee of the experiment runner: a figure
//! binary must produce byte-identical text output and identical JSON
//! `results` whether it runs serially, on four workers, cold, or from a
//! warm result cache.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmpsim-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_fig4(extra: &[&str], metrics_out: &Path) -> Output {
    let out = Command::new(env!("CARGO_BIN_EXE_fig4_scmp"))
        .args([
            "--scale",
            "tiny",
            "--workloads",
            "FIMI,SHOT",
            "--seed",
            "7",
            "--metrics-out",
        ])
        .arg(metrics_out)
        .args(extra)
        .output()
        .expect("spawn fig4_scmp");
    assert!(
        out.status.success(),
        "fig4_scmp {extra:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn read_doc(path: &Path) -> cmpsim_telemetry::JsonValue {
    let text = std::fs::read_to_string(path).expect("read json twin");
    cmpsim_telemetry::parse(&text).expect("parse json twin")
}

#[test]
fn parallel_and_cached_runs_match_serial_bytes() {
    let dir = temp_dir("runner-det");
    let cache = dir.join("cache");

    let serial = run_fig4(&["--jobs", "1", "--no-cache"], &dir.join("serial.json"));
    let cold = run_fig4(
        &["--jobs", "4", "--cache-dir", cache.to_str().unwrap()],
        &dir.join("cold.json"),
    );
    let warm = run_fig4(
        &["--jobs", "4", "--cache-dir", cache.to_str().unwrap()],
        &dir.join("warm.json"),
    );

    // Text output is byte-identical across serial, parallel-cold, and
    // parallel-warm runs.
    assert_eq!(serial.stdout, cold.stdout, "parallel stdout differs");
    assert_eq!(serial.stdout, warm.stdout, "cached stdout differs");

    // The JSON results payload is identical too (the manifest differs
    // in wall time and runner counters by design).
    let serial_doc = read_doc(&dir.join("serial.json"));
    let cold_doc = read_doc(&dir.join("cold.json"));
    let warm_doc = read_doc(&dir.join("warm.json"));
    let results = serial_doc.get("results").expect("results key");
    assert_eq!(Some(results), cold_doc.get("results"));
    assert_eq!(Some(results), warm_doc.get("results"));
    assert_eq!(results.as_array().map(<[_]>::len), Some(2));

    // The cold run executed both cells; the warm run executed none.
    let counter = |doc: &cmpsim_telemetry::JsonValue, key: &str| {
        doc.get_path(&["manifest", "config", key])
            .and_then(|v| v.as_u64())
    };
    assert_eq!(counter(&cold_doc, "runner_ok"), Some(2));
    assert_eq!(counter(&cold_doc, "runner_cached"), Some(0));
    assert_eq!(counter(&warm_doc, "runner_ok"), Some(0));
    assert_eq!(counter(&warm_doc, "runner_cached"), Some(2));
    assert_eq!(counter(&warm_doc, "runner_failed"), Some(0));

    let _ = std::fs::remove_dir_all(&dir);
}
