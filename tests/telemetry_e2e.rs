//! End-to-end check of the telemetry surface of the `cmpsim` CLI: a
//! real `cmpsim run --metrics-out` invocation must produce a JSON
//! document whose manifest round-trips the command-line flags and whose
//! interval series carries at least one Dragonhead sample.
//!
//! This test lives in the root `tests/` directory but is compiled as an
//! integration test of the bench crate (see `crates/bench/Cargo.toml`)
//! so that `CARGO_BIN_EXE_cmpsim` resolves.

use cmpsim_telemetry::{parse, JsonValue};
use std::process::Command;

fn run_cmpsim(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_cmpsim"))
        .args(args)
        .output()
        .expect("spawn cmpsim")
}

#[test]
fn run_json_manifest_round_trips_cli_flags() {
    let dir = std::env::temp_dir().join(format!("cmpsim_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("metrics.json");
    let status = run_cmpsim(&[
        "run",
        "--workload",
        "FIMI",
        "--cores",
        "4",
        "--llc",
        "1MB",
        "--line",
        "128",
        "--scale",
        "tiny",
        "--seed",
        "42",
        "--prefetch",
        "--metrics-out",
        out.to_str().unwrap(),
    ]);
    assert!(
        status.status.success(),
        "cmpsim run failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );

    let text = std::fs::read_to_string(&out).unwrap();
    let doc = parse(&text).expect("metrics file is valid JSON");
    let manifest = doc.get("manifest").expect("document has a manifest");

    // The manifest must reproduce the flags we passed.
    assert_eq!(
        manifest.get("experiment").and_then(JsonValue::as_str),
        Some("cmpsim")
    );
    assert_eq!(manifest.get("seed").and_then(JsonValue::as_u64), Some(42));
    let workloads = match manifest.get("workloads") {
        Some(JsonValue::Array(a)) => a,
        other => panic!("workloads not an array: {other:?}"),
    };
    assert_eq!(workloads.len(), 1);
    assert_eq!(workloads[0].as_str(), Some("FIMI"));
    let config = manifest.get("config").expect("manifest has config");
    assert_eq!(config.get("cores").and_then(JsonValue::as_u64), Some(4));
    assert_eq!(
        config.get("llc_line_bytes").and_then(JsonValue::as_u64),
        Some(128)
    );
    assert_eq!(
        config.get("prefetch").and_then(JsonValue::as_bool),
        Some(true)
    );
    // --llc is scaled down by --scale before reaching the config, so just
    // check it is a power of two as `llc_config` guarantees.
    let llc_bytes = config
        .get("llc_bytes")
        .and_then(JsonValue::as_u64)
        .expect("llc_bytes present");
    assert!(llc_bytes.is_power_of_two(), "llc_bytes = {llc_bytes}");

    // The counter registry must attribute work to every core we asked for.
    let metrics = match doc.get("metrics") {
        Some(JsonValue::Array(a)) => a,
        other => panic!("metrics not an array: {other:?}"),
    };
    let mut cores_seen: Vec<String> = metrics
        .iter()
        .filter_map(|m| m.get("labels")?.get("core")?.as_str().map(str::to_owned))
        .collect();
    cores_seen.sort();
    cores_seen.dedup();
    assert_eq!(cores_seen, ["0", "1", "2", "3"]);

    // And at least one closed sampler interval with an MPKI field.
    let intervals = match doc.get("intervals") {
        Some(JsonValue::Array(a)) => a,
        other => panic!("intervals not an array: {other:?}"),
    };
    assert!(!intervals.is_empty(), "no sampler intervals recorded");
    // Every interval carries an MPKI field: a finite rate, or `null` for
    // a memory-stalled interval (misses with no instructions retired),
    // whose NaN has no JSON spelling.
    assert!(intervals.iter().all(|i| {
        match i.get("mpki") {
            Some(JsonValue::Null) => true,
            Some(v) => v.as_f64().is_some(),
            None => false,
        }
    }));

    // Stage spans from the profiled run.
    let spans = match doc.get("spans") {
        Some(JsonValue::Array(a)) => a,
        other => panic!("spans not an array: {other:?}"),
    };
    let names: Vec<_> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(JsonValue::as_str))
        .collect();
    for expected in ["cosim", "build", "simulate", "report"] {
        assert!(names.contains(&expected), "missing span {expected}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_without_json_flags_writes_nothing() {
    let dir = std::env::temp_dir().join(format!("cmpsim_e2e_plain_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let status = Command::new(env!("CARGO_BIN_EXE_cmpsim"))
        .current_dir(&dir)
        .args([
            "run",
            "--workload",
            "FIMI",
            "--cores",
            "2",
            "--scale",
            "tiny",
        ])
        .output()
        .expect("spawn cmpsim");
    assert!(status.status.success());
    assert!(
        !dir.join("results").exists(),
        "plain run must not create results/"
    );
    std::fs::remove_dir_all(&dir).ok();
}
