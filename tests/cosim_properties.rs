//! Cross-crate property tests: the banked Dragonhead LLC must be
//! hit/miss-equivalent to a flat reference cache on arbitrary bus
//! streams, and the AF window logic must partition traffic exactly.

use cmpsim_cache::{CacheConfig, SetAssocCache};
use cmpsim_dragonhead::{Dragonhead, DragonheadConfig};
use cmpsim_trace::{Addr, FsbKind, FsbTransaction, Message, MessageCodec};
use proptest::prelude::*;

fn bus_stream() -> impl Strategy<Value = Vec<(u64, bool)>> {
    prop::collection::vec((0u64..20_000, any::<bool>()), 1..2_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dragonhead's 4-bank CC array matches a flat cache exactly —
    /// validating that the FPGA bank interleave is performance-neutral
    /// (DESIGN.md ablation 3).
    #[test]
    fn banked_llc_equals_flat_reference(stream in bus_stream()) {
        let cache = CacheConfig::lru(1 << 20, 64, 8).unwrap();
        let mut dh = Dragonhead::new(DragonheadConfig::new(cache));
        let mut flat = SetAssocCache::new(cache);
        for t in MessageCodec::encode(Message::Start, 0) {
            dh.observe(&t);
        }
        for &(line, write) in &stream {
            let kind = if write {
                FsbKind::ReadInvalidateLine
            } else {
                FsbKind::ReadLine
            };
            dh.observe(&FsbTransaction::new(0, kind, Addr::new(line * 64)));
            flat.access(line, write);
        }
        prop_assert_eq!(dh.stats().hits, flat.stats().hits);
        prop_assert_eq!(dh.stats().misses, flat.stats().misses);
        prop_assert_eq!(dh.stats().writebacks, flat.stats().writebacks);
    }

    /// Transactions inside the window are all emulated; transactions
    /// outside are all excluded. Nothing is dropped or double counted.
    #[test]
    fn window_partitions_traffic(
        inside in 0u64..500,
        outside_before in 0u64..500,
        outside_after in 0u64..500,
    ) {
        let cache = CacheConfig::lru(1 << 20, 64, 8).unwrap();
        let mut dh = Dragonhead::new(DragonheadConfig::new(cache));
        let read = |i: u64| FsbTransaction::new(i, FsbKind::ReadLine, Addr::new(i * 64));
        for i in 0..outside_before {
            dh.observe(&read(i));
        }
        for t in MessageCodec::encode(Message::Start, 0) {
            dh.observe(&t);
        }
        for i in 0..inside {
            dh.observe(&read(i));
        }
        for t in MessageCodec::encode(Message::Stop, 0) {
            dh.observe(&t);
        }
        for i in 0..outside_after {
            dh.observe(&read(i));
        }
        prop_assert_eq!(dh.stats().accesses, inside);
        prop_assert_eq!(
            dh.address_filter().excluded(),
            outside_before + outside_after
        );
    }

    /// Per-core attribution is exhaustive and exclusive for any core
    /// sequence.
    #[test]
    fn core_attribution_partitions_accesses(
        assignments in prop::collection::vec((0u32..8, 0u64..1000), 1..500)
    ) {
        let cache = CacheConfig::lru(1 << 20, 64, 8).unwrap();
        let mut dh = Dragonhead::new(DragonheadConfig::new(cache));
        for t in MessageCodec::encode(Message::Start, 0) {
            dh.observe(&t);
        }
        let mut expected = [0u64; 8];
        for &(core, line) in &assignments {
            for t in MessageCodec::encode(Message::CoreId(core), 0) {
                dh.observe(&t);
            }
            dh.observe(&FsbTransaction::new(0, FsbKind::ReadLine, Addr::new(line * 64)));
            expected[core as usize] += 1;
        }
        let per_core = dh.per_core();
        for (c, &e) in expected.iter().enumerate() {
            let got = per_core.get(c).map(|x| x.accesses).unwrap_or(0);
            prop_assert_eq!(got, e, "core {}", c);
        }
        let total: u64 = per_core.iter().map(|c| c.accesses).sum();
        prop_assert_eq!(total, assignments.len() as u64);
    }
}
