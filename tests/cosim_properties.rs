//! Cross-crate invariant tests: the banked Dragonhead LLC must be
//! hit/miss-equivalent to a flat reference cache on arbitrary bus
//! streams, and the AF window logic must partition traffic exactly.
//! Cases are generated from the repo's own deterministic PCG stream so
//! every failure is reproducible by seed.

use cmpsim_cache::{CacheConfig, SetAssocCache};
use cmpsim_dragonhead::{Dragonhead, DragonheadConfig};
use cmpsim_trace::{Addr, FsbKind, FsbTransaction, Message, MessageCodec, Pcg32};

const CASES: u64 = 64;

/// Dragonhead's 4-bank CC array matches a flat cache exactly —
/// validating that the FPGA bank interleave is performance-neutral
/// (DESIGN.md ablation 3).
#[test]
fn banked_llc_equals_flat_reference() {
    let mut rng = Pcg32::seed(0xD4A6001);
    for case in 0..CASES {
        let len = 1 + rng.below(1_999) as usize;
        let stream: Vec<(u64, bool)> = (0..len)
            .map(|_| (rng.below(20_000), rng.chance(0.5)))
            .collect();
        let cache = CacheConfig::lru(1 << 20, 64, 8).unwrap();
        let mut dh = Dragonhead::new(DragonheadConfig::new(cache));
        let mut flat = SetAssocCache::new(cache);
        for t in MessageCodec::encode(Message::Start, 0) {
            dh.observe(&t);
        }
        for &(line, write) in &stream {
            let kind = if write {
                FsbKind::ReadInvalidateLine
            } else {
                FsbKind::ReadLine
            };
            dh.observe(&FsbTransaction::new(0, kind, Addr::new(line * 64)));
            flat.access(line, write);
        }
        assert_eq!(dh.stats().hits, flat.stats().hits, "case {case}");
        assert_eq!(dh.stats().misses, flat.stats().misses, "case {case}");
        assert_eq!(
            dh.stats().writebacks,
            flat.stats().writebacks,
            "case {case}"
        );
    }
}

/// Transactions inside the window are all emulated; transactions
/// outside are all excluded. Nothing is dropped or double counted.
#[test]
fn window_partitions_traffic() {
    let mut rng = Pcg32::seed(0xD4A6002);
    for case in 0..CASES {
        let inside = rng.below(500);
        let outside_before = rng.below(500);
        let outside_after = rng.below(500);
        let cache = CacheConfig::lru(1 << 20, 64, 8).unwrap();
        let mut dh = Dragonhead::new(DragonheadConfig::new(cache));
        let read = |i: u64| FsbTransaction::new(i, FsbKind::ReadLine, Addr::new(i * 64));
        for i in 0..outside_before {
            dh.observe(&read(i));
        }
        for t in MessageCodec::encode(Message::Start, 0) {
            dh.observe(&t);
        }
        for i in 0..inside {
            dh.observe(&read(i));
        }
        for t in MessageCodec::encode(Message::Stop, 0) {
            dh.observe(&t);
        }
        for i in 0..outside_after {
            dh.observe(&read(i));
        }
        assert_eq!(dh.stats().accesses, inside, "case {case}");
        assert_eq!(
            dh.address_filter().excluded(),
            outside_before + outside_after,
            "case {case}"
        );
    }
}

/// Per-core attribution is exhaustive and exclusive for any core
/// sequence.
#[test]
fn core_attribution_partitions_accesses() {
    let mut rng = Pcg32::seed(0xD4A6003);
    for case in 0..CASES {
        let n = 1 + rng.below(499) as usize;
        let assignments: Vec<(u32, u64)> = (0..n)
            .map(|_| (rng.below(8) as u32, rng.below(1000)))
            .collect();
        let cache = CacheConfig::lru(1 << 20, 64, 8).unwrap();
        let mut dh = Dragonhead::new(DragonheadConfig::new(cache));
        for t in MessageCodec::encode(Message::Start, 0) {
            dh.observe(&t);
        }
        let mut expected = [0u64; 8];
        for &(core, line) in &assignments {
            for t in MessageCodec::encode(Message::CoreId(core), 0) {
                dh.observe(&t);
            }
            dh.observe(&FsbTransaction::new(
                0,
                FsbKind::ReadLine,
                Addr::new(line * 64),
            ));
            expected[core as usize] += 1;
        }
        let per_core = dh.per_core();
        for (c, &e) in expected.iter().enumerate() {
            let got = per_core.get(c).map(|x| x.accesses).unwrap_or(0);
            assert_eq!(got, e, "case {case} core {c}");
        }
        let total: u64 = per_core.iter().map(|c| c.accesses).sum();
        assert_eq!(total, assignments.len() as u64, "case {case}");
    }
}
