//! Shape assertions for the paper's figures, at test scale.
//!
//! These tests validate the *qualitative claims* of §4.3–§4.4 — knee
//! positions relative to each other, sharing categories, line-size
//! behaviour, prefetch asymmetry — which are scale-invariant because the
//! workload footprints and the cache sizes shrink together (see
//! `Scale`). EXPERIMENTS.md records the corresponding full-scale runs.

use cmpsim_core::experiment::{
    CacheSizeStudy, CmpClass, LineSizeStudy, PrefetchStudy, SharingStudy,
};
use cmpsim_core::{Scale, WorkloadId};

const SEED: u64 = 2007;

/// A compressed size sweep for test speed: 64 KB – 2 MB at tiny scale
/// corresponds to 16 MB – 512 MB at paper scale.
const TEST_SIZES: [u64; 4] = [64 << 10, 256 << 10, 1 << 20, 2 << 20];

#[test]
fn fig4_most_workloads_benefit_from_cache_size() {
    let study = CacheSizeStudy::new(Scale::tiny(), CmpClass::Small, SEED);
    for id in [WorkloadId::SvmRfe, WorkloadId::Fimi, WorkloadId::Viewtype] {
        let curve = study.run_with_sizes(id, &TEST_SIZES);
        assert!(
            curve.flatness() < 0.75,
            "{id}: expected MPKI to fall with size, flatness {} points {:?}",
            curve.flatness(),
            curve.points
        );
    }
}

#[test]
fn fig4_mds_is_flat() {
    // "MDS receives no benefit with the simulated cache sizes because
    // one of its frequently referenced data structures is a sparse
    // matrix of 300MB" — at tiny scale the matrix is ~1.2 MB streamed,
    // far beyond the scaled cache's reuse window.
    let study = CacheSizeStudy::new(Scale::tiny(), CmpClass::Small, SEED);
    let curve = study.run_with_sizes(WorkloadId::Mds, &TEST_SIZES[..3]);
    assert!(
        curve.flatness() > 0.7,
        "MDS should stay flat: {:?}",
        curve.points
    );
}

#[test]
fn fig5_category_a_flat_category_b_grows_with_threads() {
    // §4.3's two categories, measured as MPKI growth from 1 to 8 threads
    // at a fixed LLC.
    let study = SharingStudy::new(Scale::tiny(), SEED);
    let shared = [WorkloadId::SvmRfe, WorkloadId::Mds];
    let private = [WorkloadId::Shot, WorkloadId::Viewtype];
    let mut worst_shared: f64 = 0.0;
    for id in shared {
        let r = study.run(id);
        worst_shared = worst_shared.max(r.miss_growth_8x);
        assert!(
            r.miss_growth_8x < 2.0,
            "{id}: category (a) grew {}x",
            r.miss_growth_8x
        );
    }
    for id in private {
        let r = study.run(id);
        assert!(
            r.miss_growth_8x > worst_shared,
            "{id}: category (b) ({}) should exceed category (a) ({worst_shared})",
            r.miss_growth_8x
        );
    }
}

#[test]
fn fig7_line_size_helps_streaming_workloads() {
    let mut study = LineSizeStudy::new(Scale::tiny(), SEED);
    study.cores = 4; // keep test runtime bounded
    for id in [WorkloadId::Shot, WorkloadId::Mds] {
        let curve = study.run(id);
        // "SHOT, MDS, SNP, and SVM-RFE almost get linear miss reductions
        // (around 1/3 to 1/4) from 64B to 256B".
        let gain = curve.improvement_at(256);
        assert!(gain > 2.0, "{id}: 256B gain {gain} {:?}", curve.points);
        // Diminishing returns beyond 256B: the 64->256 improvement factor
        // exceeds the 256->1024 one.
        let gain_1024 = curve.improvement_at(1024) / gain;
        assert!(
            gain >= gain_1024,
            "{id}: no diminishing returns ({gain} then {gain_1024})"
        );
    }
}

#[test]
fn fig8_prefetch_helps_and_bandwidth_punishes_parallel_mds() {
    let mut study = PrefetchStudy::new(Scale::tiny(), SEED);
    study.parallel_threads = 8; // bounded runtime; same asymmetry
                                // MDS: high miss rate -> parallel bandwidth contention eats the
                                // prefetch benefit (paper: serial gain > parallel gain).
    let mds = study.run(WorkloadId::Mds);
    assert!(
        mds.serial_speedup > 1.0,
        "MDS serial {}",
        mds.serial_speedup
    );
    assert!(
        mds.serial_speedup > mds.parallel_speedup,
        "MDS: serial {} should beat parallel {}",
        mds.serial_speedup,
        mds.parallel_speedup
    );
    // PLSA: low miss rate, bandwidth headroom -> parallel benefits at
    // least comparably (paper: parallel gain >= serial gain).
    let plsa = study.run(WorkloadId::Plsa);
    assert!(
        plsa.parallel_speedup >= plsa.serial_speedup * 0.95,
        "PLSA: parallel {} vs serial {}",
        plsa.parallel_speedup,
        plsa.serial_speedup
    );
}

#[test]
fn working_sets_order_matches_paper() {
    // Figure 4 knee ordering at matched scale: SHOT (32 MB paper
    // working set) knees no later than SNP's second knee (128 MB paper);
    // MDS never knees. (SVM-RFE is excluded here: at the unit-test scale
    // its gene-count floor pins the matrix size, which distorts its knee
    // — the CI/paper-scale runs in EXPERIMENTS.md cover it.)
    let study = CacheSizeStudy::new(Scale::tiny(), CmpClass::Small, SEED);
    let sizes: Vec<u64> = [16u64 << 10, 64 << 10, 256 << 10, 1 << 20, 2 << 20].to_vec();
    let snp = study.run_with_sizes(WorkloadId::Snp, &sizes);
    let shot = study.run_with_sizes(WorkloadId::Shot, &sizes);
    // MDS is only sampled inside the paper's sweep range: the paper's
    // largest cache (256 MB -> 1 MB at this scale) stays *below* the
    // 300 MB-class matrix; past it even MDS would fit and knee.
    let mds = study.run_with_sizes(WorkloadId::Mds, &sizes[..4]);
    let snp_knee = snp.knee(0.2);
    let shot_knee = shot.knee(0.2);
    assert!(
        shot_knee.is_some(),
        "SHOT must have a knee: {:?}",
        shot.points
    );
    assert!(snp_knee.is_some(), "SNP must have a knee: {:?}", snp.points);
    assert!(
        shot_knee <= snp_knee,
        "SHOT settles at {shot_knee:?}, SNP (two working sets, the larger \
         128 MB-class) at {snp_knee:?}"
    );
    assert_eq!(mds.knee(0.5), None, "MDS must not knee: {:?}", mds.points);
}
