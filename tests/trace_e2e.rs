//! Flight-recorder tracing, end to end: a supervised grid run with
//! `--trace-out` must produce a valid Chrome trace-event document in
//! which every child-process span parents (transitively) under its
//! grid-cell span; tracing must never change a run's stdout; and the
//! trace's structural shape must be identical across `--jobs` counts,
//! with the cell lifecycle shape surviving a warm (cached) re-run.
//! `cmpsim report` renders the journalled timeline and `--compare`
//! diffs two runs.

use cmpsim_telemetry::JsonValue;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmpsim-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Runs `fig4_scmp` at tiny scale over `workloads` with `extra` flags,
/// asserting success; returns (stdout, stderr).
fn fig4(dir: &Path, workloads: &str, extra: &[&str]) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_fig4_scmp"))
        .current_dir(dir)
        .args(["--scale", "tiny", "--seed", "7", "--workloads", workloads])
        .args(extra)
        .output()
        .expect("run fig4_scmp");
    assert!(
        out.status.success(),
        "fig4_scmp failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("stdout is utf-8"),
        String::from_utf8(out.stderr).expect("stderr is utf-8"),
    )
}

fn read_chrome(path: &Path) -> JsonValue {
    let text = std::fs::read_to_string(path).expect("read trace");
    cmpsim_telemetry::parse(&text).expect("trace parses as JSON")
}

fn trace_events(doc: &JsonValue) -> &[JsonValue] {
    doc.get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array")
}

fn arg_str<'a>(ev: &'a JsonValue, key: &str) -> Option<&'a str> {
    ev.get_path(&["args", key]).and_then(JsonValue::as_str)
}

fn arg_u64(ev: &JsonValue, key: &str) -> Option<u64> {
    ev.get_path(&["args", key]).and_then(JsonValue::as_u64)
}

fn name(ev: &JsonValue) -> &str {
    ev.get("name").and_then(JsonValue::as_str).unwrap_or("")
}

fn ph(ev: &JsonValue) -> &str {
    ev.get("ph").and_then(JsonValue::as_str).unwrap_or("")
}

/// The structural shape of a trace: per-event `(cell, ph, name, from
/// child?)` tuples for spans and instants, sorted. Timestamps, span
/// ids, lanes, and counters are excluded, so serial/parallel runs of
/// the same grid produce the same shape.
fn full_shape(doc: &JsonValue) -> Vec<(String, String, String, bool)> {
    let mut shape: Vec<_> = trace_events(doc)
        .iter()
        .filter(|ev| matches!(ph(ev), "X" | "i"))
        .map(|ev| {
            (
                arg_str(ev, "cell").unwrap_or("").to_owned(),
                ph(ev).to_owned(),
                name(ev).to_owned(),
                arg_str(ev, "proc") == Some("child"),
            )
        })
        .collect();
    shape.sort();
    shape
}

/// The cell-lifecycle subset of the shape: events every grid run emits
/// for every cell regardless of whether the cell executed or was
/// served from the result cache.
fn lifecycle_shape(doc: &JsonValue) -> Vec<(String, String, String, bool)> {
    full_shape(doc)
        .into_iter()
        .filter(|(_, _, name, _)| {
            name.starts_with("cell:") || name == "queue-wait" || name == "cache-lookup"
        })
        .collect()
}

#[test]
fn supervised_trace_parents_child_spans_under_cells() {
    let dir = temp_dir("trace-e2e-supervised");
    let trace = dir.join("trace.json");
    fig4(
        &dir,
        "MDS",
        &[
            "--jobs",
            "1",
            "--isolate",
            "process",
            "--no-cache",
            "--run-id",
            "trace-e2e",
            "--journal-dir",
            "journal",
            "--trace-out",
            trace.to_str().unwrap(),
        ],
    );
    let doc = read_chrome(&trace);
    // The export is never silent about overflow.
    assert_eq!(
        doc.get_path(&["otherData", "dropped_events"])
            .and_then(JsonValue::as_u64),
        Some(0)
    );

    // Index every complete span by id, then require each child-process
    // event to chain (via `parent`) to its cell umbrella span.
    let mut spans: BTreeMap<u64, &JsonValue> = BTreeMap::new();
    for ev in trace_events(&doc) {
        if ph(ev) == "X" {
            if let Some(id) = arg_u64(ev, "span") {
                spans.insert(id, ev);
            }
        }
    }
    let child_events: Vec<&JsonValue> = trace_events(&doc)
        .iter()
        .filter(|ev| arg_str(ev, "proc") == Some("child"))
        .collect();
    assert!(
        !child_events.is_empty(),
        "a traced --isolate process run must graft child spans"
    );
    for ev in &child_events {
        let mut cur = *ev;
        let mut hops = 0;
        loop {
            if name(cur).starts_with("cell:") {
                break;
            }
            let parent = arg_u64(cur, "parent").unwrap_or(0);
            cur = spans.get(&parent).unwrap_or_else(|| {
                panic!("child event `{}` does not chain to a cell span", name(ev))
            });
            hops += 1;
            assert!(hops < 64, "parent chain cycle from `{}`", name(ev));
        }
        assert_eq!(
            arg_str(cur, "cell"),
            Some("MDS"),
            "child event `{}` landed under the wrong cell",
            name(ev)
        );
    }
    // The child did real co-simulation work under the cell span.
    assert!(
        child_events.iter().any(|ev| name(ev) == "capture"),
        "child trace should carry the capture span"
    );

    // The JSONL sidecar sits next to the journal and aggregates to the
    // same stage totals `cmpsim report` renders.
    let sidecar = dir.join("journal/trace-e2e.trace.jsonl");
    let file = cmpsim_telemetry::trace::read_jsonl(&sidecar).expect("sidecar exists");
    let summary = cmpsim_telemetry::trace::TraceSummary::from_events(&file.events, file.dropped);
    assert!(summary.stage_total_ns("execute") > 0);
    assert_eq!(summary.cells.len(), 1);
    assert_eq!(summary.cells[0].label, "MDS");

    // `cmpsim report` renders the journalled run; `--compare` diffs it.
    let report = Command::new(env!("CARGO_BIN_EXE_cmpsim"))
        .current_dir(&dir)
        .args(["report", "trace-e2e", "--journal-dir", "journal"])
        .output()
        .expect("run cmpsim report");
    assert!(
        report.status.success(),
        "cmpsim report failed: {}",
        String::from_utf8_lossy(&report.stderr)
    );
    let text = String::from_utf8(report.stdout).unwrap();
    assert!(text.contains("stage breakdown:"), "{text}");
    assert!(text.contains("execute"), "{text}");
    assert!(text.contains("slowest cells"), "{text}");
    assert!(text.contains("MDS"), "{text}");

    let compare = Command::new(env!("CARGO_BIN_EXE_cmpsim"))
        .current_dir(&dir)
        .args([
            "report",
            "--compare",
            "trace-e2e",
            "trace-e2e",
            "--journal-dir",
            "journal",
        ])
        .output()
        .expect("run cmpsim report --compare");
    assert!(compare.status.success());
    let text = String::from_utf8(compare.stdout).unwrap();
    assert!(text.contains("comparing trace-e2e vs trace-e2e"), "{text}");
    assert!(text.contains("throughput:"), "{text}");
    assert!(text.contains("(1.00x)"), "{text}");
}

#[test]
fn tracing_does_not_change_stdout() {
    let dir = temp_dir("trace-e2e-identity");
    let (plain, _) = fig4(&dir, "MDS", &["--no-cache"]);
    let trace = dir.join("trace.json");
    let (traced, err) = fig4(
        &dir,
        "MDS",
        &["--no-cache", "--trace-out", trace.to_str().unwrap()],
    );
    assert_eq!(plain, traced, "enabling --trace-out must not change stdout");
    assert!(err.contains("wrote"), "trace path note goes to stderr");
    read_chrome(&trace); // and the trace itself is valid JSON

    // `--quiet` silences stderr entirely on a clean run — no progress
    // line, no batch summary — without touching stdout.
    let (quiet, err) = fig4(&dir, "MDS", &["--no-cache", "--quiet"]);
    assert_eq!(plain, quiet, "--quiet must not change stdout");
    assert_eq!(err, "", "--quiet must silence stderr on a clean run");
}

#[test]
fn trace_shape_is_identical_across_jobs_and_cache_state() {
    let dir = temp_dir("trace-e2e-shape");
    let serial = dir.join("serial.json");
    let parallel = dir.join("parallel.json");
    let warm = dir.join("warm.json");
    // The replay shard count is pinned across all three runs: it
    // defaults to `--jobs`, and each shard records its own
    // `board-replay` span (that per-shard visibility is the point), so
    // letting it float would change the span multiset. The CI
    // sharded-replay smoke step covers the shards-vs-trace interplay.
    fig4(
        &dir,
        "MDS,SHOT",
        &[
            "--jobs",
            "1",
            "--replay-shards",
            "2",
            "--cache-dir",
            "cache-serial",
            "--trace-out",
            serial.to_str().unwrap(),
        ],
    );
    fig4(
        &dir,
        "MDS,SHOT",
        &[
            "--jobs",
            "2",
            "--replay-shards",
            "2",
            "--cache-dir",
            "cache-parallel",
            "--trace-out",
            parallel.to_str().unwrap(),
        ],
    );
    // Warm: re-run over the serial run's cache — every cell is served
    // from the result cache.
    fig4(
        &dir,
        "MDS,SHOT",
        &[
            "--jobs",
            "1",
            "--replay-shards",
            "2",
            "--cache-dir",
            "cache-serial",
            "--trace-out",
            warm.to_str().unwrap(),
        ],
    );
    let serial = read_chrome(&serial);
    let parallel = read_chrome(&parallel);
    let warm = read_chrome(&warm);
    // Golden shape: a parallel cold run records structurally the same
    // trace as a serial cold run — same cells, same spans, same
    // markers; only timestamps, ids, and lane assignment differ.
    assert_eq!(full_shape(&serial), full_shape(&parallel));
    // A warm run skips execution, but the per-cell lifecycle (umbrella
    // span, queue-wait, cache-lookup) is shape-identical.
    assert_eq!(lifecycle_shape(&serial), lifecycle_shape(&warm));
    // And the warm run visibly hit the cache instead of executing.
    let hits = trace_events(&warm)
        .iter()
        .filter(|ev| name(ev) == "cache-hit")
        .count();
    assert_eq!(hits, 2, "both warm cells are served from the cache");
}
