//! Tier-1 capture/replay equivalence guarantee: a figure binary must
//! produce byte-identical stdout, identical JSON `results`, and
//! identical journalled `job_done` records whether each grid cell
//! replays one captured FSB stream into every LLC configuration (the
//! default), re-executes the co-simulation per configuration
//! (`--no-replay`), or replays streams loaded from an on-disk
//! `--trace-dir` store written by an earlier run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmpsim-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Every run is `--no-cache`: the result cache must not mask whether
/// capture/replay actually produced these bytes.
fn run_fig4(extra: &[&str], metrics_out: &Path) -> Output {
    let out = Command::new(env!("CARGO_BIN_EXE_fig4_scmp"))
        .args([
            "--scale",
            "tiny",
            "--workloads",
            "FIMI,SHOT",
            "--seed",
            "7",
            "--no-cache",
            "--metrics-out",
        ])
        .arg(metrics_out)
        .args(extra)
        .output()
        .expect("spawn fig4_scmp");
    assert!(
        out.status.success(),
        "fig4_scmp {extra:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn read_doc(path: &Path) -> cmpsim_telemetry::JsonValue {
    let text = std::fs::read_to_string(path).expect("read json twin");
    cmpsim_telemetry::parse(&text).expect("parse json twin")
}

fn counter(doc: &cmpsim_telemetry::JsonValue, key: &str) -> Option<u64> {
    doc.get_path(&["manifest", "config", key])
        .and_then(|v| v.as_u64())
}

/// The journalled `job_done` lines of run `id`, verbatim. Start/end
/// records carry run identity; the terminal outcomes are what must not
/// depend on the execution strategy.
fn job_done_lines(journal_dir: &Path, id: &str) -> Vec<String> {
    let text =
        std::fs::read_to_string(journal_dir.join(format!("{id}.jsonl"))).expect("read journal");
    text.lines()
        .filter(|l| l.contains("\"job_done\""))
        .map(|l| {
            // The framing (len + checksum) and the record body are both
            // deterministic; only the key may embed the run id — it does
            // not, so the whole line is comparable after a sanity check.
            assert!(!l.contains(id), "journal line embeds the run id: {l}");
            l.to_owned()
        })
        .collect()
}

#[test]
fn replayed_grid_matches_execute_per_cell() {
    let dir = temp_dir("replay-eq");
    let traces = dir.join("traces");
    let journal = dir.join("journal");
    let jflag = journal.to_str().unwrap().to_owned();

    // The baseline: one full co-simulation per grid cell and LLC size,
    // exactly the paper's single-FPGA methodology.
    let executed = run_fig4(
        &["--no-replay", "--journal-dir", &jflag, "--run-id", "exec"],
        &dir.join("exec.json"),
    );
    // Capture-once/replay-many with the in-memory broker (the default).
    let replayed = run_fig4(
        &["--journal-dir", &jflag, "--run-id", "replay"],
        &dir.join("replay.json"),
    );
    // Capture to an on-disk store, then replay a second run entirely
    // from it.
    let tflag = traces.to_str().unwrap().to_owned();
    let cold = run_fig4(&["--trace-dir", &tflag], &dir.join("cold.json"));
    let warm = run_fig4(&["--trace-dir", &tflag], &dir.join("warm.json"));

    // Stdout is byte-identical across all four strategies.
    assert_eq!(executed.stdout, replayed.stdout, "replay stdout differs");
    assert_eq!(executed.stdout, cold.stdout, "cold-store stdout differs");
    assert_eq!(executed.stdout, warm.stdout, "warm-store stdout differs");

    // So is the JSON results payload.
    let exec_doc = read_doc(&dir.join("exec.json"));
    let results = exec_doc.get("results").expect("results key");
    assert_eq!(results.as_array().map(<[_]>::len), Some(2));
    for name in ["replay", "cold", "warm"] {
        let doc = read_doc(&dir.join(format!("{name}.json")));
        assert_eq!(Some(results), doc.get("results"), "{name} results differ");
    }

    // The manifest counters tell the strategies apart: --no-replay never
    // captured; the in-memory and cold-store runs captured one stream
    // per workload; the warm run captured nothing and loaded both from
    // disk.
    let replay_doc = read_doc(&dir.join("replay.json"));
    let cold_doc = read_doc(&dir.join("cold.json"));
    let warm_doc = read_doc(&dir.join("warm.json"));
    assert_eq!(counter(&exec_doc, "trace_captures"), None);
    assert_eq!(counter(&replay_doc, "trace_captures"), Some(2));
    assert_eq!(counter(&replay_doc, "trace_disk_loads"), None);
    assert_eq!(counter(&cold_doc, "trace_captures"), Some(2));
    assert_eq!(counter(&warm_doc, "trace_captures"), None);
    assert_eq!(counter(&warm_doc, "trace_disk_loads"), Some(2));

    // And the write-ahead journal recorded byte-identical terminal
    // outcomes for every cell.
    let exec_journal = job_done_lines(&journal, "exec");
    let replay_journal = job_done_lines(&journal, "replay");
    assert_eq!(exec_journal.len(), 2);
    assert_eq!(exec_journal, replay_journal, "journal outcomes differ");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Sharding a cell's sweep replay across worker threads must never
/// change a byte of output: every board still observes the full stream
/// in order over fixed batch boundaries, and reports are assembled in
/// sweep order. One shard, four shards, and more shards than boards
/// (the count clamps to the board count) all reproduce the serial
/// stdout, the serial JSON results, and the serial journal outcomes.
#[test]
fn sharded_replay_matches_serial_replay() {
    let dir = temp_dir("replay-shards");
    let journal = dir.join("journal");
    let jflag = journal.to_str().unwrap().to_owned();

    let serial = run_fig4(
        &[
            "--journal-dir",
            &jflag,
            "--run-id",
            "s1",
            "--replay-shards",
            "1",
        ],
        &dir.join("s1.json"),
    );
    let sharded = run_fig4(
        &[
            "--journal-dir",
            &jflag,
            "--run-id",
            "s4",
            "--replay-shards",
            "4",
        ],
        &dir.join("s4.json"),
    );
    // More shards than the sweep has boards: clamps, still identical.
    let oversharded = run_fig4(&["--replay-shards", "64"], &dir.join("s64.json"));

    assert_eq!(serial.stdout, sharded.stdout, "4-shard stdout differs");
    assert_eq!(serial.stdout, oversharded.stdout, "64-shard stdout differs");

    let serial_doc = read_doc(&dir.join("s1.json"));
    let results = serial_doc.get("results").expect("results key");
    for name in ["s4", "s64"] {
        let doc = read_doc(&dir.join(format!("{name}.json")));
        assert_eq!(Some(results), doc.get("results"), "{name} results differ");
    }

    let serial_journal = job_done_lines(&journal, "s1");
    let sharded_journal = job_done_lines(&journal, "s4");
    assert_eq!(serial_journal.len(), 2);
    assert_eq!(serial_journal, sharded_journal, "journal outcomes differ");

    let _ = std::fs::remove_dir_all(&dir);
}
