//! Video-mining scenario: run SHOT and VIEWTYPE (the §2.6 workloads) end
//! to end, show the *algorithmic* results (detected shot boundaries,
//! view-type distribution), then compare their memory behaviour under
//! thread scaling — the paper's category (b) signature.
//!
//! ```text
//! cargo run --release --example video_mining
//! ```

use cmpsim_core::cosim::{CoSimConfig, CoSimulation};
use cmpsim_core::report::{human_bytes, TextTable};
use cmpsim_core::workloads::shot::Shot;
use cmpsim_core::workloads::viewtype::Viewtype;
use cmpsim_core::{Scale, WorkloadId};

fn scale_from_env() -> Scale {
    match std::env::var("CMPSIM_SCALE").as_deref() {
        Ok("paper") => Scale::paper(),
        Ok("ci") => Scale::ci(),
        _ => Scale::tiny(),
    }
}

fn main() {
    let scale = scale_from_env();
    let llc = scale.pow2_bytes(32 << 20, 64 << 10);
    println!(
        "video mining at scale {scale}, shared LLC {}\n",
        human_bytes(llc)
    );

    // --- SHOT: boundary detection quality ---------------------------
    let shot = Shot::new(scale, 42);
    let cfg = CoSimConfig::new(8, llc).expect("valid geometry");
    let report = CoSimulation::new(cfg).run(&shot);
    let truth: Vec<u32> = shot.ground_truth()[1..].to_vec();
    let detected = shot.detected_boundaries();
    let hits = truth.iter().filter(|b| detected.contains(b)).count();
    println!(
        "SHOT: {} instructions retired, {} true boundaries",
        report.run.instructions,
        truth.len()
    );
    println!(
        "  recall {}/{} ({:.0}%), {} detections, LLC MPKI {:.3}",
        hits,
        truth.len(),
        hits as f64 * 100.0 / truth.len().max(1) as f64,
        detected.len(),
        report.mpki
    );

    // --- VIEWTYPE: classification distribution ----------------------
    let vt = Viewtype::new(scale, 42);
    let report_vt = CoSimulation::new(cfg).run(&vt);
    let classes = vt.classifications();
    let mut counts = std::collections::BTreeMap::new();
    for (_, c) in &classes {
        *counts.entry(format!("{c:?}")).or_insert(0u32) += 1;
    }
    println!(
        "\nVIEWTYPE: {} key frames classified, LLC MPKI {:.3}",
        classes.len(),
        report_vt.mpki
    );
    for (class, n) in &counts {
        println!("  {class:<10} {n}");
    }

    // --- Thread scaling: the category (b) signature -----------------
    println!(
        "\nLLC MPKI under thread scaling (fixed {} LLC):",
        human_bytes(llc)
    );
    let mut table = TextTable::new(["threads", "SHOT", "VIEWTYPE"]);
    for threads in [1usize, 2, 4, 8] {
        let mpki_of = |id: WorkloadId| {
            let wl = id.build(scale, 42);
            let cfg = CoSimConfig::new(threads, llc).expect("valid geometry");
            CoSimulation::new(cfg).run(wl.as_ref()).mpki
        };
        table.row([
            threads.to_string(),
            format!("{:.3}", mpki_of(WorkloadId::Shot)),
            format!("{:.3}", mpki_of(WorkloadId::Viewtype)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "each thread carries ~{} (SHOT) of private frame buffers, so the\n\
         working set — and the miss rate at a fixed LLC — grows with the\n\
         thread count (paper §4.3, category (b)).",
        human_bytes(shot.frame_bytes() * 2)
    );
}
