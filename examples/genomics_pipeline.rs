//! Bioinformatics scenario: the three genomics workloads (SNP, PLSA,
//! RSEARCH) through the co-simulation, with their algorithmic outputs
//! and the §4.3 thread-scaling contrast — SNP shares everything (flat
//! curve); RSEARCH grows a private DP matrix per thread.
//!
//! ```text
//! cargo run --release --example genomics_pipeline
//! ```

use cmpsim_core::cosim::{CoSimConfig, CoSimulation};
use cmpsim_core::report::{human_bytes, TextTable};
use cmpsim_core::workloads::plsa::{smith_waterman_best, Plsa};
use cmpsim_core::workloads::rsearch::Rsearch;
use cmpsim_core::workloads::snp::Snp;
use cmpsim_core::{Scale, WorkloadId};

fn scale_from_env() -> Scale {
    match std::env::var("CMPSIM_SCALE").as_deref() {
        Ok("paper") => Scale::paper(),
        Ok("ci") => Scale::ci(),
        _ => Scale::tiny(),
    }
}

fn main() {
    let scale = scale_from_env();
    let llc = scale.pow2_bytes(32 << 20, 64 << 10);
    let cfg = CoSimConfig::new(8, llc).expect("valid geometry");
    println!(
        "genomics pipeline at scale {scale}, {} shared LLC\n",
        human_bytes(llc)
    );

    // PLSA: alignment score, checked against the quadratic-space oracle.
    let plsa = Plsa::new(scale, 7);
    let r = CoSimulation::new(cfg).run(&plsa);
    println!(
        "PLSA : aligned two {}-residue sequences; best local score {}",
        plsa.seq_len(),
        plsa.best_score()
    );
    println!(
        "       (oracle check: {}), {:.1}% memory instructions, LLC MPKI {:.3}",
        smith_waterman_best(&dna_pair(scale, 7).0, &dna_pair(scale, 7).1),
        r.run.memory_fraction() * 100.0,
        r.mpki
    );

    // SNP: network score from hill climbing.
    let snp = Snp::new(scale, 7);
    let r = CoSimulation::new(cfg).run(&snp);
    println!(
        "SNP  : hill climbing finished, best network score {:.4}, LLC MPKI {:.3}",
        snp.best_score(),
        r.mpki
    );

    // RSEARCH: best database hit.
    let rs = Rsearch::new(scale, 7);
    let r = CoSimulation::new(cfg).run(&rs);
    let (score, window) = rs.best_hit();
    println!(
        "RSRCH: scanned {} windows, best fold score {:.2} at window {}, LLC MPKI {:.3}\n",
        rs.windows(),
        score,
        window,
        r.mpki
    );

    // Thread-scaling contrast (category (a) vs (b)).
    println!(
        "LLC MPKI under thread scaling (fixed {} LLC):",
        human_bytes(llc)
    );
    let mut table = TextTable::new(["threads", "SNP (shared)", "RSEARCH (private DP)"]);
    for threads in [1usize, 2, 4, 8] {
        let mpki_of = |id: WorkloadId| {
            let wl = id.build(scale, 7);
            let cfg = CoSimConfig::new(threads, llc).expect("valid geometry");
            CoSimulation::new(cfg).run(wl.as_ref()).mpki
        };
        table.row([
            threads.to_string(),
            format!("{:.3}", mpki_of(WorkloadId::Snp)),
            format!("{:.3}", mpki_of(WorkloadId::Rsearch)),
        ]);
    }
    println!("{}", table.render());
}

/// Rebuilds the PLSA sequence pair for the oracle line (the workload's
/// own copy is private).
fn dna_pair(scale: Scale, seed: u64) -> (Vec<u8>, Vec<u8>) {
    use cmpsim_core::workloads::datagen;
    let n = scale.count(30_000) as usize;
    let a = datagen::dna_sequence(n, seed);
    let b = datagen::related_dna_sequence(&a, 0.7, seed ^ 1);
    (a, b)
}
