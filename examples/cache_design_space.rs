//! Cache design-space exploration — the paper's headline use case.
//!
//! Sweeps the shared-LLC size for a chosen workload on all three CMP
//! classes (one platform run per class emulates every size at once),
//! prints the MPKI curves, finds working-set knees, and prints the
//! DRAM-cache recommendation the paper's conclusions draw.
//!
//! ```text
//! cargo run --release --example cache_design_space [workload]
//! CMPSIM_SCALE=ci cargo run --release --example cache_design_space fimi
//! ```

use cmpsim_core::experiment::{paper_cache_sizes, CacheSizeStudy, CmpClass};
use cmpsim_core::report::{human_bytes, TextTable};
use cmpsim_core::{Scale, WorkloadId};

fn scale_from_env() -> Scale {
    match std::env::var("CMPSIM_SCALE").as_deref() {
        Ok("paper") => Scale::paper(),
        Ok("ci") => Scale::ci(),
        _ => Scale::tiny(),
    }
}

fn main() {
    let workload: WorkloadId = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("unknown workload name"))
        .unwrap_or(WorkloadId::Shot);
    let scale = scale_from_env();
    let sizes = paper_cache_sizes(scale);

    println!("LLC design space for {workload} at scale {scale}");
    println!("(sizes correspond to the paper's 4MB..256MB sweep)\n");

    let mut table = TextTable::new(
        std::iter::once("LLC size".to_owned())
            .chain(CmpClass::all().iter().map(|c| c.name().to_owned())),
    );
    let curves: Vec<_> = CmpClass::all()
        .iter()
        .map(|&cmp| CacheSizeStudy::new(scale, cmp, 2007).run_with_sizes(workload, &sizes))
        .collect();
    for (i, &size) in sizes.iter().enumerate() {
        table.row(
            std::iter::once(human_bytes(size))
                .chain(curves.iter().map(|c| format!("{:.3}", c.points[i].mpki))),
        );
    }
    println!("{}", table.render());

    println!("working-set knees (size where MPKI halves):");
    for curve in &curves {
        match curve.knee(0.5) {
            Some(k) => println!("  {}: {}", curve.cmp, human_bytes(k)),
            None => println!(
                "  {}: none within the sweep (streaming footprint)",
                curve.cmp
            ),
        }
    }

    // The paper's design guidance (§4.3): workloads whose working set
    // exceeds what SRAM can affordably provide are DRAM-cache candidates.
    let lcmp = &curves[2];
    let sram_limit = sizes[3]; // 32 MB at paper scale
    println!();
    match lcmp.knee(0.5) {
        Some(k) if k <= sram_limit => println!(
            "recommendation: a {} SRAM LLC captures {workload}'s working set on LCMP.",
            human_bytes(k)
        ),
        Some(k) => println!(
            "recommendation: {workload} needs {} on LCMP — a large DRAM cache \
             (eDRAM / off-die / 3D-stacked) is the economic choice.",
            human_bytes(k)
        ),
        None => println!(
            "recommendation: {workload} streams past every size in the sweep; \
             bandwidth (not capacity) is the constraint, favoring large lines \
             and prefetching."
        ),
    }
}
