//! Quickstart: co-simulate one data-mining workload on an 8-core CMP and
//! print what Dragonhead measured.
//!
//! ```text
//! cargo run --release --example quickstart [workload] [cores]
//! ```
//!
//! Scale is controlled with `CMPSIM_SCALE=tiny|ci|paper` (default: tiny
//! so the example finishes in seconds).

use cmpsim_core::cosim::{CoSimConfig, CoSimulation};
use cmpsim_core::report::human_bytes;
use cmpsim_core::{Scale, WorkloadId};

fn scale_from_env() -> Scale {
    match std::env::var("CMPSIM_SCALE").as_deref() {
        Ok("paper") => Scale::paper(),
        Ok("ci") => Scale::ci(),
        _ => Scale::tiny(),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let workload: WorkloadId = args
        .next()
        .map(|s| s.parse().expect("unknown workload name"))
        .unwrap_or(WorkloadId::Fimi);
    let cores: usize = args
        .next()
        .map(|s| s.parse().expect("core count must be a number"))
        .unwrap_or(8);
    let scale = scale_from_env();

    println!("cmpsim quickstart: {workload} on {cores} cores at scale {scale}");
    let workload_instance = workload.build(scale, 2007);
    println!(
        "dataset: {} ({})",
        workload_instance.dataset().parameters,
        human_bytes(workload_instance.dataset().input_bytes)
    );

    let llc_bytes = scale.pow2_bytes(32 << 20, 64 << 10);
    let cfg = CoSimConfig::new(cores, llc_bytes).expect("valid geometry");
    let report = CoSimulation::new(cfg).run(workload_instance.as_ref());

    println!();
    println!("platform (SoftSDV side)");
    println!("  instructions retired : {}", report.run.instructions);
    println!(
        "  memory instructions  : {} ({:.1}%)",
        report.run.memory_instructions,
        report.run.memory_fraction() * 100.0
    );
    println!("  L1 misses            : {}", report.run.l1.misses);
    println!("  L2 misses            : {}", report.run.l2.misses);
    println!("  bus transactions     : {}", report.run.bus_transactions);

    println!();
    println!("dragonhead ({} shared LLC)", human_bytes(report.llc_bytes));
    println!("  LLC accesses         : {}", report.llc.accesses);
    println!("  LLC misses           : {}", report.llc.misses);
    println!("  LLC MPKI             : {:.3}", report.mpki);
    println!("  500us samples        : {}", report.samples.len());
    println!();
    println!("per-core LLC demand:");
    for (i, c) in report.per_core_llc.iter().enumerate() {
        println!(
            "  core {i:2}: {:8} accesses, {:8} misses",
            c.accesses, c.misses
        );
    }
}
