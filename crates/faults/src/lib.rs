#![warn(missing_docs)]

//! `cmpsim-faults` — deterministic fault injection for the co-simulation
//! bus channel.
//!
//! The SoftSDV → Dragonhead protocol rides on the only channel a passive
//! snooper can observe: memory transactions at reserved addresses (§3.3
//! of the paper). On a real FPGA emulator that channel is *not* perfect —
//! transactions get dropped on buffer overruns, reordered by the bus
//! arbiter, corrupted by marginal timing, and interleaved with host
//! traffic. This crate perturbs the FSB transaction stream the same way,
//! but *deterministically*: a [`FaultPlan`] seeds a PCG32 stream, so a
//! given `(plan, seed)` always produces the same fault sequence and every
//! chaos run is bit-reproducible.
//!
//! The [`FaultInjector`] trait sits between the platform and any
//! [`FsbListener`](https://docs.rs)-style consumer. The [`NoFaults`]
//! implementation is a zero-cost pass-through, so fault-free runs are
//! byte-identical to a build without this crate in the loop.
//!
//! Fault classes ([`FaultCounters`] tracks each):
//!
//! * **drop** — the transaction never reaches the snooper,
//! * **duplicate** — the snooper sees it twice,
//! * **reorder** — two adjacent transactions swap places,
//! * **corrupt_addr** — one address bit of a message-window transaction
//!   flips (yielding out-of-window kind bits or a mangled payload),
//! * **tear_pair** — one half of a split 64-bit payload (high/low
//!   message pair) is lost, leaving an orphan half,
//! * **wrong_core** — a core-id message is rewritten to another core,
//! * **cycle_jitter** — the bus timestamp is perturbed, producing
//!   non-monotone cycle stamps and sampler-interval jitter.

use cmpsim_trace::message::WireKind;
use cmpsim_trace::{Addr, FsbTransaction, Pcg32};

/// A transformer of the observed FSB transaction stream.
///
/// `inject` maps each source transaction to zero or more delivered
/// transactions; `finish` releases anything still held back (a reordering
/// injector may be holding one transaction) at end of stream.
pub trait FaultInjector {
    /// Transforms one source transaction into the transactions actually
    /// delivered to the snooper, appended to `out`.
    fn inject(&mut self, txn: &FsbTransaction, out: &mut Vec<FsbTransaction>);

    /// Releases any transactions still held back at end of stream.
    fn finish(&mut self, out: &mut Vec<FsbTransaction>) {
        let _ = out;
    }

    /// Total faults injected so far.
    fn faults_injected(&self) -> u64 {
        0
    }

    /// Per-class fault counts injected so far (all zero for injectors
    /// that do not classify their faults).
    fn fault_counters(&self) -> FaultCounters {
        FaultCounters::default()
    }
}

/// The zero-cost default: every transaction passes through untouched, so
/// a fault-free run is byte-identical to one without an injector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    #[inline]
    fn inject(&mut self, txn: &FsbTransaction, out: &mut Vec<FsbTransaction>) {
        out.push(*txn);
    }
}

/// Per-class fault counts, reported into telemetry after a chaos run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Transactions dropped.
    pub dropped: u64,
    /// Transactions delivered twice.
    pub duplicated: u64,
    /// Adjacent transaction pairs swapped.
    pub reordered: u64,
    /// Message-window addresses with a flipped bit.
    pub corrupted_addr: u64,
    /// Split high/low payload pairs with one half lost.
    pub torn_pairs: u64,
    /// Core-id messages rewritten to another core.
    pub wrong_core: u64,
    /// Cycle stamps perturbed.
    pub cycle_jitter: u64,
}

impl FaultCounters {
    /// Total faults across all classes.
    pub fn total(&self) -> u64 {
        self.dropped
            + self.duplicated
            + self.reordered
            + self.corrupted_addr
            + self.torn_pairs
            + self.wrong_core
            + self.cycle_jitter
    }

    /// `(class, count)` pairs for every fault class, in a fixed order.
    pub fn by_class(&self) -> [(&'static str, u64); 7] {
        [
            ("dropped", self.dropped),
            ("duplicated", self.duplicated),
            ("reordered", self.reordered),
            ("corrupted_addr", self.corrupted_addr),
            ("torn_pairs", self.torn_pairs),
            ("wrong_core", self.wrong_core),
            ("cycle_jitter", self.cycle_jitter),
        ]
    }
}

/// A seeded description of which faults to inject at which rates.
///
/// All rates are per-transaction probabilities in `[0, 1]`; the draws
/// come from one PCG32 stream seeded by `seed`, so the same plan always
/// perturbs the same transactions of the same stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// RNG seed for the fault stream.
    pub seed: u64,
    /// Probability a transaction is dropped.
    pub drop_rate: f64,
    /// Probability a transaction is duplicated.
    pub duplicate_rate: f64,
    /// Probability a transaction is held back and swapped with its
    /// successor.
    pub reorder_rate: f64,
    /// Probability one address bit of a *message* transaction flips.
    pub corrupt_addr_rate: f64,
    /// Probability a split high/low payload pair loses one half.
    pub tear_pair_rate: f64,
    /// Probability a core-id message is rewritten to a random core.
    pub wrong_core_rate: f64,
    /// Probability a cycle stamp is perturbed.
    pub cycle_jitter_rate: f64,
    /// Maximum magnitude of a cycle perturbation (± this many cycles).
    pub jitter_cycles: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a builder base).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            corrupt_addr_rate: 0.0,
            tear_pair_rate: 0.0,
            wrong_core_rate: 0.0,
            cycle_jitter_rate: 0.0,
            jitter_cycles: 0,
        }
    }

    /// Sets the drop rate.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_rate = p;
        self
    }

    /// Sets the duplicate rate.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate_rate = p;
        self
    }

    /// Sets the reorder rate.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder_rate = p;
        self
    }

    /// Sets the message-address corruption rate.
    pub fn with_corrupt_addr(mut self, p: f64) -> Self {
        self.corrupt_addr_rate = p;
        self
    }

    /// Sets the payload-pair tear rate.
    pub fn with_tear_pair(mut self, p: f64) -> Self {
        self.tear_pair_rate = p;
        self
    }

    /// Sets the core-id rewrite rate.
    pub fn with_wrong_core(mut self, p: f64) -> Self {
        self.wrong_core_rate = p;
        self
    }

    /// Sets the cycle-jitter rate and magnitude.
    pub fn with_cycle_jitter(mut self, p: f64, magnitude: u64) -> Self {
        self.cycle_jitter_rate = p;
        self.jitter_cycles = magnitude;
        self
    }

    /// Builds the injector for this plan.
    pub fn build(self) -> SeededFaults {
        SeededFaults::new(self)
    }
}

/// The stateful injector a [`FaultPlan`] describes.
///
/// Holds at most one transaction (for reordering) and one pending
/// tear decision (drop-the-next-low-half), so memory use is constant.
#[derive(Debug, Clone)]
pub struct SeededFaults {
    plan: FaultPlan,
    rng: Pcg32,
    /// Transaction held back by a reorder fault, delivered after its
    /// successor.
    held: Option<FsbTransaction>,
    /// Set when a tear fault chose to drop the *low* half of the pair
    /// whose high half just passed.
    tear_next_low: bool,
    counters: FaultCounters,
}

impl SeededFaults {
    /// Creates the injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        SeededFaults {
            rng: Pcg32::seed_stream(plan.seed, 0xFA07),
            plan,
            held: None,
            tear_next_low: false,
            counters: FaultCounters::default(),
        }
    }

    /// Per-class fault counts so far.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Applies single-transaction mutations (corruption, core rewrite,
    /// jitter). Returns `None` when the transaction is consumed by a
    /// drop or tear fault.
    fn mutate(&mut self, txn: &FsbTransaction) -> Option<FsbTransaction> {
        let mut txn = *txn;
        let wire = WireKind::of(&txn);

        // A pending tear consumes the low half of the pair in flight
        // (already counted when the tear was decided on the high half).
        if self.tear_next_low
            && matches!(wire, Some(WireKind::InstretLo) | Some(WireKind::CyclesLo))
        {
            self.tear_next_low = false;
            return None;
        }

        // Tearing a pair: on a high half, either drop it now (the low
        // half arrives alone and silently pairs with zero) or mark the
        // low half for dropping (leaving an orphan high half).
        if matches!(wire, Some(WireKind::InstretHi) | Some(WireKind::CyclesHi))
            && self.rng.chance(self.plan.tear_pair_rate)
        {
            self.counters.torn_pairs += 1;
            if self.rng.chance(0.5) {
                return None; // drop the high half
            }
            self.tear_next_low = true; // drop the coming low half
        }

        if self.rng.chance(self.plan.drop_rate) {
            self.counters.dropped += 1;
            return None;
        }

        if wire == Some(WireKind::CoreId) && self.rng.chance(self.plan.wrong_core_rate) {
            let bogus = self.rng.below(16) as u32;
            txn =
                cmpsim_trace::MessageCodec::encode(cmpsim_trace::Message::CoreId(bogus), txn.cycle)
                    [0];
            self.counters.wrong_core += 1;
        }

        if txn.is_message() && self.rng.chance(self.plan.corrupt_addr_rate) {
            // Flip one bit among the kind/payload address bits (6..43),
            // keeping the address inside the reserved window so the
            // snooper still classifies it as a message.
            let bit = self.rng.range(6, 43);
            txn = FsbTransaction::new(txn.cycle, txn.kind, Addr::new(txn.addr.raw() ^ (1 << bit)));
            self.counters.corrupted_addr += 1;
        }

        if self.plan.jitter_cycles > 0 && self.rng.chance(self.plan.cycle_jitter_rate) {
            let magnitude = self.rng.below(self.plan.jitter_cycles + 1);
            let cycle = if self.rng.chance(0.5) {
                txn.cycle.saturating_sub(magnitude)
            } else {
                txn.cycle.saturating_add(magnitude)
            };
            txn = FsbTransaction::new(cycle, txn.kind, txn.addr);
            self.counters.cycle_jitter += 1;
        }

        Some(txn)
    }
}

impl FaultInjector for SeededFaults {
    fn inject(&mut self, txn: &FsbTransaction, out: &mut Vec<FsbTransaction>) {
        let Some(txn) = self.mutate(txn) else {
            return;
        };

        if self.rng.chance(self.plan.duplicate_rate) {
            self.counters.duplicated += 1;
            out.push(txn);
        }

        match self.held.take() {
            // A held transaction is released *after* the current one:
            // the adjacent pair is delivered swapped.
            Some(prev) => {
                out.push(txn);
                out.push(prev);
            }
            None => {
                if self.rng.chance(self.plan.reorder_rate) {
                    self.counters.reordered += 1;
                    self.held = Some(txn);
                } else {
                    out.push(txn);
                }
            }
        }
    }

    fn finish(&mut self, out: &mut Vec<FsbTransaction>) {
        if let Some(t) = self.held.take() {
            out.push(t);
        }
    }

    fn faults_injected(&self) -> u64 {
        self.counters.total()
    }

    fn fault_counters(&self) -> FaultCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::{FsbKind, Message, MessageCodec};

    fn data(cycle: u64, addr: u64) -> FsbTransaction {
        FsbTransaction::new(cycle, FsbKind::ReadLine, Addr::new(addr))
    }

    fn drive(inj: &mut dyn FaultInjector, txns: &[FsbTransaction]) -> Vec<FsbTransaction> {
        let mut out = Vec::new();
        for t in txns {
            inj.inject(t, &mut out);
        }
        inj.finish(&mut out);
        out
    }

    #[test]
    fn no_faults_is_identity() {
        let txns: Vec<_> = (0..32).map(|i| data(i, i * 64)).collect();
        let mut inj = NoFaults;
        assert_eq!(drive(&mut inj, &txns), txns);
        assert_eq!(inj.faults_injected(), 0);
    }

    #[test]
    fn empty_plan_is_identity() {
        let txns: Vec<_> = (0..64).map(|i| data(i, i * 64)).collect();
        let mut inj = FaultPlan::none(1).build();
        assert_eq!(drive(&mut inj, &txns), txns);
        assert_eq!(inj.counters().total(), 0);
    }

    #[test]
    fn same_seed_same_faults() {
        let txns: Vec<_> = (0..512).map(|i| data(i, i * 64)).collect();
        let plan = FaultPlan::none(42)
            .with_drop(0.1)
            .with_duplicate(0.1)
            .with_reorder(0.1)
            .with_cycle_jitter(0.1, 100);
        let a = drive(&mut plan.build(), &txns);
        let b = drive(&mut plan.build(), &txns);
        assert_eq!(a, b);
        let c = drive(&mut FaultPlan { seed: 43, ..plan }.build(), &txns);
        assert_ne!(a, c, "different seed must perturb differently");
    }

    #[test]
    fn drop_rate_shrinks_stream() {
        let txns: Vec<_> = (0..1000).map(|i| data(i, i * 64)).collect();
        let mut inj = FaultPlan::none(7).with_drop(0.25).build();
        let out = drive(&mut inj, &txns);
        assert!(out.len() < 900, "dropped only {} of 1000", 1000 - out.len());
        assert_eq!(out.len() as u64, 1000 - inj.counters().dropped);
    }

    #[test]
    fn duplicates_grow_stream() {
        let txns: Vec<_> = (0..1000).map(|i| data(i, i * 64)).collect();
        let mut inj = FaultPlan::none(7).with_duplicate(0.25).build();
        let out = drive(&mut inj, &txns);
        assert_eq!(out.len() as u64, 1000 + inj.counters().duplicated);
        assert!(inj.counters().duplicated > 100);
    }

    #[test]
    fn reorder_swaps_adjacent_pairs() {
        let txns: Vec<_> = (0..1000).map(|i| data(i, i * 64)).collect();
        let mut inj = FaultPlan::none(9).with_reorder(0.2).build();
        let out = drive(&mut inj, &txns);
        // Nothing lost, nothing added — only order perturbed.
        assert_eq!(out.len(), txns.len());
        let mut sorted = out.clone();
        sorted.sort_by_key(|t| t.cycle);
        assert_eq!(sorted, txns);
        assert!(inj.counters().reordered > 50);
        assert_ne!(out, txns);
    }

    #[test]
    fn corruption_targets_messages_only() {
        let mut txns = Vec::new();
        for i in 0..200u64 {
            txns.push(data(i, i * 64));
            txns.extend(MessageCodec::encode(Message::InstructionsRetired(i), i));
        }
        let mut inj = FaultPlan::none(3).with_corrupt_addr(0.5).build();
        let out = drive(&mut inj, &txns);
        assert!(inj.counters().corrupted_addr > 20);
        // Every corrupted address still classifies as a message; data
        // transactions pass untouched.
        let data_in: Vec<_> = txns.iter().filter(|t| !t.is_message()).collect();
        let data_out: Vec<_> = out.iter().filter(|t| !t.is_message()).collect();
        assert_eq!(data_in, data_out);
    }

    #[test]
    fn tearing_only_affects_split_pairs() {
        // Large counter values force two-transaction encodings.
        let mut txns = Vec::new();
        for i in 0..200u64 {
            txns.extend(MessageCodec::encode(
                Message::CyclesCompleted((1 << 40) + i),
                i,
            ));
        }
        let mut inj = FaultPlan::none(5).with_tear_pair(0.5).build();
        let out = drive(&mut inj, &txns);
        assert!(inj.counters().torn_pairs > 20);
        assert_eq!(
            out.len() as u64,
            txns.len() as u64 - inj.counters().torn_pairs
        );
    }

    #[test]
    fn wrong_core_rewrites_core_ids() {
        let mut txns = Vec::new();
        for i in 0..200u64 {
            txns.extend(MessageCodec::encode(Message::CoreId(7), i));
        }
        let mut inj = FaultPlan::none(11).with_wrong_core(0.5).build();
        let out = drive(&mut inj, &txns);
        assert!(inj.counters().wrong_core > 20);
        assert_eq!(out.len(), txns.len());
        // Rewritten messages still decode as CoreId — of some other core.
        let mut codec = MessageCodec::new();
        let mut others = 0;
        for t in &out {
            if let Ok(Some(Message::CoreId(c))) = codec.decode(t) {
                if c != 7 {
                    others += 1;
                }
            }
        }
        assert!(others > 0, "some core ids must differ");
    }

    #[test]
    fn jitter_perturbs_cycles_within_bound() {
        let txns: Vec<_> = (0..1000).map(|i| data(i + 1000, i * 64)).collect();
        let mut inj = FaultPlan::none(13).with_cycle_jitter(0.3, 50).build();
        let out = drive(&mut inj, &txns);
        assert!(inj.counters().cycle_jitter > 100);
        for (a, b) in txns.iter().zip(&out) {
            assert!(
                a.cycle.abs_diff(b.cycle) <= 50,
                "{} vs {}",
                a.cycle,
                b.cycle
            );
            assert_eq!(a.addr, b.addr);
        }
    }

    #[test]
    fn counters_by_class_cover_total() {
        let txns: Vec<_> = (0..500).map(|i| data(i, i * 64)).collect();
        let mut inj = FaultPlan::none(17)
            .with_drop(0.05)
            .with_duplicate(0.05)
            .with_reorder(0.05)
            .with_cycle_jitter(0.05, 10)
            .build();
        let _ = drive(&mut inj, &txns);
        let c = *inj.counters();
        assert_eq!(c.by_class().iter().map(|(_, n)| n).sum::<u64>(), c.total());
        assert_eq!(inj.faults_injected(), c.total());
    }
}
