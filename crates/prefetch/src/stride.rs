//! Stride-detecting and sequential prefetchers.

/// A hardware prefetcher observing one cache level's access stream.
///
/// Implementations are deterministic state machines; [`observe`] appends
/// the lines to prefetch to `out` (a caller-owned buffer, reused across
/// calls to keep the hot path allocation-free).
///
/// [`observe`]: Prefetcher::observe
pub trait Prefetcher {
    /// Observes a demand access to `line` (`hit` = whether it hit in the
    /// cache this prefetcher front-runs) and appends prefetch candidate
    /// lines to `out`.
    fn observe(&mut self, line: u64, hit: bool, out: &mut Vec<u64>);

    /// Short display name for reports ("off", "next-line", "stride").
    fn name(&self) -> &'static str;
}

/// The prefetch-off baseline: never proposes anything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullPrefetcher;

impl Prefetcher for NullPrefetcher {
    #[inline]
    fn observe(&mut self, _line: u64, _hit: bool, _out: &mut Vec<u64>) {}

    fn name(&self) -> &'static str {
        "off"
    }
}

/// Sequential next-line prefetcher: on every miss to line L, prefetch
/// L+1..=L+degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextLinePrefetcher {
    degree: u32,
}

impl NextLinePrefetcher {
    /// Creates a next-line prefetcher issuing `degree` lines per miss.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: u32) -> Self {
        assert!(degree > 0, "degree must be positive");
        NextLinePrefetcher { degree }
    }
}

impl Prefetcher for NextLinePrefetcher {
    #[inline]
    fn observe(&mut self, line: u64, hit: bool, out: &mut Vec<u64>) {
        if !hit {
            for d in 1..=u64::from(self.degree) {
                out.push(line + d);
            }
        }
    }

    fn name(&self) -> &'static str {
        "next-line"
    }
}

/// Configuration of the [`StridePrefetcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideConfig {
    /// Number of stream-tracking entries (direct mapped by region).
    pub table_entries: usize,
    /// Lines per tracked region; streams are detected within a region
    /// (default 64 lines = 4 KiB pages with 64 B lines).
    pub region_lines: u64,
    /// Prefetches issued per trigger.
    pub degree: u32,
    /// How far ahead of the demand stream to run (in strides).
    pub distance: u32,
    /// Confidence (consecutive same-stride deltas) required to train.
    pub train_threshold: u8,
}

impl Default for StrideConfig {
    fn default() -> Self {
        StrideConfig {
            table_entries: 256,
            region_lines: 64,
            degree: 2,
            distance: 4,
            train_threshold: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StreamEntry {
    /// Region tag + 1; 0 = invalid.
    tag_plus_one: u64,
    last_line: u64,
    stride: i64,
    confidence: u8,
}

/// Per-region stride detector with confidence training — the model of the
/// Xeon's hardware prefetcher used in the paper's Figure 8 study.
///
/// The detector tracks the last accessed line per region. When the delta
/// between consecutive accesses repeats [`StrideConfig::train_threshold`]
/// times, the stream is trained and every subsequent in-stride access
/// issues `degree` prefetches starting `distance` strides ahead. Both
/// forward and backward strides train (the paper notes the workloads
/// stream "in forward and backward directions").
///
/// # Example
///
/// ```
/// use cmpsim_prefetch::{Prefetcher, StrideConfig, StridePrefetcher};
/// let mut pf = StridePrefetcher::new(StrideConfig::default());
/// let mut out = Vec::new();
/// for i in 0..8 {
///     pf.observe(i, false, &mut out); // sequential stream
/// }
/// assert!(!out.is_empty(), "trained stream must prefetch");
/// // Every prefetch runs ahead of the access that triggered it.
/// assert!(out.iter().max() > Some(&7), "prefetches run ahead of the stream");
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    cfg: StrideConfig,
    table: Vec<StreamEntry>,
    issued: u64,
    triggers: u64,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `table_entries`, `region_lines`, or `degree` is zero, or
    /// if `region_lines` is not a power of two.
    pub fn new(cfg: StrideConfig) -> Self {
        assert!(cfg.table_entries > 0, "table must have entries");
        assert!(cfg.degree > 0, "degree must be positive");
        assert!(
            cfg.region_lines.is_power_of_two(),
            "region size must be a power of two"
        );
        StridePrefetcher {
            cfg,
            table: vec![StreamEntry::default(); cfg.table_entries],
            issued: 0,
            triggers: 0,
        }
    }

    /// Total prefetch lines proposed so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Number of trained-stream triggers so far.
    pub fn triggers(&self) -> u64 {
        self.triggers
    }

    fn region_of(&self, line: u64) -> u64 {
        line / self.cfg.region_lines
    }
}

impl Prefetcher for StridePrefetcher {
    fn observe(&mut self, line: u64, _hit: bool, out: &mut Vec<u64>) {
        let region = self.region_of(line);
        let idx = (region as usize) % self.cfg.table_entries;
        let e = &mut self.table[idx];

        if e.tag_plus_one != region + 1 {
            // New (or conflicting) stream: reset entry.
            *e = StreamEntry {
                tag_plus_one: region + 1,
                last_line: line,
                stride: 0,
                confidence: 0,
            };
            return;
        }

        let delta = line as i64 - e.last_line as i64;
        e.last_line = line;
        if delta == 0 {
            return; // same line again: no training signal
        }
        if delta == e.stride {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = delta;
            e.confidence = 1;
            return;
        }

        if e.confidence >= self.cfg.train_threshold {
            self.triggers += 1;
            let start = u64::from(self.cfg.distance);
            for k in 0..u64::from(self.cfg.degree) {
                let steps = (start + k) as i64;
                let target = line as i64 + e.stride * steps;
                if target >= 0 {
                    out.push(target as u64);
                    self.issued += 1;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "stride"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<P: Prefetcher>(pf: &mut P, lines: impl IntoIterator<Item = u64>) -> Vec<u64> {
        let mut out = Vec::new();
        for l in lines {
            pf.observe(l, false, &mut out);
        }
        out
    }

    #[test]
    fn null_prefetcher_is_silent() {
        let mut pf = NullPrefetcher;
        assert!(drive(&mut pf, 0..100).is_empty());
        assert_eq!(pf.name(), "off");
    }

    #[test]
    fn next_line_prefetches_on_miss_only() {
        let mut pf = NextLinePrefetcher::new(2);
        let mut out = Vec::new();
        pf.observe(10, false, &mut out);
        assert_eq!(out, vec![11, 12]);
        out.clear();
        pf.observe(11, true, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn stride_trains_on_unit_stride() {
        let mut pf = StridePrefetcher::new(StrideConfig::default());
        let out = drive(&mut pf, 0..10);
        assert!(pf.triggers() > 0);
        // All prefetches run ahead of the demand stream.
        assert!(out.iter().all(|&l| l >= 4));
    }

    #[test]
    fn stride_trains_on_large_stride() {
        let cfg = StrideConfig {
            region_lines: 1 << 20, // keep the whole walk in one region
            ..StrideConfig::default()
        };
        let mut pf = StridePrefetcher::new(cfg);
        let out = drive(&mut pf, (0..10).map(|i| i * 7));
        assert!(!out.is_empty());
        // Prefetches are multiples of the stride.
        assert!(out.iter().all(|&l| l % 7 == 0), "{out:?}");
    }

    #[test]
    fn stride_trains_backward() {
        let cfg = StrideConfig {
            region_lines: 1 << 20,
            ..StrideConfig::default()
        };
        let mut pf = StridePrefetcher::new(cfg);
        let out = drive(&mut pf, (0..20).map(|i| 1000 - i));
        assert!(!out.is_empty(), "backward stream must train");
        assert!(out.iter().all(|&l| l < 1000));
    }

    #[test]
    fn random_stream_stays_untrained() {
        let mut pf = StridePrefetcher::new(StrideConfig::default());
        let mut rng = cmpsim_trace::Pcg32::seed(3);
        let lines: Vec<u64> = (0..200).map(|_| rng.below(64)).collect();
        let out = drive(&mut pf, lines);
        // A few accidental repeats can trigger, but coverage must be tiny.
        assert!(
            out.len() < 20,
            "random stream should barely prefetch: {}",
            out.len()
        );
    }

    #[test]
    fn stream_in_new_region_retrains() {
        let cfg = StrideConfig::default(); // 64-line regions
        let mut pf = StridePrefetcher::new(cfg);
        let out_a = drive(&mut pf, 0..8);
        // A different region mapping to a different entry trains fresh.
        let base = 64 * 199; // region 199
        let out_b = drive(&mut pf, base..base + 8);
        assert!(!out_a.is_empty());
        assert!(!out_b.is_empty());
        assert!(out_b.iter().all(|&l| l >= base));
    }

    #[test]
    fn conflicting_regions_reset_entry() {
        let cfg = StrideConfig {
            table_entries: 1, // force conflicts
            ..StrideConfig::default()
        };
        let mut pf = StridePrefetcher::new(cfg);
        let mut out = Vec::new();
        pf.observe(0, false, &mut out);
        pf.observe(1, false, &mut out);
        pf.observe(64 * 5, false, &mut out); // different region: resets
        pf.observe(2, false, &mut out); // back: resets again, no trigger
        assert_eq!(pf.triggers(), 0);
    }

    #[test]
    fn never_proposes_negative_lines() {
        let cfg = StrideConfig {
            region_lines: 1 << 20,
            ..StrideConfig::default()
        };
        let mut pf = StridePrefetcher::new(cfg);
        // Backward stream starting near zero.
        let out = drive(&mut pf, (0..10).map(|i| 9 - i));
        assert!(out.iter().all(|&l| l < 1 << 21), "{out:?}");
    }

    #[test]
    fn degree_and_distance_respected() {
        let cfg = StrideConfig {
            region_lines: 1 << 20,
            degree: 3,
            distance: 5,
            ..StrideConfig::default()
        };
        let mut pf = StridePrefetcher::new(cfg);
        let mut out = Vec::new();
        for l in 0..4 {
            out.clear();
            pf.observe(l, false, &mut out);
        }
        // Last observe at line 3 with unit stride: prefetch 8, 9, 10.
        assert_eq!(out, vec![8, 9, 10]);
    }

    #[test]
    fn issued_counter_matches_output() {
        let mut pf = StridePrefetcher::new(StrideConfig::default());
        let out = drive(&mut pf, 0..32);
        assert_eq!(pf.issued(), out.len() as u64);
    }
}
