#![warn(missing_docs)]

//! Hardware prefetcher models for `cmpsim`.
//!
//! §4.4 of the paper measures the benefit of the *stride-based hardware
//! prefetcher* of an Intel Xeon (up to 33 % speedup): data-mining workloads
//! stream over large arrays with constant strides, in forward and backward
//! directions, so a stride detector can hide most of their memory latency —
//! until bandwidth runs out, which is exactly what happens to the parallel
//! versions of SNP and MDS.
//!
//! The crate provides a [`Prefetcher`] trait with three implementations:
//!
//! * [`NullPrefetcher`] — the prefetch-off baseline,
//! * [`NextLinePrefetcher`] — degree-N sequential prefetch,
//! * [`StridePrefetcher`] — per-region stride detection with confidence
//!   counters, forward and backward; the model of the Xeon prefetcher.
//!
//! Prefetchers observe the *access stream at one cache level* (line
//! numbers) and propose lines to prefetch; the caller decides what to do
//! with the proposals (fill a cache, count traffic, apply a bandwidth
//! budget).

pub mod stride;

pub use stride::{NextLinePrefetcher, NullPrefetcher, Prefetcher, StrideConfig, StridePrefetcher};
