//! Grid execution: fanning a (workload × configuration) experiment grid
//! out over the [`cmpsim_runner`] worker pool.
//!
//! Every figure/table binary walks the same shape of grid — a list of
//! workloads, each run under one fixed [`CoSimConfig`](crate::CoSimConfig)
//! family (CMP class, cache-size sweep, line-size sweep, ...). A
//! [`GridSpec`] captures that identity; [`run_grid`] turns each workload
//! cell into an [`ExperimentJob`] whose cache key fingerprints
//! `{experiment, crate version, scale, seed, workload, config params}`,
//! so a warm re-run of an unchanged grid executes nothing and a config
//! or version change invalidates exactly the affected cells.

use cmpsim_runner::{
    ExperimentJob, JobError, JobKey, RunReport, Runner, RunnerConfig, CHILD_ENTRY,
};
use cmpsim_telemetry::JsonValue;
use cmpsim_workloads::{Scale, WorkloadId};
use std::fmt::Display;
use std::fmt::Write as _;

/// The identity of one experiment grid: which experiment, at which
/// scale/seed, over which workloads, under which configuration.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Experiment name (the producing binary, e.g. `fig4_scmp`).
    pub experiment: String,
    /// Global scale knob.
    pub scale: Scale,
    /// Dataset seed.
    pub seed: u64,
    /// One grid cell per workload, in output order.
    pub workloads: Vec<WorkloadId>,
    /// Configuration identity shared by every cell (cores, cache
    /// sizes, line sizes, ...) — part of each cell's cache key.
    pub params: Vec<(String, String)>,
}

impl GridSpec {
    /// A grid for `experiment` over `workloads` at `scale`/`seed`.
    pub fn new(experiment: &str, scale: Scale, seed: u64, workloads: Vec<WorkloadId>) -> Self {
        GridSpec {
            experiment: experiment.to_owned(),
            scale,
            seed,
            workloads,
            params: Vec::new(),
        }
    }

    /// Appends one configuration-identity parameter.
    pub fn param(mut self, key: &str, value: impl Display) -> Self {
        self.params.push((key.to_owned(), value.to_string()));
        self
    }

    /// The content-address of one workload cell. Includes the crate
    /// version so a simulator change invalidates stale results.
    pub fn job_key(&self, workload: WorkloadId) -> JobKey {
        let mut key = JobKey::new(&self.experiment)
            .field("version", env!("CARGO_PKG_VERSION"))
            .field("scale", self.scale)
            .field("seed", self.seed)
            .field("workload", workload);
        for (k, v) in &self.params {
            key = key.field(k, v);
        }
        key
    }
}

/// Runs `f` for every workload cell of the grid on the worker pool,
/// returning per-cell outcomes in workload order.
///
/// `f` must be a pure function of the cell (plus the seeded
/// configuration it captures): it is what the cache key stands for, and
/// it may be skipped entirely on a warm cache. The closure is cloned
/// per cell, so capture cheap `Copy`/`Clone` study configs, not big
/// state.
pub fn run_grid<F>(spec: &GridSpec, cfg: &RunnerConfig, f: F) -> RunReport
where
    F: Fn(WorkloadId) -> JsonValue + Send + Sync + Clone + 'static,
{
    run_grid_supervised(spec, cfg, None, f)
}

/// Like [`run_grid`], but each cell also carries the argv a re-exec'd
/// child uses to recompute it under
/// [`IsolateMode::Process`](cmpsim_runner::IsolateMode):
/// `__run-job <WORKLOAD> <base args...>`. With `child_base == None` (or
/// an inline runner config) this is exactly [`run_grid`].
pub fn run_grid_supervised<F>(
    spec: &GridSpec,
    cfg: &RunnerConfig,
    child_base: Option<&[String]>,
    f: F,
) -> RunReport
where
    F: Fn(WorkloadId) -> JsonValue + Send + Sync + Clone + 'static,
{
    let jobs = spec
        .workloads
        .iter()
        .map(|&w| {
            let f = f.clone();
            let job = ExperimentJob::new(w.to_string(), spec.job_key(w), move || f(w));
            attach_child_args(job, w, child_base)
        })
        .collect();
    Runner::new(cfg.clone()).run(jobs)
}

/// Like [`run_grid`], but each cell may fail with a structured
/// [`CoSimError`](crate::CoSimError) (via its `Into<JobError>`
/// conversion): the pool records *which invariant broke* for that cell
/// as a [`JobOutcome::Errored`](cmpsim_runner::JobOutcome) — without
/// retrying the deterministic failure or disturbing its neighbours.
pub fn try_run_grid<F>(spec: &GridSpec, cfg: &RunnerConfig, f: F) -> RunReport
where
    F: Fn(WorkloadId) -> Result<JsonValue, JobError> + Send + Sync + Clone + 'static,
{
    try_run_grid_supervised(spec, cfg, None, f)
}

/// [`try_run_grid`] with per-cell child argv for process isolation (see
/// [`run_grid_supervised`]).
pub fn try_run_grid_supervised<F>(
    spec: &GridSpec,
    cfg: &RunnerConfig,
    child_base: Option<&[String]>,
    f: F,
) -> RunReport
where
    F: Fn(WorkloadId) -> Result<JsonValue, JobError> + Send + Sync + Clone + 'static,
{
    let jobs = spec
        .workloads
        .iter()
        .map(|&w| {
            let f = f.clone();
            let job = ExperimentJob::try_new(w.to_string(), spec.job_key(w), move || f(w));
            attach_child_args(job, w, child_base)
        })
        .collect();
    Runner::new(cfg.clone()).run(jobs)
}

fn attach_child_args(
    job: ExperimentJob,
    w: WorkloadId,
    child_base: Option<&[String]>,
) -> ExperimentJob {
    match child_base {
        None => job,
        Some(base) => {
            let mut args = vec![CHILD_ENTRY.to_owned(), w.to_string()];
            args.extend(base.iter().cloned());
            job.with_child_args(args)
        }
    }
}

/// A fresh journal run id for `experiment`: the experiment name plus
/// wall-clock seconds, the process id, and a process-wide counter —
/// unique even for simultaneous submissions (concurrent service
/// clients, parallel tests), stable for the lifetime of one run, and
/// legible in a journal directory listing
/// (`fig4_scmp-1722950000-4242-0`). Delegates to
/// [`cmpsim_runner::fresh_run_id`], which the grid service coordinator
/// also uses, so batch and service runs mint ids from one sequence.
pub fn fresh_run_id(experiment: &str) -> String {
    cmpsim_runner::fresh_run_id(experiment)
}

/// Renders a list as a compact comma-joined string — the conventional
/// encoding for sweep lists (cache sizes, line sizes, core counts)
/// inside [`GridSpec::param`] values.
pub fn join_list<T: Display>(items: &[T]) -> String {
    let mut out = String::new();
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{item}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_keys_separate_cells_and_configs() {
        let spec = GridSpec::new(
            "fig4_scmp",
            Scale::tiny(),
            7,
            vec![WorkloadId::Fimi, WorkloadId::Mds],
        )
        .param("cmp", "SCMP")
        .param("sizes", join_list(&[16384u64, 65536]));
        let a = spec.job_key(WorkloadId::Fimi);
        let b = spec.job_key(WorkloadId::Mds);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Same cell under a different config is a different address.
        let other = GridSpec {
            params: vec![("cmp".to_owned(), "MCMP".to_owned())],
            ..spec.clone()
        };
        assert_ne!(
            a.fingerprint(),
            other.job_key(WorkloadId::Fimi).fingerprint()
        );
        assert!(a.canonical().contains("workload=FIMI"));
        assert!(a.canonical().contains("sizes=16384,65536"));
    }

    #[test]
    fn run_grid_preserves_workload_order() {
        let spec = GridSpec::new(
            "order",
            Scale::tiny(),
            1,
            vec![WorkloadId::Shot, WorkloadId::Fimi, WorkloadId::Plsa],
        );
        let cfg = RunnerConfig {
            workers: 3,
            ..RunnerConfig::default()
        };
        let report = run_grid(&spec, &cfg, |w| JsonValue::from(w.to_string()));
        let names: Vec<&str> = report.payloads().filter_map(JsonValue::as_str).collect();
        assert_eq!(names, ["SHOT", "FIMI", "PLSA"]);
        assert_eq!(report.ok_count(), 3);
    }

    #[test]
    fn try_run_grid_reports_which_invariant_broke_per_cell() {
        use crate::error::CoSimError;
        let spec = GridSpec::new(
            "fallible",
            Scale::tiny(),
            1,
            vec![WorkloadId::Shot, WorkloadId::Fimi, WorkloadId::Plsa],
        );
        let cfg = RunnerConfig {
            retries: 2,
            ..RunnerConfig::default()
        };
        let report = try_run_grid(&spec, &cfg, |w| {
            if w == WorkloadId::Fimi {
                Err(CoSimError::invariant("llc_conservation", "hits + misses != accesses").into())
            } else {
                Ok(JsonValue::from(w.to_string()))
            }
        });
        assert_eq!(report.ok_count(), 2);
        assert_eq!(report.failed_count(), 1);
        // Deterministic error: not retried, and the category survives.
        assert_eq!(report.jobs[1].attempts, 1);
        assert!(matches!(
            &report.jobs[1].outcome,
            cmpsim_runner::JobOutcome::Errored { category, error }
                if category == "invariant" && error.contains("llc_conservation")
        ));
        // The healthy neighbours kept their order.
        let names: Vec<&str> = report.payloads().filter_map(JsonValue::as_str).collect();
        assert_eq!(names, ["SHOT", "PLSA"]);
    }

    #[test]
    fn join_list_renders_compactly() {
        assert_eq!(join_list::<u64>(&[]), "");
        assert_eq!(join_list(&[64u64]), "64");
        assert_eq!(join_list(&[64u64, 128, 256]), "64,128,256");
    }
}
