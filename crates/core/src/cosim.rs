//! The SoftSDV ↔ Dragonhead binding.

use crate::capture::{CaptureBroker, CapturedStream};
use crate::error::CoSimError;
use crate::validate::Validator;
use cmpsim_cache::{CacheConfig, CacheStats, ConfigError, HierarchyConfig};
use cmpsim_dragonhead::{Dragonhead, DragonheadConfig, Sample};
use cmpsim_faults::FaultInjector;
use cmpsim_memsys::RunCounts;
use cmpsim_prefetch::StrideConfig;
use cmpsim_runner::JobKey;
use cmpsim_softsdv::{FsbListener, HostNoiseConfig, PlatformConfig, RunSummary, VirtualPlatform};
use cmpsim_telemetry::trace as ftrace;
use cmpsim_telemetry::{Labels, MetricRegistry, SpanProfiler};
use cmpsim_trace::file::TraceWriter;
use cmpsim_trace::FsbTransaction;
use cmpsim_workloads::{Scale, Workload, WorkloadId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Process-wide sweep-replay shard count, default 1 (serial).
///
/// Sweep boards are built inside the experiment types, far from any
/// CLI, and sharding never changes results (byte-identical at any
/// count — `tests/replay_equivalence.rs` pins it), so the shard count
/// is ambient tuning state rather than threaded through every
/// experiment constructor. Binaries set it once from `--replay-shards`.
static REPLAY_SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide shard count used by
/// [`CoSimulation::replay_sweep`]. Zero and one both mean serial.
pub fn set_replay_shards(shards: usize) {
    REPLAY_SHARDS.store(shards.max(1), Ordering::Relaxed);
}

/// The process-wide sweep-replay shard count (see
/// [`set_replay_shards`]).
pub fn replay_shards() -> usize {
    REPLAY_SHARDS.load(Ordering::Relaxed).max(1)
}

/// Full co-simulation configuration: the virtual platform plus the
/// emulated LLC.
#[derive(Debug, Clone, Copy)]
pub struct CoSimConfig {
    /// Virtual cores exposed by the platform (= workload threads).
    pub cores: usize,
    /// Per-core private stack in front of the bus.
    pub hierarchy: HierarchyConfig,
    /// The LLC Dragonhead emulates.
    pub llc: CacheConfig,
    /// Cache-controller banks.
    pub banks: u32,
    /// Host sampling period (bus cycles).
    pub sample_period: u64,
    /// Optional stride prefetcher in front of the LLC.
    pub prefetch: Option<StrideConfig>,
    /// Optional host/OS interference traffic (excluded by the AF).
    pub host_noise: Option<HostNoiseConfig>,
}

impl CoSimConfig {
    /// A default setup: `cores` virtual cores with the standard CMP
    /// private stack and an LRU 16-way LLC of `llc_bytes` with 64-byte
    /// lines.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `llc_bytes` is not a valid cache
    /// geometry.
    pub fn new(cores: usize, llc_bytes: u64) -> Result<Self, ConfigError> {
        Ok(CoSimConfig {
            cores,
            hierarchy: HierarchyConfig::cmp_core(),
            llc: CacheConfig::lru(llc_bytes, 64, 16)?,
            banks: 4,
            sample_period: cmpsim_dragonhead::sampler::DEFAULT_PERIOD_CYCLES,
            prefetch: None,
            host_noise: None,
        })
    }

    /// Like [`CoSimConfig::new`], but with the private hierarchy scaled
    /// by the same [`Scale`](cmpsim_workloads::Scale) knob as the
    /// workloads and the LLC sweep — the configuration every experiment
    /// uses, so that all three layers shrink together and the paper's
    /// shapes survive scaling.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `llc_bytes` is not a valid geometry.
    pub fn scaled(
        cores: usize,
        llc_bytes: u64,
        scale: cmpsim_workloads::Scale,
    ) -> Result<Self, ConfigError> {
        let mut cfg = Self::new(cores, llc_bytes)?;
        cfg.hierarchy = HierarchyConfig::cmp_core_scaled(scale);
        Ok(cfg)
    }

    /// Replaces the emulated LLC configuration.
    pub fn with_llc(mut self, llc: CacheConfig) -> Self {
        self.llc = llc;
        self
    }

    /// Attaches a stride prefetcher.
    pub fn with_prefetch(mut self, pf: StrideConfig) -> Self {
        self.prefetch = Some(pf);
        self
    }

    fn platform_config(&self) -> PlatformConfig {
        let mut p = PlatformConfig::new(self.cores).with_hierarchy(self.hierarchy);
        if let Some(noise) = self.host_noise {
            p = p.with_host_noise(noise);
        }
        p
    }

    fn dragonhead_config(&self) -> DragonheadConfig {
        let mut d = DragonheadConfig::new(self.llc);
        d.banks = self.banks;
        d.sample_period = self.sample_period;
        d.prefetch = self.prefetch;
        d
    }
}

/// Everything one co-simulated run produced.
#[derive(Debug, Clone)]
pub struct CoSimReport {
    /// Platform-side summary (instructions, private-cache stats).
    pub run: RunSummary,
    /// Emulated-LLC demand counters.
    pub llc: CacheStats,
    /// LLC misses per 1000 instructions — the paper's Figures 4–6 metric.
    pub mpki: f64,
    /// Per-core LLC counters (from core-id attribution).
    pub per_core_llc: Vec<cmpsim_dragonhead::emulator::CoreCounters>,
    /// 500 µs counter samples.
    pub samples: Vec<Sample>,
    /// Prefetch fills that reached memory.
    pub prefetch_fills: u64,
    /// Writebacks that missed the LLC and went to memory.
    pub writebacks_to_memory: u64,
    /// The LLC size this report is for.
    pub llc_bytes: u64,
    /// The LLC line size this report is for.
    pub llc_line_bytes: u64,
    /// Distinct lines resident in the LLC at end of run (for the
    /// occupancy invariant: never more than capacity).
    pub llc_resident_lines: u64,
    /// Every counter from both sides of the bus as labeled series: the
    /// platform's retirement/private-cache counters and the board's
    /// per-bank, per-core LLC counters.
    pub metrics: MetricRegistry,
}

impl CoSimReport {
    /// Converts the report into timing-model inputs.
    ///
    /// Memory traffic = LLC demand misses (fills) plus dirty-eviction
    /// writebacks plus prefetch fills.
    pub fn run_counts(&self) -> RunCounts {
        RunCounts {
            instructions: self.run.instructions,
            l2_hits: self.run.l2.hits,
            llc_hits: self.llc.hits,
            mem_fills: self.llc.misses,
            prefetch_fills: self.prefetch_fills,
            mem_writebacks: self.llc.writebacks + self.writebacks_to_memory,
            threads: self.run.per_core.len() as u32,
        }
    }
}

/// A configured co-simulation, ready to run workloads.
#[derive(Debug, Clone, Copy)]
pub struct CoSimulation {
    cfg: CoSimConfig,
}

/// Adapter: a Dragonhead board listening on the platform's FSB.
struct Snoop<'a>(&'a mut Dragonhead);

impl FsbListener for Snoop<'_> {
    #[inline]
    fn transaction(&mut self, txn: &FsbTransaction) {
        self.0.observe(txn);
    }
}

/// Several boards on the same bus — the fast path for cache-size sweeps:
/// one platform run feeds every LLC configuration under study, which is
/// sound because the emulator is *passive* (it never affects the
/// workload or the private caches).
struct MultiSnoop<'a>(&'a mut [Dragonhead]);

impl FsbListener for MultiSnoop<'_> {
    #[inline]
    fn transaction(&mut self, txn: &FsbTransaction) {
        for dh in self.0.iter_mut() {
            dh.observe(txn);
        }
    }
}

/// The tape deck: a listener that records the exact FSB stream in the
/// compact trace encoding instead of (or before) emulating anything.
struct Recorder {
    writer: TraceWriter<Vec<u8>>,
    /// Transactions whose address was not 64-byte aligned. The trace
    /// codec works at 64-byte line granularity, so an unaligned address
    /// would be silently truncated — a lossy capture. Every current
    /// platform source is aligned (private lines are 64 B, host noise
    /// is masked, message addresses are shift-aligned); this counter
    /// turns a future regression into a loud capture-time failure
    /// instead of a subtly wrong replay.
    unaligned: u64,
}

impl FsbListener for Recorder {
    #[inline]
    fn transaction(&mut self, txn: &FsbTransaction) {
        if !txn.addr.raw().is_multiple_of(64) {
            self.unaligned += 1;
        }
        self.writer
            .write(txn)
            .expect("writing a trace to memory cannot fail");
    }
}

/// A board behind a faulty channel: every platform transaction passes
/// through the injector, which may drop, duplicate, reorder, or corrupt
/// it before the board sees anything.
struct FaultSnoop<'a> {
    dh: &'a mut Dragonhead,
    injector: &'a mut dyn FaultInjector,
    buf: Vec<FsbTransaction>,
}

impl FaultSnoop<'_> {
    fn deliver(&mut self) {
        for txn in self.buf.drain(..) {
            self.dh.observe(&txn);
        }
    }

    /// Releases transactions the injector was still holding back (e.g.
    /// the second half of a reorder swap) at end of stream.
    fn drain_held(&mut self) {
        self.injector.finish(&mut self.buf);
        self.deliver();
    }
}

impl FsbListener for FaultSnoop<'_> {
    #[inline]
    fn transaction(&mut self, txn: &FsbTransaction) {
        self.injector.inject(txn, &mut self.buf);
        self.deliver();
    }
}

impl CoSimulation {
    /// Creates a co-simulation from a config.
    pub fn new(cfg: CoSimConfig) -> Self {
        CoSimulation { cfg }
    }

    /// Runs `workload` to completion under this configuration.
    pub fn run(&self, workload: &dyn Workload) -> CoSimReport {
        let mut spans = SpanProfiler::new();
        self.run_profiled(workload, &mut spans)
    }

    /// Like [`run`](CoSimulation::run), but records wall-clock spans for
    /// the build/simulate/report stages into `spans`.
    pub fn run_profiled(&self, workload: &dyn Workload, spans: &mut SpanProfiler) -> CoSimReport {
        let _t = ftrace::span("cosim");
        spans.start("cosim");
        spans.start("build");
        let tb = ftrace::span("build");
        let mut platform = VirtualPlatform::new(self.cfg.platform_config(), workload);
        let mut dh = Dragonhead::new(self.cfg.dragonhead_config());
        drop(tb);
        spans.end();
        spans.start("simulate");
        let ts = ftrace::span("simulate");
        let run = platform.run(&mut Snoop(&mut dh));
        drop(ts);
        spans.end();
        spans.start("report");
        let tr = ftrace::span("report");
        dh.flush(run.cycles).expect("platform cycles are monotone");
        let report = Self::report(run, &dh);
        drop(tr);
        spans.end();
        spans.end();
        report
    }

    /// Runs `workload` once while emulating every LLC in `llcs`
    /// simultaneously (passive boards on one bus). Returns one report per
    /// LLC, in order.
    pub fn run_sweep(&self, workload: &dyn Workload, llcs: &[CacheConfig]) -> Vec<CoSimReport> {
        let _t = ftrace::span("cosim");
        let mut platform = VirtualPlatform::new(self.cfg.platform_config(), workload);
        let mut boards: Vec<Dragonhead> = llcs
            .iter()
            .map(|&llc| {
                let mut d = DragonheadConfig::new(llc);
                d.banks = self.cfg.banks;
                d.sample_period = self.cfg.sample_period;
                d.prefetch = self.cfg.prefetch;
                Dragonhead::new(d)
            })
            .collect();
        let run = platform.run(&mut MultiSnoop(&mut boards));
        for dh in &mut boards {
            dh.flush(run.cycles).expect("platform cycles are monotone");
        }
        boards
            .iter()
            .map(|dh| Self::report(run.clone(), dh))
            .collect()
    }

    /// The content-addressed identity of the FSB stream this
    /// configuration produces for `{workload, scale, seed}`.
    ///
    /// Only platform-side parameters participate: the emulated LLC, its
    /// banks, the sample period, and the prefetcher all sit *behind*
    /// the bus and cannot change what crosses it, so every cell of a
    /// cache-size, line-size, or replacement sweep shares one key — the
    /// fact the capture-once / replay-many pipeline rests on.
    pub fn stream_key(&self, workload: WorkloadId, scale: Scale, seed: u64) -> JobKey {
        JobKey::new("fsb-stream")
            .field("version", env!("CARGO_PKG_VERSION"))
            .field("workload", workload)
            .field("scale", scale)
            .field("seed", seed)
            .field("cores", self.cfg.cores)
            .field("hierarchy", format!("{:?}", self.cfg.hierarchy))
            .field("noise", format!("{:?}", self.cfg.host_noise))
    }

    /// Runs the platform once with a recording listener on the bus,
    /// returning the captured stream (no board is emulated).
    pub fn capture(&self, workload: WorkloadId, scale: Scale, seed: u64) -> CapturedStream {
        let mut spans = SpanProfiler::new();
        self.capture_profiled(workload, scale, seed, &mut spans)
    }

    /// Like [`capture`](CoSimulation::capture), with wall-clock spans
    /// for the build/record/seal stages.
    pub fn capture_profiled(
        &self,
        workload: WorkloadId,
        scale: Scale,
        seed: u64,
        spans: &mut SpanProfiler,
    ) -> CapturedStream {
        let _t = ftrace::span("capture");
        spans.start("capture");
        spans.start("build");
        let tb = ftrace::span("build");
        let wl = workload.build(scale, seed);
        let mut platform = VirtualPlatform::new(self.cfg.platform_config(), wl.as_ref());
        let mut rec = Recorder {
            writer: TraceWriter::new(Vec::new()).expect("writing a trace to memory cannot fail"),
            unaligned: 0,
        };
        drop(tb);
        spans.end();
        spans.start("record");
        let tr = ftrace::span("record");
        let run = platform.run(&mut rec);
        drop(tr);
        spans.end();
        spans.start("seal");
        let tl = ftrace::span("seal");
        assert_eq!(
            rec.writer.clamped(),
            0,
            "platform cycles are monotone; a clamped capture would not replay faithfully"
        );
        assert_eq!(
            rec.unaligned, 0,
            "platform emitted sub-line addresses; the line-granular trace \
             codec would capture them lossily"
        );
        let transactions = rec.writer.count();
        let bytes = rec
            .writer
            .finish()
            .expect("writing a trace to memory cannot fail");
        let key = self.stream_key(workload, scale, seed);
        let stream = CapturedStream::new(&key, bytes, transactions, run);
        drop(tl);
        spans.end();
        spans.end();
        stream
    }

    /// Returns the stream for `{workload, scale, seed}` via `broker`:
    /// captured at most once per key per process, reused (from memory
    /// or the broker's on-disk store) everywhere else.
    pub fn captured(
        &self,
        broker: &CaptureBroker,
        workload: WorkloadId,
        scale: Scale,
        seed: u64,
    ) -> Arc<CapturedStream> {
        broker.stream(&self.stream_key(workload, scale, seed), || {
            self.capture(workload, scale, seed)
        })
    }

    /// Replays a captured stream into this configuration's board,
    /// producing a report bit-identical to [`run`](CoSimulation::run)
    /// on the same `{workload, scale, seed}`.
    pub fn replay(&self, stream: &CapturedStream) -> CoSimReport {
        let mut spans = SpanProfiler::new();
        self.replay_profiled(stream, &mut spans)
    }

    /// Like [`replay`](CoSimulation::replay), with wall-clock spans for
    /// the build/simulate/report stages.
    pub fn replay_profiled(
        &self,
        stream: &CapturedStream,
        spans: &mut SpanProfiler,
    ) -> CoSimReport {
        let _t = ftrace::span("replay");
        spans.start("replay");
        spans.start("build");
        let tb = ftrace::span("build");
        let mut dh = Dragonhead::new(self.cfg.dragonhead_config());
        drop(tb);
        spans.end();
        spans.start("simulate");
        let ts = ftrace::span("simulate");
        cmpsim_dragonhead::replay(
            stream.iter(),
            std::slice::from_mut(&mut dh),
            stream.run().cycles,
        )
        .expect("captured platform cycles are monotone");
        drop(ts);
        spans.end();
        spans.start("report");
        let tr = ftrace::span("report");
        let report = Self::report(stream.run().clone(), &dh);
        drop(tr);
        spans.end();
        spans.end();
        report
    }

    /// Replays a captured stream into one board per LLC in `llcs` —
    /// the replay-side twin of [`run_sweep`](CoSimulation::run_sweep),
    /// with the same report per configuration but no re-execution.
    ///
    /// Replay is sharded across worker threads per the process-wide
    /// [`replay_shards`] setting; use
    /// [`replay_sweep_sharded`](CoSimulation::replay_sweep_sharded) to
    /// pick the count explicitly. Results are byte-identical at any
    /// shard count.
    pub fn replay_sweep(&self, stream: &CapturedStream, llcs: &[CacheConfig]) -> Vec<CoSimReport> {
        self.replay_sweep_sharded(stream, llcs, replay_shards())
    }

    /// [`replay_sweep`](CoSimulation::replay_sweep) with an explicit
    /// shard count.
    ///
    /// With `shards <= 1` the stream is decoded lazily and every board
    /// is driven on the calling thread. With more, the stream is
    /// decoded once into [`BATCH_TRANSACTIONS`]-sized chunks shared
    /// read-only, the boards are split into `min(shards, boards)`
    /// contiguous groups, and scoped worker threads drive one group
    /// each, batch by batch. Either way each board observes the full
    /// stream in order over fixed batch boundaries, and reports are
    /// assembled in `llcs` order — so the shard count can never change
    /// a byte of output (`tests/replay_equivalence.rs` pins this).
    ///
    /// [`BATCH_TRANSACTIONS`]: cmpsim_dragonhead::BATCH_TRANSACTIONS
    pub fn replay_sweep_sharded(
        &self,
        stream: &CapturedStream,
        llcs: &[CacheConfig],
        shards: usize,
    ) -> Vec<CoSimReport> {
        let _t = ftrace::span("replay");
        let mut boards: Vec<Dragonhead> = llcs
            .iter()
            .map(|&llc| {
                let mut d = DragonheadConfig::new(llc);
                d.banks = self.cfg.banks;
                d.sample_period = self.cfg.sample_period;
                d.prefetch = self.cfg.prefetch;
                Dragonhead::new(d)
            })
            .collect();
        let final_cycle = stream.run().cycles;
        let shards = shards.clamp(1, boards.len().max(1));
        if shards <= 1 {
            cmpsim_dragonhead::replay(stream.iter(), &mut boards, final_cycle)
                .expect("captured platform cycles are monotone");
        } else {
            let chunks = stream.decode_chunks(cmpsim_dragonhead::BATCH_TRANSACTIONS);
            let ctx = ftrace::snapshot();
            let group_len = boards.len().div_ceil(shards);
            cmpsim_runner::scoped_shards(
                boards.chunks_mut(group_len).collect(),
                |shard, group: &mut [Dragonhead]| {
                    // Each shard opens its own `board-replay` span on
                    // the captured lane (`Lane` clones share one
                    // buffer), parented under the sweep's `replay`
                    // span, so `cmpsim report` shows per-shard replay
                    // utilization.
                    let _span = ctx.as_ref().map(|(lane, cell, parent)| {
                        let mut s = lane.begin("board-replay", cell, *parent);
                        s.arg("shard", shard as u64);
                        s.arg("boards", group.len() as u64);
                        s
                    });
                    cmpsim_dragonhead::replay_chunks(chunks.iter(), group, final_cycle)
                        .expect("captured platform cycles are monotone");
                },
            );
        }
        boards
            .iter()
            .map(|dh| Self::report(stream.run().clone(), dh))
            .collect()
    }

    /// Like [`run`](CoSimulation::run), but every failure mode is a
    /// structured [`CoSimError`] instead of a panic, and the finished
    /// report is checked against the full invariant catalogue before it
    /// is returned.
    ///
    /// # Errors
    ///
    /// [`CoSimError::Invariant`] for a bad cache geometry or a report
    /// that fails self-validation; [`CoSimError::Protocol`] if the
    /// sampler clock ran backwards.
    pub fn run_checked(&self, workload: &dyn Workload) -> Result<CoSimReport, CoSimError> {
        let _t = ftrace::span("cosim");
        let mut platform = VirtualPlatform::new(self.cfg.platform_config(), workload);
        let mut dh = Dragonhead::try_new(self.cfg.dragonhead_config())?;
        let run = platform.run(&mut Snoop(&mut dh));
        dh.flush(run.cycles)?;
        let report = Self::report(run, &dh);
        {
            let _v = ftrace::span("validate");
            Validator::new(self.cfg.sample_period).validate(&report)?;
        }
        Ok(report)
    }

    /// Runs `workload` with `injector` perturbing the FSB stream between
    /// the platform and the board — the chaos path.
    ///
    /// The platform itself is never faulted (its [`RunSummary`] is
    /// ground truth); only what the board *observes* is. The returned
    /// report carries the injection census in `metrics`
    /// (`faults_injected`, plus a per-`class` breakdown) next to the
    /// board's own anomaly counters, and is validated like
    /// [`run_checked`](CoSimulation::run_checked) so an unrecovered
    /// corruption surfaces as a named invariant violation, never a
    /// silently wrong figure.
    ///
    /// # Errors
    ///
    /// Same taxonomy as [`run_checked`](CoSimulation::run_checked).
    pub fn run_with_faults(
        &self,
        workload: &dyn Workload,
        injector: &mut dyn FaultInjector,
    ) -> Result<CoSimReport, CoSimError> {
        let _t = ftrace::span("cosim");
        let mut platform = VirtualPlatform::new(self.cfg.platform_config(), workload);
        let mut dh = Dragonhead::try_new(self.cfg.dragonhead_config())?;
        let run = {
            let mut snoop = FaultSnoop {
                dh: &mut dh,
                injector,
                buf: Vec::new(),
            };
            let run = platform.run(&mut snoop);
            snoop.drain_held();
            run
        };
        dh.flush(run.cycles)?;
        let mut report = Self::report(run, &dh);
        let injected = injector.faults_injected();
        if injected > 0 {
            report
                .metrics
                .count("faults_injected", &Labels::none(), injected);
            for (class, v) in injector.fault_counters().by_class() {
                if v > 0 {
                    let labels = Labels::none().with("class", class);
                    report.metrics.count("faults_injected_class", &labels, v);
                }
            }
        }
        {
            let _v = ftrace::span("validate");
            Validator::new(self.cfg.sample_period).validate(&report)?;
        }
        Ok(report)
    }

    fn report(run: RunSummary, dh: &Dragonhead) -> CoSimReport {
        let llc = dh.stats();
        let mpki = llc.mpki(run.instructions);
        let mut metrics = MetricRegistry::new();
        run.export_metrics(&mut metrics);
        dh.export_metrics(&mut metrics);
        CoSimReport {
            mpki,
            llc,
            per_core_llc: dh.per_core().to_vec(),
            samples: dh.samples().to_vec(),
            prefetch_fills: dh.prefetch_fills(),
            writebacks_to_memory: dh.writebacks_to_memory(),
            llc_bytes: dh.config().cache.size_bytes(),
            llc_line_bytes: dh.config().cache.line_bytes(),
            llc_resident_lines: dh.resident_lines(),
            metrics,
            run,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_workloads::{Scale, WorkloadId};

    #[test]
    fn single_run_produces_consistent_report() {
        let wl = WorkloadId::Plsa.build(Scale::tiny(), 1);
        let cfg = CoSimConfig::new(2, 1 << 20).unwrap();
        let r = CoSimulation::new(cfg).run(wl.as_ref());
        assert!(r.run.instructions > 0);
        assert_eq!(r.llc.hits + r.llc.misses, r.llc.accesses);
        // Per-core LLC accesses sum to the total.
        let per_core_sum: u64 = r.per_core_llc.iter().map(|c| c.accesses).sum();
        assert_eq!(per_core_sum, r.llc.accesses);
        assert!(r.mpki >= 0.0);
    }

    #[test]
    fn sweep_matches_individual_runs() {
        let cfg = CoSimConfig::new(2, 1 << 20).unwrap();
        let sizes: Vec<CacheConfig> = [1u64 << 18, 1 << 20]
            .iter()
            .map(|&s| CacheConfig::lru(s, 64, 16).unwrap())
            .collect();
        let wl = WorkloadId::Viewtype.build(Scale::tiny(), 2);
        let sweep = CoSimulation::new(cfg).run_sweep(wl.as_ref(), &sizes);
        let wl2 = WorkloadId::Viewtype.build(Scale::tiny(), 2);
        let single = CoSimulation::new(cfg.with_llc(sizes[1])).run(wl2.as_ref());
        assert_eq!(sweep[1].llc.misses, single.llc.misses);
        assert_eq!(sweep[1].llc.hits, single.llc.hits);
    }

    #[test]
    fn bigger_cache_never_increases_misses_much() {
        // LRU is a stack algorithm: with identical line size and
        // associativity scaling, larger caches should not miss more
        // (allowing a tiny tolerance for set-mapping effects).
        let cfg = CoSimConfig::new(2, 1 << 20).unwrap();
        let sizes: Vec<CacheConfig> = [1u64 << 18, 1 << 19, 1 << 20, 1 << 21]
            .iter()
            .map(|&s| CacheConfig::lru(s, 64, 16).unwrap())
            .collect();
        let wl = WorkloadId::SvmRfe.build(Scale::tiny(), 3);
        let sweep = CoSimulation::new(cfg).run_sweep(wl.as_ref(), &sizes);
        for w in sweep.windows(2) {
            assert!(
                w[1].llc.misses as f64 <= w[0].llc.misses as f64 * 1.05,
                "misses grew with size: {} -> {}",
                w[0].llc.misses,
                w[1].llc.misses
            );
        }
    }

    #[test]
    fn report_carries_metrics_and_flushed_samples() {
        let wl = WorkloadId::Fimi.build(Scale::tiny(), 1);
        let mut cfg = CoSimConfig::new(2, 1 << 20).unwrap();
        cfg.sample_period = 1000;
        let mut spans = cmpsim_telemetry::SpanProfiler::new();
        let r = CoSimulation::new(cfg).run_profiled(wl.as_ref(), &mut spans);
        // The flush guarantees the series covers the end of the run.
        assert!(!r.samples.is_empty());
        assert_eq!(r.samples.last().unwrap().cycle, r.run.cycles);
        assert_eq!(r.samples.last().unwrap().accesses, r.llc.accesses);
        // Counters from both sides of the bus landed in the registry.
        assert_eq!(r.metrics.counter_total("instructions"), r.run.instructions);
        assert_eq!(r.metrics.counter_total("llc_misses"), r.llc.misses);
        assert_eq!(r.metrics.counter_total("core_llc_accesses"), r.llc.accesses);
        // Build/simulate/report stages were timed.
        let names: Vec<&str> = spans.spans().iter().map(|s| s.name.as_str()).collect();
        for stage in ["cosim", "build", "simulate", "report"] {
            assert!(names.contains(&stage), "missing span {stage}");
        }
    }

    #[test]
    fn replay_of_capture_matches_live_run() {
        let mut cfg = CoSimConfig::new(2, 1 << 20).unwrap();
        cfg.sample_period = 1000;
        let sim = CoSimulation::new(cfg);
        let wl = WorkloadId::Plsa.build(Scale::tiny(), 1);
        let live = sim.run(wl.as_ref());

        let stream = sim.capture(WorkloadId::Plsa, Scale::tiny(), 1);
        assert_eq!(stream.run().instructions, live.run.instructions);
        assert_eq!(stream.run().cycles, live.run.cycles);
        let replayed = sim.replay(&stream);

        assert_eq!(replayed.llc, live.llc);
        assert_eq!(replayed.samples, live.samples);
        assert_eq!(replayed.per_core_llc, live.per_core_llc);
        assert_eq!(replayed.run.per_core, live.run.per_core);
        assert_eq!(replayed.run.l1, live.run.l1);
        assert_eq!(replayed.run.l2, live.run.l2);
        assert_eq!(replayed.mpki.to_bits(), live.mpki.to_bits());
        assert_eq!(replayed.llc_resident_lines, live.llc_resident_lines);
    }

    #[test]
    fn replay_sweep_matches_run_sweep() {
        let cfg = CoSimConfig::new(2, 1 << 20).unwrap();
        let sim = CoSimulation::new(cfg);
        let sizes: Vec<CacheConfig> = [1u64 << 18, 1 << 19, 1 << 20]
            .iter()
            .map(|&s| CacheConfig::lru(s, 64, 16).unwrap())
            .collect();
        let wl = WorkloadId::Viewtype.build(Scale::tiny(), 2);
        let live = sim.run_sweep(wl.as_ref(), &sizes);
        let stream = sim.capture(WorkloadId::Viewtype, Scale::tiny(), 2);
        let replayed = sim.replay_sweep(&stream, &sizes);
        assert_eq!(replayed.len(), live.len());
        for (r, l) in replayed.iter().zip(&live) {
            assert_eq!(r.llc, l.llc);
            assert_eq!(r.samples, l.samples);
            assert_eq!(r.per_core_llc, l.per_core_llc);
            assert_eq!(r.mpki.to_bits(), l.mpki.to_bits());
        }
    }

    #[test]
    fn sharded_replay_matches_serial_at_any_shard_count() {
        let mut cfg = CoSimConfig::new(2, 1 << 20).unwrap();
        cfg.sample_period = 1000;
        let sim = CoSimulation::new(cfg);
        let sizes: Vec<CacheConfig> = [1u64 << 18, 1 << 19, 1 << 20, 1 << 21]
            .iter()
            .map(|&s| CacheConfig::lru(s, 64, 16).unwrap())
            .collect();
        let stream = sim.capture(WorkloadId::Viewtype, Scale::tiny(), 2);
        let serial = sim.replay_sweep_sharded(&stream, &sizes, 1);
        // 2 = even groups, 3 = uneven groups, 4 = one board per shard,
        // 9 > boards = clamped. All must reproduce the serial reports
        // exactly.
        for shards in [2usize, 3, 4, 9] {
            let sharded = sim.replay_sweep_sharded(&stream, &sizes, shards);
            assert_eq!(sharded.len(), serial.len());
            for (s, r) in sharded.iter().zip(&serial) {
                assert_eq!(s.llc, r.llc, "{shards} shards: llc differs");
                assert_eq!(s.samples, r.samples, "{shards} shards: samples differ");
                assert_eq!(s.per_core_llc, r.per_core_llc);
                assert_eq!(s.mpki.to_bits(), r.mpki.to_bits());
                assert_eq!(s.llc_resident_lines, r.llc_resident_lines);
                // The full metric registries — every per-bank and
                // per-core counter — serialize identically.
                assert_eq!(s.metrics.to_json(), r.metrics.to_json());
            }
        }
    }

    #[test]
    fn shard_count_never_changes_protocol_anomaly_counters() {
        // A fault-injected stream exercises the board's quarantine and
        // desync machinery; the shard count must not move a single
        // anomaly counter (every board still sees the full stream in
        // order, whatever thread drives it).
        let mut cfg = CoSimConfig::new(2, 1 << 20).unwrap();
        cfg.sample_period = 1000;
        let sim = CoSimulation::new(cfg);
        let clean = sim.capture(WorkloadId::Fimi, Scale::tiny(), 1);
        // Drops tear message pairs; corrupted addresses quarantine.
        // Neither perturbs cycle stamps, so the re-encoded stream stays
        // monotone and decodes exactly as written.
        let mut faults = cmpsim_faults::FaultPlan::none(44)
            .with_drop(0.03)
            .with_corrupt_addr(0.03)
            .build();
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        let mut out = Vec::new();
        for txn in clean.iter() {
            faults.inject(&txn, &mut out);
            for t in out.drain(..) {
                w.write(&t).unwrap();
            }
        }
        faults.finish(&mut out);
        for t in out.drain(..) {
            w.write(&t).unwrap();
        }
        assert!(faults.faults_injected() > 0, "chaos plan never fired");
        let n = w.count();
        let bytes = w.finish().unwrap();
        let key = JobKey::new("chaos-shards").field("workload", "FIMI");
        let faulted = CapturedStream::new(&key, bytes, n, clean.run().clone());

        let sizes: Vec<CacheConfig> = [1u64 << 18, 1 << 19, 1 << 20]
            .iter()
            .map(|&s| CacheConfig::lru(s, 64, 16).unwrap())
            .collect();
        let serial = sim.replay_sweep_sharded(&faulted, &sizes, 1);
        let anomalies = |r: &CoSimReport| {
            r.metrics.counter_total("desyncs_detected")
                + r.metrics.counter_total("transactions_quarantined")
                + r.metrics.counter_total("cycle_regressions")
        };
        assert!(
            serial.iter().any(|r| anomalies(r) > 0),
            "fault plan produced no counted anomalies — the test is vacuous"
        );
        for shards in [2usize, 3, 7] {
            let sharded = sim.replay_sweep_sharded(&faulted, &sizes, shards);
            for (s, r) in sharded.iter().zip(&serial) {
                assert_eq!(
                    anomalies(s),
                    anomalies(r),
                    "{shards} shards moved anomalies"
                );
                assert_eq!(s.llc, r.llc);
                assert_eq!(s.samples, r.samples);
                assert_eq!(s.metrics.to_json(), r.metrics.to_json());
            }
        }
    }

    #[test]
    fn stream_key_ignores_board_side_parameters() {
        let base = CoSimConfig::new(2, 1 << 20).unwrap();
        let sim = CoSimulation::new(base);
        let key = sim.stream_key(WorkloadId::Fimi, Scale::tiny(), 1);
        // Board-side knobs (LLC geometry, banks, sampling, prefetch)
        // cannot change what crosses the bus: same key.
        let mut board_side = base.with_llc(CacheConfig::lru(1 << 22, 128, 8).unwrap());
        board_side.banks = 8;
        board_side.sample_period = 123;
        let same = CoSimulation::new(board_side).stream_key(WorkloadId::Fimi, Scale::tiny(), 1);
        assert_eq!(key.canonical(), same.canonical());
        // Platform-side knobs do: different key.
        let mut noisy = base;
        noisy.host_noise = Some(HostNoiseConfig {
            transactions_per_switch: 4,
        });
        let diff = CoSimulation::new(noisy).stream_key(WorkloadId::Fimi, Scale::tiny(), 1);
        assert_ne!(key.canonical(), diff.canonical());
        assert_ne!(
            key.canonical(),
            sim.stream_key(WorkloadId::Fimi, Scale::tiny(), 2)
                .canonical()
        );
    }

    #[test]
    fn broker_reuses_one_capture_across_replays() {
        let cfg = CoSimConfig::new(1, 1 << 20).unwrap();
        let sim = CoSimulation::new(cfg);
        let broker = crate::capture::CaptureBroker::in_memory();
        let a = sim.captured(&broker, WorkloadId::Fimi, Scale::tiny(), 1);
        let b = sim.captured(&broker, WorkloadId::Fimi, Scale::tiny(), 1);
        assert!(Arc::ptr_eq(&a, &b));
        let counters = broker.counters();
        assert_eq!((counters.captures, counters.memory_reuses), (1, 1));
    }

    #[test]
    fn run_counts_wiring() {
        let wl = WorkloadId::Plsa.build(Scale::tiny(), 4);
        let cfg = CoSimConfig::new(1, 1 << 20).unwrap();
        let r = CoSimulation::new(cfg).run(wl.as_ref());
        let c = r.run_counts();
        assert_eq!(c.instructions, r.run.instructions);
        assert_eq!(c.mem_fills, r.llc.misses);
        assert_eq!(c.threads, 1);
    }
}
