#![warn(missing_docs)]

//! `cmpsim` — hardware-software co-simulation of data-mining workloads
//! on small, medium, and large-scale CMPs.
//!
//! This crate is the top of the stack: it binds the SoftSDV-style
//! virtual platform ([`cmpsim_softsdv`]) to the Dragonhead cache-emulator
//! model ([`cmpsim_dragonhead`]) exactly as §3.3 of the ISPASS 2007 paper
//! describes — the platform runs the workload on N time-sliced virtual
//! cores and posts control messages on the bus; the passive emulator
//! snoops every transaction, attributes it to a core, and emulates the
//! configured shared LLC in real time.
//!
//! On top of the co-simulation sit the paper's experiments:
//!
//! * [`experiment::Table2Study`] — workload characterization (Table 2),
//! * [`experiment::CacheSizeStudy`] — LLC MPKI vs size on 8/16/32-core
//!   CMPs (Figures 4, 5, 6),
//! * [`experiment::LineSizeStudy`] — line-size sensitivity (Figure 7),
//! * [`experiment::PrefetchStudy`] — hardware-prefetch speedups
//!   (Figure 8),
//! * ablations: sharing category, replacement policy, 64/128-core
//!   projection.
//!
//! # Quickstart
//!
//! ```
//! use cmpsim_core::cosim::{CoSimConfig, CoSimulation};
//! use cmpsim_core::{Scale, WorkloadId};
//!
//! let workload = WorkloadId::Plsa.build(Scale::tiny(), 1);
//! let cfg = CoSimConfig::new(2, 1 << 20)?; // 2 cores, 1 MB LLC
//! let report = CoSimulation::new(cfg).run(workload.as_ref());
//! assert!(report.run.instructions > 0);
//! assert!(report.llc.accesses > 0);
//! # Ok::<(), cmpsim_cache::ConfigError>(())
//! ```

pub mod capture;
pub mod cosim;
pub mod error;
pub mod experiment;
pub mod grid;
pub mod report;
pub mod telemetry;
pub mod validate;

pub use cmpsim_cache as cache;
pub use cmpsim_dragonhead as dragonhead;
pub use cmpsim_faults as faults;
pub use cmpsim_memsys as memsys;
pub use cmpsim_prefetch as prefetch;
pub use cmpsim_runner as runner;
pub use cmpsim_softsdv as softsdv;
pub use cmpsim_telemetry as tel;
pub use cmpsim_trace as trace;
pub use cmpsim_workloads as workloads;

pub use capture::{CaptureBroker, CaptureCounters, CapturedStream, DecodedChunks, TraceStore};
pub use cmpsim_workloads::{Scale, WorkloadId};
pub use cosim::{replay_shards, set_replay_shards, CoSimConfig, CoSimReport, CoSimulation};
pub use error::CoSimError;
pub use experiment::CmpClass;
pub use validate::Validator;
