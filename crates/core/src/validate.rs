//! Run-level self-validation: the invariant catalogue a finished
//! [`CoSimReport`] must satisfy before its numbers are trusted.
//!
//! The paper's rig cross-checked itself constantly — counter messages
//! synchronize the emulator to the simulator, and the host's 500 µs
//! sampling gives an independent view of the same counters. This module
//! is the software analogue: every invariant relates two *independently
//! produced* numbers, so a corrupted channel, a decoder bug, or a broken
//! counter shows up as a disagreement instead of a silently wrong figure.
//!
//! The catalogue:
//!
//! | name | relation |
//! |------|----------|
//! | `llc_conservation` | LLC hits + misses = accesses |
//! | `core_retirement` | Σ per-core instructions = run total |
//! | `llc_attribution` | Σ per-core LLC accesses = LLC accesses |
//! | `llc_occupancy` | resident lines ≤ capacity lines |
//! | `samples_monotone` | sample cycles strictly increase |
//! | `sample_count` | samples ≈ cycles / period (±1 after flush) |
//! | `mpki_sane` | MPKI is finite and non-negative |

use crate::cosim::CoSimReport;
use crate::error::CoSimError;

/// Validates a finished report against the invariant catalogue.
#[derive(Debug, Clone, Copy)]
pub struct Validator {
    /// The sampling period the run was configured with (needed to relate
    /// sample count to total cycles; the report does not carry it).
    pub sample_period: u64,
}

impl Validator {
    /// A validator for runs sampled every `sample_period` cycles.
    pub fn new(sample_period: u64) -> Self {
        Validator { sample_period }
    }

    /// Checks every invariant, returning all violations (empty = valid).
    pub fn violations(&self, r: &CoSimReport) -> Vec<CoSimError> {
        let mut out = Vec::new();
        let mut check = |ok: bool, name: &str, detail: String| {
            if !ok {
                out.push(CoSimError::invariant(name, detail));
            }
        };

        check(
            r.llc.hits + r.llc.misses == r.llc.accesses,
            "llc_conservation",
            format!(
                "hits {} + misses {} != accesses {}",
                r.llc.hits, r.llc.misses, r.llc.accesses
            ),
        );

        let core_sum: u64 = r.run.per_core.iter().map(|c| c.instructions).sum();
        check(
            core_sum == r.run.instructions,
            "core_retirement",
            format!(
                "per-core instructions sum {core_sum} != run total {}",
                r.run.instructions
            ),
        );

        let llc_sum: u64 = r.per_core_llc.iter().map(|c| c.accesses).sum();
        check(
            llc_sum == r.llc.accesses,
            "llc_attribution",
            format!(
                "per-core LLC accesses sum {llc_sum} != total {}",
                r.llc.accesses
            ),
        );

        let capacity_lines = r.llc_bytes / r.llc_line_bytes.max(1);
        check(
            r.llc_resident_lines <= capacity_lines,
            "llc_occupancy",
            format!(
                "{} resident lines exceed the {capacity_lines}-line capacity",
                r.llc_resident_lines
            ),
        );

        let monotone = r.samples.windows(2).all(|w| w[0].cycle < w[1].cycle);
        check(
            monotone,
            "samples_monotone",
            "sample cycles do not strictly increase".to_owned(),
        );

        // After the end-of-run flush the series holds one sample per
        // full period plus one closing sample for a partial tail; allow
        // ±1 so boundary-exact runs and jittered clocks both pass.
        let period = self.sample_period.max(1);
        let cycles = r.run.cycles;
        let expected = cycles / period + u64::from(!cycles.is_multiple_of(period) && cycles > 0);
        let actual = r.samples.len() as u64;
        check(
            actual.abs_diff(expected) <= 1,
            "sample_count",
            format!(
                "{actual} samples for {cycles} cycles at period {period} (expected ~{expected})"
            ),
        );

        check(
            r.mpki.is_finite() && r.mpki >= 0.0,
            "mpki_sane",
            format!("mpki = {}", r.mpki),
        );

        out
    }

    /// Checks every invariant, failing on the first violation.
    ///
    /// # Errors
    ///
    /// The first [`CoSimError::Invariant`] from the catalogue.
    pub fn validate(&self, r: &CoSimReport) -> Result<(), CoSimError> {
        match self.violations(r).into_iter().next() {
            Some(v) => Err(v),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::{CoSimConfig, CoSimulation};
    use cmpsim_workloads::{Scale, WorkloadId};

    fn clean_report() -> (CoSimReport, Validator) {
        let wl = WorkloadId::Fimi.build(Scale::tiny(), 1);
        let mut cfg = CoSimConfig::new(2, 1 << 20).unwrap();
        cfg.sample_period = 1000;
        let r = CoSimulation::new(cfg).run(wl.as_ref());
        (r, Validator::new(cfg.sample_period))
    }

    #[test]
    fn clean_run_satisfies_every_invariant() {
        let (r, v) = clean_report();
        assert_eq!(v.violations(&r), Vec::new());
        v.validate(&r).unwrap();
    }

    #[test]
    fn violations_name_the_broken_invariant() {
        let (mut r, v) = clean_report();
        r.llc.hits += 1;
        let errs = v.violations(&r);
        assert!(errs.iter().any(
            |e| matches!(e, CoSimError::Invariant { name, .. } if name == "llc_conservation")
        ));

        let (mut r, v) = clean_report();
        r.mpki = f64::NAN;
        assert!(matches!(
            v.validate(&r),
            Err(CoSimError::Invariant { name, .. }) if name == "mpki_sane"
        ));

        let (mut r, v) = clean_report();
        r.llc_resident_lines = r.llc_bytes; // lines can't outnumber bytes
        assert!(matches!(
            v.validate(&r),
            Err(CoSimError::Invariant { name, .. }) if name == "llc_occupancy"
        ));

        let (mut r, v) = clean_report();
        r.samples.truncate(r.samples.len() / 2);
        assert!(v
            .violations(&r)
            .iter()
            .any(|e| matches!(e, CoSimError::Invariant { name, .. } if name == "sample_count")));
    }
}
