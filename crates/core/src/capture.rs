//! Capture-once / replay-many FSB stream management.
//!
//! A co-simulated grid run wastes most of its time re-executing the
//! same workload: every cell of a cache-size sweep (and every line-size
//! point, replacement policy, and sharing ablation) runs the *same*
//! `{workload, cmp_size, scale, seed}` co-simulation and differs only
//! in the passive board snooping the bus. Because Dragonhead never
//! affects the platform, the FSB transaction stream is a function of
//! the platform side alone — so it can be recorded once and replayed
//! into any number of board configurations with bit-identical results.
//!
//! This module provides the three pieces of that pipeline:
//!
//! * [`CapturedStream`] — one recorded run: the exact transaction
//!   sequence in the compact v2 trace encoding (~4 bytes per
//!   transaction) plus the platform's
//!   [`RunSummary`](cmpsim_softsdv::RunSummary);
//! * [`TraceStore`] — a content-addressed on-disk store (mirroring the
//!   runner's result cache layout) so captures survive across
//!   processes when the user passes `--trace-dir`;
//! * [`CaptureBroker`] — the in-process rendezvous: concurrent workers
//!   asking for the same stream key get one capture and N reuses, with
//!   counters saying how often each path was taken.
//!
//! `Message` transactions survive capture losslessly (the codec's
//! `PAYLOAD_SHIFT = 6` keeps every message address 64-byte aligned), so
//! per-core attribution, sampling, and desync recovery behave exactly
//! as they would live. The `cosim` module pins that equivalence; the
//! `replay` tier-1 test pins it end to end through the figure binaries.

use cmpsim_cache::CacheStats;
use cmpsim_runner::{record, JobKey};
use cmpsim_softsdv::{CoreSummary, RunSummary};
use cmpsim_telemetry::trace as ftrace;
use cmpsim_telemetry::{parse, JsonValue};
use cmpsim_trace::file::TraceReader;
use cmpsim_trace::FsbTransaction;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One captured co-simulation: the exact FSB transaction stream (in
/// the compact on-disk trace encoding) plus the platform-side run
/// summary every report derives from.
///
/// The stream is stored *encoded* rather than as decoded transactions:
/// it is ~4 bytes per transaction instead of 24, it can be written to a
/// [`TraceStore`] without re-encoding, and every replay exercises the
/// same codec whose losslessness the trace crate's property tests pin.
#[derive(Debug, Clone)]
pub struct CapturedStream {
    canonical: String,
    bytes: Vec<u8>,
    transactions: u64,
    run: RunSummary,
}

impl CapturedStream {
    /// Wraps an encoded trace captured under `key`.
    pub fn new(key: &JobKey, bytes: Vec<u8>, transactions: u64, run: RunSummary) -> Self {
        CapturedStream {
            canonical: key.canonical(),
            bytes,
            transactions,
            run,
        }
    }

    /// The canonical stream key this capture was recorded under.
    pub fn canonical_key(&self) -> &str {
        &self.canonical
    }

    /// The complete v2-encoded trace (header, body, footer).
    pub fn encoded_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Number of transactions in the stream.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// The platform-side summary of the captured run.
    pub fn run(&self) -> &RunSummary {
        &self.run
    }

    /// Decodes the stream, yielding every transaction in bus order.
    ///
    /// # Panics
    ///
    /// Panics if the encoded bytes are corrupt — impossible for a
    /// stream built by [`CoSimulation::capture`] or loaded through a
    /// [`TraceStore`] (both verify the footer), so a panic here means
    /// memory corruption, not bad input.
    ///
    /// [`CoSimulation::capture`]: crate::cosim::CoSimulation::capture
    pub fn iter(&self) -> impl Iterator<Item = FsbTransaction> + '_ {
        TraceReader::new(&self.bytes[..])
            .expect("captured stream has a valid trace header")
            .map(|t| t.expect("captured stream was verified at capture/load time"))
    }

    /// Decodes the stream once into fixed-size transaction chunks of
    /// `chunk_len` transactions (the last chunk may be shorter).
    ///
    /// Sharded sweep replay hands the result to every shard read-only:
    /// one decode pass feeds any number of board groups, and because
    /// the chunk boundaries depend only on the stream and `chunk_len`
    /// — never on the shard count — every board sees identical batch
    /// edges no matter how the sweep is partitioned.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero, or on corrupt encoded bytes (see
    /// [`iter`](CapturedStream::iter)).
    pub fn decode_chunks(&self, chunk_len: usize) -> DecodedChunks {
        assert!(chunk_len > 0, "chunk length must be positive");
        let mut chunks = Vec::with_capacity(
            usize::try_from(self.transactions).unwrap_or(usize::MAX) / chunk_len + 1,
        );
        let mut cur = Vec::with_capacity(chunk_len);
        for txn in self.iter() {
            cur.push(txn);
            if cur.len() == chunk_len {
                chunks.push(std::mem::replace(&mut cur, Vec::with_capacity(chunk_len)));
            }
        }
        if !cur.is_empty() {
            chunks.push(cur);
        }
        DecodedChunks {
            chunks,
            transactions: self.transactions,
        }
    }
}

/// A captured stream decoded once into fixed-size transaction batches,
/// shared read-only across replay shards (see
/// [`CapturedStream::decode_chunks`]).
#[derive(Debug, Clone)]
pub struct DecodedChunks {
    chunks: Vec<Vec<FsbTransaction>>,
    transactions: u64,
}

impl DecodedChunks {
    /// The batches, in stream order.
    pub fn iter(&self) -> impl Iterator<Item = &[FsbTransaction]> + '_ {
        self.chunks.iter().map(Vec::as_slice)
    }

    /// Number of batches.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the stream decoded to zero transactions.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Total transactions across all batches.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }
}

fn stats_to_json(s: &CacheStats) -> JsonValue {
    JsonValue::object([
        ("accesses", JsonValue::U64(s.accesses)),
        ("write_accesses", JsonValue::U64(s.write_accesses)),
        ("hits", JsonValue::U64(s.hits)),
        ("misses", JsonValue::U64(s.misses)),
        ("read_misses", JsonValue::U64(s.read_misses)),
        ("write_misses", JsonValue::U64(s.write_misses)),
        ("evictions", JsonValue::U64(s.evictions)),
        ("writebacks", JsonValue::U64(s.writebacks)),
        ("invalidations", JsonValue::U64(s.invalidations)),
        ("upgrades", JsonValue::U64(s.upgrades)),
        ("prefetch_fills", JsonValue::U64(s.prefetch_fills)),
        ("prefetch_used", JsonValue::U64(s.prefetch_used)),
    ])
}

fn u64_of(v: &JsonValue, key: &str) -> Option<u64> {
    v.get(key)?.as_u64()
}

fn stats_from_json(v: &JsonValue) -> Option<CacheStats> {
    Some(CacheStats {
        accesses: u64_of(v, "accesses")?,
        write_accesses: u64_of(v, "write_accesses")?,
        hits: u64_of(v, "hits")?,
        misses: u64_of(v, "misses")?,
        read_misses: u64_of(v, "read_misses")?,
        write_misses: u64_of(v, "write_misses")?,
        evictions: u64_of(v, "evictions")?,
        writebacks: u64_of(v, "writebacks")?,
        invalidations: u64_of(v, "invalidations")?,
        upgrades: u64_of(v, "upgrades")?,
        prefetch_fills: u64_of(v, "prefetch_fills")?,
        prefetch_used: u64_of(v, "prefetch_used")?,
    })
}

fn core_to_json(c: &CoreSummary) -> JsonValue {
    JsonValue::object([
        ("instructions", JsonValue::U64(c.instructions)),
        ("memory_instructions", JsonValue::U64(c.memory_instructions)),
        ("loads", JsonValue::U64(c.loads)),
        ("slices", JsonValue::U64(c.slices)),
    ])
}

fn core_from_json(v: &JsonValue) -> Option<CoreSummary> {
    Some(CoreSummary {
        instructions: u64_of(v, "instructions")?,
        memory_instructions: u64_of(v, "memory_instructions")?,
        loads: u64_of(v, "loads")?,
        slices: u64_of(v, "slices")?,
    })
}

/// Serializes a [`RunSummary`] for a [`TraceStore`] sidecar. Every
/// field is a `u64` so the round trip is exact — no float formatting is
/// involved anywhere in the stream metadata.
pub fn run_to_json(run: &RunSummary) -> JsonValue {
    JsonValue::object([
        ("instructions", JsonValue::U64(run.instructions)),
        (
            "memory_instructions",
            JsonValue::U64(run.memory_instructions),
        ),
        ("loads", JsonValue::U64(run.loads)),
        ("stores", JsonValue::U64(run.stores)),
        ("cycles", JsonValue::U64(run.cycles)),
        (
            "per_core",
            JsonValue::array(run.per_core.iter().map(core_to_json)),
        ),
        ("l1", stats_to_json(&run.l1)),
        ("l2", stats_to_json(&run.l2)),
        ("bus_transactions", JsonValue::U64(run.bus_transactions)),
    ])
}

/// Inverse of [`run_to_json`]; `None` if any field is missing or the
/// wrong type.
pub fn run_from_json(v: &JsonValue) -> Option<RunSummary> {
    Some(RunSummary {
        instructions: u64_of(v, "instructions")?,
        memory_instructions: u64_of(v, "memory_instructions")?,
        loads: u64_of(v, "loads")?,
        stores: u64_of(v, "stores")?,
        cycles: u64_of(v, "cycles")?,
        per_core: v
            .get("per_core")?
            .as_array()?
            .iter()
            .map(core_from_json)
            .collect::<Option<Vec<_>>>()?,
        l1: stats_from_json(v.get("l1")?)?,
        l2: stats_from_json(v.get("l2")?)?,
        bus_transactions: u64_of(v, "bus_transactions")?,
    })
}

/// A content-addressed on-disk trace store, keyed and sharded exactly
/// like the runner's result cache: `<root>/<hh>/<hash16>.trace` holds
/// the encoded stream, `<root>/<hh>/<hash16>.json` a sealed sidecar
/// with the canonical key, transaction count, and run summary.
///
/// Robustness matches the result cache: a load fully decodes the trace
/// and verifies its footer, so a truncated, bit-rotted, or hand-edited
/// entry is **evicted** (both files removed) and recaptured rather than
/// trusted; a fingerprint collision (sidecar key differs from the
/// requested one) degrades to a plain miss without evicting someone
/// else's valid capture. Writes go through temp files plus rename so a
/// killed run never leaves a torn entry behind.
#[derive(Debug, Clone)]
pub struct TraceStore {
    root: PathBuf,
}

impl TraceStore {
    /// A store rooted at `root` (created lazily on first store).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        TraceStore { root: root.into() }
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path of `key`'s encoded trace.
    pub fn trace_path(&self, key: &JobKey) -> PathBuf {
        let hex = key.hex();
        self.root.join(&hex[..2]).join(format!("{hex}.trace"))
    }

    /// The on-disk path of `key`'s metadata sidecar.
    pub fn meta_path(&self, key: &JobKey) -> PathBuf {
        let hex = key.hex();
        self.root.join(&hex[..2]).join(format!("{hex}.json"))
    }

    fn evict(&self, key: &JobKey) {
        let _ = std::fs::remove_file(self.trace_path(key));
        let _ = std::fs::remove_file(self.meta_path(key));
    }

    /// Returns the stored capture for `key`, or `None` on a miss
    /// (absent, unreadable, corrupt, or a fingerprint collision).
    ///
    /// The trace is fully decoded and its footer verified before it is
    /// served; anything that fails — torn trace, checksum mismatch,
    /// count mismatch, v1 format (which has no footer to trust), a
    /// sidecar whose seal does not verify — evicts both files.
    pub fn load(&self, key: &JobKey) -> Option<CapturedStream> {
        let meta_text = std::fs::read_to_string(self.meta_path(key)).ok()?;
        let Ok(doc) = parse(&meta_text) else {
            self.evict(key);
            return None;
        };
        // A key mismatch is a fingerprint collision: the entry is some
        // other stream's valid capture, so miss without evicting.
        if doc.get("key").and_then(JsonValue::as_str) != Some(key.canonical().as_str()) {
            return None;
        }
        let Some(payload) = record::verify(&doc, "capture") else {
            self.evict(key);
            return None;
        };
        let (Some(transactions), Some(run)) = (
            u64_of(&payload, "transactions"),
            payload.get("run").and_then(run_from_json),
        ) else {
            self.evict(key);
            return None;
        };
        let Ok(bytes) = std::fs::read(self.trace_path(key)) else {
            // Sidecar without its trace: remove the orphan sidecar.
            self.evict(key);
            return None;
        };
        if !Self::trace_is_sound(&bytes, transactions) {
            self.evict(key);
            return None;
        }
        Some(CapturedStream::new(key, bytes, transactions, run))
    }

    /// Full-decode validation: v2 header, every transaction decodable,
    /// footer checksum good, count as the sidecar claims.
    fn trace_is_sound(bytes: &[u8], transactions: u64) -> bool {
        let Ok(reader) = TraceReader::new(bytes) else {
            return false;
        };
        if reader.version() != 2 {
            return false;
        }
        let mut n = 0u64;
        for txn in reader {
            if txn.is_err() {
                return false;
            }
            n += 1;
        }
        n == transactions
    }

    /// Stores `stream` under `key`, atomically (temp files + rename;
    /// the trace lands before the sidecar, so a crash between the two
    /// renames leaves an orphan trace that the next load cleans up).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers may treat a failed store
    /// as non-fatal (the capture is still usable in memory, only the
    /// cross-process shortcut is lost).
    pub fn store(&self, key: &JobKey, stream: &CapturedStream) -> std::io::Result<()> {
        let trace = self.trace_path(key);
        let dir = trace.parent().expect("trace path has a parent");
        std::fs::create_dir_all(dir)?;
        let pid = std::process::id();
        let trace_tmp = dir.join(format!("{}.tmp.{pid}", key.hex()));
        std::fs::write(&trace_tmp, stream.encoded_bytes())?;
        std::fs::rename(&trace_tmp, &trace)?;
        let payload = JsonValue::object([
            ("transactions", JsonValue::U64(stream.transactions())),
            ("run", run_to_json(stream.run())),
        ]);
        let doc = record::seal(
            vec![("key".to_owned(), JsonValue::from(key.canonical()))],
            "capture",
            &payload,
        );
        let meta = self.meta_path(key);
        let meta_tmp = dir.join(format!("{}.json.tmp.{pid}", key.hex()));
        std::fs::write(&meta_tmp, doc.to_json_pretty())?;
        std::fs::rename(&meta_tmp, &meta)
    }

    /// Number of complete entries (trace + sidecar pairs) on disk.
    pub fn len(&self) -> usize {
        let Ok(shards) = std::fs::read_dir(&self.root) else {
            return 0;
        };
        shards
            .flatten()
            .filter_map(|d| std::fs::read_dir(d.path()).ok())
            .flat_map(|files| files.flatten())
            .filter(|f| {
                let p = f.path();
                p.extension().is_some_and(|e| e == "trace") && p.with_extension("json").exists()
            })
            .count()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How often each capture path was taken, as observed by a
/// [`CaptureBroker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CaptureCounters {
    /// Streams captured by actually running the co-simulation.
    pub captures: u64,
    /// Requests served from a stream already captured in this process.
    pub memory_reuses: u64,
    /// Requests served by loading a stream from the on-disk store.
    pub disk_loads: u64,
}

/// One key's capture slot: the mutex serializes duplicate captures, the
/// inner option is the stream once someone has produced it.
type Slot = Arc<Mutex<Option<Arc<CapturedStream>>>>;

/// The in-process rendezvous for captured streams.
///
/// Grid workers ask the broker for the stream behind a key; the first
/// asker captures (running the co-simulation once), every later asker
/// gets the shared [`Arc`]. Duplicate captures are impossible: each key
/// owns a slot mutex held for the duration of its capture, so two
/// workers racing on the *same* key serialize while workers on
/// *different* keys proceed concurrently.
///
/// With an attached [`TraceStore`], captures are persisted and later
/// processes load instead of re-executing — the `--trace-dir` flow.
#[derive(Debug, Default)]
pub struct CaptureBroker {
    slots: Mutex<HashMap<String, Slot>>,
    store: Option<TraceStore>,
    captures: AtomicU64,
    memory_reuses: AtomicU64,
    disk_loads: AtomicU64,
}

impl CaptureBroker {
    /// A broker with no on-disk store: streams live for the process.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// A broker backed by a [`TraceStore`] rooted at `root`.
    pub fn with_store(root: impl Into<PathBuf>) -> Self {
        CaptureBroker {
            store: Some(TraceStore::new(root)),
            ..Self::default()
        }
    }

    /// The attached on-disk store, if any.
    pub fn store(&self) -> Option<&TraceStore> {
        self.store.as_ref()
    }

    /// Returns the stream for `key`, capturing it with `capture` exactly
    /// once per key per process (or loading it from the attached store).
    pub fn stream(
        &self,
        key: &JobKey,
        capture: impl FnOnce() -> CapturedStream,
    ) -> Arc<CapturedStream> {
        let slot = {
            let mut slots = self.slots.lock().expect("capture broker slots poisoned");
            Arc::clone(slots.entry(key.canonical()).or_default())
        };
        let mut guard = slot.lock().expect("capture slot poisoned");
        if let Some(stream) = guard.as_ref() {
            self.memory_reuses.fetch_add(1, Ordering::Relaxed);
            ftrace::instant("trace-reuse", Vec::new());
            return Arc::clone(stream);
        }
        if let Some(store) = &self.store {
            let loaded = {
                let _t = ftrace::span("trace-load");
                store.load(key)
            };
            if let Some(loaded) = loaded {
                self.disk_loads.fetch_add(1, Ordering::Relaxed);
                ftrace::instant("trace-disk-load", Vec::new());
                let stream = Arc::new(loaded);
                *guard = Some(Arc::clone(&stream));
                return stream;
            }
        }
        self.captures.fetch_add(1, Ordering::Relaxed);
        let stream = Arc::new(capture());
        if let Some(store) = &self.store {
            // A failed store is non-fatal: the capture still serves this
            // process, only the cross-process shortcut is lost.
            let _ = store.store(key, &stream);
        }
        *guard = Some(Arc::clone(&stream));
        stream
    }

    /// Snapshot of the capture/reuse counters.
    pub fn counters(&self) -> CaptureCounters {
        CaptureCounters {
            captures: self.captures.load(Ordering::Relaxed),
            memory_reuses: self.memory_reuses.load(Ordering::Relaxed),
            disk_loads: self.disk_loads.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::file::TraceWriter;
    use cmpsim_trace::{Addr, FsbKind};

    fn sample_run() -> RunSummary {
        RunSummary {
            instructions: 123_456,
            memory_instructions: 45_000,
            loads: 30_000,
            stores: 15_000,
            cycles: 123_456,
            per_core: vec![
                CoreSummary {
                    instructions: 61_728,
                    memory_instructions: 22_500,
                    loads: 15_000,
                    slices: 10,
                },
                CoreSummary {
                    instructions: 61_728,
                    memory_instructions: 22_500,
                    loads: 15_000,
                    slices: 9,
                },
            ],
            l1: CacheStats {
                accesses: 45_000,
                hits: 40_000,
                misses: 5_000,
                ..CacheStats::default()
            },
            l2: CacheStats {
                accesses: 5_000,
                hits: 3_000,
                misses: 2_000,
                writebacks: 700,
                ..CacheStats::default()
            },
            bus_transactions: 2_700,
        }
    }

    fn sample_capture(key: &JobKey) -> CapturedStream {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        for i in 0..100u64 {
            let kind = if i % 3 == 0 {
                FsbKind::WriteLine
            } else {
                FsbKind::ReadLine
            };
            w.write(&FsbTransaction::new(i * 7, kind, Addr::new((i % 16) * 64)))
                .unwrap();
        }
        let n = w.count();
        let bytes = w.finish().unwrap();
        CapturedStream::new(key, bytes, n, sample_run())
    }

    fn temp_store(tag: &str) -> TraceStore {
        let root =
            std::env::temp_dir().join(format!("cmpsim_trace_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        TraceStore::new(root)
    }

    #[test]
    fn run_summary_json_roundtrip_is_exact() {
        let run = sample_run();
        let back = run_from_json(&run_to_json(&run)).unwrap();
        assert_eq!(back.instructions, run.instructions);
        assert_eq!(back.cycles, run.cycles);
        assert_eq!(back.per_core, run.per_core);
        assert_eq!(back.l1, run.l1);
        assert_eq!(back.l2, run.l2);
        assert_eq!(back.bus_transactions, run.bus_transactions);
    }

    #[test]
    fn run_summary_json_rejects_missing_fields() {
        let mut doc = run_to_json(&sample_run());
        if let JsonValue::Object(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "cycles");
        }
        assert!(run_from_json(&doc).is_none());
    }

    #[test]
    fn captured_stream_iterates_decoded_transactions() {
        let key = JobKey::new("fsb-stream").field("workload", "FIMI");
        let stream = sample_capture(&key);
        let txns: Vec<FsbTransaction> = stream.iter().collect();
        assert_eq!(txns.len() as u64, stream.transactions());
        assert_eq!(
            txns[0],
            FsbTransaction::new(0, FsbKind::WriteLine, Addr::new(0))
        );
        // Iterating twice yields the same sequence (the decode is pure).
        assert_eq!(stream.iter().collect::<Vec<_>>(), txns);
    }

    #[test]
    fn store_load_roundtrips() {
        let store = temp_store("roundtrip");
        let key = JobKey::new("fsb-stream").field("workload", "SHOT");
        assert!(store.load(&key).is_none());
        let stream = sample_capture(&key);
        store.store(&key, &stream).unwrap();
        assert_eq!(store.len(), 1);
        let back = store.load(&key).unwrap();
        assert_eq!(back.encoded_bytes(), stream.encoded_bytes());
        assert_eq!(back.transactions(), stream.transactions());
        assert_eq!(back.run().instructions, stream.run().instructions);
        assert_eq!(back.canonical_key(), key.canonical());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn torn_trace_is_evicted() {
        let store = temp_store("torn");
        let key = JobKey::new("fsb-stream").field("workload", "SNP");
        store.store(&key, &sample_capture(&key)).unwrap();
        // Truncate the trace mid-body: the footer is gone, the decode
        // scan must reject it and evict both files.
        let path = store.trace_path(&key);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 12]).unwrap();
        assert!(store.load(&key).is_none());
        assert!(
            !store.trace_path(&key).exists(),
            "torn trace must be evicted"
        );
        assert!(!store.meta_path(&key).exists(), "its sidecar too");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn tampered_sidecar_is_evicted() {
        let store = temp_store("tamper");
        let key = JobKey::new("fsb-stream").field("workload", "MDS");
        store.store(&key, &sample_capture(&key)).unwrap();
        let meta = store.meta_path(&key);
        let doctored = std::fs::read_to_string(&meta)
            .unwrap()
            .replace("123456", "999999");
        std::fs::write(&meta, doctored).unwrap();
        assert!(
            store.load(&key).is_none(),
            "tampered sidecar must not serve"
        );
        assert!(!meta.exists());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn fingerprint_collision_is_a_miss_without_eviction() {
        let store = temp_store("collision");
        let key = JobKey::new("fsb-stream").field("workload", "PLSA");
        store.store(&key, &sample_capture(&key)).unwrap();
        // Simulate a collision: another key whose entry paths we force
        // onto this one by rewriting the sidecar's stored key.
        let meta = store.meta_path(&key);
        let text = std::fs::read_to_string(&meta).unwrap();
        // Rewriting the key breaks the seal; re-seal with the foreign key.
        let doc = parse(&text).unwrap();
        let payload = record::verify(&doc, "capture").unwrap();
        let foreign = record::seal(
            vec![("key".to_owned(), JsonValue::from("someone=else"))],
            "capture",
            &payload,
        );
        std::fs::write(&meta, foreign.to_json_pretty()).unwrap();
        assert!(store.load(&key).is_none());
        assert!(meta.exists(), "a collision is someone else's valid entry");
        assert!(store.trace_path(&key).exists());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn sidecar_without_trace_is_cleaned_up() {
        let store = temp_store("orphan");
        let key = JobKey::new("fsb-stream").field("workload", "LSI");
        store.store(&key, &sample_capture(&key)).unwrap();
        std::fs::remove_file(store.trace_path(&key)).unwrap();
        assert!(store.load(&key).is_none());
        assert!(!store.meta_path(&key).exists(), "orphan sidecar removed");
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn broker_captures_once_and_counts_reuses() {
        let broker = CaptureBroker::in_memory();
        let key = JobKey::new("fsb-stream").field("workload", "FIMI");
        let mut calls = 0u32;
        for _ in 0..3 {
            let s = broker.stream(&key, || {
                calls += 1;
                sample_capture(&key)
            });
            assert_eq!(s.transactions(), 100);
        }
        assert_eq!(calls, 1, "capture closure must run exactly once");
        assert_eq!(
            broker.counters(),
            CaptureCounters {
                captures: 1,
                memory_reuses: 2,
                disk_loads: 0
            }
        );
        // A different key captures independently.
        let other = JobKey::new("fsb-stream").field("workload", "SHOT");
        broker.stream(&other, || sample_capture(&other));
        assert_eq!(broker.counters().captures, 2);
    }

    #[test]
    fn broker_with_store_persists_and_loads() {
        let root = std::env::temp_dir().join(format!("cmpsim_broker_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let key = JobKey::new("fsb-stream").field("workload", "SVM_RFE");
        {
            let broker = CaptureBroker::with_store(&root);
            broker.stream(&key, || sample_capture(&key));
            assert_eq!(broker.counters().captures, 1);
        }
        // A fresh broker (a new process, conceptually) loads from disk.
        let broker = CaptureBroker::with_store(&root);
        let s = broker.stream(&key, || panic!("must load, not capture"));
        assert_eq!(s.transactions(), 100);
        assert_eq!(
            broker.counters(),
            CaptureCounters {
                captures: 0,
                memory_reuses: 0,
                disk_loads: 1
            }
        );
        // Second ask in the same process is a memory reuse, not a re-load.
        broker.stream(&key, || panic!("must reuse, not capture"));
        assert_eq!(broker.counters().memory_reuses, 1);
        let _ = std::fs::remove_dir_all(&root);
    }
}
