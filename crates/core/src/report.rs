//! Text rendering of tables and figures, in the layout the paper uses.

use crate::experiment::{CacheSizeCurve, LineSizeCurve, PrefetchResult, SharingResult, Table2Row};
use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns. A table with no columns renders as
    /// the empty string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        if cols == 0 {
            return String::new();
        }
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Formats a byte count the way the paper labels its x-axes (1GB, 4MB,
/// 64KB). Falls through to the next-smaller unit when the count is not
/// a whole multiple.
pub fn human_bytes(bytes: u64) -> String {
    if bytes >= 1 << 30 && bytes.is_multiple_of(1 << 30) {
        format!("{}GB", bytes >> 30)
    } else if bytes >= 1 << 20 && bytes.is_multiple_of(1 << 20) {
        format!("{}MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}KB", bytes >> 10)
    } else {
        format!("{bytes}B")
    }
}

/// Renders Table 2 in the paper's column order.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut t = TextTable::new([
        "Workload",
        "IPC",
        "Instr (M)",
        "%Mem",
        "%MemRead",
        "DL1 APKI",
        "DL1 MPKI",
        "DL2 MPKI",
    ]);
    for r in rows {
        t.row([
            r.workload.to_string(),
            format!("{:.2}", r.ipc),
            format!("{:.1}", r.instructions as f64 / 1e6),
            format!("{:.2}%", r.memory_fraction * 100.0),
            format!("{:.2}%", r.read_fraction * 100.0),
            format!("{:.0}", r.dl1_apki),
            format!("{:.2}", r.dl1_mpki),
            format!("{:.2}", r.dl2_mpki),
        ]);
    }
    t.render()
}

/// Renders a Figure 4/5/6 panel: one row per cache size, one column per
/// workload, cells in misses-per-1000-instructions.
pub fn render_cache_size_figure(curves: &[CacheSizeCurve]) -> String {
    let Some(first) = curves.first() else {
        return String::new();
    };
    let mut headers = vec!["LLC size".to_owned()];
    headers.extend(curves.iter().map(|c| c.workload.to_string()));
    let mut t = TextTable::new(headers);
    for (i, p) in first.points.iter().enumerate() {
        let mut row = vec![human_bytes(p.llc_bytes)];
        for c in curves {
            row.push(format!("{:.3}", c.points[i].mpki));
        }
        t.row(row);
    }
    t.render()
}

/// Renders the Figure 7 panel: one row per line size.
pub fn render_line_size_figure(curves: &[LineSizeCurve]) -> String {
    let Some(first) = curves.first() else {
        return String::new();
    };
    let mut headers = vec!["Line size".to_owned()];
    headers.extend(curves.iter().map(|c| c.workload.to_string()));
    let mut t = TextTable::new(headers);
    for (i, p) in first.points.iter().enumerate() {
        let mut row = vec![human_bytes(p.line_bytes)];
        for c in curves {
            row.push(format!("{:.3}", c.points[i].mpki));
        }
        t.row(row);
    }
    t.render()
}

/// Renders the Figure 8 panel: serial and parallel prefetch speedups as
/// percentage gains.
pub fn render_prefetch_figure(results: &[PrefetchResult]) -> String {
    let mut t = TextTable::new(["Workload", "Serial gain", "16-thread gain", "Bus util"]);
    for r in results {
        t.row([
            r.workload.to_string(),
            format!("{:+.1}%", (r.serial_speedup - 1.0) * 100.0),
            format!("{:+.1}%", (r.parallel_speedup - 1.0) * 100.0),
            format!("{:.0}%", r.parallel_utilization * 100.0),
        ]);
    }
    t.render()
}

/// Renders a set of labeled series as an ASCII line chart, log-x —
/// the shape-at-a-glance view of the MPKI figures.
///
/// Each series is `(label, points)` with points as `(x, y)`; all series
/// must share the same x values.
pub fn render_ascii_chart(series: &[(String, Vec<(u64, f64)>)], height: usize) -> String {
    let Some((_, first)) = series.first() else {
        return String::new();
    };
    if first.is_empty() {
        return String::new();
    }
    let y_max = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|p| p.1))
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let width = first.len();
    let marks: &[u8] = b"*o+x#@%&";
    let mut grid = vec![vec![b' '; width * 8]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        for (xi, &(_, y)) in pts.iter().enumerate() {
            let row = ((1.0 - y / y_max) * (height - 1) as f64).round() as usize;
            let col = xi * 8 + 4;
            let cell = &mut grid[row.min(height - 1)][col];
            *cell = if *cell == b' ' {
                marks[si % marks.len()]
            } else {
                b'!'
            }; // collision marker
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "MPKI (max {y_max:.2})");
    for row in &grid {
        out.push('|');
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width * 8));
    out.push('\n');
    out.push(' ');
    for &(x, _) in first {
        let _ = write!(out, "{:^8}", human_bytes(x));
    }
    out.push('\n');
    for (si, (label, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} = {}", marks[si % marks.len()] as char, label);
    }
    out
}

/// Renders the sharing-category ablation.
pub fn render_sharing(results: &[SharingResult]) -> String {
    let mut t = TextTable::new(["Workload", "MPKI x8 threads / x1", "Paper category"]);
    for r in results {
        t.row([
            r.workload.to_string(),
            format!("{:.2}x", r.miss_growth_8x),
            if r.paper_category_shared {
                "(a) shared".to_owned()
            } else {
                "(b) private".to_owned()
            },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{CachePoint, CmpClass};
    use cmpsim_workloads::WorkloadId;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(["A", "Thing"]);
        t.row(["1", "x"]);
        t.row(["22", "yyyy"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("A"));
        assert!(lines[1].starts_with('-'));
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["A", "B", "C"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let _ = t.render();
    }

    #[test]
    fn human_bytes_forms() {
        assert_eq!(human_bytes(4 << 20), "4MB");
        assert_eq!(human_bytes(256 << 10), "256KB");
        assert_eq!(human_bytes(64), "64B");
    }

    #[test]
    fn human_bytes_gb_scale() {
        assert_eq!(human_bytes(1 << 30), "1GB");
        assert_eq!(human_bytes(4u64 << 30), "4GB");
        // Not a whole GB: falls back to MB (the 64/128-core projections
        // sweep LLCs past 1 GB in power-of-two steps, so 1536MB stays MB).
        assert_eq!(human_bytes(1536 << 20), "1536MB");
    }

    #[test]
    fn zero_column_table_renders_empty() {
        let headers: [&str; 0] = [];
        let mut t = TextTable::new(headers);
        t.row(["ignored"]);
        assert_eq!(t.render(), "");
    }

    #[test]
    fn figure_rendering_includes_all_workloads() {
        let curve = |w| CacheSizeCurve {
            workload: w,
            cmp: CmpClass::Small,
            points: vec![CachePoint {
                llc_bytes: 4 << 20,
                mpki: 1.5,
                misses: 10,
                instructions: 1000,
            }],
        };
        let s = render_cache_size_figure(&[curve(WorkloadId::Snp), curve(WorkloadId::Mds)]);
        assert!(s.contains("SNP"));
        assert!(s.contains("MDS"));
        assert!(s.contains("4MB"));
        assert!(s.contains("1.500"));
    }

    #[test]
    fn empty_figure_is_empty_string() {
        assert_eq!(render_cache_size_figure(&[]), "");
        assert_eq!(render_line_size_figure(&[]), "");
        assert_eq!(render_ascii_chart(&[], 8), "");
    }

    #[test]
    fn ascii_chart_places_extremes() {
        let series = vec![(
            "W".to_owned(),
            vec![(1u64 << 20, 10.0), (2 << 20, 5.0), (4 << 20, 0.0)],
        )];
        let s = render_ascii_chart(&series, 5);
        let lines: Vec<&str> = s.lines().collect();
        // First data row (top) holds the max point's mark.
        assert!(lines[1].contains('*'), "{s}");
        // Legend present.
        assert!(s.contains("* = W"));
        assert!(s.contains("1MB"));
    }

    #[test]
    fn ascii_chart_marks_collisions() {
        let series = vec![
            ("A".to_owned(), vec![(64u64, 1.0), (128, 1.0)]),
            ("B".to_owned(), vec![(64u64, 1.0), (128, 0.5)]),
        ];
        let s = render_ascii_chart(&series, 4);
        assert!(s.contains('!'), "coincident points must be flagged: {s}");
    }
}
