//! Glue between the co-simulation and the telemetry layer: run
//! manifests capturing the full [`CoSimConfig`], and assembly of a
//! [`TelemetryReport`] document from a [`CoSimReport`].
//!
//! Every harness binary uses this module so that each text result gains
//! a machine-readable JSON twin with the same provenance.

use crate::cosim::{CoSimConfig, CoSimReport};
use cmpsim_telemetry::{JsonValue, RunManifest, SpanProfiler, TelemetryReport};
use cmpsim_workloads::{Scale, WorkloadId};

/// Builds a manifest for one run of `experiment`, recording the full
/// co-simulation configuration as ordered `config` entries so the run
/// can be reproduced from the JSON alone.
pub fn manifest(
    experiment: &str,
    cfg: &CoSimConfig,
    workload: WorkloadId,
    scale: Scale,
    seed: u64,
) -> RunManifest {
    let mut m = RunManifest::new(experiment, env!("CARGO_PKG_VERSION"))
        .with_workloads([workload])
        .with_scale_seed(scale, seed)
        .config_entry("cores", cfg.cores as u64)
        .config_entry("llc_bytes", cfg.llc.size_bytes())
        .config_entry("llc_line_bytes", cfg.llc.line_bytes())
        .config_entry("llc_associativity", u64::from(cfg.llc.associativity()))
        .config_entry("llc_replacement", cfg.llc.replacement().to_string())
        .config_entry("banks", u64::from(cfg.banks))
        .config_entry("sample_period", cfg.sample_period)
        .config_entry("l1_bytes", cfg.hierarchy.l1.size_bytes())
        .config_entry("l2_bytes", cfg.hierarchy.l2.map_or(0, |l2| l2.size_bytes()));
    m = match cfg.prefetch {
        Some(pf) => m
            .config_entry("prefetch", true)
            .config_entry("prefetch_degree", u64::from(pf.degree))
            .config_entry("prefetch_distance", u64::from(pf.distance)),
        None => m.config_entry("prefetch", false),
    };
    m.config_entry(
        "host_noise",
        cfg.host_noise.map_or(JsonValue::Bool(false), |n| {
            JsonValue::U64(u64::from(n.transactions_per_switch))
        }),
    )
}

/// Assembles the full telemetry document for one co-simulated run: the
/// manifest, the counter registry the report carries, the per-interval
/// timeline derived from the 500 µs samples, and the stage spans.
pub fn telemetry_report(
    manifest: RunManifest,
    report: &CoSimReport,
    spans: SpanProfiler,
) -> TelemetryReport {
    let mut t = TelemetryReport::new(manifest);
    t.metrics = report.metrics.clone();
    for s in &report.samples {
        t.timeline
            .push_cumulative(s.cycle, s.instructions, s.accesses, s.misses);
    }
    t.spans = spans;
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::CoSimulation;

    #[test]
    fn manifest_records_full_config() {
        let cfg = CoSimConfig::new(8, 1 << 21).unwrap();
        let m = manifest("cmpsim", &cfg, WorkloadId::Fimi, Scale::tiny(), 7);
        assert_eq!(m.config_value("cores").unwrap().as_u64(), Some(8));
        assert_eq!(m.config_value("llc_bytes").unwrap().as_u64(), Some(1 << 21));
        assert_eq!(m.config_value("banks").unwrap().as_u64(), Some(4));
        assert_eq!(m.config_value("prefetch").unwrap().as_bool(), Some(false));
        assert_eq!(m.workloads, vec!["FIMI".to_string()]);
        assert_eq!(m.scale, Scale::tiny().to_string());
    }

    #[test]
    fn document_includes_interval_series() {
        let mut cfg = CoSimConfig::new(2, 1 << 20).unwrap();
        cfg.sample_period = 1000;
        let wl = WorkloadId::Fimi.build(Scale::tiny(), 7);
        let mut spans = SpanProfiler::new();
        let report = CoSimulation::new(cfg).run_profiled(wl.as_ref(), &mut spans);
        let m = manifest("test", &cfg, WorkloadId::Fimi, Scale::tiny(), 7);
        let doc = telemetry_report(m, &report, spans).to_json();
        let intervals = doc.get("intervals").unwrap().as_array().unwrap();
        assert!(!intervals.is_empty());
        assert!(intervals[0].get("mpki").is_some());
        assert!(!doc.get("spans").unwrap().as_array().unwrap().is_empty());
        assert!(!doc.get("metrics").unwrap().as_array().unwrap().is_empty());
    }
}
