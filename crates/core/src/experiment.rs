//! The paper's experiments, each reproducing one table or figure.

use crate::capture::CaptureBroker;
use crate::cosim::{CoSimConfig, CoSimReport, CoSimulation};
use cmpsim_cache::{CacheConfig, HierarchyConfig, ReplacementPolicy};
use cmpsim_dragonhead::{Dragonhead, DragonheadConfig, Sample};
use cmpsim_memsys::{MachineConfig, RunCounts};
use cmpsim_prefetch::StrideConfig;
use cmpsim_softsdv::RunSummary;
use cmpsim_workloads::{Scale, WorkloadId};
use std::fmt;

/// The three CMP sizes of the study (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpClass {
    /// Small-scale CMP: 8 cores.
    Small,
    /// Medium-scale CMP: 16 cores.
    Medium,
    /// Large-scale CMP: 32 cores.
    Large,
}

impl CmpClass {
    /// All three classes in paper order.
    pub const fn all() -> [CmpClass; 3] {
        [CmpClass::Small, CmpClass::Medium, CmpClass::Large]
    }

    /// Core count of the class.
    pub const fn cores(self) -> usize {
        match self {
            CmpClass::Small => 8,
            CmpClass::Medium => 16,
            CmpClass::Large => 32,
        }
    }

    /// Paper abbreviation.
    pub const fn name(self) -> &'static str {
        match self {
            CmpClass::Small => "SCMP",
            CmpClass::Medium => "MCMP",
            CmpClass::Large => "LCMP",
        }
    }
}

impl fmt::Display for CmpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CmpClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CmpClass::all()
            .into_iter()
            .find(|c| c.name() == s)
            .ok_or_else(|| format!("unknown CMP class `{s}` (expected SCMP, MCMP, or LCMP)"))
    }
}

/// The paper's LLC size sweep (Figures 4–6): 4 MB to 256 MB, scaled.
pub fn paper_cache_sizes(scale: Scale) -> Vec<u64> {
    [4u64, 8, 16, 32, 64, 128, 256]
        .iter()
        .map(|&mb| scale.pow2_bytes(mb << 20, 16 << 10))
        .collect()
}

/// The paper's line-size sweep (Figure 7): 64 B to 4096 B.
pub fn paper_line_sizes() -> Vec<u64> {
    vec![64, 128, 256, 512, 1024, 2048, 4096]
}

/// Builds an LRU LLC config of `size` bytes and `line`-byte lines,
/// clamping the associativity so the geometry stays valid for small
/// scaled-down caches with very large lines (each of the four Dragonhead
/// banks must still hold at least one full set).
///
/// The clamp works in three steps: the per-bank capacity (`size / 4`)
/// bounds how many `line`-byte ways a bank can hold at all
/// (`max_ways`); the preferred associativity is limited to that bound
/// and rounded to a power of two; and `min(1 << max_ways.ilog2())`
/// caps the rounded value at the largest power of two that still fits —
/// on the smallest scaled caches with 4096-byte lines this bottoms out
/// at direct-mapped (one way).
///
/// # Errors
///
/// Returns a [`ConfigError`] when no valid geometry exists even after
/// clamping — e.g. a capacity smaller than a single line, or a
/// non-power-of-two capacity.
pub fn llc_config(
    size: u64,
    line: u64,
    preferred_ways: u32,
) -> Result<CacheConfig, cmpsim_cache::ConfigError> {
    let per_bank = size / 4;
    let max_ways = (per_bank / line).max(1);
    let ways = u64::from(preferred_ways)
        .min(max_ways)
        .next_power_of_two()
        .min(1 << max_ways.ilog2()) as u32;
    CacheConfig::lru(size, line, ways.max(1))
}

/// One (cache size, MPKI) measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachePoint {
    /// Emulated LLC capacity in bytes.
    pub llc_bytes: u64,
    /// LLC misses per 1000 instructions.
    pub mpki: f64,
    /// Raw miss count.
    pub misses: u64,
    /// Instructions retired by the run.
    pub instructions: u64,
}

/// The MPKI-vs-size curve of one workload on one CMP class.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSizeCurve {
    /// Which workload.
    pub workload: WorkloadId,
    /// Which CMP class (8/16/32 cores).
    pub cmp: CmpClass,
    /// Points in ascending cache-size order.
    pub points: Vec<CachePoint>,
}

impl CacheSizeCurve {
    /// The smallest cache size at which MPKI has dropped below
    /// `fraction` of its smallest-cache value — the "working-set knee"
    /// §4.3 reads off the figures. `None` if the curve never drops that
    /// far (MDS's behaviour).
    pub fn knee(&self, fraction: f64) -> Option<u64> {
        let base = self.points.first()?.mpki;
        if base == 0.0 {
            return None;
        }
        self.points
            .iter()
            .find(|p| p.mpki <= base * fraction)
            .map(|p| p.llc_bytes)
    }

    /// Ratio of the last point's MPKI to the first point's (1.0 = flat).
    pub fn flatness(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) if a.mpki > 0.0 => b.mpki / a.mpki,
            _ => 1.0,
        }
    }
}

/// Figures 4–6: LLC miss-per-1000-instructions vs cache size.
#[derive(Debug, Clone, Copy)]
pub struct CacheSizeStudy {
    /// Scale knob applied to workloads *and* cache sizes.
    pub scale: Scale,
    /// CMP class (determines thread count).
    pub cmp: CmpClass,
    /// Dataset seed.
    pub seed: u64,
}

impl CacheSizeStudy {
    /// Study for one CMP class at the given scale.
    pub fn new(scale: Scale, cmp: CmpClass, seed: u64) -> Self {
        CacheSizeStudy { scale, cmp, seed }
    }

    /// Runs one workload across the full size sweep (one platform run,
    /// all cache sizes emulated simultaneously).
    pub fn run(&self, workload: WorkloadId) -> CacheSizeCurve {
        self.run_with_sizes(workload, &paper_cache_sizes(self.scale))
    }

    /// Runs one workload across a custom size list.
    pub fn run_with_sizes(&self, workload: WorkloadId, sizes: &[u64]) -> CacheSizeCurve {
        let wl = workload.build(self.scale, self.seed);
        let cfg = CoSimConfig::scaled(self.cmp.cores(), sizes[0], self.scale)
            .expect("paper sizes are valid geometries");
        let llcs: Vec<CacheConfig> = sizes
            .iter()
            .map(|&s| CacheConfig::lru(s, 64, 16).expect("paper sizes are valid"))
            .collect();
        let reports = CoSimulation::new(cfg).run_sweep(wl.as_ref(), &llcs);
        CacheSizeCurve {
            workload,
            cmp: self.cmp,
            points: reports.iter().map(point_of).collect(),
        }
    }

    /// Like [`run`](CacheSizeStudy::run), but driven from a captured
    /// stream obtained through `broker`: the workload executes at most
    /// once per process — or not at all, when the broker's on-disk
    /// store already holds the stream — and every size is a replay.
    pub fn run_captured(&self, broker: &CaptureBroker, workload: WorkloadId) -> CacheSizeCurve {
        self.run_with_sizes_captured(broker, workload, &paper_cache_sizes(self.scale))
    }

    /// Captured twin of
    /// [`run_with_sizes`](CacheSizeStudy::run_with_sizes); the two
    /// produce identical curves.
    pub fn run_with_sizes_captured(
        &self,
        broker: &CaptureBroker,
        workload: WorkloadId,
        sizes: &[u64],
    ) -> CacheSizeCurve {
        let cfg = CoSimConfig::scaled(self.cmp.cores(), sizes[0], self.scale)
            .expect("paper sizes are valid geometries");
        let llcs: Vec<CacheConfig> = sizes
            .iter()
            .map(|&s| CacheConfig::lru(s, 64, 16).expect("paper sizes are valid"))
            .collect();
        let sim = CoSimulation::new(cfg);
        let stream = sim.captured(broker, workload, self.scale, self.seed);
        let reports = sim.replay_sweep(&stream, &llcs);
        CacheSizeCurve {
            workload,
            cmp: self.cmp,
            points: reports.iter().map(point_of).collect(),
        }
    }

    /// Execute-per-cell baseline: one *full* co-simulation per size,
    /// the way a single FPGA board forced the paper to measure. Exists
    /// as the wall-clock baseline for the capture/replay speedup
    /// recorded in `EXPERIMENTS.md`; produces the same curve as
    /// [`run_with_sizes`](CacheSizeStudy::run_with_sizes).
    pub fn run_each(&self, workload: WorkloadId, sizes: &[u64]) -> CacheSizeCurve {
        let points = sizes
            .iter()
            .map(|&s| {
                let wl = workload.build(self.scale, self.seed);
                let cfg = CoSimConfig::scaled(self.cmp.cores(), s, self.scale)
                    .expect("paper sizes are valid geometries");
                let r = CoSimulation::new(cfg).run(wl.as_ref());
                point_of(&r)
            })
            .collect();
        CacheSizeCurve {
            workload,
            cmp: self.cmp,
            points,
        }
    }

    /// Runs all eight workloads.
    pub fn run_all(&self) -> Vec<CacheSizeCurve> {
        WorkloadId::all().iter().map(|&w| self.run(w)).collect()
    }

    /// Captured twin of [`run_all`](CacheSizeStudy::run_all).
    pub fn run_all_captured(&self, broker: &CaptureBroker) -> Vec<CacheSizeCurve> {
        WorkloadId::all()
            .iter()
            .map(|&w| self.run_captured(broker, w))
            .collect()
    }
}

fn point_of(r: &CoSimReport) -> CachePoint {
    CachePoint {
        llc_bytes: r.llc_bytes,
        mpki: r.mpki,
        misses: r.llc.misses,
        instructions: r.run.instructions,
    }
}

/// One (line size, MPKI) measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinePoint {
    /// LLC line size in bytes.
    pub line_bytes: u64,
    /// LLC misses per 1000 instructions.
    pub mpki: f64,
}

/// The line-size sensitivity curve of one workload (Figure 7).
#[derive(Debug, Clone, PartialEq)]
pub struct LineSizeCurve {
    /// Which workload.
    pub workload: WorkloadId,
    /// Points in ascending line-size order.
    pub points: Vec<LinePoint>,
}

impl LineSizeCurve {
    /// MPKI improvement factor from the first line size to `line`.
    pub fn improvement_at(&self, line: u64) -> f64 {
        let base = self.points.first().map(|p| p.mpki).unwrap_or(0.0);
        let at = self
            .points
            .iter()
            .find(|p| p.line_bytes == line)
            .map(|p| p.mpki)
            .unwrap_or(base);
        if at == 0.0 {
            f64::INFINITY
        } else {
            base / at
        }
    }
}

/// Figure 7: line-size sensitivity on the LCMP with a 32 MB LLC.
#[derive(Debug, Clone, Copy)]
pub struct LineSizeStudy {
    /// Scale knob.
    pub scale: Scale,
    /// Dataset seed.
    pub seed: u64,
    /// Thread count (paper: 32 — LCMP).
    pub cores: usize,
    /// LLC capacity at paper scale (paper: 32 MB), scaled internally.
    pub llc_paper_bytes: u64,
}

impl LineSizeStudy {
    /// The paper's setup: 32 cores, 32 MB LLC.
    pub fn new(scale: Scale, seed: u64) -> Self {
        LineSizeStudy {
            scale,
            seed,
            cores: CmpClass::Large.cores(),
            llc_paper_bytes: 32 << 20,
        }
    }

    /// Runs one workload across the line-size sweep (single platform
    /// run, one board per line size).
    pub fn run(&self, workload: WorkloadId) -> LineSizeCurve {
        let size = self.scale.pow2_bytes(self.llc_paper_bytes, 64 << 10);
        let wl = workload.build(self.scale, self.seed);
        let cfg = CoSimConfig::scaled(self.cores, size, self.scale).expect("valid geometry");
        let llcs: Vec<CacheConfig> = paper_line_sizes()
            .iter()
            .map(|&line| llc_config(size, line, 16).expect("paper line sizes clamp to valid"))
            .collect();
        let reports = CoSimulation::new(cfg).run_sweep(wl.as_ref(), &llcs);
        Self::curve_of(workload, &reports)
    }

    /// Captured twin of [`run`](LineSizeStudy::run): one stream (shared
    /// with every other study at this `{workload, cores, scale, seed}`)
    /// drives one board per line size.
    pub fn run_captured(&self, broker: &CaptureBroker, workload: WorkloadId) -> LineSizeCurve {
        let size = self.scale.pow2_bytes(self.llc_paper_bytes, 64 << 10);
        let cfg = CoSimConfig::scaled(self.cores, size, self.scale).expect("valid geometry");
        let llcs: Vec<CacheConfig> = paper_line_sizes()
            .iter()
            .map(|&line| llc_config(size, line, 16).expect("paper line sizes clamp to valid"))
            .collect();
        let sim = CoSimulation::new(cfg);
        let stream = sim.captured(broker, workload, self.scale, self.seed);
        let reports = sim.replay_sweep(&stream, &llcs);
        Self::curve_of(workload, &reports)
    }

    fn curve_of(workload: WorkloadId, reports: &[CoSimReport]) -> LineSizeCurve {
        LineSizeCurve {
            workload,
            points: reports
                .iter()
                .map(|r| LinePoint {
                    line_bytes: r.llc_line_bytes,
                    mpki: r.mpki,
                })
                .collect(),
        }
    }

    /// Runs all eight workloads.
    pub fn run_all(&self) -> Vec<LineSizeCurve> {
        WorkloadId::all().iter().map(|&w| self.run(w)).collect()
    }
}

/// Figure 8 result for one workload: prefetch speedups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchResult {
    /// Which workload.
    pub workload: WorkloadId,
    /// Speedup of prefetch-on over prefetch-off, single-threaded.
    pub serial_speedup: f64,
    /// Speedup of prefetch-on over prefetch-off, 16 threads.
    pub parallel_speedup: f64,
    /// Bus utilization of the parallel prefetch-on run.
    pub parallel_utilization: f64,
}

/// Figure 8: hardware-prefetching benefit on a 16-way Xeon-class SMP.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchStudy {
    /// Scale knob.
    pub scale: Scale,
    /// Dataset seed.
    pub seed: u64,
    /// Timing model of the measured machine.
    pub machine: MachineConfig,
    /// Parallel thread count (paper: 16).
    pub parallel_threads: usize,
    /// Per-processor cache capacity at paper scale (the Unisys Xeon's
    /// ~1 MB), scaled internally.
    pub cache_paper_bytes: u64,
}

impl PrefetchStudy {
    /// The paper's setup: 16-way Xeon with a stride prefetcher.
    pub fn new(scale: Scale, seed: u64) -> Self {
        PrefetchStudy {
            scale,
            seed,
            machine: MachineConfig::xeon_2007(),
            parallel_threads: 16,
            cache_paper_bytes: 1 << 20,
        }
    }

    /// Runs one workload in serial and parallel mode, prefetch off/on,
    /// and evaluates the timing model. Two platform runs (serial +
    /// parallel); each feeds a prefetch-off and a prefetch-on board.
    pub fn run(&self, workload: WorkloadId) -> PrefetchResult {
        let llc_bytes = self.scale.pow2_bytes(self.cache_paper_bytes, 16 << 10);
        let (serial_speedup, _s_util) = self.speedup(workload, 1, llc_bytes);
        let (parallel_speedup, parallel_utilization) =
            self.speedup(workload, self.parallel_threads, llc_bytes);
        PrefetchResult {
            workload,
            serial_speedup,
            parallel_speedup,
            parallel_utilization,
        }
    }

    /// Captured twin of [`run`](PrefetchStudy::run): the serial and
    /// parallel streams come from `broker`, and the off/on boards are
    /// driven by replay instead of a second execution.
    pub fn run_captured(&self, broker: &CaptureBroker, workload: WorkloadId) -> PrefetchResult {
        let llc_bytes = self.scale.pow2_bytes(self.cache_paper_bytes, 16 << 10);
        let (serial_speedup, _s_util) = self.speedup_captured(broker, workload, 1, llc_bytes);
        let (parallel_speedup, parallel_utilization) =
            self.speedup_captured(broker, workload, self.parallel_threads, llc_bytes);
        PrefetchResult {
            workload,
            serial_speedup,
            parallel_speedup,
            parallel_utilization,
        }
    }

    /// The off/on board pair both paths drive: one plain, one with an
    /// era-accurate prefetcher — a small stream table (concurrent
    /// parallel streams compete for entries, one of the reasons the
    /// paper's parallel runs see different gains than serial ones),
    /// conservative degree and distance.
    fn board_pair(llc: CacheConfig) -> [Dragonhead; 2] {
        let pf = StrideConfig {
            table_entries: 64,
            region_lines: 64,
            degree: 1,
            distance: 2,
            train_threshold: 2,
        };
        [
            Dragonhead::new(DragonheadConfig::new(llc)),
            Dragonhead::new(DragonheadConfig::new(llc).with_prefetch(pf)),
        ]
    }

    fn score(
        &self,
        run: &RunSummary,
        off: &Dragonhead,
        on: &Dragonhead,
        threads: usize,
    ) -> (f64, f64) {
        let counts = |dh: &Dragonhead| RunCounts {
            instructions: run.instructions,
            l2_hits: run.l2.hits,
            llc_hits: dh.stats().hits,
            mem_fills: dh.stats().misses,
            prefetch_fills: dh.prefetch_fills(),
            mem_writebacks: dh.stats().writebacks + dh.writebacks_to_memory(),
            threads: threads as u32,
        };
        let t_off = self.machine.evaluate(&counts(off));
        let t_on = self.machine.evaluate(&counts(on));
        (t_on.speedup_over(&t_off), t_on.utilization)
    }

    fn speedup(&self, workload: WorkloadId, threads: usize, llc_bytes: u64) -> (f64, f64) {
        let wl = workload.build(self.scale, self.seed);
        let cfg = CoSimConfig::scaled(threads, llc_bytes, self.scale).expect("valid geometry");
        let llc = CacheConfig::lru(llc_bytes, 64, 16).expect("valid geometry");
        let mut platform = cmpsim_softsdv::VirtualPlatform::new(
            {
                let mut p = cmpsim_softsdv::PlatformConfig::new(threads);
                p.hierarchy = cfg.hierarchy;
                p
            },
            wl.as_ref(),
        );
        let mut boards = Self::board_pair(llc);
        struct Pair<'a>(&'a mut [Dragonhead; 2]);
        impl cmpsim_softsdv::FsbListener for Pair<'_> {
            fn transaction(&mut self, txn: &cmpsim_trace::FsbTransaction) {
                self.0[0].observe(txn);
                self.0[1].observe(txn);
            }
        }
        let run = platform.run(&mut Pair(&mut boards));
        self.score(&run, &boards[0], &boards[1], threads)
    }

    fn speedup_captured(
        &self,
        broker: &CaptureBroker,
        workload: WorkloadId,
        threads: usize,
        llc_bytes: u64,
    ) -> (f64, f64) {
        let cfg = CoSimConfig::scaled(threads, llc_bytes, self.scale).expect("valid geometry");
        let llc = CacheConfig::lru(llc_bytes, 64, 16).expect("valid geometry");
        let sim = CoSimulation::new(cfg);
        let stream = sim.captured(broker, workload, self.scale, self.seed);
        let mut boards = Self::board_pair(llc);
        cmpsim_dragonhead::replay(stream.iter(), &mut boards, stream.run().cycles)
            .expect("captured platform cycles are monotone");
        self.score(stream.run(), &boards[0], &boards[1], threads)
    }

    /// Runs all eight workloads.
    pub fn run_all(&self) -> Vec<PrefetchResult> {
        WorkloadId::all().iter().map(|&w| self.run(w)).collect()
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Which workload.
    pub workload: WorkloadId,
    /// Modeled IPC on the P4-class machine.
    pub ipc: f64,
    /// Instructions retired (run to completion at this scale).
    pub instructions: u64,
    /// Fraction of instructions referencing memory.
    pub memory_fraction: f64,
    /// Fraction of instructions that are memory reads.
    pub read_fraction: f64,
    /// DL1 accesses per 1000 instructions.
    pub dl1_apki: f64,
    /// DL1 misses per 1000 instructions.
    pub dl1_mpki: f64,
    /// DL2 misses per 1000 instructions.
    pub dl2_mpki: f64,
}

/// Table 2: single-threaded workload characterization on a Pentium 4
/// class machine (8 KB DL1, 512 KB L2).
#[derive(Debug, Clone, Copy)]
pub struct Table2Study {
    /// Scale knob.
    pub scale: Scale,
    /// Dataset seed.
    pub seed: u64,
    /// Timing model for the IPC column.
    pub machine: MachineConfig,
}

impl Table2Study {
    /// The paper's measurement setup.
    pub fn new(scale: Scale, seed: u64) -> Self {
        // The P4's memory latency was long relative to its issue rate;
        // model it with the default Xeon-class parameters.
        Table2Study {
            scale,
            seed,
            machine: MachineConfig::xeon_2007(),
        }
    }

    fn config(&self) -> CoSimConfig {
        let mut cfg = CoSimConfig::new(1, 1 << 20)
            .expect("valid geometry")
            .with_llc(CacheConfig::lru(1 << 20, 64, 16).expect("valid"));
        cfg.hierarchy = HierarchyConfig::pentium4_scaled(self.scale);
        cfg
    }

    /// Characterizes one workload.
    pub fn run(&self, workload: WorkloadId) -> Table2Row {
        let wl = workload.build(self.scale, self.seed);
        let r = CoSimulation::new(self.config()).run(wl.as_ref());
        self.row_of(workload, &r.run)
    }

    /// Captured twin of [`run`](Table2Study::run). Every Table 2 column
    /// is platform-side, so this needs only the stream's run summary —
    /// no board is even replayed.
    pub fn run_captured(&self, broker: &CaptureBroker, workload: WorkloadId) -> Table2Row {
        let sim = CoSimulation::new(self.config());
        let stream = sim.captured(broker, workload, self.scale, self.seed);
        self.row_of(workload, stream.run())
    }

    fn row_of(&self, workload: WorkloadId, run: &RunSummary) -> Table2Row {
        // The P4 has no LLC: memory traffic = DL2 misses.
        let counts = RunCounts {
            instructions: run.instructions,
            l2_hits: run.l2.hits,
            llc_hits: 0,
            mem_fills: run.l2.misses,
            prefetch_fills: 0,
            mem_writebacks: run.l2.writebacks,
            threads: 1,
        };
        let timing = self.machine.evaluate(&counts);
        Table2Row {
            workload,
            ipc: timing.ipc,
            instructions: run.instructions,
            memory_fraction: run.memory_fraction(),
            read_fraction: run.loads as f64 / run.instructions.max(1) as f64,
            dl1_apki: run.l1.apki(run.instructions),
            dl1_mpki: run.l1.mpki(run.instructions),
            dl2_mpki: run.l2.mpki(run.instructions),
        }
    }

    /// All eight rows, in the paper's order.
    pub fn run_all(&self) -> Vec<Table2Row> {
        WorkloadId::all().iter().map(|&w| self.run(w)).collect()
    }
}

/// E-X1: sharing-category ablation — the thread-scaling miss ratio at a
/// fixed LLC distinguishes category (a) (shared primary structure, flat)
/// from category (b) (private per-thread data, growing).
#[derive(Debug, Clone, Copy)]
pub struct SharingStudy {
    /// Scale knob.
    pub scale: Scale,
    /// Dataset seed.
    pub seed: u64,
    /// LLC capacity at paper scale (default 32 MB).
    pub llc_paper_bytes: u64,
}

/// Result of the sharing ablation for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingResult {
    /// Which workload.
    pub workload: WorkloadId,
    /// LLC misses with 8 threads / LLC misses with 1 thread.
    pub miss_growth_8x: f64,
    /// Whether the paper classifies this workload as sharing a primary
    /// structure (category (a)).
    pub paper_category_shared: bool,
}

impl SharingStudy {
    /// Default setup (32 MB LLC at paper scale).
    pub fn new(scale: Scale, seed: u64) -> Self {
        SharingStudy {
            scale,
            seed,
            llc_paper_bytes: 32 << 20,
        }
    }

    /// Runs the ablation for one workload.
    pub fn run(&self, workload: WorkloadId) -> SharingResult {
        let llc = self.scale.pow2_bytes(self.llc_paper_bytes, 64 << 10);
        let misses = |threads: usize| {
            let wl = workload.build(self.scale, self.seed);
            let cfg = CoSimConfig::scaled(threads, llc, self.scale).expect("valid geometry");
            let r = CoSimulation::new(cfg).run(wl.as_ref());
            // Normalize by instructions: MPKI ratio.
            r.mpki
        };
        let single = misses(1);
        let eight = misses(8);
        Self::result_of(workload, single, eight)
    }

    /// Captured twin of [`run`](SharingStudy::run). The two thread
    /// counts are two *different* streams (thread count is
    /// platform-side), but each is shared with every other study at the
    /// same configuration.
    pub fn run_captured(&self, broker: &CaptureBroker, workload: WorkloadId) -> SharingResult {
        let llc = self.scale.pow2_bytes(self.llc_paper_bytes, 64 << 10);
        let mpki = |threads: usize| {
            let cfg = CoSimConfig::scaled(threads, llc, self.scale).expect("valid geometry");
            let sim = CoSimulation::new(cfg);
            let stream = sim.captured(broker, workload, self.scale, self.seed);
            sim.replay(&stream).mpki
        };
        Self::result_of(workload, mpki(1), mpki(8))
    }

    fn result_of(workload: WorkloadId, single: f64, eight: f64) -> SharingResult {
        SharingResult {
            workload,
            miss_growth_8x: if single > 0.0 { eight / single } else { 1.0 },
            paper_category_shared: workload.shares_primary_structure(),
        }
    }
}

/// E-X2: replacement-policy ablation on the Figure 4 sweep.
#[derive(Debug, Clone, Copy)]
pub struct ReplacementStudy {
    /// Scale knob.
    pub scale: Scale,
    /// Dataset seed.
    pub seed: u64,
}

impl ReplacementStudy {
    /// Runs one workload on the SCMP size sweep under each policy,
    /// returning `(policy, curve)` pairs.
    pub fn run(&self, workload: WorkloadId) -> Vec<(ReplacementPolicy, CacheSizeCurve)> {
        let sizes = paper_cache_sizes(self.scale);
        [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ]
        .iter()
        .map(|&policy| {
            let wl = workload.build(self.scale, self.seed);
            let cfg = CoSimConfig::scaled(CmpClass::Small.cores(), sizes[0], self.scale)
                .expect("valid geometry");
            let llcs: Vec<CacheConfig> = sizes
                .iter()
                .map(|&s| {
                    CacheConfig::builder()
                        .size_bytes(s)
                        .line_bytes(64)
                        .associativity(16)
                        .replacement(policy)
                        .build()
                        .expect("valid geometry")
                })
                .collect();
            let reports = CoSimulation::new(cfg).run_sweep(wl.as_ref(), &llcs);
            (
                policy,
                CacheSizeCurve {
                    workload,
                    cmp: CmpClass::Small,
                    points: reports.iter().map(point_of).collect(),
                },
            )
        })
        .collect()
    }

    /// Captured twin of [`run`](ReplacementStudy::run): replacement
    /// policy is purely board-side, so all four policies (28 boards in
    /// total) replay one stream.
    pub fn run_captured(
        &self,
        broker: &CaptureBroker,
        workload: WorkloadId,
    ) -> Vec<(ReplacementPolicy, CacheSizeCurve)> {
        let sizes = paper_cache_sizes(self.scale);
        let cfg = CoSimConfig::scaled(CmpClass::Small.cores(), sizes[0], self.scale)
            .expect("valid geometry");
        let sim = CoSimulation::new(cfg);
        let stream = sim.captured(broker, workload, self.scale, self.seed);
        [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ]
        .iter()
        .map(|&policy| {
            let llcs: Vec<CacheConfig> = sizes
                .iter()
                .map(|&s| {
                    CacheConfig::builder()
                        .size_bytes(s)
                        .line_bytes(64)
                        .associativity(16)
                        .replacement(policy)
                        .build()
                        .expect("valid geometry")
                })
                .collect();
            let reports = sim.replay_sweep(&stream, &llcs);
            (
                policy,
                CacheSizeCurve {
                    workload,
                    cmp: CmpClass::Small,
                    points: reports.iter().map(point_of).collect(),
                },
            )
        })
        .collect()
    }
}

/// E-X3: thread-scaling projection beyond the paper's 32 cores (§4.3
/// speculates about 128-core behaviour).
#[derive(Debug, Clone, Copy)]
pub struct ProjectionStudy {
    /// Scale knob.
    pub scale: Scale,
    /// Dataset seed.
    pub seed: u64,
    /// LLC capacity at paper scale (default 32 MB).
    pub llc_paper_bytes: u64,
}

impl ProjectionStudy {
    /// Default setup.
    pub fn new(scale: Scale, seed: u64) -> Self {
        ProjectionStudy {
            scale,
            seed,
            llc_paper_bytes: 32 << 20,
        }
    }

    /// MPKI at a fixed LLC for each core count in `cores`.
    pub fn run(&self, workload: WorkloadId, cores: &[usize]) -> Vec<(usize, f64)> {
        let llc = self.scale.pow2_bytes(self.llc_paper_bytes, 64 << 10);
        cores
            .iter()
            .map(|&n| {
                let wl = workload.build(self.scale, self.seed);
                let cfg = CoSimConfig::scaled(n, llc, self.scale).expect("valid geometry");
                let r = CoSimulation::new(cfg).run(wl.as_ref());
                (n, r.mpki)
            })
            .collect()
    }

    /// Captured twin of [`run`](ProjectionStudy::run): each core count
    /// is its own stream (platform-side), replayed into the fixed LLC.
    pub fn run_captured(
        &self,
        broker: &CaptureBroker,
        workload: WorkloadId,
        cores: &[usize],
    ) -> Vec<(usize, f64)> {
        let llc = self.scale.pow2_bytes(self.llc_paper_bytes, 64 << 10);
        cores
            .iter()
            .map(|&n| {
                let cfg = CoSimConfig::scaled(n, llc, self.scale).expect("valid geometry");
                let sim = CoSimulation::new(cfg);
                let stream = sim.captured(broker, workload, self.scale, self.seed);
                (n, sim.replay(&stream).mpki)
            })
            .collect()
    }
}

/// E-X4: shared vs private LLC organization.
///
/// The paper's related work (§5) points at the shared/private LLC
/// trade-off (Liu et al., Nurvitadhi et al.); this study runs the same
/// workload against one shared LLC of capacity `C` and against per-core
/// private slices of `C / cores`, both passively emulated on one bus.
/// Category (a) workloads (shared primary structure) lose badly with
/// private slices — every core re-fetches the same lines; category (b)
/// workloads are largely indifferent.
#[derive(Debug, Clone, Copy)]
pub struct LlcOrganizationStudy {
    /// Scale knob.
    pub scale: Scale,
    /// Dataset seed.
    pub seed: u64,
    /// Core count.
    pub cores: usize,
    /// Total LLC capacity at paper scale, scaled internally.
    pub llc_paper_bytes: u64,
}

/// Result of the organization study for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlcOrganizationResult {
    /// Which workload.
    pub workload: WorkloadId,
    /// MPKI with one shared LLC.
    pub shared_mpki: f64,
    /// MPKI with per-core private slices of the same total capacity.
    pub private_mpki: f64,
}

impl LlcOrganizationResult {
    /// Private/shared miss ratio (> 1 means sharing wins).
    pub fn private_penalty(&self) -> f64 {
        if self.shared_mpki == 0.0 {
            1.0
        } else {
            self.private_mpki / self.shared_mpki
        }
    }
}

impl LlcOrganizationStudy {
    /// Default setup: 8 cores, 32 MB-class total capacity.
    pub fn new(scale: Scale, seed: u64) -> Self {
        LlcOrganizationStudy {
            scale,
            seed,
            cores: CmpClass::Small.cores(),
            llc_paper_bytes: 32 << 20,
        }
    }

    /// Runs one workload under both organizations (one platform run,
    /// both organizations snooping the same bus).
    pub fn run(&self, workload: WorkloadId) -> LlcOrganizationResult {
        let total = self.scale.pow2_bytes(self.llc_paper_bytes, 64 << 10);
        let wl = workload.build(self.scale, self.seed);
        let cfg = CoSimConfig::scaled(self.cores, total, self.scale).expect("valid geometry");

        let mut platform = cmpsim_softsdv::VirtualPlatform::new(
            {
                let mut p = cmpsim_softsdv::PlatformConfig::new(self.cores);
                p.hierarchy = cfg.hierarchy;
                p
            },
            wl.as_ref(),
        );
        let mut router = self.router();
        let run = platform.run(&mut router);
        Self::result_of(workload, &router, run.instructions)
    }

    /// Captured twin of [`run`](LlcOrganizationStudy::run): the same
    /// router walks the recorded stream instead of a live bus.
    pub fn run_captured(
        &self,
        broker: &CaptureBroker,
        workload: WorkloadId,
    ) -> LlcOrganizationResult {
        use cmpsim_softsdv::FsbListener as _;
        let total = self.scale.pow2_bytes(self.llc_paper_bytes, 64 << 10);
        let cfg = CoSimConfig::scaled(self.cores, total, self.scale).expect("valid geometry");
        let sim = CoSimulation::new(cfg);
        let stream = sim.captured(broker, workload, self.scale, self.seed);
        let mut router = self.router();
        for txn in stream.iter() {
            router.transaction(&txn);
        }
        Self::result_of(workload, &router, stream.run().instructions)
    }

    fn router(&self) -> OrgRouter {
        let total = self.scale.pow2_bytes(self.llc_paper_bytes, 64 << 10);
        let slice = (total / self.cores as u64).max(16 << 10);
        let shared_cfg = llc_config(total, 64, 16).expect("scaled totals clamp to valid");
        let slice_cfg = llc_config(slice, 64, 16).expect("scaled slices clamp to valid");
        OrgRouter {
            shared: Dragonhead::new(DragonheadConfig::new(shared_cfg)),
            // One private slice per core; each slice gets a full
            // Dragonhead (its AF tracks the same core-id messages, and
            // we route by the *attributed* core).
            slices: (0..self.cores)
                .map(|_| Dragonhead::new(DragonheadConfig::new(slice_cfg)))
                .collect(),
            codec: cmpsim_trace::MessageCodec::new(),
            core: 0,
        }
    }

    fn result_of(
        workload: WorkloadId,
        router: &OrgRouter,
        instructions: u64,
    ) -> LlcOrganizationResult {
        let private_misses: u64 = router.slices.iter().map(|s| s.stats().misses).sum();
        LlcOrganizationResult {
            workload,
            shared_mpki: router.shared.stats().mpki(instructions),
            private_mpki: cmpsim_cache::CacheStats {
                misses: private_misses,
                ..Default::default()
            }
            .mpki(instructions),
        }
    }
}

/// Both organizations on one bus: a shared board plus per-core private
/// slices, with data traffic routed by the attributed core.
struct OrgRouter {
    shared: Dragonhead,
    slices: Vec<Dragonhead>,
    codec: cmpsim_trace::MessageCodec,
    core: usize,
}

impl cmpsim_softsdv::FsbListener for OrgRouter {
    fn transaction(&mut self, txn: &cmpsim_trace::FsbTransaction) {
        self.shared.observe(txn);
        if txn.is_message() {
            if let Ok(Some(cmpsim_trace::Message::CoreId(c))) = self.codec.decode(txn) {
                self.core = c as usize % self.slices.len();
            }
            // Every slice sees every control message.
            for s in self.slices.iter_mut() {
                s.observe(txn);
            }
        } else {
            self.slices[self.core].observe(txn);
        }
    }
}

/// Phase-behavior study: MPKI over time from the 500 µs samples.
///
/// §1 of the paper argues for *run-to-completion* simulation precisely
/// because "it supports changing application phase behavior and also
/// helps choose representative regions for detailed simulation" — this
/// study exposes that time series.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStudy {
    /// Scale knob.
    pub scale: Scale,
    /// Dataset seed.
    pub seed: u64,
    /// Core count.
    pub cores: usize,
    /// LLC capacity at paper scale, scaled internally.
    pub llc_paper_bytes: u64,
    /// Sampling period in bus cycles.
    pub sample_period: u64,
}

/// One interval of the phase series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhasePoint {
    /// End cycle of the interval.
    pub cycle: u64,
    /// Misses per 1000 instructions within the interval.
    pub interval_mpki: f64,
}

impl PhaseStudy {
    /// Default setup: 8 cores, 32 MB-class LLC, fine sampling.
    pub fn new(scale: Scale, seed: u64) -> Self {
        PhaseStudy {
            scale,
            seed,
            cores: CmpClass::Small.cores(),
            llc_paper_bytes: 32 << 20,
            sample_period: 20_000,
        }
    }

    fn config(&self) -> CoSimConfig {
        let llc = self.scale.pow2_bytes(self.llc_paper_bytes, 64 << 10);
        let mut cfg = CoSimConfig::scaled(self.cores, llc, self.scale).expect("valid geometry");
        cfg.sample_period = self.sample_period;
        cfg
    }

    /// Runs one workload to completion and returns its MPKI-over-time
    /// series.
    pub fn run(&self, workload: WorkloadId) -> Vec<PhasePoint> {
        let wl = workload.build(self.scale, self.seed);
        let r = CoSimulation::new(self.config()).run(wl.as_ref());
        Self::series_of(&r.samples)
    }

    /// Captured twin of [`run`](PhaseStudy::run): the sampler runs
    /// during replay (sampling is board-side), so the series is
    /// identical to the live one.
    pub fn run_captured(&self, broker: &CaptureBroker, workload: WorkloadId) -> Vec<PhasePoint> {
        let sim = CoSimulation::new(self.config());
        let stream = sim.captured(broker, workload, self.scale, self.seed);
        Self::series_of(&sim.replay(&stream).samples)
    }

    fn series_of(samples: &[Sample]) -> Vec<PhasePoint> {
        let mut out = Vec::with_capacity(samples.len());
        let mut prev = Sample::default();
        for s in samples {
            out.push(PhasePoint {
                cycle: s.cycle,
                interval_mpki: s.interval_mpki(&prev),
            });
            prev = *s;
        }
        out
    }

    /// Coefficient of variation of the interval MPKI — a scalar measure
    /// of how much phase behavior a workload has (0 = perfectly steady).
    pub fn phase_variability(series: &[PhasePoint]) -> f64 {
        let vals: Vec<f64> = series
            .iter()
            .map(|p| p.interval_mpki)
            .filter(|v| v.is_finite())
            .collect();
        if vals.len() < 2 {
            return 0.0;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY_SIZES: [u64; 4] = [16 << 10, 64 << 10, 256 << 10, 1 << 20];

    #[test]
    fn llc_config_clamps_ways() {
        // Plenty of room: preferred associativity kept.
        assert_eq!(llc_config(1 << 20, 64, 16).unwrap().associativity(), 16);
        // 32 KB per bank with 4 KB lines leaves 8 lines: ways clamp to 8.
        let tight = llc_config(128 << 10, 4096, 16).unwrap();
        assert_eq!(tight.associativity(), 8);
        assert!(tight.num_sets() >= 1);
        // Degenerate: one line per bank.
        let degenerate = llc_config(16 << 10, 4096, 16).unwrap();
        assert_eq!(degenerate.associativity(), 1);
    }

    #[test]
    fn llc_config_4k_lines_on_smallest_scaled_caches() {
        // The tiny-scale floor of the Figures 4-6 sweep is 16 KB; with
        // the Figure 7 maximum line of 4096 B a bank (size/4) holds
        // exactly one line, so `max_ways` bottoms out at 1 and the
        // `min(1 << max_ways.ilog2())` clamp forces direct-mapped.
        let smallest = *paper_cache_sizes(Scale::tiny()).first().unwrap();
        assert_eq!(smallest, 16 << 10);
        let cfg = llc_config(smallest, 4096, 16).unwrap();
        assert_eq!(cfg.associativity(), 1);
        assert_eq!(cfg.line_bytes(), 4096);
        assert_eq!(cfg.num_sets(), 4);
        // One line *total* per bank (8 KB cache): still valid, still
        // direct-mapped, via the same clamp path (per_bank < line).
        let one_line_banks = llc_config(8 << 10, 4096, 16).unwrap();
        assert_eq!(one_line_banks.associativity(), 1);
        assert_eq!(one_line_banks.num_sets(), 2);
        // Every (scaled size, paper line) pair of the Figure 7 grid
        // clamps to a buildable geometry.
        for &size in &paper_cache_sizes(Scale::tiny()) {
            for &line in &paper_line_sizes() {
                let cfg = llc_config(size, line, 16).unwrap();
                assert!(cfg.associativity() >= 1);
                assert!(u64::from(cfg.associativity()) * line <= size / 4);
            }
        }
    }

    #[test]
    fn llc_config_surfaces_impossible_geometries_as_errors() {
        // Capacity below a single line: no clamp can save this.
        assert!(llc_config(2 << 10, 4096, 16).is_err());
        // Non-power-of-two capacity is a builder error, not a panic.
        assert!(llc_config(3 << 20, 64, 16).is_err());
    }

    #[test]
    fn cmp_classes() {
        assert_eq!(CmpClass::Small.cores(), 8);
        assert_eq!(CmpClass::Medium.cores(), 16);
        assert_eq!(CmpClass::Large.cores(), 32);
        assert_eq!(CmpClass::Large.to_string(), "LCMP");
        for c in CmpClass::all() {
            assert_eq!(c.name().parse::<CmpClass>().unwrap(), c);
        }
        assert!("XCMP".parse::<CmpClass>().is_err());
    }

    #[test]
    fn paper_sizes_scale_together() {
        let paper = paper_cache_sizes(Scale::paper());
        assert_eq!(paper[0], 4 << 20);
        assert_eq!(paper[6], 256 << 20);
        let ci = paper_cache_sizes(Scale::ci());
        assert_eq!(ci[0], 256 << 10);
        assert_eq!(ci[6], 16 << 20);
    }

    #[test]
    fn svmrfe_curve_has_knee() {
        let study = CacheSizeStudy::new(Scale::tiny(), CmpClass::Small, 1);
        let curve = study.run_with_sizes(WorkloadId::SvmRfe, &TINY_SIZES);
        assert_eq!(curve.points.len(), TINY_SIZES.len());
        // MPKI decreases with size and drops substantially once the
        // blocked working set fits.
        assert!(curve.flatness() < 0.6, "flatness {}", curve.flatness());
    }

    #[test]
    fn knee_detection() {
        let curve = CacheSizeCurve {
            workload: WorkloadId::SvmRfe,
            cmp: CmpClass::Small,
            points: vec![
                CachePoint {
                    llc_bytes: 1,
                    mpki: 10.0,
                    misses: 0,
                    instructions: 0,
                },
                CachePoint {
                    llc_bytes: 2,
                    mpki: 9.0,
                    misses: 0,
                    instructions: 0,
                },
                CachePoint {
                    llc_bytes: 4,
                    mpki: 2.0,
                    misses: 0,
                    instructions: 0,
                },
            ],
        };
        assert_eq!(curve.knee(0.5), Some(4));
        assert_eq!(curve.knee(0.05), None);
    }

    #[test]
    fn line_size_improves_streaming_workload() {
        let mut study = LineSizeStudy::new(Scale::tiny(), 2);
        study.cores = 4; // keep the test fast
        let curve = study.run(WorkloadId::Shot);
        assert_eq!(curve.points.len(), paper_line_sizes().len());
        assert!(
            curve.improvement_at(256) > 1.5,
            "SHOT should gain from 256B lines: {:?}",
            curve.points
        );
    }

    #[test]
    fn prefetch_speeds_up_streaming_workload() {
        let mut study = PrefetchStudy::new(Scale::tiny(), 3);
        study.parallel_threads = 4;
        let r = study.run(WorkloadId::Shot);
        assert!(r.serial_speedup > 1.0, "serial {}", r.serial_speedup);
        assert!(r.parallel_speedup > 1.0, "parallel {}", r.parallel_speedup);
    }

    #[test]
    fn table2_plsa_row_matches_paper_shape() {
        let study = Table2Study::new(Scale::tiny(), 4);
        let row = study.run(WorkloadId::Plsa);
        assert!((row.memory_fraction - 0.831).abs() < 0.02);
        assert!(row.dl1_apki > 700.0, "PLSA DL1 APKI {}", row.dl1_apki);
        // PLSA has the lowest L2 MPKI in the paper (0.18).
        assert!(row.dl2_mpki < 5.0, "PLSA DL2 MPKI {}", row.dl2_mpki);
        assert!(row.ipc > 0.5, "PLSA IPC {}", row.ipc);
    }

    #[test]
    fn private_slices_hurt_shared_structure_workloads_more() {
        let study = LlcOrganizationStudy {
            cores: 4,
            ..LlcOrganizationStudy::new(Scale::tiny(), 8)
        };
        let svm = study.run(WorkloadId::SvmRfe); // category (a)
        let shot = study.run(WorkloadId::Shot); // category (b)
        assert!(
            svm.private_penalty() > 1.0,
            "shared-structure workload must lose with private slices: {:?}",
            svm
        );
        assert!(
            svm.private_penalty() > shot.private_penalty() * 0.9,
            "category (a) penalty {} should be at least category (b)'s {}",
            svm.private_penalty(),
            shot.private_penalty()
        );
    }

    #[test]
    fn phase_series_is_produced_and_fimi_has_phases() {
        let mut study = PhaseStudy::new(Scale::tiny(), 6);
        study.sample_period = 5_000;
        let series = study.run(WorkloadId::Fimi);
        assert!(series.len() >= 4, "too few samples: {}", series.len());
        // FIMI's three stages (scan, build, mine) have distinct miss
        // behavior; the series must show real variability.
        let cv = PhaseStudy::phase_variability(&series);
        assert!(cv > 0.1, "FIMI phase variability {cv}");
    }

    #[test]
    fn phase_variability_of_constant_series_is_zero() {
        let series = vec![
            PhasePoint {
                cycle: 1,
                interval_mpki: 2.0,
            },
            PhasePoint {
                cycle: 2,
                interval_mpki: 2.0,
            },
        ];
        assert_eq!(PhaseStudy::phase_variability(&series), 0.0);
        assert_eq!(PhaseStudy::phase_variability(&[]), 0.0);
    }

    #[test]
    fn captured_cache_size_curve_matches_direct_and_per_cell() {
        let study = CacheSizeStudy::new(Scale::tiny(), CmpClass::Small, 1);
        let direct = study.run_with_sizes(WorkloadId::SvmRfe, &TINY_SIZES);
        let broker = CaptureBroker::in_memory();
        let captured = study.run_with_sizes_captured(&broker, WorkloadId::SvmRfe, &TINY_SIZES);
        assert_eq!(captured, direct, "replayed curve must be bit-identical");
        assert_eq!(broker.counters().captures, 1);
        // The execute-per-cell baseline (the `--no-replay` path at study
        // level) produces the same curve too.
        let per_cell = study.run_each(WorkloadId::SvmRfe, &TINY_SIZES);
        assert_eq!(per_cell, direct);
    }

    #[test]
    fn captured_studies_match_direct() {
        let broker = CaptureBroker::in_memory();

        let t2 = Table2Study::new(Scale::tiny(), 4);
        assert_eq!(
            t2.run_captured(&broker, WorkloadId::Plsa),
            t2.run(WorkloadId::Plsa)
        );

        let org = LlcOrganizationStudy {
            cores: 2,
            ..LlcOrganizationStudy::new(Scale::tiny(), 8)
        };
        assert_eq!(
            org.run_captured(&broker, WorkloadId::Shot),
            org.run(WorkloadId::Shot)
        );

        let mut phase = PhaseStudy::new(Scale::tiny(), 6);
        phase.cores = 2;
        phase.sample_period = 5_000;
        let live = phase.run(WorkloadId::Fimi);
        let replayed = phase.run_captured(&broker, WorkloadId::Fimi);
        assert_eq!(replayed.len(), live.len());
        for (r, l) in replayed.iter().zip(&live) {
            assert_eq!(r.cycle, l.cycle);
            assert_eq!(r.interval_mpki.to_bits(), l.interval_mpki.to_bits());
        }
    }

    #[test]
    fn captured_prefetch_and_replacement_match_direct() {
        let broker = CaptureBroker::in_memory();

        let mut pf = PrefetchStudy::new(Scale::tiny(), 3);
        pf.parallel_threads = 2;
        assert_eq!(
            pf.run_captured(&broker, WorkloadId::Shot),
            pf.run(WorkloadId::Shot)
        );

        let rp = ReplacementStudy {
            scale: Scale::tiny(),
            seed: 2,
        };
        // The replacement ablation reuses one stream for all four
        // policies: exactly one capture for this key.
        let before = broker.counters().captures;
        let captured = rp.run_captured(&broker, WorkloadId::Fimi);
        assert_eq!(broker.counters().captures, before + 1);
        let direct = rp.run(WorkloadId::Fimi);
        assert_eq!(captured, direct);
    }

    #[test]
    #[ignore = "wall-clock benchmark; run manually and record in EXPERIMENTS.md"]
    fn replay_speedup_benchmark() {
        use std::time::Instant;
        let study = CacheSizeStudy::new(Scale::ci(), CmpClass::Small, 1);
        let sizes = paper_cache_sizes(Scale::ci());
        let t0 = Instant::now();
        let per_cell = study.run_each(WorkloadId::Fimi, &sizes);
        let t_each = t0.elapsed();
        let broker = CaptureBroker::in_memory();
        let t1 = Instant::now();
        let replayed = study.run_with_sizes_captured(&broker, WorkloadId::Fimi, &sizes);
        let t_replay = t1.elapsed();
        assert_eq!(per_cell, replayed);
        let speedup = t_each.as_secs_f64() / t_replay.as_secs_f64();
        println!(
            "execute-per-cell: {t_each:?}, capture+replay: {t_replay:?}, speedup {speedup:.2}x"
        );
        assert!(
            speedup >= 2.0,
            "capture/replay must beat execute-per-cell by 2x, got {speedup:.2}x"
        );
    }

    #[test]
    #[ignore = "wall-clock benchmark; run manually and record in EXPERIMENTS.md"]
    fn sharded_replay_stage_benchmark() {
        use std::time::Instant;
        let sizes = paper_cache_sizes(Scale::ci());
        let cfg = CoSimConfig::scaled(CmpClass::Small.cores(), sizes[0], Scale::ci())
            .expect("paper sizes are valid geometries");
        let llcs: Vec<CacheConfig> = sizes
            .iter()
            .map(|&s| CacheConfig::lru(s, 64, 16).expect("paper sizes are valid"))
            .collect();
        let sim = CoSimulation::new(cfg);
        // Disk-backed store: the first run captures (~2 min), re-runs
        // replay from disk so benchmark iterations measure only replay.
        let broker = CaptureBroker::with_store(std::env::temp_dir().join("cmpsim-bench-traces"));
        let stream = sim.captured(&broker, WorkloadId::Fimi, Scale::ci(), 1);

        // Leg 1 — the PR 5 shape: decode once per sweep, drive every
        // board one transaction at a time through `observe`. (The
        // per-access arithmetic it exercises is today's — the recorded
        // pre-change wall time in EXPERIMENTS.md is the true baseline.)
        let mut boards: Vec<cmpsim_dragonhead::Dragonhead> = llcs
            .iter()
            .map(|&llc| {
                let mut d = cmpsim_dragonhead::DragonheadConfig::new(llc);
                d.banks = cfg.banks;
                d.sample_period = cfg.sample_period;
                cmpsim_dragonhead::Dragonhead::new(d)
            })
            .collect();
        let t0 = Instant::now();
        for txn in stream.iter() {
            for board in &mut boards {
                board.observe(&txn);
            }
        }
        for board in &mut boards {
            board.flush(stream.run().cycles).unwrap();
        }
        let t_per_txn = t0.elapsed();

        // Leg 2 — batched serial: the sharded path at one shard.
        let t0 = Instant::now();
        let serial = sim.replay_sweep_sharded(&stream, &llcs, 1);
        let t_serial = t0.elapsed();

        // Leg 3 — four shards (one thread per board group).
        let t0 = Instant::now();
        let sharded = sim.replay_sweep_sharded(&stream, &llcs, 4);
        let t_sharded = t0.elapsed();

        // All three legs computed the same sweep.
        for ((b, s), r) in boards.iter().zip(&serial).zip(&sharded) {
            assert_eq!(b.stats(), s.llc);
            assert_eq!(s.llc, r.llc);
            assert_eq!(s.mpki.to_bits(), r.mpki.to_bits());
        }
        println!(
            "replay stage, {} boards x {} txns: per-txn {t_per_txn:?}, \
             batched serial {t_serial:?}, 4 shards {t_sharded:?}",
            serial.len(),
            stream.transactions(),
        );
    }

    #[test]
    #[ignore = "wall-clock profile; run manually when tuning the replay path"]
    fn replay_hot_path_profile() {
        use std::time::Instant;
        let sizes = paper_cache_sizes(Scale::ci());
        let cfg = CoSimConfig::scaled(CmpClass::Small.cores(), sizes[0], Scale::ci())
            .expect("paper sizes are valid geometries");
        let sim = CoSimulation::new(cfg);
        let broker = CaptureBroker::with_store(std::env::temp_dir().join("cmpsim-bench-traces"));
        let stream = sim.captured(&broker, WorkloadId::Fimi, Scale::ci(), 1);

        // Stream mix: how much of the replay cost is message decode vs
        // cache emulation.
        let mut messages = 0u64;
        let mut data = 0u64;
        let t0 = Instant::now();
        for txn in stream.iter() {
            if txn.is_message() {
                messages += 1;
            } else {
                data += 1;
            }
        }
        let t_decode = t0.elapsed();

        // Filter-only pass: AF state machine without any cache behind it.
        let mut af = cmpsim_dragonhead::af::AddressFilter::new();
        let mut emulated = 0u64;
        let t0 = Instant::now();
        for txn in stream.iter() {
            if matches!(
                af.filter(&txn),
                cmpsim_dragonhead::af::FilterOutcome::Emulate { .. }
            ) {
                emulated += 1;
            }
        }
        let t_filter = t0.elapsed();

        // One full board.
        let mut board = Dragonhead::new(DragonheadConfig::new(
            CacheConfig::lru(sizes[0], 64, 16).unwrap(),
        ));
        let chunks = stream.decode_chunks(cmpsim_dragonhead::BATCH_TRANSACTIONS);
        let t0 = Instant::now();
        for chunk in chunks.iter() {
            board.observe_batch(chunk);
        }
        let t_board = t0.elapsed();

        println!(
            "{} txns ({messages} messages, {data} data, {emulated} emulated): \
             decode {t_decode:?}, decode+filter {t_filter:?}, \
             decode_chunks+board {t_board:?}",
            stream.transactions(),
        );
    }

    #[test]
    fn sharing_study_separates_categories() {
        let study = SharingStudy::new(Scale::tiny(), 5);
        let shot = study.run(WorkloadId::Shot);
        let svm = study.run(WorkloadId::SvmRfe);
        assert!(!shot.paper_category_shared);
        assert!(svm.paper_category_shared);
        assert!(
            shot.miss_growth_8x > svm.miss_growth_8x,
            "SHOT {} vs SVM-RFE {}",
            shot.miss_growth_8x,
            svm.miss_growth_8x
        );
    }
}
