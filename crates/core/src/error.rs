//! The structured failure taxonomy of a co-simulated run.
//!
//! The hardware rig the paper describes can fail in ways a clean
//! software model never exercises: the bus channel desynchronizes, a
//! counter wedges, the host stops reading samples. This module gives
//! every such failure a *category*, so the experiment runner can report
//! **which invariant broke** for each grid cell instead of a bare panic
//! string.

use cmpsim_runner::JobError;
use std::fmt;

/// Why a co-simulated run could not produce a trustworthy report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoSimError {
    /// The bus/message protocol broke down beyond recovery: the decoder
    /// desynchronized or the sampler clock ran backwards.
    Protocol {
        /// What the protocol layer observed.
        detail: String,
    },
    /// A run-level invariant did not hold in the finished report (see
    /// [`Validator`](crate::validate::Validator) for the catalogue).
    Invariant {
        /// The violated invariant's name (e.g. `llc_conservation`).
        name: String,
        /// What was expected vs what was found.
        detail: String,
    },
    /// The host side failed (cache store, result file, config build).
    Io {
        /// The underlying failure.
        detail: String,
    },
    /// The run exceeded its deadline.
    Timeout {
        /// What was being waited for.
        detail: String,
    },
    /// The run was interrupted before finishing — a graceful shutdown
    /// drained the batch, or a resumed journal showed the cell never
    /// completed. Unlike the other categories this is not the cell's
    /// fault: re-running it (e.g. via `--resume`) is expected to
    /// succeed.
    Interrupted {
        /// What interrupted the run and what is left to do.
        detail: String,
    },
}

impl CoSimError {
    /// A protocol-breakdown error.
    pub fn protocol(detail: impl Into<String>) -> Self {
        CoSimError::Protocol {
            detail: detail.into(),
        }
    }

    /// An invariant-violation error.
    pub fn invariant(name: impl Into<String>, detail: impl Into<String>) -> Self {
        CoSimError::Invariant {
            name: name.into(),
            detail: detail.into(),
        }
    }

    /// An I/O or configuration error.
    pub fn io(detail: impl Into<String>) -> Self {
        CoSimError::Io {
            detail: detail.into(),
        }
    }

    /// A deadline error.
    pub fn timeout(detail: impl Into<String>) -> Self {
        CoSimError::Timeout {
            detail: detail.into(),
        }
    }

    /// An interrupted-run error.
    pub fn interrupted(detail: impl Into<String>) -> Self {
        CoSimError::Interrupted {
            detail: detail.into(),
        }
    }

    /// The taxonomy category as a stable lowercase string — the value
    /// reported in job outcomes and telemetry labels.
    pub fn category(&self) -> &'static str {
        match self {
            CoSimError::Protocol { .. } => "protocol",
            CoSimError::Invariant { .. } => "invariant",
            CoSimError::Io { .. } => "io",
            CoSimError::Timeout { .. } => "timeout",
            CoSimError::Interrupted { .. } => "interrupted",
        }
    }
}

impl fmt::Display for CoSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoSimError::Protocol { detail } => write!(f, "protocol breakdown: {detail}"),
            CoSimError::Invariant { name, detail } => {
                write!(f, "invariant `{name}` violated: {detail}")
            }
            CoSimError::Io { detail } => write!(f, "i/o failure: {detail}"),
            CoSimError::Timeout { detail } => write!(f, "timed out: {detail}"),
            CoSimError::Interrupted { detail } => write!(f, "interrupted: {detail}"),
        }
    }
}

impl std::error::Error for CoSimError {}

impl From<cmpsim_cache::ConfigError> for CoSimError {
    fn from(e: cmpsim_cache::ConfigError) -> Self {
        CoSimError::invariant("config", e.to_string())
    }
}

impl From<cmpsim_dragonhead::SamplerError> for CoSimError {
    fn from(e: cmpsim_dragonhead::SamplerError) -> Self {
        CoSimError::protocol(e.to_string())
    }
}

impl From<CoSimError> for JobError {
    fn from(e: CoSimError) -> Self {
        JobError::new(e.category(), e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_stable() {
        assert_eq!(CoSimError::protocol("x").category(), "protocol");
        assert_eq!(CoSimError::invariant("n", "x").category(), "invariant");
        assert_eq!(CoSimError::io("x").category(), "io");
        assert_eq!(CoSimError::timeout("x").category(), "timeout");
        assert_eq!(CoSimError::interrupted("x").category(), "interrupted");
    }

    #[test]
    fn interrupted_display_says_what_remains() {
        let e = CoSimError::interrupted("shutdown drained 3 of 8 cells");
        assert_eq!(e.to_string(), "interrupted: shutdown drained 3 of 8 cells");
    }

    #[test]
    fn display_names_the_invariant() {
        let e = CoSimError::invariant("sample_count", "expected 10, found 7");
        assert_eq!(
            e.to_string(),
            "invariant `sample_count` violated: expected 10, found 7"
        );
    }

    #[test]
    fn converts_into_job_error() {
        let j: JobError = CoSimError::protocol("orphan high half").into();
        assert_eq!(j.category, "protocol");
        assert!(j.message.contains("orphan high half"));
    }
}
