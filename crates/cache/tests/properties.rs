//! Property-based tests for the cache simulator's core invariants.

use cmpsim_cache::{CacheConfig, ReplacementPolicy, SetAssocCache};
use proptest::prelude::*;

/// An arbitrary short access trace over a bounded line space.
fn trace_strategy(max_line: u64) -> impl Strategy<Value = Vec<(u64, bool)>> {
    prop::collection::vec((0..max_line, any::<bool>()), 1..800)
}

fn run_trace(cache: &mut SetAssocCache, trace: &[(u64, bool)]) -> u64 {
    for &(line, write) in trace {
        cache.access(line, write);
    }
    cache.stats().misses
}

proptest! {
    /// hits + misses == accesses, read_misses + write_misses == misses,
    /// and occupancy never exceeds capacity.
    #[test]
    fn stats_identities(trace in trace_strategy(256)) {
        let cfg = CacheConfig::lru(8 * 1024, 64, 4).unwrap();
        let mut c = SetAssocCache::new(cfg);
        run_trace(&mut c, &trace);
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.read_misses + s.write_misses, s.misses);
        prop_assert!(s.writebacks <= s.evictions);
        prop_assert!(c.resident_lines() <= cfg.num_lines());
    }

    /// LRU inclusion: with the same number of sets, a higher-associativity
    /// cache never misses more (per-set LRU stack property).
    #[test]
    fn lru_inclusion_in_associativity(trace in trace_strategy(512)) {
        // 64 sets each: 2-way vs 8-way.
        let small = CacheConfig::lru(64 * 2 * 64, 64, 2).unwrap();
        let large = CacheConfig::lru(64 * 8 * 64, 64, 8).unwrap();
        let mut c_small = SetAssocCache::new(small);
        let mut c_large = SetAssocCache::new(large);
        let m_small = run_trace(&mut c_small, &trace);
        let m_large = run_trace(&mut c_large, &trace);
        prop_assert!(m_large <= m_small, "{m_large} > {m_small}");
    }

    /// A second pass over any trace that fits in the cache is all hits.
    #[test]
    fn second_pass_hits_when_fitting(lines in prop::collection::vec(0u64..64, 1..64)) {
        // 64 lines capacity, fully covering the line space.
        let cfg = CacheConfig::lru(64 * 64, 64, 8).unwrap();
        let mut c = SetAssocCache::new(cfg);
        for &l in &lines {
            c.access(l, false);
        }
        c.reset_stats();
        for &l in &lines {
            c.access(l, false);
        }
        prop_assert_eq!(c.stats().misses, 0);
    }

    /// Probe (contains) never changes behaviour: interleaving probes
    /// into a trace leaves hit/miss outcomes identical.
    #[test]
    fn probes_are_pure(trace in trace_strategy(128)) {
        let cfg = CacheConfig::lru(4096, 64, 4).unwrap();
        let mut plain = SetAssocCache::new(cfg);
        let mut probed = SetAssocCache::new(cfg);
        for &(line, write) in &trace {
            let a = plain.access(line, write).is_hit();
            let _ = probed.contains(line ^ 1);
            let _ = probed.contains(line);
            let b = probed.access(line, write).is_hit();
            prop_assert_eq!(a, b);
        }
    }

    /// Invalidation really removes the line and is idempotent.
    #[test]
    fn invalidate_removes(line in 0u64..1024) {
        let cfg = CacheConfig::lru(64 * 1024, 64, 16).unwrap();
        let mut c = SetAssocCache::new(cfg);
        c.access(line, true);
        prop_assert!(c.contains(line));
        let ev = c.invalidate(line);
        prop_assert!(ev.is_some());
        prop_assert!(ev.unwrap().dirty);
        prop_assert!(!c.contains(line));
        prop_assert!(c.invalidate(line).is_none());
    }

    /// Every policy keeps occupancy within capacity and stats consistent.
    #[test]
    fn all_policies_safe(
        trace in trace_strategy(300),
        policy_idx in 0usize..4,
    ) {
        let policy = [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ][policy_idx];
        let cfg = CacheConfig::builder()
            .size_bytes(8 * 1024)
            .line_bytes(64)
            .associativity(4)
            .replacement(policy)
            .build()
            .unwrap();
        let mut c = SetAssocCache::new(cfg);
        run_trace(&mut c, &trace);
        prop_assert!(c.resident_lines() <= cfg.num_lines());
        prop_assert_eq!(c.stats().hits + c.stats().misses, c.stats().accesses);
    }

    /// Deterministic replay: the same trace always produces the same
    /// counters, for every policy (Random uses a fixed PCG stream).
    #[test]
    fn deterministic_replay(trace in trace_strategy(256), policy_idx in 0usize..4) {
        let policy = [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ][policy_idx];
        let cfg = CacheConfig::builder()
            .size_bytes(4096)
            .line_bytes(64)
            .associativity(2)
            .replacement(policy)
            .build()
            .unwrap();
        let mut a = SetAssocCache::new(cfg);
        let mut b = SetAssocCache::new(cfg);
        run_trace(&mut a, &trace);
        run_trace(&mut b, &trace);
        prop_assert_eq!(a.stats(), b.stats());
    }
}
