//! Randomized invariant tests for the cache simulator's core
//! properties, driven by the repo's own deterministic PCG stream (the
//! build environment is offline, so no external property-testing
//! framework is used; every case is seeded and reproducible).

use cmpsim_cache::{CacheConfig, ReplacementPolicy, SetAssocCache};
use cmpsim_trace::Pcg32;

const CASES: u64 = 64;

/// A random short access trace over a bounded line space.
fn random_trace(rng: &mut Pcg32, max_line: u64) -> Vec<(u64, bool)> {
    let len = 1 + rng.below(799) as usize;
    (0..len)
        .map(|_| (rng.below(max_line), rng.chance(0.5)))
        .collect()
}

fn run_trace(cache: &mut SetAssocCache, trace: &[(u64, bool)]) -> u64 {
    for &(line, write) in trace {
        cache.access(line, write);
    }
    cache.stats().misses
}

const POLICIES: [ReplacementPolicy; 4] = [
    ReplacementPolicy::Lru,
    ReplacementPolicy::TreePlru,
    ReplacementPolicy::Fifo,
    ReplacementPolicy::Random,
];

/// hits + misses == accesses, read_misses + write_misses == misses,
/// and occupancy never exceeds capacity.
#[test]
fn stats_identities() {
    let mut rng = Pcg32::seed(0xCAC4E001);
    for case in 0..CASES {
        let trace = random_trace(&mut rng, 256);
        let cfg = CacheConfig::lru(8 * 1024, 64, 4).unwrap();
        let mut c = SetAssocCache::new(cfg);
        run_trace(&mut c, &trace);
        let s = c.stats();
        assert_eq!(s.hits + s.misses, s.accesses, "case {case}");
        assert_eq!(s.read_misses + s.write_misses, s.misses, "case {case}");
        assert!(s.writebacks <= s.evictions, "case {case}");
        assert!(c.resident_lines() <= cfg.num_lines(), "case {case}");
    }
}

/// LRU inclusion: with the same number of sets, a higher-associativity
/// cache never misses more (per-set LRU stack property).
#[test]
fn lru_inclusion_in_associativity() {
    let mut rng = Pcg32::seed(0xCAC4E002);
    for case in 0..CASES {
        let trace = random_trace(&mut rng, 512);
        // 64 sets each: 2-way vs 8-way.
        let small = CacheConfig::lru(64 * 2 * 64, 64, 2).unwrap();
        let large = CacheConfig::lru(64 * 8 * 64, 64, 8).unwrap();
        let m_small = run_trace(&mut SetAssocCache::new(small), &trace);
        let m_large = run_trace(&mut SetAssocCache::new(large), &trace);
        assert!(m_large <= m_small, "case {case}: {m_large} > {m_small}");
    }
}

/// A second pass over any trace that fits in the cache is all hits.
#[test]
fn second_pass_hits_when_fitting() {
    let mut rng = Pcg32::seed(0xCAC4E003);
    for case in 0..CASES {
        let len = 1 + rng.below(63) as usize;
        let lines: Vec<u64> = (0..len).map(|_| rng.below(64)).collect();
        // 64 lines capacity, fully covering the line space.
        let cfg = CacheConfig::lru(64 * 64, 64, 8).unwrap();
        let mut c = SetAssocCache::new(cfg);
        for &l in &lines {
            c.access(l, false);
        }
        c.reset_stats();
        for &l in &lines {
            c.access(l, false);
        }
        assert_eq!(c.stats().misses, 0, "case {case}");
    }
}

/// Probe (contains) never changes behaviour: interleaving probes into a
/// trace leaves hit/miss outcomes identical.
#[test]
fn probes_are_pure() {
    let mut rng = Pcg32::seed(0xCAC4E004);
    for case in 0..CASES {
        let trace = random_trace(&mut rng, 128);
        let cfg = CacheConfig::lru(4096, 64, 4).unwrap();
        let mut plain = SetAssocCache::new(cfg);
        let mut probed = SetAssocCache::new(cfg);
        for &(line, write) in &trace {
            let a = plain.access(line, write).is_hit();
            let _ = probed.contains(line ^ 1);
            let _ = probed.contains(line);
            let b = probed.access(line, write).is_hit();
            assert_eq!(a, b, "case {case} line {line}");
        }
    }
}

/// Invalidation really removes the line and is idempotent.
#[test]
fn invalidate_removes() {
    let mut rng = Pcg32::seed(0xCAC4E005);
    for case in 0..CASES {
        let line = rng.below(1024);
        let cfg = CacheConfig::lru(64 * 1024, 64, 16).unwrap();
        let mut c = SetAssocCache::new(cfg);
        c.access(line, true);
        assert!(c.contains(line), "case {case}");
        let ev = c.invalidate(line);
        assert!(ev.is_some(), "case {case}");
        assert!(ev.unwrap().dirty, "case {case}");
        assert!(!c.contains(line), "case {case}");
        assert!(c.invalidate(line).is_none(), "case {case}");
    }
}

/// Every policy keeps occupancy within capacity and stats consistent.
#[test]
fn all_policies_safe() {
    let mut rng = Pcg32::seed(0xCAC4E006);
    for case in 0..CASES {
        let trace = random_trace(&mut rng, 300);
        let policy = POLICIES[rng.below(4) as usize];
        let cfg = CacheConfig::builder()
            .size_bytes(8 * 1024)
            .line_bytes(64)
            .associativity(4)
            .replacement(policy)
            .build()
            .unwrap();
        let mut c = SetAssocCache::new(cfg);
        run_trace(&mut c, &trace);
        assert!(c.resident_lines() <= cfg.num_lines(), "case {case}");
        assert_eq!(
            c.stats().hits + c.stats().misses,
            c.stats().accesses,
            "case {case} ({policy:?})"
        );
    }
}

/// Deterministic replay: the same trace always produces the same
/// counters, for every policy (Random uses a fixed PCG stream).
#[test]
fn deterministic_replay() {
    let mut rng = Pcg32::seed(0xCAC4E007);
    for case in 0..CASES {
        let trace = random_trace(&mut rng, 256);
        let policy = POLICIES[rng.below(4) as usize];
        let cfg = CacheConfig::builder()
            .size_bytes(4096)
            .line_bytes(64)
            .associativity(2)
            .replacement(policy)
            .build()
            .unwrap();
        let mut a = SetAssocCache::new(cfg);
        let mut b = SetAssocCache::new(cfg);
        run_trace(&mut a, &trace);
        run_trace(&mut b, &trace);
        assert_eq!(a.stats(), b.stats(), "case {case} ({policy:?})");
    }
}
