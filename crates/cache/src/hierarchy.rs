//! Per-core private cache stacks and the coherent multi-core front end.
//!
//! In the paper's setup the workload executes natively on a host CPU whose
//! private caches filter the reference stream; only misses and writebacks
//! appear on the front-side bus where Dragonhead snoops. [`PrivateHierarchy`]
//! models one core's L1(+L2) stack; [`CoherentCores`] models N of them kept
//! coherent with an invalidation-based (MSI/MESI-style) snoop protocol and
//! produces the bus-event stream for the shared-LLC emulator.

use crate::cache::{AccessOutcome, SetAssocCache};
use crate::config::{CacheConfig, ConfigError};
use crate::stats::CacheStats;
use cmpsim_trace::{AccessKind, FsbKind, MemRef};

/// A bus-visible event produced by a private cache stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusEvent {
    /// Line number (in units of the private line size).
    pub line: u64,
    /// Transaction type: `ReadLine` for clean fills,
    /// `ReadInvalidateLine` for ownership fills and upgrades,
    /// `WriteLine` for writebacks.
    pub kind: FsbKind,
}

/// Geometry of one core's private stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// The (data) L1 cache.
    pub l1: CacheConfig,
    /// Optional unified private L2.
    pub l2: Option<CacheConfig>,
}

impl HierarchyConfig {
    /// The Pentium 4 configuration used for Table 2: 8 KB 4-way DL1 and a
    /// 512 KB 8-way L2, 64-byte lines.
    ///
    /// # Example
    ///
    /// ```
    /// let h = cmpsim_cache::HierarchyConfig::pentium4();
    /// assert_eq!(h.l1.size_bytes(), 8 * 1024);
    /// assert_eq!(h.l2.unwrap().size_bytes(), 512 * 1024);
    /// ```
    pub fn pentium4() -> Self {
        HierarchyConfig {
            l1: CacheConfig::lru(8 * 1024, 64, 4).expect("static config is valid"),
            l2: Some(CacheConfig::lru(512 * 1024, 64, 8).expect("static config is valid")),
        }
    }

    /// The per-core private stack assumed for the simulated CMPs: a 32 KB
    /// 8-way L1 and 512 KB 8-way L2 in front of the shared LLC.
    pub fn cmp_core() -> Self {
        HierarchyConfig {
            l1: CacheConfig::lru(32 * 1024, 64, 8).expect("static config is valid"),
            l2: Some(CacheConfig::lru(512 * 1024, 64, 8).expect("static config is valid")),
        }
    }

    /// L1-only stack (used by tests and the line-size ablation).
    pub fn l1_only(l1: CacheConfig) -> Self {
        HierarchyConfig { l1, l2: None }
    }

    /// The CMP per-core stack scaled by the global [`Scale`] knob so the
    /// private caches shrink together with the workloads and the LLC
    /// sweep. Without this, a scaled-down working set would fit entirely
    /// in an unscaled 512 KB L2 and the emulated LLC would only ever see
    /// cold misses — destroying every size-sensitivity shape.
    ///
    /// Floors: 1 KB L1 / 4 KB L2 (a cache must still hold several sets).
    ///
    /// [`Scale`]: cmpsim_trace::Scale
    pub fn cmp_core_scaled(scale: cmpsim_trace::Scale) -> Self {
        let l1_bytes = scale.pow2_bytes(32 * 1024, 1024);
        let l2_bytes = scale.pow2_bytes(512 * 1024, 4096);
        HierarchyConfig {
            l1: CacheConfig::lru(l1_bytes, 64, 8).expect("scaled L1 geometry is valid"),
            l2: Some(CacheConfig::lru(l2_bytes, 64, 8).expect("scaled L2 geometry is valid")),
        }
    }

    /// The Pentium 4 stack scaled by the global [`Scale`] knob (used by
    /// the Table 2 study at reduced scales).
    ///
    /// [`Scale`]: cmpsim_trace::Scale
    pub fn pentium4_scaled(scale: cmpsim_trace::Scale) -> Self {
        let l1_bytes = scale.pow2_bytes(8 * 1024, 1024);
        let l2_bytes = scale.pow2_bytes(512 * 1024, 4096);
        HierarchyConfig {
            l1: CacheConfig::lru(l1_bytes, 64, 4).expect("scaled L1 geometry is valid"),
            l2: Some(CacheConfig::lru(l2_bytes, 64, 8).expect("scaled L2 geometry is valid")),
        }
    }

    /// Validates that line sizes match across levels.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Indivisible`] describing the mismatch if the
    /// L2 line size differs from the L1 line size (mixed private line
    /// sizes are not modeled).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if let Some(l2) = self.l2 {
            if l2.line_bytes() != self.l1.line_bytes() {
                return Err(ConfigError::Indivisible {
                    size: l2.size_bytes(),
                    line: l2.line_bytes(),
                    ways: l2.associativity(),
                });
            }
        }
        Ok(())
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::cmp_core()
    }
}

/// One core's private L1(+L2) stack.
///
/// Instruction fetches are not simulated (the kernels do not emit them;
/// Dragonhead emulates a data-side LLC), and the stack is kept inclusive:
/// L1 fills pass through L2, and L2 evictions back-invalidate L1.
#[derive(Debug, Clone)]
pub struct PrivateHierarchy {
    l1: SetAssocCache,
    l2: Option<SetAssocCache>,
    line_size: u64,
}

impl PrivateHierarchy {
    /// Builds an empty private stack.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`HierarchyConfig::validate`].
    pub fn new(cfg: HierarchyConfig) -> Self {
        cfg.validate().expect("hierarchy config must be valid");
        PrivateHierarchy {
            line_size: cfg.l1.line_bytes(),
            l1: SetAssocCache::new(cfg.l1),
            l2: cfg.l2.map(SetAssocCache::new),
        }
    }

    /// Private line size in bytes.
    pub const fn line_size(&self) -> u64 {
        self.line_size
    }

    /// L1 counters.
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1.stats()
    }

    /// L2 counters, if an L2 is configured.
    pub fn l2_stats(&self) -> Option<&CacheStats> {
        self.l2.as_ref().map(|c| c.stats())
    }

    /// Resets all counters, preserving contents.
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        if let Some(l2) = &mut self.l2 {
            l2.reset_stats();
        }
    }

    /// Runs one memory reference through the stack, reporting bus events
    /// (fills, upgrades, writebacks) to `bus`. References that straddle
    /// line boundaries access each touched line.
    pub fn access(&mut self, r: MemRef, mut bus: impl FnMut(BusEvent)) {
        if r.kind == AccessKind::IFetch {
            return;
        }
        let write = r.kind == AccessKind::Write;
        let first = r.addr.line(self.line_size);
        let last = r
            .addr
            .offset(u64::from(r.size.max(1)) - 1)
            .line(self.line_size);
        for line in first..=last {
            self.access_line(line, write, &mut bus);
        }
    }

    /// Runs one line-granular access through the stack.
    pub fn access_line(&mut self, line: u64, write: bool, bus: &mut impl FnMut(BusEvent)) {
        match self.l1.access(line, write) {
            AccessOutcome::Hit { upgrade } => {
                if upgrade {
                    // Our L2 copy (if any) upgrades too, silently within
                    // the core; the bus sees one invalidation broadcast.
                    if let Some(l2) = &mut self.l2 {
                        l2.grant_writable(line);
                    }
                    bus(BusEvent {
                        line,
                        kind: FsbKind::ReadInvalidateLine,
                    });
                }
            }
            AccessOutcome::Miss { evicted, allocated } => {
                // Victim first: a dirty L1 victim is absorbed by L2 or, if
                // L2 no longer holds it, written back to the bus.
                if let Some(v) = evicted {
                    if v.dirty {
                        let absorbed = match &mut self.l2 {
                            Some(l2) => l2.receive_writeback(v.line),
                            None => false,
                        };
                        if !absorbed {
                            bus(BusEvent {
                                line: v.line,
                                kind: FsbKind::WriteLine,
                            });
                        }
                    }
                }
                // Fill from L2 or the bus.
                match &mut self.l2 {
                    Some(l2) => match l2.access(line, write) {
                        AccessOutcome::Hit { upgrade } => {
                            if upgrade {
                                bus(BusEvent {
                                    line,
                                    kind: FsbKind::ReadInvalidateLine,
                                });
                            }
                            if allocated && l2.is_writable(line) {
                                self.l1.grant_writable(line);
                            }
                        }
                        AccessOutcome::Miss { evicted, .. } => {
                            if let Some(v) = evicted {
                                // Inclusion: the L1 copy must go too.
                                let l1_dirty = self.l1.invalidate(v.line).is_some_and(|e| e.dirty);
                                if v.dirty || l1_dirty {
                                    bus(BusEvent {
                                        line: v.line,
                                        kind: FsbKind::WriteLine,
                                    });
                                }
                            }
                            bus(BusEvent {
                                line,
                                kind: if write {
                                    FsbKind::ReadInvalidateLine
                                } else {
                                    FsbKind::ReadLine
                                },
                            });
                        }
                    },
                    None => {
                        bus(BusEvent {
                            line,
                            kind: if write {
                                FsbKind::ReadInvalidateLine
                            } else {
                                FsbKind::ReadLine
                            },
                        });
                    }
                }
            }
        }
    }

    /// Whether any private level holds `line`.
    pub fn holds(&self, line: u64) -> bool {
        self.l1.contains(line) || self.l2.as_ref().is_some_and(|l2| l2.contains(line))
    }

    /// Snoop invalidation from another core's ownership request. Returns
    /// `true` if a dirty copy was flushed (the flush itself is the data
    /// response on a real bus; we report it so the LLC can absorb it).
    pub fn snoop_invalidate(&mut self, line: u64) -> bool {
        let d1 = self.l1.invalidate(line).is_some_and(|e| e.dirty);
        let d2 = self
            .l2
            .as_mut()
            .and_then(|l2| l2.invalidate(line))
            .is_some_and(|e| e.dirty);
        d1 || d2
    }

    /// Snoop downgrade from another core's read. Returns `true` if a
    /// dirty copy was flushed.
    pub fn snoop_downgrade(&mut self, line: u64) -> bool {
        let d1 = self.l1.is_dirty(line);
        let d2 = self.l2.as_ref().is_some_and(|l2| l2.is_dirty(line));
        self.l1.downgrade(line);
        if let Some(l2) = &mut self.l2 {
            l2.downgrade(line);
        }
        d1 || d2
    }

    /// Grants exclusive (writable) state after a fill that no other core
    /// holds.
    pub fn grant_exclusive(&mut self, line: u64) {
        self.l1.grant_writable(line);
        if let Some(l2) = &mut self.l2 {
            l2.grant_writable(line);
        }
    }
}

/// N coherent private stacks in front of a shared bus.
///
/// This is the "SoftSDV side" memory model: each virtual core's references
/// are filtered by its private stack; misses, upgrades, and writebacks
/// become bus events, with MESI-style snooping between the stacks.
///
/// # Example
///
/// ```
/// use cmpsim_cache::{CoherentCores, HierarchyConfig};
/// use cmpsim_trace::{Addr, MemRef};
///
/// let mut cores = CoherentCores::new(2, HierarchyConfig::cmp_core());
/// let mut events = Vec::new();
/// cores.access(0, MemRef::write(Addr::new(0x1000), 8), |core, e| {
///     events.push((core, e));
/// });
/// assert_eq!(events.len(), 1); // one ownership fill on the bus
/// ```
#[derive(Debug, Clone)]
pub struct CoherentCores {
    cores: Vec<PrivateHierarchy>,
}

impl CoherentCores {
    /// Builds `n` empty private stacks of identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the config is invalid.
    pub fn new(n: usize, cfg: HierarchyConfig) -> Self {
        assert!(n > 0, "at least one core required");
        CoherentCores {
            cores: (0..n).map(|_| PrivateHierarchy::new(cfg)).collect(),
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Private line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.cores[0].line_size()
    }

    /// The private stack of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core(&self, core: usize) -> &PrivateHierarchy {
        &self.cores[core]
    }

    /// Aggregated L1 stats across all cores.
    pub fn l1_stats_merged(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for c in &self.cores {
            s.merge(c.l1_stats());
        }
        s
    }

    /// Aggregated L2 stats across all cores (zero if no L2 configured).
    pub fn l2_stats_merged(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for c in &self.cores {
            if let Some(l2) = c.l2_stats() {
                s.merge(l2);
            }
        }
        s
    }

    /// Resets counters on every core.
    pub fn reset_stats(&mut self) {
        for c in &mut self.cores {
            c.reset_stats();
        }
    }

    /// Runs one reference from `core` through its private stack with
    /// snoop-based coherence, reporting bus events to `bus` as
    /// `(originating_core, event)`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, r: MemRef, mut bus: impl FnMut(u32, BusEvent)) {
        assert!(core < self.cores.len(), "core {core} out of range");
        // Collect this core's bus events first to avoid aliasing its
        // private stack while snooping the others.
        let mut events: Vec<BusEvent> = Vec::new();
        self.cores[core].access(r, |e| events.push(e));
        for e in events {
            self.snoop_others(core, e, &mut bus);
            bus(core as u32, e);
        }
    }

    fn snoop_others(&mut self, origin: usize, e: BusEvent, bus: &mut impl FnMut(u32, BusEvent)) {
        match e.kind {
            FsbKind::ReadInvalidateLine => {
                for (i, other) in self.cores.iter_mut().enumerate() {
                    if i != origin && other.snoop_invalidate(e.line) {
                        bus(
                            i as u32,
                            BusEvent {
                                line: e.line,
                                kind: FsbKind::WriteLine,
                            },
                        );
                    }
                }
            }
            FsbKind::ReadLine => {
                let mut shared = false;
                for (i, other) in self.cores.iter_mut().enumerate() {
                    if i == origin {
                        continue;
                    }
                    if other.holds(e.line) {
                        shared = true;
                        if other.snoop_downgrade(e.line) {
                            bus(
                                i as u32,
                                BusEvent {
                                    line: e.line,
                                    kind: FsbKind::WriteLine,
                                },
                            );
                        }
                    }
                }
                if !shared {
                    // MESI E state: silent upgrade permitted later.
                    self.cores[origin].grant_exclusive(e.line);
                }
            }
            FsbKind::WriteLine | FsbKind::Message => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::Addr;

    fn small_cfg() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig::lru(512, 64, 2).unwrap(),
            l2: Some(CacheConfig::lru(2048, 64, 4).unwrap()),
        }
    }

    fn collect(h: &mut PrivateHierarchy, r: MemRef) -> Vec<BusEvent> {
        let mut v = Vec::new();
        h.access(r, |e| v.push(e));
        v
    }

    #[test]
    fn cold_read_misses_to_bus() {
        let mut h = PrivateHierarchy::new(small_cfg());
        let ev = collect(&mut h, MemRef::read(Addr::new(0x1000), 8));
        assert_eq!(
            ev,
            vec![BusEvent {
                line: 0x40,
                kind: FsbKind::ReadLine
            }]
        );
    }

    #[test]
    fn warm_read_is_filtered() {
        let mut h = PrivateHierarchy::new(small_cfg());
        collect(&mut h, MemRef::read(Addr::new(0x1000), 8));
        let ev = collect(&mut h, MemRef::read(Addr::new(0x1008), 8));
        assert!(ev.is_empty(), "hit should not reach the bus: {ev:?}");
    }

    #[test]
    fn write_miss_is_ownership_fill() {
        let mut h = PrivateHierarchy::new(small_cfg());
        let ev = collect(&mut h, MemRef::write(Addr::new(0x1000), 8));
        assert_eq!(ev[0].kind, FsbKind::ReadInvalidateLine);
    }

    #[test]
    fn l2_hit_filters_l1_miss() {
        // Touch enough lines to evict line 0 from the tiny L1 but not
        // from L2; re-access must stay on-chip.
        // L1 has 4 sets (2-way); L2 has 8 sets (4-way). Lines 0, 4, 8, 12
        // all map to L1 set 0 but alternate between L2 sets 0 and 4, so
        // line 0 is evicted from L1 while both L2 sets stay half full.
        let mut h = PrivateHierarchy::new(small_cfg());
        for line in [0u64, 4, 8, 12] {
            collect(&mut h, MemRef::read(Addr::new(line * 64), 8));
        }
        let ev = collect(&mut h, MemRef::read(Addr::new(0), 8));
        assert!(ev.is_empty(), "L2 should satisfy the refill: {ev:?}");
        assert!(h.l2_stats().unwrap().hits >= 1);
    }

    #[test]
    fn straddling_ref_accesses_two_lines() {
        let mut h = PrivateHierarchy::new(small_cfg());
        let ev = collect(&mut h, MemRef::read(Addr::new(0x103c), 8));
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].line + 1, ev[1].line);
    }

    #[test]
    fn ifetch_is_ignored() {
        let mut h = PrivateHierarchy::new(small_cfg());
        let ev = collect(&mut h, MemRef::ifetch(Addr::new(0x1000), 16));
        assert!(ev.is_empty());
        assert_eq!(h.l1_stats().accesses, 0);
    }

    #[test]
    fn dirty_l2_eviction_writes_back() {
        // L1-only stack for direct control.
        let cfg = HierarchyConfig::l1_only(CacheConfig::lru(128, 64, 1).unwrap()); // 2 sets
        let mut h = PrivateHierarchy::new(cfg);
        collect(&mut h, MemRef::write(Addr::new(0), 8)); // line 0 dirty, set 0
        let ev = collect(&mut h, MemRef::read(Addr::new(128), 8)); // line 2, set 0: evicts
        assert!(
            ev.contains(&BusEvent {
                line: 0,
                kind: FsbKind::WriteLine
            }),
            "dirty victim must be written back: {ev:?}"
        );
    }

    #[test]
    fn write_after_read_same_core_silent_when_exclusive() {
        let mut cores = CoherentCores::new(2, small_cfg());
        let r = Addr::new(0x2000);
        let mut n_events = 0;
        cores.access(0, MemRef::read(r, 8), |_, _| n_events += 1);
        assert_eq!(n_events, 1);
        // No other core holds the line -> E state -> silent write.
        let mut upgrades = Vec::new();
        cores.access(0, MemRef::write(r, 8), |c, e| upgrades.push((c, e)));
        assert!(
            upgrades.is_empty(),
            "E-state write must be silent: {upgrades:?}"
        );
    }

    #[test]
    fn write_to_shared_line_broadcasts_upgrade() {
        let mut cores = CoherentCores::new(2, small_cfg());
        let a = Addr::new(0x2000);
        cores.access(0, MemRef::read(a, 8), |_, _| {});
        cores.access(1, MemRef::read(a, 8), |_, _| {});
        // Core 0's copy was downgraded? No — reads keep it S in both.
        let mut events = Vec::new();
        cores.access(0, MemRef::write(a, 8), |c, e| events.push((c, e)));
        assert!(
            events
                .iter()
                .any(|(c, e)| *c == 0 && e.kind == FsbKind::ReadInvalidateLine),
            "upgrade must appear on the bus: {events:?}"
        );
        // Core 1 must have lost its copy.
        assert!(!cores.core(1).holds(a.line(64)));
    }

    #[test]
    fn read_of_modified_line_flushes_dirty_copy() {
        let mut cores = CoherentCores::new(2, small_cfg());
        let a = Addr::new(0x3000);
        cores.access(0, MemRef::write(a, 8), |_, _| {});
        let mut events = Vec::new();
        cores.access(1, MemRef::read(a, 8), |c, e| events.push((c, e)));
        assert!(
            events
                .iter()
                .any(|(c, e)| *c == 0 && e.kind == FsbKind::WriteLine),
            "dirty copy must be flushed: {events:?}"
        );
        // Subsequent write by core 0 needs an upgrade (its line is now S).
        let mut ev2 = Vec::new();
        cores.access(0, MemRef::write(a, 8), |c, e| ev2.push((c, e)));
        assert!(
            ev2.iter()
                .any(|(_, e)| e.kind == FsbKind::ReadInvalidateLine),
            "write to downgraded line needs upgrade: {ev2:?}"
        );
    }

    #[test]
    fn invalidated_core_misses_again() {
        let mut cores = CoherentCores::new(2, small_cfg());
        let a = Addr::new(0x4000);
        cores.access(1, MemRef::read(a, 8), |_, _| {});
        cores.access(0, MemRef::write(a, 8), |_, _| {});
        let mut events = Vec::new();
        cores.access(1, MemRef::read(a, 8), |c, e| events.push((c, e)));
        assert!(
            events
                .iter()
                .any(|(c, e)| *c == 1 && e.kind == FsbKind::ReadLine),
            "invalidated core must re-fetch: {events:?}"
        );
    }

    #[test]
    fn merged_stats_accumulate_across_cores() {
        let mut cores = CoherentCores::new(4, small_cfg());
        for c in 0..4 {
            cores.access(
                c,
                MemRef::read(Addr::new(0x1000 * (c as u64 + 1)), 8),
                |_, _| {},
            );
        }
        assert_eq!(cores.l1_stats_merged().accesses, 4);
        assert_eq!(cores.l1_stats_merged().misses, 4);
    }

    #[test]
    fn pentium4_profile_shapes() {
        let p4 = HierarchyConfig::pentium4();
        assert!(p4.validate().is_ok());
        assert_eq!(p4.l1.num_sets(), 32);
    }

    #[test]
    #[should_panic(expected = "core 5 out of range")]
    fn out_of_range_core_panics() {
        let mut cores = CoherentCores::new(2, small_cfg());
        cores.access(5, MemRef::read(Addr::new(0), 8), |_, _| {});
    }
}
