//! Replacement policies.
//!
//! Dragonhead emulates LRU (§3.1); PLRU, FIFO, and Random exist for the
//! E-X2 ablation, which checks that the paper's working-set conclusions
//! are not artifacts of true LRU.

use cmpsim_trace::Pcg32;
use std::fmt;

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used (per-set recency stack).
    #[default]
    Lru,
    /// Tree-based pseudo-LRU (the common hardware approximation).
    TreePlru,
    /// First-in first-out (replacement order = fill order).
    Fifo,
    /// Uniform random victim selection (deterministic PCG stream).
    Random,
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::TreePlru => "PLRU",
            ReplacementPolicy::Fifo => "FIFO",
            ReplacementPolicy::Random => "RAND",
        };
        f.write_str(s)
    }
}

/// Per-cache replacement state, flattened over all sets.
///
/// The state is touched on every access, so the hot path must be a
/// handful of instructions: LRU stores one monotone clock value per
/// touch instead of re-ranking the set, and PLRU packs each set's bit
/// tree into a `u64`.
#[derive(Debug, Clone)]
pub(crate) enum ReplacementState {
    /// True LRU as last-use timestamps: `last_use[set*ways + way]`
    /// holds the value of a per-cache monotone clock at that way's most
    /// recent touch, so recency order within a set is descending
    /// `last_use` and the victim is the minimum. Equivalent to a
    /// per-set recency permutation, but a touch is a single store
    /// instead of a read-modify-write of every way's rank. Values
    /// within a set are always distinct: initial seeds are, and every
    /// store uses a fresh clock value.
    Lru { last_use: Vec<u64>, clock: u64 },
    /// One bit tree per set; bit `i` = internal node i points toward the
    /// *pseudo-LRU* half when set.
    TreePlru { bits: Vec<u64> },
    /// Next victim way per set, advanced round-robin on fill.
    Fifo { next: Vec<u8> },
    /// Deterministic RNG shared across sets.
    Random { rng: Pcg32 },
}

impl ReplacementState {
    pub(crate) fn new(policy: ReplacementPolicy, sets: usize, ways: usize, seed: u64) -> Self {
        match policy {
            ReplacementPolicy::Lru => {
                // Seed each set with the recency order way 0 (most
                // recent) … way ways-1 (least recent) — the same initial
                // permutation the rank encoding used. The clock starts
                // above every seed so later touches always outrank them.
                let mut last_use = vec![0u64; sets * ways];
                for s in 0..sets {
                    for w in 0..ways {
                        last_use[s * ways + w] = (ways - w) as u64;
                    }
                }
                ReplacementState::Lru {
                    last_use,
                    clock: ways as u64,
                }
            }
            ReplacementPolicy::TreePlru => ReplacementState::TreePlru {
                bits: vec![0u64; sets],
            },
            ReplacementPolicy::Fifo => ReplacementState::Fifo {
                next: vec![0u8; sets],
            },
            ReplacementPolicy::Random => ReplacementState::Random {
                rng: Pcg32::seed(seed),
            },
        }
    }

    /// Host-cache prefetch hint for `set`'s replacement metadata; the
    /// counterpart of [`SetAssocCache::prime_host_cache`]. Touches no
    /// simulated state.
    ///
    /// [`SetAssocCache::prime_host_cache`]: crate::SetAssocCache::prime_host_cache
    #[inline]
    pub(crate) fn prime_host_cache(&self, set: usize, ways: usize) {
        match self {
            ReplacementState::Lru { last_use, .. } => {
                let base = set * ways;
                crate::cache::host_prefetch(&last_use[base]);
                if ways > 8 {
                    // 8-byte timestamps: wider sets span a second
                    // 64-byte host line.
                    crate::cache::host_prefetch(&last_use[base + 8]);
                }
            }
            ReplacementState::TreePlru { bits } => crate::cache::host_prefetch(&bits[set]),
            ReplacementState::Fifo { next } => crate::cache::host_prefetch(&next[set]),
            ReplacementState::Random { .. } => {}
        }
    }

    /// Registers a hit on `way` in `set`.
    #[inline]
    pub(crate) fn touch(&mut self, set: usize, ways: usize, way: usize) {
        match self {
            ReplacementState::Lru { last_use, clock } => {
                *clock += 1;
                last_use[set * ways + way] = *clock;
            }
            ReplacementState::TreePlru { bits } => {
                bits[set] = plru_touch(bits[set], ways, way);
            }
            ReplacementState::Fifo { .. } | ReplacementState::Random { .. } => {}
        }
    }

    /// Chooses the victim way for `set` (which is full). Does not update
    /// state; the caller then fills and calls [`Self::fill`].
    #[inline]
    pub(crate) fn victim(&mut self, set: usize, ways: usize) -> usize {
        match self {
            ReplacementState::Lru { last_use, .. } => {
                let base = set * ways;
                // Oldest timestamp = least recently used. Timestamps in
                // a set are distinct, so there is no tie to break.
                (0..ways)
                    .min_by_key(|&w| last_use[base + w])
                    .expect("ways > 0")
            }
            ReplacementState::TreePlru { bits } => plru_victim(bits[set], ways),
            ReplacementState::Fifo { next } => next[set] as usize,
            ReplacementState::Random { rng } => rng.below(ways as u64) as usize,
        }
    }

    /// Registers a fill into `way` of `set`.
    #[inline]
    pub(crate) fn fill(&mut self, set: usize, ways: usize, way: usize) {
        match self {
            ReplacementState::Lru { .. } | ReplacementState::TreePlru { .. } => {
                self.touch(set, ways, way)
            }
            ReplacementState::Fifo { next } => {
                if way == next[set] as usize {
                    next[set] = ((way + 1) % ways) as u8;
                }
            }
            ReplacementState::Random { .. } => {}
        }
    }

    /// LRU rank of `way` in `set` (0 = MRU), derived from the timestamp
    /// order. Only meaningful for LRU; used by tests.
    #[cfg(test)]
    pub(crate) fn lru_rank(&self, set: usize, ways: usize, way: usize) -> Option<u8> {
        match self {
            ReplacementState::Lru { last_use, .. } => {
                let base = set * ways;
                let mine = last_use[base + way];
                Some((0..ways).filter(|&w| last_use[base + w] > mine).count() as u8)
            }
            _ => None,
        }
    }
}

/// Walks the PLRU tree from the root, flipping traversed bits to point
/// *away* from `way`.
#[inline]
fn plru_touch(mut bits: u64, ways: usize, way: usize) -> u64 {
    let levels = ways.trailing_zeros();
    let mut node = 0usize; // root at index 0; children of i at 2i+1, 2i+2
    for level in 0..levels {
        let side = (way >> (levels - 1 - level)) & 1;
        if side == 0 {
            bits |= 1 << node; // point to the right (away from left child)
        } else {
            bits &= !(1 << node);
        }
        node = 2 * node + 1 + side;
    }
    bits
}

/// Follows the PLRU bits from the root to a leaf (the pseudo-LRU way).
#[inline]
fn plru_victim(bits: u64, ways: usize) -> usize {
    let levels = ways.trailing_zeros();
    let mut node = 0usize;
    let mut way = 0usize;
    for _ in 0..levels {
        let side = ((bits >> node) & 1) as usize;
        way = (way << 1) | side;
        node = 2 * node + 1 + side;
    }
    way
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(ReplacementPolicy::Lru.to_string(), "LRU");
        assert_eq!(ReplacementPolicy::TreePlru.to_string(), "PLRU");
        assert_eq!(ReplacementPolicy::Fifo.to_string(), "FIFO");
        assert_eq!(ReplacementPolicy::Random.to_string(), "RAND");
    }

    #[test]
    fn lru_initial_ranks_are_permutation() {
        let st = ReplacementState::new(ReplacementPolicy::Lru, 4, 8, 0);
        for set in 0..4 {
            let mut ranks: Vec<u8> = (0..8).map(|w| st.lru_rank(set, 8, w).unwrap()).collect();
            ranks.sort_unstable();
            assert_eq!(ranks, (0..8).collect::<Vec<u8>>());
        }
    }

    #[test]
    fn lru_touch_moves_to_mru_and_stays_permutation() {
        let ways = 4;
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 1, ways, 0);
        st.touch(0, ways, 2);
        assert_eq!(st.lru_rank(0, ways, 2), Some(0));
        st.touch(0, ways, 0);
        assert_eq!(st.lru_rank(0, ways, 0), Some(0));
        assert_eq!(st.lru_rank(0, ways, 2), Some(1));
        let mut ranks: Vec<u8> = (0..ways)
            .map(|w| st.lru_rank(0, ways, w).unwrap())
            .collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn lru_victim_is_least_recent() {
        let ways = 4;
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 1, ways, 0);
        // Touch 0,1,2,3 in order; LRU is 0.
        for w in 0..ways {
            st.touch(0, ways, w);
        }
        assert_eq!(st.victim(0, ways), 0);
        st.touch(0, ways, 0);
        assert_eq!(st.victim(0, ways), 1);
    }

    #[test]
    fn plru_victim_avoids_recent() {
        let ways = 8;
        let mut st = ReplacementState::new(ReplacementPolicy::TreePlru, 1, ways, 0);
        for w in 0..ways {
            st.fill(0, ways, w);
        }
        // After filling all ways in order, the victim must not be the most
        // recently filled way.
        let v = st.victim(0, ways);
        assert_ne!(v, ways - 1);
    }

    #[test]
    fn plru_single_hot_way_never_victim() {
        let ways = 8;
        let mut st = ReplacementState::new(ReplacementPolicy::TreePlru, 1, ways, 0);
        for i in 0..100 {
            st.touch(0, ways, 3);
            let v = st.victim(0, ways);
            assert_ne!(v, 3, "iteration {i}");
            st.touch(0, ways, v); // simulate filling the victim
        }
    }

    #[test]
    fn fifo_cycles_in_order() {
        let ways = 4;
        let mut st = ReplacementState::new(ReplacementPolicy::Fifo, 1, ways, 0);
        let mut victims = Vec::new();
        for _ in 0..8 {
            let v = st.victim(0, ways);
            victims.push(v);
            st.fill(0, ways, v);
        }
        assert_eq!(victims, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn fifo_hits_do_not_change_order() {
        let ways = 4;
        let mut st = ReplacementState::new(ReplacementPolicy::Fifo, 1, ways, 0);
        st.touch(0, ways, 0); // hit on way 0
        assert_eq!(st.victim(0, ways), 0, "FIFO ignores hits");
    }

    #[test]
    fn random_victims_cover_all_ways() {
        let ways = 8;
        let mut st = ReplacementState::new(ReplacementPolicy::Random, 1, ways, 42);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[st.victim(0, ways)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_is_deterministic() {
        let ways = 8;
        let mut a = ReplacementState::new(ReplacementPolicy::Random, 1, ways, 42);
        let mut b = ReplacementState::new(ReplacementPolicy::Random, 1, ways, 42);
        for _ in 0..50 {
            assert_eq!(a.victim(0, ways), b.victim(0, ways));
        }
    }

    #[test]
    fn plru_direct_mapped_degenerates() {
        // 1-way: victim is always way 0 and touch is a no-op.
        let mut st = ReplacementState::new(ReplacementPolicy::TreePlru, 2, 1, 0);
        st.touch(0, 1, 0);
        assert_eq!(st.victim(0, 1), 0);
    }
}
