//! A single set-associative cache.

use crate::config::{CacheConfig, WritePolicy};
use crate::replacement::ReplacementState;
use crate::stats::CacheStats;

/// Sentinel tag meaning "way is empty".
const EMPTY: u64 = u64::MAX;

/// Hints the host CPU to pull the cache line holding `p` into its own
/// cache. A pure performance hint: no simulated state is read or
/// written, so callers stay byte-identical with and without it.
#[inline]
pub(crate) fn host_prefetch<T>(p: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `prefetch` never dereferences architecturally; any
    // address is allowed, and `p` is a valid reference besides.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
            std::ptr::from_ref(p).cast::<i8>(),
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

const FLAG_DIRTY: u8 = 1 << 0;
/// The owning core may write this line silently (MESI E or M).
const FLAG_WRITABLE: u8 = 1 << 1;
/// The line was brought in by a prefetch and has not been used yet.
const FLAG_PREFETCHED: u8 = 1 << 2;

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvictedLine {
    /// The evicted line number.
    pub line: u64,
    /// Whether the line was dirty (requires a writeback transaction).
    pub dirty: bool,
}

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit {
        /// True when a *write* hit a line the core did not have write
        /// permission for (MESI S state). The caller must broadcast an
        /// upgrade (read-for-ownership) on the bus. Always false for reads.
        upgrade: bool,
    },
    /// The line was absent.
    Miss {
        /// The victim evicted to make room, if the set was full and the
        /// write policy allocates. `None` for cold fills into empty ways
        /// and for non-allocating write misses.
        evicted: Option<EvictedLine>,
        /// Whether the line was brought into the cache.
        allocated: bool,
    },
}

impl AccessOutcome {
    /// Whether the access hit.
    pub const fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit { .. })
    }
}

/// One set-associative cache with configurable geometry and policies.
///
/// The cache operates on *line numbers* (`address / line_size`); address
/// to line conversion happens at the hierarchy layer so that a single
/// cache is agnostic to the line size it is indexed with.
///
/// # Example
///
/// ```
/// use cmpsim_cache::{CacheConfig, SetAssocCache, AccessOutcome};
/// let mut c = SetAssocCache::new(CacheConfig::lru(4096, 64, 2)?);
/// assert!(!c.access(7, false).is_hit());
/// assert!(c.access(7, false).is_hit());
/// # Ok::<(), cmpsim_cache::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    ways: usize,
    /// `num_sets - 1`, cached so the per-access set index is a single
    /// AND instead of re-deriving the set count (two integer divisions)
    /// from the geometry on every lookup.
    set_mask: u64,
    tags: Vec<u64>,
    flags: Vec<u8>,
    repl: ReplacementState,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds an empty cache for `cfg`. Allocates tag and metadata arrays
    /// eagerly: a 256 MB, 64 B-line LRU cache allocates ~68 MB of host
    /// memory (8 B tag + 1 B flags + 8 B replacement timestamp per way).
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets() as usize;
        let ways = cfg.associativity() as usize;
        SetAssocCache {
            cfg,
            ways,
            set_mask: cfg.num_sets() - 1,
            tags: vec![EMPTY; sets * ways],
            flags: vec![0; sets * ways],
            repl: ReplacementState::new(cfg.replacement(), sets, ways, 0xD5A6_0000 ^ sets as u64),
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub const fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub const fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets all counters (contents are preserved). Used to discard
    /// cache-warmup transients before a measurement interval.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    #[inline]
    fn find(&self, set: usize, line: u64) -> Option<usize> {
        let base = set * self.ways;
        self.tags[base..base + self.ways]
            .iter()
            .position(|&t| t == line)
    }

    /// Hints the host CPU to pull `line`'s set metadata (tags, flags,
    /// replacement state) into its own cache ahead of a future
    /// [`access`](Self::access). The simulated caches are far larger
    /// than the host's, so a demand access to a random set otherwise
    /// stalls on host DRAM; replay loops issue this a few transactions
    /// ahead to hide that latency. Touches no simulated state — results
    /// are byte-identical with or without priming.
    #[inline]
    pub fn prime_host_cache(&self, line: u64) {
        let set = (line & self.set_mask) as usize;
        let base = set * self.ways;
        host_prefetch(&self.tags[base]);
        if self.ways > 8 {
            // Tags are 8 bytes; sets wider than 8 ways span a second
            // 64-byte host line.
            host_prefetch(&self.tags[base + 8]);
        }
        host_prefetch(&self.flags[base]);
        self.repl.prime_host_cache(set, self.ways);
    }

    /// Performs a demand access (read if `write` is false, write
    /// otherwise), allocating on miss according to the write policy.
    pub fn access(&mut self, line: u64, write: bool) -> AccessOutcome {
        let set = (line & self.set_mask) as usize;
        self.stats.accesses += 1;
        if write {
            self.stats.write_accesses += 1;
        }
        if let Some(way) = self.find(set, line) {
            self.stats.hits += 1;
            let slot = self.slot(set, way);
            if self.flags[slot] & FLAG_PREFETCHED != 0 {
                self.flags[slot] &= !FLAG_PREFETCHED;
                self.stats.prefetch_used += 1;
            }
            self.repl.touch(set, self.ways, way);
            let mut upgrade = false;
            if write {
                match self.cfg.write_policy() {
                    WritePolicy::WritebackAllocate => {
                        if self.flags[slot] & FLAG_WRITABLE == 0 {
                            upgrade = true;
                            self.flags[slot] |= FLAG_WRITABLE;
                            self.stats.upgrades += 1;
                        }
                        self.flags[slot] |= FLAG_DIRTY;
                    }
                    WritePolicy::WritethroughNoAllocate => {
                        // Write-through: the store propagates; line stays
                        // clean.
                    }
                }
            }
            return AccessOutcome::Hit { upgrade };
        }

        // Miss path.
        self.stats.misses += 1;
        if write {
            self.stats.write_misses += 1;
        } else {
            self.stats.read_misses += 1;
        }
        let allocate = match self.cfg.write_policy() {
            WritePolicy::WritebackAllocate => true,
            WritePolicy::WritethroughNoAllocate => !write,
        };
        if !allocate {
            return AccessOutcome::Miss {
                evicted: None,
                allocated: false,
            };
        }
        let evicted = self.fill_line(set, line, write);
        AccessOutcome::Miss {
            evicted,
            allocated: true,
        }
    }

    /// Inserts `line` (choosing a victim if the set is full) and marks it
    /// MRU. Returns the evicted line, if any.
    fn fill_line(&mut self, set: usize, line: u64, write: bool) -> Option<EvictedLine> {
        let (way, evicted) = match self.find(set, EMPTY) {
            Some(w) => (w, None),
            None => {
                let w = self.repl.victim(set, self.ways);
                let slot = self.slot(set, w);
                let dirty = self.flags[slot] & FLAG_DIRTY != 0;
                let victim = EvictedLine {
                    line: self.tags[slot],
                    dirty,
                };
                self.stats.evictions += 1;
                if dirty {
                    self.stats.writebacks += 1;
                }
                (w, Some(victim))
            }
        };
        let slot = self.slot(set, way);
        self.tags[slot] = line;
        self.flags[slot] = if write {
            // A write fill arrives via read-for-ownership: M state.
            FLAG_DIRTY | FLAG_WRITABLE
        } else {
            0
        };
        self.repl.fill(set, self.ways, way);
        evicted
    }

    /// Fills `line` on behalf of a hardware prefetcher. Does nothing if
    /// the line is already present. Not counted as a demand access.
    pub fn prefetch_fill(&mut self, line: u64) -> Option<EvictedLine> {
        let set = (line & self.set_mask) as usize;
        if let Some(way) = self.find(set, line) {
            let _ = way;
            return None;
        }
        self.stats.prefetch_fills += 1;
        let evicted = self.fill_line(set, line, false);
        // fill_line left flags at 0; mark as prefetched.
        let way = self.find(set, line).expect("line was just filled");
        let slot = self.slot(set, way);
        self.flags[slot] |= FLAG_PREFETCHED;
        evicted
    }

    /// Absorbs a dirty victim evicted from an upper cache level: if the
    /// line is present it is marked dirty (and becomes MRU) and `true` is
    /// returned; otherwise `false`, and the caller must send the writeback
    /// further down (ultimately to the bus).
    pub fn receive_writeback(&mut self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        match self.find(set, line) {
            Some(way) => {
                let slot = self.slot(set, way);
                self.flags[slot] |= FLAG_DIRTY | FLAG_WRITABLE;
                self.repl.touch(set, self.ways, way);
                true
            }
            None => false,
        }
    }

    /// Whether `line` is present, without disturbing replacement state.
    pub fn contains(&self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        self.find(set, line).is_some()
    }

    /// Removes `line` if present (snoop invalidation), returning it.
    pub fn invalidate(&mut self, line: u64) -> Option<EvictedLine> {
        let set = (line & self.set_mask) as usize;
        let way = self.find(set, line)?;
        let slot = self.slot(set, way);
        let dirty = self.flags[slot] & FLAG_DIRTY != 0;
        self.tags[slot] = EMPTY;
        self.flags[slot] = 0;
        self.stats.invalidations += 1;
        Some(EvictedLine { line, dirty })
    }

    /// Downgrades `line` to the shared (non-writable) state if present.
    /// A subsequent write hit will report `upgrade: true`.
    pub fn downgrade(&mut self, line: u64) {
        let set = (line & self.set_mask) as usize;
        if let Some(way) = self.find(set, line) {
            let slot = self.slot(set, way);
            self.flags[slot] &= !(FLAG_WRITABLE | FLAG_DIRTY);
        }
    }

    /// Grants `line` write permission without a bus transaction (MESI E
    /// state, given by the directory when no other core holds the line).
    pub fn grant_writable(&mut self, line: u64) {
        let set = (line & self.set_mask) as usize;
        if let Some(way) = self.find(set, line) {
            let slot = self.slot(set, way);
            self.flags[slot] |= FLAG_WRITABLE;
        }
    }

    /// Whether the core may write `line` without a bus transaction.
    pub fn is_writable(&self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        self.find(set, line)
            .is_some_and(|way| self.flags[self.slot(set, way)] & FLAG_WRITABLE != 0)
    }

    /// Whether `line` is present and dirty.
    pub fn is_dirty(&self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        self.find(set, line)
            .is_some_and(|way| self.flags[self.slot(set, way)] & FLAG_DIRTY != 0)
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> u64 {
        self.tags.iter().filter(|&&t| t != EMPTY).count() as u64
    }

    /// Iterates over all resident line numbers.
    pub fn iter_lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.tags.iter().copied().filter(|&t| t != EMPTY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::replacement::ReplacementPolicy;

    fn tiny(ways: u32) -> SetAssocCache {
        // 4 sets x `ways` ways x 64B lines.
        SetAssocCache::new(CacheConfig::lru(4 * u64::from(ways) * 64, 64, ways).unwrap())
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny(2);
        assert!(!c.access(5, false).is_hit());
        assert!(c.access(5, false).is_hit());
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn conflict_eviction_lru_order() {
        let mut c = tiny(2); // 4 sets; lines 0,4,8 map to set 0
        c.access(0, false);
        c.access(4, false);
        c.access(0, false); // 0 is now MRU, 4 is LRU
        let out = c.access(8, false); // evicts 4
        match out {
            AccessOutcome::Miss {
                evicted: Some(e), ..
            } => {
                assert_eq!(e.line, 4);
                assert!(!e.dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.contains(0));
        assert!(c.contains(8));
        assert!(!c.contains(4));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny(1); // direct mapped, 4 sets
        c.access(0, true);
        let out = c.access(4, false);
        match out {
            AccessOutcome::Miss {
                evicted: Some(e), ..
            } => {
                assert_eq!(e.line, 0);
                assert!(e.dirty);
            }
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_fill_is_writable_and_dirty() {
        let mut c = tiny(2);
        c.access(3, true);
        assert!(c.is_writable(3));
        assert!(c.is_dirty(3));
    }

    #[test]
    fn read_fill_needs_upgrade_to_write() {
        let mut c = tiny(2);
        c.access(3, false);
        assert!(!c.is_writable(3));
        match c.access(3, true) {
            AccessOutcome::Hit { upgrade } => assert!(upgrade),
            other => panic!("expected hit, got {other:?}"),
        }
        assert!(c.is_writable(3));
        assert!(c.is_dirty(3));
        // Second write: silent.
        match c.access(3, true) {
            AccessOutcome::Hit { upgrade } => assert!(!upgrade),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.stats().upgrades, 1);
    }

    #[test]
    fn grant_writable_suppresses_upgrade() {
        let mut c = tiny(2);
        c.access(3, false);
        c.grant_writable(3); // directory said: exclusive
        match c.access(3, true) {
            AccessOutcome::Hit { upgrade } => assert!(!upgrade),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn downgrade_clears_write_permission() {
        let mut c = tiny(2);
        c.access(3, true);
        c.downgrade(3);
        assert!(!c.is_writable(3));
        assert!(!c.is_dirty(3));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny(2);
        c.access(9, true);
        let ev = c.invalidate(9).unwrap();
        assert_eq!(ev.line, 9);
        assert!(ev.dirty);
        assert!(!c.contains(9));
        assert_eq!(c.invalidate(9), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = tiny(2); // 8 lines capacity
        for line in 0..100 {
            c.access(line, line % 3 == 0);
            assert!(c.resident_lines() <= 8);
        }
        assert_eq!(c.resident_lines(), 8);
    }

    #[test]
    fn writethrough_no_allocate_write_miss() {
        let cfg = CacheConfig::builder()
            .size_bytes(512)
            .line_bytes(64)
            .associativity(2)
            .write_policy(WritePolicy::WritethroughNoAllocate)
            .build()
            .unwrap();
        let mut c = SetAssocCache::new(cfg);
        match c.access(5, true) {
            AccessOutcome::Miss { allocated, .. } => assert!(!allocated),
            other => panic!("expected miss, got {other:?}"),
        }
        assert!(!c.contains(5));
        // Read miss still allocates.
        c.access(5, false);
        assert!(c.contains(5));
        // Write hit leaves the line clean.
        c.access(5, true);
        assert!(!c.is_dirty(5));
    }

    #[test]
    fn prefetch_fill_and_use_accounting() {
        let mut c = tiny(2);
        assert!(c.prefetch_fill(7).is_none());
        assert!(c.contains(7));
        assert_eq!(c.stats().prefetch_fills, 1);
        assert_eq!(c.stats().prefetch_used, 0);
        assert!(c.access(7, false).is_hit());
        assert_eq!(c.stats().prefetch_used, 1);
        // Second hit does not double count.
        c.access(7, false);
        assert_eq!(c.stats().prefetch_used, 1);
    }

    #[test]
    fn prefetch_existing_line_is_noop() {
        let mut c = tiny(2);
        c.access(7, false);
        assert!(c.prefetch_fill(7).is_none());
        assert_eq!(c.stats().prefetch_fills, 0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny(2);
        c.access(1, false);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.contains(1));
    }

    #[test]
    fn stats_identity_hits_plus_misses() {
        let mut c = tiny(4);
        let mut rng = cmpsim_trace::Pcg32::seed(11);
        for _ in 0..10_000 {
            c.access(rng.below(64), rng.chance(0.3));
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, s.accesses);
        assert_eq!(s.read_misses + s.write_misses, s.misses);
    }

    #[test]
    fn random_policy_runs() {
        let cfg = CacheConfig::builder()
            .size_bytes(1024)
            .line_bytes(64)
            .associativity(4)
            .replacement(ReplacementPolicy::Random)
            .build()
            .unwrap();
        let mut c = SetAssocCache::new(cfg);
        for line in 0..1000 {
            c.access(line % 37, false);
        }
        assert!(c.resident_lines() <= 16);
        assert!(c.stats().hits > 0);
    }

    #[test]
    fn lru_stack_property_small() {
        // With 4-way LRU and cyclic access to 4 lines in one set, all hits
        // after warmup; with 5 lines, all misses (classic LRU thrash).
        let cfg = CacheConfig::lru(4 * 64, 64, 4).unwrap(); // 1 set
        let mut c = SetAssocCache::new(cfg);
        for _ in 0..3 {
            for l in 0..4 {
                c.access(l, false);
            }
        }
        assert_eq!(c.stats().misses, 4); // only cold misses
        let mut c2 = SetAssocCache::new(CacheConfig::lru(4 * 64, 64, 4).unwrap());
        for _ in 0..3 {
            for l in 0..5 {
                c2.access(l, false);
            }
        }
        assert_eq!(c2.stats().hits, 0); // every access misses
    }
}
