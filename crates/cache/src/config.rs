//! Validated cache geometry and policy configuration.

use crate::replacement::ReplacementPolicy;
use std::fmt;

/// Write-hit / write-miss handling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WritePolicy {
    /// Write-back with write-allocate: stores dirty the line; dirty
    /// victims produce writebacks. This is what Dragonhead emulates and
    /// the default everywhere.
    #[default]
    WritebackAllocate,
    /// Write-through without write-allocate: stores propagate immediately
    /// and do not fill the cache on a miss. Kept for ablation studies.
    WritethroughNoAllocate,
}

/// Errors returned by [`CacheConfigBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// Size, line size, or associativity was zero.
    Zero(&'static str),
    /// A geometry parameter that must be a power of two was not.
    NotPowerOfTwo(&'static str, u64),
    /// `size / (line * associativity)` is not a whole power-of-two number
    /// of sets.
    Indivisible {
        /// Total cache capacity in bytes.
        size: u64,
        /// Line size in bytes.
        line: u64,
        /// Number of ways.
        ways: u32,
    },
    /// Associativity above the supported maximum of 64 ways.
    TooManyWays(u32),
    /// A banked organization whose total size does not split into equal
    /// banks.
    UnevenBanks {
        /// Total cache capacity in bytes.
        size: u64,
        /// Number of banks.
        banks: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Zero(what) => write!(f, "{what} must be nonzero"),
            ConfigError::NotPowerOfTwo(what, v) => {
                write!(f, "{what} must be a power of two, got {v}")
            }
            ConfigError::Indivisible { size, line, ways } => write!(
                f,
                "size {size} does not divide into a power-of-two number of \
                 sets with {line}-byte lines and {ways} ways"
            ),
            ConfigError::TooManyWays(w) => {
                write!(f, "associativity {w} exceeds the supported maximum of 64")
            }
            ConfigError::UnevenBanks { size, banks } => {
                write!(f, "size {size} does not divide evenly across {banks} banks")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Geometry and policies of one cache.
///
/// Construct with [`CacheConfig::builder`]; the builder validates that all
/// parameters are powers of two and mutually consistent, so a constructed
/// `CacheConfig` is always internally valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size_bytes: u64,
    line_bytes: u64,
    associativity: u32,
    replacement: ReplacementPolicy,
    write_policy: WritePolicy,
}

impl CacheConfig {
    /// Starts building a configuration. Defaults: 32 KiB, 64-byte lines,
    /// 8-way, LRU, write-back allocate.
    pub fn builder() -> CacheConfigBuilder {
        CacheConfigBuilder::default()
    }

    /// Convenience constructor for the common (size, line, ways) LRU case.
    ///
    /// # Errors
    ///
    /// Same as [`CacheConfigBuilder::build`].
    pub fn lru(size_bytes: u64, line_bytes: u64, associativity: u32) -> Result<Self, ConfigError> {
        Self::builder()
            .size_bytes(size_bytes)
            .line_bytes(line_bytes)
            .associativity(associativity)
            .build()
    }

    /// Total capacity in bytes.
    pub const fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Line size in bytes.
    pub const fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of ways per set.
    pub const fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Replacement policy.
    pub const fn replacement(&self) -> ReplacementPolicy {
        self.replacement
    }

    /// Write policy.
    pub const fn write_policy(&self) -> WritePolicy {
        self.write_policy
    }

    /// Number of sets (`size / line / ways`), always a power of two.
    pub const fn num_sets(&self) -> u64 {
        self.size_bytes / self.line_bytes / self.associativity as u64
    }

    /// Total number of lines the cache can hold.
    pub const fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Maps a line number to its set index.
    #[inline]
    pub const fn set_of(&self, line: u64) -> u64 {
        line & (self.num_sets() - 1)
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (size, unit) = if self.size_bytes >= 1 << 20 {
            (self.size_bytes >> 20, "MB")
        } else {
            (self.size_bytes >> 10, "KB")
        };
        write!(
            f,
            "{size}{unit}/{}B/{}-way/{}",
            self.line_bytes, self.associativity, self.replacement
        )
    }
}

/// Builder for [`CacheConfig`] ([C-BUILDER]).
#[derive(Debug, Clone, Copy)]
pub struct CacheConfigBuilder {
    size_bytes: u64,
    line_bytes: u64,
    associativity: u32,
    replacement: ReplacementPolicy,
    write_policy: WritePolicy,
}

impl Default for CacheConfigBuilder {
    fn default() -> Self {
        CacheConfigBuilder {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            associativity: 8,
            replacement: ReplacementPolicy::Lru,
            write_policy: WritePolicy::default(),
        }
    }
}

impl CacheConfigBuilder {
    /// Sets total capacity in bytes.
    pub fn size_bytes(&mut self, v: u64) -> &mut Self {
        self.size_bytes = v;
        self
    }

    /// Sets line size in bytes.
    pub fn line_bytes(&mut self, v: u64) -> &mut Self {
        self.line_bytes = v;
        self
    }

    /// Sets the number of ways per set.
    pub fn associativity(&mut self, v: u32) -> &mut Self {
        self.associativity = v;
        self
    }

    /// Sets the replacement policy.
    pub fn replacement(&mut self, v: ReplacementPolicy) -> &mut Self {
        self.replacement = v;
        self
    }

    /// Sets the write policy.
    pub fn write_policy(&mut self, v: WritePolicy) -> &mut Self {
        self.write_policy = v;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any parameter is zero, a required
    /// power of two is not one, the geometry does not divide evenly, or
    /// associativity exceeds 64.
    pub fn build(&self) -> Result<CacheConfig, ConfigError> {
        if self.size_bytes == 0 {
            return Err(ConfigError::Zero("cache size"));
        }
        if self.line_bytes == 0 {
            return Err(ConfigError::Zero("line size"));
        }
        if self.associativity == 0 {
            return Err(ConfigError::Zero("associativity"));
        }
        if self.associativity > 64 {
            return Err(ConfigError::TooManyWays(self.associativity));
        }
        if !self.size_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo("cache size", self.size_bytes));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo("line size", self.line_bytes));
        }
        if !self.associativity.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo(
                "associativity",
                u64::from(self.associativity),
            ));
        }
        let ways_bytes = self.line_bytes * u64::from(self.associativity);
        if self.size_bytes < ways_bytes || !self.size_bytes.is_multiple_of(ways_bytes) {
            return Err(ConfigError::Indivisible {
                size: self.size_bytes,
                line: self.line_bytes,
                ways: self.associativity,
            });
        }
        Ok(CacheConfig {
            size_bytes: self.size_bytes,
            line_bytes: self.line_bytes,
            associativity: self.associativity,
            replacement: self.replacement,
            write_policy: self.write_policy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_valid() {
        let cfg = CacheConfig::builder().build().unwrap();
        assert_eq!(cfg.size_bytes(), 32 * 1024);
        assert_eq!(cfg.line_bytes(), 64);
        assert_eq!(cfg.associativity(), 8);
        assert_eq!(cfg.num_sets(), 64);
    }

    #[test]
    fn dragonhead_range_is_constructible() {
        // §3.1: 1 MB to 256 MB, 64 B to 4096 B lines.
        for size_mb in [1u64, 2, 4, 8, 16, 32, 64, 128, 256] {
            for line in [64u64, 128, 256, 512, 1024, 2048, 4096] {
                let cfg = CacheConfig::lru(size_mb << 20, line, 16).unwrap();
                assert_eq!(cfg.num_lines(), (size_mb << 20) / line);
                assert!(cfg.num_sets().is_power_of_two());
            }
        }
    }

    #[test]
    fn zero_params_rejected() {
        assert_eq!(
            CacheConfig::lru(0, 64, 8),
            Err(ConfigError::Zero("cache size"))
        );
        assert_eq!(
            CacheConfig::lru(1024, 0, 8),
            Err(ConfigError::Zero("line size"))
        );
        assert_eq!(
            CacheConfig::lru(1024, 64, 0),
            Err(ConfigError::Zero("associativity"))
        );
    }

    #[test]
    fn non_power_of_two_rejected() {
        assert!(matches!(
            CacheConfig::lru(3000, 64, 8),
            Err(ConfigError::NotPowerOfTwo("cache size", 3000))
        ));
        assert!(matches!(
            CacheConfig::lru(4096, 48, 8),
            Err(ConfigError::NotPowerOfTwo("line size", 48))
        ));
        assert!(matches!(
            CacheConfig::lru(4096, 64, 3),
            Err(ConfigError::NotPowerOfTwo("associativity", 3))
        ));
    }

    #[test]
    fn too_small_for_one_set_rejected() {
        assert!(matches!(
            CacheConfig::lru(512, 64, 16),
            Err(ConfigError::Indivisible { .. })
        ));
    }

    #[test]
    fn too_many_ways_rejected() {
        assert!(matches!(
            CacheConfig::builder().associativity(128).build(),
            Err(ConfigError::TooManyWays(128))
        ));
    }

    #[test]
    fn set_mapping_wraps() {
        let cfg = CacheConfig::lru(4096, 64, 1).unwrap(); // 64 sets
        assert_eq!(cfg.set_of(0), 0);
        assert_eq!(cfg.set_of(63), 63);
        assert_eq!(cfg.set_of(64), 0);
        assert_eq!(cfg.set_of(130), 2);
    }

    #[test]
    fn display_human_readable() {
        let cfg = CacheConfig::lru(32 << 20, 64, 16).unwrap();
        assert_eq!(cfg.to_string(), "32MB/64B/16-way/LRU");
        let small = CacheConfig::lru(8 << 10, 64, 4).unwrap();
        assert_eq!(small.to_string(), "8KB/64B/4-way/LRU");
    }

    #[test]
    fn error_display_messages() {
        assert_eq!(
            ConfigError::Zero("line size").to_string(),
            "line size must be nonzero"
        );
        assert!(ConfigError::TooManyWays(128).to_string().contains("128"));
    }
}
