//! Cache counters and working-set measurement.

use std::collections::HashSet;
use std::fmt;

/// Counters maintained by every [`SetAssocCache`](crate::SetAssocCache).
///
/// All identities hold at all times:
/// `hits + misses == accesses`, `read_misses + write_misses == misses`,
/// `writebacks <= evictions`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (reads + writes).
    pub accesses: u64,
    /// Demand accesses that were writes.
    pub write_accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Demand misses caused by reads.
    pub read_misses: u64,
    /// Demand misses caused by writes.
    pub write_misses: u64,
    /// Lines evicted to make room for fills.
    pub evictions: u64,
    /// Evictions of dirty lines (each costs a bus writeback).
    pub writebacks: u64,
    /// Lines removed by snoop invalidations.
    pub invalidations: u64,
    /// Write hits that required a bus upgrade (line was shared).
    pub upgrades: u64,
    /// Lines brought in by the hardware prefetcher.
    pub prefetch_fills: u64,
    /// Prefetched lines later touched by a demand access (prefetch
    /// accuracy = `prefetch_used / prefetch_fills`).
    pub prefetch_used: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1]; 0 for an untouched cache.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Misses per 1000 instructions given an instruction count — the
    /// paper's y-axis for Figures 4–6.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Accesses per 1000 instructions (Table 2's "DL1 Accesses/1000 Inst").
    pub fn apki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.accesses as f64 * 1000.0 / instructions as f64
        }
    }

    /// Fraction of prefetched lines that were eventually used.
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetch_fills == 0 {
            0.0
        } else {
            self.prefetch_used as f64 / self.prefetch_fills as f64
        }
    }

    /// Adds another stats block into this one (used to merge per-core or
    /// per-bank counters).
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.write_accesses += other.write_accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.read_misses += other.read_misses;
        self.write_misses += other.write_misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.invalidations += other.invalidations;
        self.upgrades += other.upgrades;
        self.prefetch_fills += other.prefetch_fills;
        self.prefetch_used += other.prefetch_used;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} hits={} misses={} ({:.2}%) writebacks={}",
            self.accesses,
            self.hits,
            self.misses,
            self.miss_ratio() * 100.0,
            self.writebacks
        )
    }
}

/// Measures a reference stream's working set: the number of distinct cache
/// lines touched.
///
/// §4.3 of the paper reads working-set sizes off the MPKI-vs-size knees;
/// this estimator gives the direct measurement used by the integration
/// tests that validate the synthetic workloads' footprints.
#[derive(Debug, Clone, Default)]
pub struct WorkingSetEstimator {
    line_size: u64,
    lines: HashSet<u64>,
}

impl WorkingSetEstimator {
    /// Creates an estimator that counts distinct `line_size`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is not a power of two.
    pub fn new(line_size: u64) -> Self {
        assert!(line_size.is_power_of_two());
        WorkingSetEstimator {
            line_size,
            lines: HashSet::new(),
        }
    }

    /// Records a touched address.
    #[inline]
    pub fn touch(&mut self, addr: cmpsim_trace::Addr) {
        self.lines.insert(addr.line(self.line_size));
    }

    /// Records a touched line number directly.
    #[inline]
    pub fn touch_line(&mut self, line: u64) {
        self.lines.insert(line);
    }

    /// Number of distinct lines touched.
    pub fn unique_lines(&self) -> u64 {
        self.lines.len() as u64
    }

    /// Footprint in bytes (`unique_lines * line_size`).
    pub fn footprint_bytes(&self) -> u64 {
        self.unique_lines() * self.line_size
    }

    /// Clears the estimator for a new interval.
    pub fn reset(&mut self) {
        self.lines.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::Addr;

    #[test]
    fn ratios_of_empty_stats_are_zero() {
        let s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.mpki(0), 0.0);
        assert_eq!(s.apki(0), 0.0);
        assert_eq!(s.prefetch_accuracy(), 0.0);
    }

    #[test]
    fn mpki_math() {
        let s = CacheStats {
            accesses: 500,
            misses: 12,
            hits: 488,
            ..Default::default()
        };
        assert!((s.mpki(1000) - 12.0).abs() < 1e-12);
        assert!((s.mpki(4000) - 3.0).abs() < 1e-12);
        assert!((s.apki(1000) - 500.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_fields() {
        let a = CacheStats {
            accesses: 10,
            hits: 7,
            misses: 3,
            writebacks: 1,
            ..Default::default()
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.accesses, 20);
        assert_eq!(b.hits, 14);
        assert_eq!(b.writebacks, 2);
    }

    #[test]
    fn display_contains_percentages() {
        let s = CacheStats {
            accesses: 100,
            hits: 75,
            misses: 25,
            ..Default::default()
        };
        assert!(s.to_string().contains("25.00%"));
    }

    #[test]
    fn working_set_counts_lines_not_bytes() {
        let mut ws = WorkingSetEstimator::new(64);
        ws.touch(Addr::new(0));
        ws.touch(Addr::new(63)); // same line
        ws.touch(Addr::new(64)); // next line
        assert_eq!(ws.unique_lines(), 2);
        assert_eq!(ws.footprint_bytes(), 128);
    }

    #[test]
    fn working_set_reset() {
        let mut ws = WorkingSetEstimator::new(64);
        ws.touch_line(5);
        ws.reset();
        assert_eq!(ws.unique_lines(), 0);
    }

    #[test]
    fn working_set_sequential_region() {
        let mut ws = WorkingSetEstimator::new(64);
        for b in (0..4096).step_by(4) {
            ws.touch(Addr::new(b));
        }
        assert_eq!(ws.footprint_bytes(), 4096);
    }
}
