#![warn(missing_docs)]

//! Configurable set-associative cache hierarchy simulator for `cmpsim`.
//!
//! This crate is the algorithmic core behind both halves of the paper's
//! infrastructure: the *emulated* shared last-level cache inside Dragonhead
//! (1 MB–256 MB, 64 B–4096 B lines, LRU — §3.1) and the *host-side* private
//! caches that filter the workload's references before they reach the
//! front-side bus (the Pentium 4's 8 KB DL1 + 512 KB L2 used for Table 2).
//!
//! Layers, bottom-up:
//!
//! * [`CacheConfig`] — validated geometry (size, line, associativity) and
//!   policies,
//! * [`SetAssocCache`] — one set-associative cache with pluggable
//!   replacement ([`ReplacementPolicy`]),
//! * [`PrivateHierarchy`] — a per-core L1(+L2) stack that turns memory
//!   references into bus transactions,
//! * [`CoherentCores`] — N private hierarchies kept coherent with an
//!   MSI-style snoop protocol, producing the FSB transaction stream that a
//!   passive LLC emulator observes,
//! * [`CacheStats`] / [`WorkingSetEstimator`] — counters and footprint
//!   measurement.
//!
//! # Example
//!
//! ```
//! use cmpsim_cache::{CacheConfig, SetAssocCache};
//!
//! let cfg = CacheConfig::builder()
//!     .size_bytes(32 * 1024 * 1024)
//!     .line_bytes(64)
//!     .associativity(16)
//!     .build()?;
//! let mut llc = SetAssocCache::new(cfg);
//! llc.access(0, false); // cold miss
//! llc.access(0, false); // hit
//! assert_eq!(llc.stats().hits, 1);
//! assert_eq!(llc.stats().misses, 1);
//! # Ok::<(), cmpsim_cache::ConfigError>(())
//! ```

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod replacement;
pub mod stats;

pub use cache::{AccessOutcome, EvictedLine, SetAssocCache};
pub use config::{CacheConfig, CacheConfigBuilder, ConfigError, WritePolicy};
pub use hierarchy::{BusEvent, CoherentCores, HierarchyConfig, PrivateHierarchy};
pub use replacement::ReplacementPolicy;
pub use stats::{CacheStats, WorkingSetEstimator};
