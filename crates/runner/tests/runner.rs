//! Integration tests for the worker pool: ordering determinism, cache
//! warm-up, panic isolation, deterministic backoff, journal resume,
//! process-isolation quarantine, and graceful shutdown.

use cmpsim_runner::{
    BackoffPolicy, ExperimentJob, IsolateMode, JobKey, JobOutcome, JournalConfig, Runner,
    RunnerConfig, ShutdownFlag,
};
use cmpsim_telemetry::{JsonValue, MetricRegistry, SpanProfiler};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmpsim_runner_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn square_jobs(n: u64) -> Vec<ExperimentJob> {
    (0..n)
        .map(|i| {
            ExperimentJob::new(
                format!("sq{i}"),
                JobKey::new("squares").field("i", i),
                move || JsonValue::U64(i * i),
            )
        })
        .collect()
}

#[test]
fn parallel_results_match_serial_in_submission_order() {
    let serial = Runner::new(RunnerConfig::default()).run(square_jobs(16));
    let parallel = Runner::new(RunnerConfig {
        workers: 4,
        ..RunnerConfig::default()
    })
    .run(square_jobs(16));
    assert_eq!(parallel.workers, 4);
    let s: Vec<&JsonValue> = serial.payloads().collect();
    let p: Vec<&JsonValue> = parallel.payloads().collect();
    assert_eq!(s, p);
    assert_eq!(p.len(), 16);
    assert_eq!(p[3].as_u64(), Some(9));
}

#[test]
fn workers_never_exceed_jobs() {
    let report = Runner::new(RunnerConfig {
        workers: 64,
        ..RunnerConfig::default()
    })
    .run(square_jobs(3));
    assert_eq!(report.workers, 3);
    assert_eq!(report.ok_count(), 3);
}

#[test]
fn warm_cache_executes_nothing() {
    let dir = temp_dir("warm");
    let cfg = RunnerConfig {
        workers: 2,
        cache_dir: Some(dir.clone()),
        ..RunnerConfig::default()
    };
    let executions = Arc::new(AtomicUsize::new(0));
    let jobs = |count: &Arc<AtomicUsize>| -> Vec<ExperimentJob> {
        (0..5u64)
            .map(|i| {
                let count = Arc::clone(count);
                ExperimentJob::new(
                    format!("cell{i}"),
                    JobKey::new("warmth").field("i", i),
                    move || {
                        count.fetch_add(1, Ordering::SeqCst);
                        JsonValue::U64(i + 100)
                    },
                )
            })
            .collect()
    };
    let cold = Runner::new(cfg.clone()).run(jobs(&executions));
    assert_eq!(cold.ok_count(), 5);
    assert_eq!(cold.cached_count(), 0);
    assert_eq!(executions.load(Ordering::SeqCst), 5);

    let warm = Runner::new(cfg).run(jobs(&executions));
    assert_eq!(warm.ok_count(), 0);
    assert_eq!(warm.cached_count(), 5);
    // Zero additional executions: every cell came off disk.
    assert_eq!(executions.load(Ordering::SeqCst), 5);
    // And the payloads are identical to the cold run's.
    assert_eq!(
        cold.payloads().collect::<Vec<_>>(),
        warm.payloads().collect::<Vec<_>>()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_job_fails_in_isolation_with_bounded_retry() {
    let attempts = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&attempts);
    let mut jobs = square_jobs(6);
    jobs.insert(
        3,
        ExperimentJob::new("bad", JobKey::new("panics"), move || {
            seen.fetch_add(1, Ordering::SeqCst);
            panic!("deliberate test panic");
        }),
    );
    let report = Runner::new(RunnerConfig {
        workers: 3,
        retries: 2,
        ..RunnerConfig::default()
    })
    .run(jobs);
    // The batch completed around the failure.
    assert_eq!(report.ok_count(), 6);
    assert_eq!(report.failed_count(), 1);
    // Bounded retry: 1 initial attempt + 2 retries.
    assert_eq!(attempts.load(Ordering::SeqCst), 3);
    assert_eq!(report.jobs[3].attempts, 3);
    let failures = report.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].0, "bad");
    assert!(failures[0].1.contains("deliberate test panic"));
    // Failed jobs carry no payload; the others are untouched and ordered.
    assert!(report.jobs[3].outcome.payload().is_none());
    let vals: Vec<u64> = report.payloads().filter_map(|v| v.as_u64()).collect();
    assert_eq!(vals, [0, 1, 4, 9, 16, 25]);
    assert!(report.summary().contains("1 failed of 7 jobs"));
}

#[test]
fn failed_jobs_are_not_cached() {
    let dir = temp_dir("nofailcache");
    let cfg = RunnerConfig {
        cache_dir: Some(dir.clone()),
        retries: 0,
        ..RunnerConfig::default()
    };
    let make = |succeed: bool| {
        vec![ExperimentJob::new(
            "flaky",
            JobKey::new("flaky"),
            move || {
                if succeed {
                    JsonValue::Bool(true)
                } else {
                    panic!("first run fails")
                }
            },
        )]
    };
    let first = Runner::new(cfg.clone()).run(make(false));
    assert_eq!(first.failed_count(), 1);
    // The failure was not poisoned into the cache: the next run executes.
    let second = Runner::new(cfg).run(make(true));
    assert_eq!(second.ok_count(), 1);
    assert_eq!(second.cached_count(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_exports_telemetry_and_json() {
    let dir = temp_dir("telemetry");
    let cfg = RunnerConfig {
        workers: 2,
        cache_dir: Some(dir.clone()),
        ..RunnerConfig::default()
    };
    Runner::new(cfg.clone()).run(square_jobs(4));
    let report = Runner::new(cfg).run(square_jobs(4));
    let mut reg = MetricRegistry::new();
    report.export_metrics(&mut reg);
    assert_eq!(reg.counter_total("runner_jobs"), 4);
    let mut spans = SpanProfiler::new();
    report.export_spans(&mut spans);
    let names: Vec<&str> = spans.spans().iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"runner"));
    assert!(names.contains(&"job:sq0"));

    let doc = report.to_json();
    assert_eq!(doc.get("cached").and_then(JsonValue::as_u64), Some(4));
    assert_eq!(doc.get("ok").and_then(JsonValue::as_u64), Some(0));
    let jobs = doc.get("jobs").unwrap().as_array().unwrap();
    assert_eq!(jobs.len(), 4);
    assert!(jobs
        .iter()
        .all(|j| j.get("outcome").and_then(JsonValue::as_str) == Some("cached")));
    // The document survives a serialize/parse round trip.
    assert_eq!(cmpsim_telemetry::parse(&doc.to_json()).unwrap(), doc);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn outcome_kinds() {
    assert_eq!(JobOutcome::Ok(JsonValue::Null).kind(), "ok");
    assert_eq!(JobOutcome::Cached(JsonValue::Null).kind(), "cached");
    assert_eq!(
        JobOutcome::Failed {
            error: String::new()
        }
        .kind(),
        "failed"
    );
    assert_eq!(
        JobOutcome::Errored {
            category: "protocol".into(),
            error: String::new()
        }
        .kind(),
        "error"
    );
    assert_eq!(
        JobOutcome::TimedOut {
            error: String::new()
        }
        .kind(),
        "timeout"
    );
}

#[test]
fn structured_errors_are_deterministic_and_not_retried() {
    let attempts = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&attempts);
    let mut jobs = square_jobs(3);
    jobs.insert(
        1,
        ExperimentJob::try_new("broken", JobKey::new("errs"), move || {
            seen.fetch_add(1, Ordering::SeqCst);
            Err(cmpsim_runner::JobError::new(
                "invariant",
                "sample count drifted from the cycle clock",
            ))
        }),
    );
    let report = Runner::new(RunnerConfig {
        retries: 3,
        ..RunnerConfig::default()
    })
    .run(jobs);
    assert_eq!(report.ok_count(), 3);
    assert_eq!(report.failed_count(), 1);
    // Deterministic failure: exactly one attempt despite retries = 3.
    assert_eq!(attempts.load(Ordering::SeqCst), 1);
    assert_eq!(
        report.jobs[1].outcome,
        JobOutcome::Errored {
            category: "invariant".into(),
            error: "sample count drifted from the cycle clock".into(),
        }
    );
    // The report JSON names the job, the kind, and the category.
    let doc = report.to_json();
    let jobs = doc.get("jobs").unwrap().as_array().unwrap();
    assert_eq!(
        jobs[1].get("outcome").and_then(JsonValue::as_str),
        Some("error")
    );
    assert_eq!(
        jobs[1].get("category").and_then(JsonValue::as_str),
        Some("invariant")
    );
    assert!(report.failures()[0].1.contains("sample count"));
}

#[test]
fn watchdog_abandons_hung_job_and_batch_completes() {
    let attempts = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&attempts);
    let mut jobs = square_jobs(4);
    jobs.insert(
        2,
        ExperimentJob::new("hung", JobKey::new("hangs"), move || {
            seen.fetch_add(1, Ordering::SeqCst);
            // Far beyond the deadline; the watchdog must not wait for it.
            std::thread::sleep(std::time::Duration::from_secs(60));
            JsonValue::Null
        }),
    );
    let started = std::time::Instant::now();
    let report = Runner::new(RunnerConfig {
        workers: 2,
        retries: 1,
        job_timeout: Some(std::time::Duration::from_millis(100)),
        ..RunnerConfig::default()
    })
    .run(jobs);
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "the hung job stalled the batch"
    );
    // Every healthy cell completed in submission order under the deadline.
    assert_eq!(report.ok_count(), 4);
    assert_eq!(report.timed_out_count(), 1);
    assert_eq!(report.failed_count(), 1);
    let vals: Vec<u64> = report.payloads().filter_map(|v| v.as_u64()).collect();
    assert_eq!(vals, [0, 1, 4, 9]);
    // Retried once: two abandoned attempts in total.
    assert_eq!(report.jobs[2].attempts, 2);
    assert_eq!(attempts.load(Ordering::SeqCst), 2);
    assert!(matches!(
        &report.jobs[2].outcome,
        JobOutcome::TimedOut { error } if error.contains("2 attempt")
    ));
}

#[test]
fn flaky_job_succeeds_on_attempt_three_with_the_exact_backoff_schedule() {
    let policy = BackoffPolicy {
        base: Duration::from_millis(10),
        factor: 2,
        max: Duration::from_secs(1),
        retry_structured: false,
    };
    // Deterministic schedule: 10 ms before attempt 2, 20 ms before 3.
    let expected_ms: f64 = policy
        .schedule(2)
        .iter()
        .map(|d| d.as_secs_f64() * 1e3)
        .sum();
    let attempts = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&attempts);
    let jobs = vec![ExperimentJob::new(
        "flaky",
        JobKey::new("flaky_backoff"),
        move || {
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient failure");
            }
            JsonValue::Bool(true)
        },
    )];
    let started = std::time::Instant::now();
    let report = Runner::new(RunnerConfig {
        retries: 2,
        backoff: policy,
        ..RunnerConfig::default()
    })
    .run(jobs);
    assert_eq!(report.ok_count(), 1);
    assert_eq!(report.jobs[0].attempts, 3);
    assert_eq!(attempts.load(Ordering::SeqCst), 3);
    // The report carries the *configured* delay total, exactly — no
    // clock noise, no jitter.
    assert_eq!(report.jobs[0].backoff_ms, expected_ms);
    assert_eq!(report.backoff_ms(), expected_ms);
    assert!(
        started.elapsed() >= Duration::from_millis(30),
        "the delays must actually have been slept"
    );
    let doc = report.to_json();
    let jobs = doc.get("jobs").unwrap().as_array().unwrap();
    assert_eq!(
        jobs[0].get("backoff_ms").and_then(JsonValue::as_f64),
        Some(expected_ms)
    );
}

#[test]
fn structured_errors_retry_only_when_the_policy_opts_in() {
    let attempts = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&attempts);
    let jobs = vec![ExperimentJob::try_new(
        "io_flake",
        JobKey::new("io_flake"),
        move || {
            if seen.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(cmpsim_runner::JobError::new("io", "transient host hiccup"))
            } else {
                Ok(JsonValue::Bool(true))
            }
        },
    )];
    let report = Runner::new(RunnerConfig {
        retries: 2,
        backoff: BackoffPolicy {
            retry_structured: true,
            ..BackoffPolicy::immediate()
        },
        ..RunnerConfig::default()
    })
    .run(jobs);
    // The policy — not a special case at the failure site — decided the
    // structured error was retryable.
    assert_eq!(report.ok_count(), 1);
    assert_eq!(report.jobs[0].attempts, 3);
    assert_eq!(attempts.load(Ordering::SeqCst), 3);
}

#[test]
fn process_isolated_crash_is_quarantined_without_stalling_neighbours() {
    // The child argv re-execs this very test harness with a filter that
    // matches nothing: the child exits without ever printing the result
    // marker, which is exactly what an abort/OOM kill looks like to the
    // supervisor.
    let mut jobs = square_jobs(4);
    jobs.insert(
        2,
        ExperimentJob::new("doomed", JobKey::new("poison"), || JsonValue::Null)
            .with_child_args(vec!["no_test_matches_this_filter".to_owned()]),
    );
    let report = Runner::new(RunnerConfig {
        workers: 2,
        retries: 1,
        isolate: IsolateMode::Process,
        backoff: BackoffPolicy::immediate(),
        ..RunnerConfig::default()
    })
    .run(jobs);
    // Neighbours (inline fallback — no child argv) all completed.
    assert_eq!(report.ok_count(), 4);
    assert_eq!(report.poisoned_count(), 1);
    assert_eq!(report.failed_count(), 1);
    assert_eq!(
        report.jobs[2].attempts, 2,
        "crash retried before quarantine"
    );
    assert!(matches!(
        &report.jobs[2].outcome,
        JobOutcome::Poisoned { error } if error.contains("quarantined after 2 attempt")
    ));
    let vals: Vec<u64> = report.payloads().filter_map(|v| v.as_u64()).collect();
    assert_eq!(vals, [0, 1, 4, 9]);
    assert!(report.summary().contains("1 failed of 5 jobs"));
}

#[test]
fn shutdown_drains_queued_jobs_as_skipped() {
    let flag = ShutdownFlag::new();
    let tripper = flag.clone();
    let mut jobs = vec![ExperimentJob::new(
        "tripwire",
        JobKey::new("drain").field("i", 0u64),
        move || {
            tripper.request();
            JsonValue::Bool(true)
        },
    )];
    for i in 1..5u64 {
        jobs.push(ExperimentJob::new(
            format!("queued{i}"),
            JobKey::new("drain").field("i", i),
            move || JsonValue::U64(i),
        ));
    }
    let report = Runner::new(RunnerConfig {
        workers: 1,
        shutdown: Some(flag),
        ..RunnerConfig::default()
    })
    .run(jobs);
    // The in-flight job finished; everything queued behind it drained.
    assert!(report.interrupted);
    assert_eq!(report.ok_count(), 1);
    assert_eq!(report.skipped_count(), 4);
    assert_eq!(report.failed_count(), 4, "skipped cells count as failed");
    assert!(report.jobs[1..]
        .iter()
        .all(|j| j.outcome == JobOutcome::Skipped && j.attempts == 0));
    assert!(report.summary().contains("interrupted — 4 cells skipped"));
}

#[test]
fn journal_resume_replays_completed_cells_without_executing() {
    let dir = temp_dir("journal_resume");
    let executions = Arc::new(AtomicUsize::new(0));
    let make = |n: u64, poison_replayed: bool, count: &Arc<AtomicUsize>| {
        (0..n)
            .map(|i| {
                let count = Arc::clone(count);
                ExperimentJob::try_new(
                    format!("cell{i}"),
                    JobKey::new("resume").field("i", i),
                    move || {
                        count.fetch_add(1, Ordering::SeqCst);
                        // A replayed cell must never run again: fail loudly
                        // if it does.
                        if poison_replayed && i < 3 {
                            panic!("replayed cell {i} was re-executed");
                        }
                        if i == 1 {
                            Err(cmpsim_runner::JobError::new("invariant", "cell 1 drifts"))
                        } else {
                            Ok(JsonValue::U64(i * 10))
                        }
                    },
                )
            })
            .collect::<Vec<_>>()
    };
    // First (interrupted) run: only the first three cells existed.
    let first = Runner::new(RunnerConfig {
        journal: Some(JournalConfig::new(dir.clone(), "r1")),
        ..RunnerConfig::default()
    })
    .run(make(3, false, &executions));
    assert_eq!(first.ok_count(), 2);
    assert_eq!(first.failed_count(), 1);
    assert_eq!(executions.load(Ordering::SeqCst), 3);
    assert_eq!(first.run_id.as_deref(), Some("r1"));
    assert_eq!(first.replayed_count(), 0);

    // Resume with the full five-cell grid: the three journalled cells
    // replay (including the structured error), the two new ones run.
    let resumed = Runner::new(RunnerConfig {
        journal: Some(JournalConfig::new(dir.clone(), "r1").resuming()),
        ..RunnerConfig::default()
    })
    .run(make(5, true, &executions));
    assert_eq!(
        executions.load(Ordering::SeqCst),
        5,
        "only cells 3 and 4 ran"
    );
    assert_eq!(resumed.replayed_count(), 3);
    assert_eq!(resumed.ok_count(), 4);
    assert_eq!(resumed.failed_count(), 1);
    assert!(resumed.jobs[..3].iter().all(|j| j.replayed));
    assert!(resumed.jobs[3..].iter().all(|j| !j.replayed));
    // Replayed outcomes are byte-identical to the original run's,
    // including the error taxonomy.
    assert_eq!(resumed.jobs[0].outcome, first.jobs[0].outcome);
    assert_eq!(resumed.jobs[1].outcome, first.jobs[1].outcome);
    assert!(matches!(
        &resumed.jobs[1].outcome,
        JobOutcome::Errored { category, .. } if category == "invariant"
    ));
    let vals: Vec<u64> = resumed.payloads().filter_map(|v| v.as_u64()).collect();
    assert_eq!(vals, [0, 20, 30, 40]);
    assert!(resumed.summary().contains("3 replayed from journal"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_recovers_in_flight_cells_by_reexecuting_them() {
    let dir = temp_dir("journal_inflight");
    // Simulate a run that died mid-cell: the journal holds a start
    // record with no matching outcome.
    {
        let cfg = JournalConfig::new(dir.clone(), "r2");
        let (j, _) = cmpsim_runner::RunJournal::open(&cfg).unwrap();
        let done = JobKey::new("inflight").field("i", 0u64);
        let dead = JobKey::new("inflight").field("i", 1u64);
        j.job_start(0, &done.canonical(), "cell0");
        j.job_done(
            0,
            &done.canonical(),
            "cell0",
            &JobOutcome::Ok(JsonValue::U64(0)),
            1,
        );
        j.job_start(1, &dead.canonical(), "cell1");
    }
    let executions = Arc::new(AtomicUsize::new(0));
    let count = Arc::clone(&executions);
    let jobs = (0..2u64)
        .map(|i| {
            let count = Arc::clone(&count);
            ExperimentJob::new(
                format!("cell{i}"),
                JobKey::new("inflight").field("i", i),
                move || {
                    count.fetch_add(1, Ordering::SeqCst);
                    JsonValue::U64(i * 10)
                },
            )
        })
        .collect();
    let report = Runner::new(RunnerConfig {
        journal: Some(JournalConfig::new(dir.clone(), "r2").resuming()),
        ..RunnerConfig::default()
    })
    .run(jobs);
    assert_eq!(report.replayed_count(), 1);
    assert_eq!(report.recovered, 1, "the in-flight cell was re-enqueued");
    assert_eq!(executions.load(Ordering::SeqCst), 1, "only cell 1 ran");
    assert_eq!(report.ok_count(), 2);
    let vals: Vec<u64> = report.payloads().filter_map(|v| v.as_u64()).collect();
    assert_eq!(vals, [0, 10]);
    assert!(report.summary().contains("1 in-flight recovered"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn new_outcome_kinds_roundtrip_through_json() {
    let outcomes = [
        JobOutcome::Ok(JsonValue::object([("mpki", JsonValue::F64(1.5))])),
        JobOutcome::Cached(JsonValue::U64(7)),
        JobOutcome::Failed {
            error: "boom".into(),
        },
        JobOutcome::Errored {
            category: "protocol".into(),
            error: "desync".into(),
        },
        JobOutcome::TimedOut {
            error: "deadline".into(),
        },
        JobOutcome::Poisoned {
            error: "child died".into(),
        },
        JobOutcome::Skipped,
    ];
    assert_eq!(
        JobOutcome::Poisoned {
            error: String::new()
        }
        .kind(),
        "poisoned"
    );
    assert_eq!(JobOutcome::Skipped.kind(), "skipped");
    for o in outcomes {
        let doc = cmpsim_telemetry::parse(&o.to_json().to_json()).unwrap();
        assert_eq!(JobOutcome::from_json(&doc), Some(o));
    }
    assert_eq!(JobOutcome::from_json(&JsonValue::Null), None);
    assert_eq!(
        JobOutcome::from_json(&JsonValue::object([("kind", JsonValue::from("martian"))])),
        None
    );
}

#[test]
fn watchdog_passes_healthy_jobs_through() {
    let report = Runner::new(RunnerConfig {
        workers: 2,
        job_timeout: Some(std::time::Duration::from_secs(30)),
        ..RunnerConfig::default()
    })
    .run(square_jobs(8));
    assert_eq!(report.ok_count(), 8);
    assert_eq!(report.timed_out_count(), 0);
    let vals: Vec<u64> = report.payloads().filter_map(|v| v.as_u64()).collect();
    assert_eq!(vals, [0, 1, 4, 9, 16, 25, 36, 49]);
}
