//! Integration tests for the worker pool: ordering determinism, cache
//! warm-up, and panic isolation.

use cmpsim_runner::{ExperimentJob, JobKey, JobOutcome, Runner, RunnerConfig};
use cmpsim_telemetry::{JsonValue, MetricRegistry, SpanProfiler};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmpsim_runner_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn square_jobs(n: u64) -> Vec<ExperimentJob> {
    (0..n)
        .map(|i| {
            ExperimentJob::new(
                format!("sq{i}"),
                JobKey::new("squares").field("i", i),
                move || JsonValue::U64(i * i),
            )
        })
        .collect()
}

#[test]
fn parallel_results_match_serial_in_submission_order() {
    let serial = Runner::new(RunnerConfig::default()).run(square_jobs(16));
    let parallel = Runner::new(RunnerConfig {
        workers: 4,
        ..RunnerConfig::default()
    })
    .run(square_jobs(16));
    assert_eq!(parallel.workers, 4);
    let s: Vec<&JsonValue> = serial.payloads().collect();
    let p: Vec<&JsonValue> = parallel.payloads().collect();
    assert_eq!(s, p);
    assert_eq!(p.len(), 16);
    assert_eq!(p[3].as_u64(), Some(9));
}

#[test]
fn workers_never_exceed_jobs() {
    let report = Runner::new(RunnerConfig {
        workers: 64,
        ..RunnerConfig::default()
    })
    .run(square_jobs(3));
    assert_eq!(report.workers, 3);
    assert_eq!(report.ok_count(), 3);
}

#[test]
fn warm_cache_executes_nothing() {
    let dir = temp_dir("warm");
    let cfg = RunnerConfig {
        workers: 2,
        cache_dir: Some(dir.clone()),
        ..RunnerConfig::default()
    };
    let executions = Arc::new(AtomicUsize::new(0));
    let jobs = |count: &Arc<AtomicUsize>| -> Vec<ExperimentJob> {
        (0..5u64)
            .map(|i| {
                let count = Arc::clone(count);
                ExperimentJob::new(
                    format!("cell{i}"),
                    JobKey::new("warmth").field("i", i),
                    move || {
                        count.fetch_add(1, Ordering::SeqCst);
                        JsonValue::U64(i + 100)
                    },
                )
            })
            .collect()
    };
    let cold = Runner::new(cfg.clone()).run(jobs(&executions));
    assert_eq!(cold.ok_count(), 5);
    assert_eq!(cold.cached_count(), 0);
    assert_eq!(executions.load(Ordering::SeqCst), 5);

    let warm = Runner::new(cfg).run(jobs(&executions));
    assert_eq!(warm.ok_count(), 0);
    assert_eq!(warm.cached_count(), 5);
    // Zero additional executions: every cell came off disk.
    assert_eq!(executions.load(Ordering::SeqCst), 5);
    // And the payloads are identical to the cold run's.
    assert_eq!(
        cold.payloads().collect::<Vec<_>>(),
        warm.payloads().collect::<Vec<_>>()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_job_fails_in_isolation_with_bounded_retry() {
    let attempts = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&attempts);
    let mut jobs = square_jobs(6);
    jobs.insert(
        3,
        ExperimentJob::new("bad", JobKey::new("panics"), move || {
            seen.fetch_add(1, Ordering::SeqCst);
            panic!("deliberate test panic");
        }),
    );
    let report = Runner::new(RunnerConfig {
        workers: 3,
        retries: 2,
        ..RunnerConfig::default()
    })
    .run(jobs);
    // The batch completed around the failure.
    assert_eq!(report.ok_count(), 6);
    assert_eq!(report.failed_count(), 1);
    // Bounded retry: 1 initial attempt + 2 retries.
    assert_eq!(attempts.load(Ordering::SeqCst), 3);
    assert_eq!(report.jobs[3].attempts, 3);
    let failures = report.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].0, "bad");
    assert!(failures[0].1.contains("deliberate test panic"));
    // Failed jobs carry no payload; the others are untouched and ordered.
    assert!(report.jobs[3].outcome.payload().is_none());
    let vals: Vec<u64> = report.payloads().filter_map(|v| v.as_u64()).collect();
    assert_eq!(vals, [0, 1, 4, 9, 16, 25]);
    assert!(report.summary().contains("1 failed of 7 jobs"));
}

#[test]
fn failed_jobs_are_not_cached() {
    let dir = temp_dir("nofailcache");
    let cfg = RunnerConfig {
        cache_dir: Some(dir.clone()),
        retries: 0,
        ..RunnerConfig::default()
    };
    let make = |succeed: bool| {
        vec![ExperimentJob::new(
            "flaky",
            JobKey::new("flaky"),
            move || {
                if succeed {
                    JsonValue::Bool(true)
                } else {
                    panic!("first run fails")
                }
            },
        )]
    };
    let first = Runner::new(cfg.clone()).run(make(false));
    assert_eq!(first.failed_count(), 1);
    // The failure was not poisoned into the cache: the next run executes.
    let second = Runner::new(cfg).run(make(true));
    assert_eq!(second.ok_count(), 1);
    assert_eq!(second.cached_count(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn report_exports_telemetry_and_json() {
    let dir = temp_dir("telemetry");
    let cfg = RunnerConfig {
        workers: 2,
        cache_dir: Some(dir.clone()),
        ..RunnerConfig::default()
    };
    Runner::new(cfg.clone()).run(square_jobs(4));
    let report = Runner::new(cfg).run(square_jobs(4));
    let mut reg = MetricRegistry::new();
    report.export_metrics(&mut reg);
    assert_eq!(reg.counter_total("runner_jobs"), 4);
    let mut spans = SpanProfiler::new();
    report.export_spans(&mut spans);
    let names: Vec<&str> = spans.spans().iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"runner"));
    assert!(names.contains(&"job:sq0"));

    let doc = report.to_json();
    assert_eq!(doc.get("cached").and_then(JsonValue::as_u64), Some(4));
    assert_eq!(doc.get("ok").and_then(JsonValue::as_u64), Some(0));
    let jobs = doc.get("jobs").unwrap().as_array().unwrap();
    assert_eq!(jobs.len(), 4);
    assert!(jobs
        .iter()
        .all(|j| j.get("outcome").and_then(JsonValue::as_str) == Some("cached")));
    // The document survives a serialize/parse round trip.
    assert_eq!(cmpsim_telemetry::parse(&doc.to_json()).unwrap(), doc);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn outcome_kinds() {
    assert_eq!(JobOutcome::Ok(JsonValue::Null).kind(), "ok");
    assert_eq!(JobOutcome::Cached(JsonValue::Null).kind(), "cached");
    assert_eq!(
        JobOutcome::Failed {
            error: String::new()
        }
        .kind(),
        "failed"
    );
    assert_eq!(
        JobOutcome::Errored {
            category: "protocol".into(),
            error: String::new()
        }
        .kind(),
        "error"
    );
    assert_eq!(
        JobOutcome::TimedOut {
            error: String::new()
        }
        .kind(),
        "timeout"
    );
}

#[test]
fn structured_errors_are_deterministic_and_not_retried() {
    let attempts = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&attempts);
    let mut jobs = square_jobs(3);
    jobs.insert(
        1,
        ExperimentJob::try_new("broken", JobKey::new("errs"), move || {
            seen.fetch_add(1, Ordering::SeqCst);
            Err(cmpsim_runner::JobError::new(
                "invariant",
                "sample count drifted from the cycle clock",
            ))
        }),
    );
    let report = Runner::new(RunnerConfig {
        retries: 3,
        ..RunnerConfig::default()
    })
    .run(jobs);
    assert_eq!(report.ok_count(), 3);
    assert_eq!(report.failed_count(), 1);
    // Deterministic failure: exactly one attempt despite retries = 3.
    assert_eq!(attempts.load(Ordering::SeqCst), 1);
    assert_eq!(
        report.jobs[1].outcome,
        JobOutcome::Errored {
            category: "invariant".into(),
            error: "sample count drifted from the cycle clock".into(),
        }
    );
    // The report JSON names the job, the kind, and the category.
    let doc = report.to_json();
    let jobs = doc.get("jobs").unwrap().as_array().unwrap();
    assert_eq!(
        jobs[1].get("outcome").and_then(JsonValue::as_str),
        Some("error")
    );
    assert_eq!(
        jobs[1].get("category").and_then(JsonValue::as_str),
        Some("invariant")
    );
    assert!(report.failures()[0].1.contains("sample count"));
}

#[test]
fn watchdog_abandons_hung_job_and_batch_completes() {
    let attempts = Arc::new(AtomicUsize::new(0));
    let seen = Arc::clone(&attempts);
    let mut jobs = square_jobs(4);
    jobs.insert(
        2,
        ExperimentJob::new("hung", JobKey::new("hangs"), move || {
            seen.fetch_add(1, Ordering::SeqCst);
            // Far beyond the deadline; the watchdog must not wait for it.
            std::thread::sleep(std::time::Duration::from_secs(60));
            JsonValue::Null
        }),
    );
    let started = std::time::Instant::now();
    let report = Runner::new(RunnerConfig {
        workers: 2,
        retries: 1,
        job_timeout: Some(std::time::Duration::from_millis(100)),
        ..RunnerConfig::default()
    })
    .run(jobs);
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "the hung job stalled the batch"
    );
    // Every healthy cell completed in submission order under the deadline.
    assert_eq!(report.ok_count(), 4);
    assert_eq!(report.timed_out_count(), 1);
    assert_eq!(report.failed_count(), 1);
    let vals: Vec<u64> = report.payloads().filter_map(|v| v.as_u64()).collect();
    assert_eq!(vals, [0, 1, 4, 9]);
    // Retried once: two abandoned attempts in total.
    assert_eq!(report.jobs[2].attempts, 2);
    assert_eq!(attempts.load(Ordering::SeqCst), 2);
    assert!(matches!(
        &report.jobs[2].outcome,
        JobOutcome::TimedOut { error } if error.contains("2 attempt")
    ));
}

#[test]
fn watchdog_passes_healthy_jobs_through() {
    let report = Runner::new(RunnerConfig {
        workers: 2,
        job_timeout: Some(std::time::Duration::from_secs(30)),
        ..RunnerConfig::default()
    })
    .run(square_jobs(8));
    assert_eq!(report.ok_count(), 8);
    assert_eq!(report.timed_out_count(), 0);
    let vals: Vec<u64> = report.payloads().filter_map(|v| v.as_u64()).collect();
    assert_eq!(vals, [0, 1, 4, 9, 16, 25, 36, 49]);
}
