//! Stable job fingerprints for the content-addressed result cache.
//!
//! A cache entry must be addressable by *what was computed*, not by
//! when or where, so the fingerprint is a stable hash over a canonical
//! rendering of the job's identity: experiment name, configuration
//! fields (scale, seed, workload, cache geometry, ...), and the crate
//! version that produced it. `std::collections::hash_map::DefaultHasher`
//! is explicitly *not* stable across releases or processes, so the hash
//! is a hand-rolled FNV-1a — the canonical key string is stored inside
//! every cache entry and verified on lookup, making hash collisions a
//! cache miss rather than a wrong result.

use std::fmt;

/// The identity of one experiment job: an ordered list of
/// `(field, value)` pairs.
///
/// Field order is part of the identity (it is the insertion order), so
/// build keys the same way everywhere for a given experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobKey {
    fields: Vec<(String, String)>,
}

impl JobKey {
    /// Starts a key for `experiment` (stored as the first field).
    pub fn new(experiment: &str) -> Self {
        JobKey { fields: Vec::new() }.field("experiment", experiment)
    }

    /// Appends one identity field.
    pub fn field(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.fields.push((key.to_owned(), value.to_string()));
        self
    }

    /// The canonical `key=value;key=value` rendering hashed into the
    /// fingerprint and stored verbatim in each cache entry. `\`, `;`,
    /// and `=` inside values are escaped so distinct field lists never
    /// collide textually.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            escape_into(&mut out, k);
            out.push('=');
            escape_into(&mut out, v);
        }
        out
    }

    /// 64-bit FNV-1a fingerprint of the canonical rendering.
    pub fn fingerprint(&self) -> u64 {
        fnv1a64(self.canonical().as_bytes())
    }

    /// The fingerprint as a fixed-width lowercase hex string (the cache
    /// file stem).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }

    /// Rebuilds a key from its [`canonical`](Self::canonical) rendering.
    ///
    /// The grid service ships canonical key strings over the wire; the
    /// coordinator needs the structured key back to address the shared
    /// result cache. Returns `None` on malformed input: a dangling
    /// escape, a field without `=`, or an empty string.
    pub fn from_canonical(s: &str) -> Option<JobKey> {
        if s.is_empty() {
            return None;
        }
        let mut fields = Vec::new();
        let mut key = String::new();
        let mut value = String::new();
        let mut in_value = false;
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            match c {
                '\\' => {
                    let escaped = chars.next()?;
                    if in_value { &mut value } else { &mut key }.push(escaped);
                }
                '=' if !in_value => in_value = true,
                '=' => return None,
                ';' => {
                    if !in_value {
                        return None;
                    }
                    fields.push((std::mem::take(&mut key), std::mem::take(&mut value)));
                    in_value = false;
                }
                c => if in_value { &mut value } else { &mut key }.push(c),
            }
        }
        // The final field has no `;` terminator; an input ending in `;`
        // leaves an empty key with `in_value` unset and fails here.
        if !in_value {
            return None;
        }
        fields.push((key, value));
        Some(JobKey { fields })
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        if matches!(c, '\\' | ';' | '=') {
            out.push('\\');
        }
        out.push(c);
    }
}

/// 64-bit FNV-1a: stable across processes, platforms, and toolchains.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The FNV-1a fingerprint of a file's contents as a fixed-width hex
/// string, computed in streaming 64 KiB chunks (a release binary is
/// tens of megabytes; never load it whole).
///
/// The grid service hashes the coordinator's and every agent's own
/// executable with this at startup: two fleet members whose binaries
/// hash differently would compute cells with different code, so the
/// handshake rejects the mismatch up front.
///
/// # Errors
///
/// Propagates filesystem errors opening or reading `path`.
pub fn file_fingerprint(path: &std::path::Path) -> std::io::Result<String> {
    use std::io::Read;
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut file = std::fs::File::open(path)?;
    let mut buf = [0u8; 64 << 10];
    let mut h = OFFSET;
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        for &b in &buf[..n] {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    Ok(format!("{h:016x}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable() {
        // Pinned value: changing the hash function silently invalidates
        // every on-disk cache, so make that an explicit test failure.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        let k = JobKey::new("fig4_scmp")
            .field("scale", "1/16")
            .field("seed", 2007u64)
            .field("workload", "FIMI");
        assert_eq!(k.fingerprint(), fnv1a64(k.canonical().as_bytes()));
        assert_eq!(k.hex().len(), 16);
    }

    #[test]
    fn distinct_fields_distinct_keys() {
        let a = JobKey::new("fig4").field("seed", 1u64);
        let b = JobKey::new("fig4").field("seed", 2u64);
        let c = JobKey::new("fig5").field("seed", 1u64);
        assert_ne!(a.canonical(), b.canonical());
        assert_ne!(a.canonical(), c.canonical());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn canonical_escapes_separators() {
        let tricky = JobKey::new("x").field("a", "1;b=2");
        let plain = JobKey::new("x").field("a", "1").field("b", "2");
        assert_ne!(tricky.canonical(), plain.canonical());
        assert_eq!(tricky.canonical(), "experiment=x;a=1\\;b\\=2");
    }

    #[test]
    fn from_canonical_round_trips() {
        for key in [
            JobKey::new("fig4_scmp")
                .field("scale", "1/16")
                .field("seed", 2007u64)
                .field("workload", "FIMI"),
            JobKey::new("x").field("a", "1;b=2").field("w\\e", "ir=d"),
        ] {
            let back = JobKey::from_canonical(&key.canonical()).unwrap();
            assert_eq!(back, key);
            assert_eq!(back.fingerprint(), key.fingerprint());
        }
    }

    #[test]
    fn from_canonical_rejects_malformed() {
        for bad in ["", "novalue", "a=1;", "a=1;bare", "trailing\\", "a=1=2"] {
            assert!(JobKey::from_canonical(bad).is_none(), "accepted {bad:?}");
        }
    }
}
