//! The checksummed-record codec shared by the result cache and the run
//! journal.
//!
//! Both durable stores frame a JSON payload with the same integrity
//! header: the byte length and 64-bit FNV-1a checksum of the payload's
//! canonical (compact) serialization. A reader re-serializes the parsed
//! payload and verifies both, so a truncated, bit-rotted, or hand-edited
//! record is detected instead of trusted:
//!
//! ```json
//! { "len": 123, "fnv": "90b1c5f6b1e3d2a4", "<field>": { ... } }
//! ```
//!
//! The cache stores the payload under `result`, the journal under
//! `record`; everything else about the framing is identical, which is
//! what keeps the two formats mutually debuggable.

use crate::hash::fnv1a64;
use cmpsim_telemetry::JsonValue;

/// The integrity header of `body` (a canonical compact serialization):
/// its byte length and FNV-1a checksum as a fixed-width hex string.
pub fn checksum(body: &str) -> (u64, String) {
    (
        body.len() as u64,
        format!("{:016x}", fnv1a64(body.as_bytes())),
    )
}

/// Appends the integrity header and the payload itself (under `field`)
/// to an in-progress record's field list.
pub fn seal_into(fields: &mut Vec<(String, JsonValue)>, field: &str, payload: &JsonValue) {
    let (len, fnv) = checksum(&payload.to_json());
    fields.push(("len".to_owned(), JsonValue::U64(len)));
    fields.push(("fnv".to_owned(), JsonValue::from(fnv)));
    fields.push((field.to_owned(), payload.clone()));
}

/// A sealed record holding `payload` under `field`, plus any leading
/// identity fields (e.g. the cache entry's `key`).
pub fn seal(head: Vec<(String, JsonValue)>, field: &str, payload: &JsonValue) -> JsonValue {
    let mut fields = head;
    seal_into(&mut fields, field, payload);
    JsonValue::Object(fields)
}

/// Verifies a parsed record's integrity header against the payload
/// stored under `field`, returning the verified payload.
///
/// `None` means the record must not be trusted: the header is missing,
/// or the payload does not match its recorded length/checksum.
pub fn verify(doc: &JsonValue, field: &str) -> Option<JsonValue> {
    let len = doc.get("len")?.as_u64()?;
    let fnv = doc.get("fnv")?.as_str()?;
    let payload = doc.get(field)?;
    let (got_len, got_fnv) = checksum(&payload.to_json());
    if got_len != len || got_fnv != fnv {
        return None;
    }
    Some(payload.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_then_verify_roundtrips() {
        let payload = JsonValue::object([("mpki", JsonValue::F64(1.25))]);
        let doc = seal(
            vec![("key".to_owned(), JsonValue::from("experiment=x"))],
            "result",
            &payload,
        );
        assert_eq!(verify(&doc, "result"), Some(payload));
        // The head field survives in place.
        assert_eq!(
            doc.get("key").and_then(JsonValue::as_str),
            Some("experiment=x")
        );
    }

    #[test]
    fn tampered_payload_fails_verification() {
        let doc = seal(Vec::new(), "record", &JsonValue::U64(7));
        let tampered = cmpsim_telemetry::parse(&doc.to_json().replace('7', "9")).unwrap();
        assert_eq!(verify(&tampered, "record"), None);
    }

    #[test]
    fn missing_header_fails_verification() {
        let doc = JsonValue::object([("record", JsonValue::U64(7))]);
        assert_eq!(verify(&doc, "record"), None);
    }

    #[test]
    fn checksum_matches_pinned_fnv() {
        // Same pinned constants as the key fingerprint: silently changing
        // the codec would orphan every cache entry and journal on disk.
        let (len, fnv) = checksum("");
        assert_eq!((len, fnv.as_str()), (0, "cbf29ce484222325"));
    }
}
