//! Subprocess job supervision: `--isolate=process`.
//!
//! In process isolation, each attempt re-execs the current binary with a
//! hidden `__run-job <WORKLOAD>` entrypoint instead of calling the job
//! closure in-process. The child computes exactly one cell and prints
//! its result as the final stdout line, framed by
//! [`RESULT_MARKER`]:
//!
//! ```text
//! __cmpsim_result__ {"ok":{...results_json payload...}}
//! __cmpsim_result__ {"err":{"category":"invariant","message":"..."}}
//! ```
//!
//! Anything the child printed before the marker (figure headers,
//! progress notes) is ignored, so binaries need no output discipline in
//! child mode. A child that dies without a marker — abort, OOM kill,
//! stack overflow, segfault — is a *crash*: contained to that cell,
//! retried on the [`BackoffPolicy`](crate::BackoffPolicy) schedule, and
//! quarantined as [`JobOutcome::Poisoned`](crate::JobOutcome) when the
//! attempt budget runs out. Unlike the in-process watchdog (which can
//! only abandon a hung thread), a hung child is **killed** at the
//! deadline, so process mode leaks nothing.

use crate::pool::JobError;
use cmpsim_telemetry::trace::{events_to_json, TraceEvent};
use cmpsim_telemetry::JsonValue;
use std::io::Read;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Marker prefix of the one machine-readable stdout line a `__run-job`
/// child emits.
pub const RESULT_MARKER: &str = "__cmpsim_result__";

/// Marker prefix of the optional flight-recorder line a traced child
/// emits *before* its result: `__cmpsim_trace__ {"dropped":N,
/// "events":[...]}`. The parent grafts these events under the cell's
/// span so the whole grid — parent pool and child processes — renders
/// as one timeline.
pub const TRACE_MARKER: &str = "__cmpsim_trace__";

/// Environment variable the supervisor sets on a child when the parent
/// is tracing; a child entrypoint that sees it records its own spans
/// and emits them via [`emit_trace`].
pub const CHILD_TRACE_ENV: &str = "CMPSIM_CHILD_TRACE";

/// The hidden argv token that routes a binary into single-cell child
/// mode.
pub const CHILD_ENTRY: &str = "__run-job";

/// Child-side half of the protocol: prints `res` as the marker line.
/// Call this as the last thing a `__run-job` entrypoint does, then exit
/// 0 (a structured error is a *successful* report of a failed cell).
pub fn emit_result(res: &Result<JsonValue, JobError>) {
    let doc = match res {
        Ok(v) => JsonValue::object([("ok", v.clone())]),
        Err(e) => JsonValue::object([(
            "err",
            JsonValue::object([
                ("category", JsonValue::from(e.category.as_str())),
                ("message", JsonValue::from(e.message.as_str())),
            ]),
        )]),
    };
    println!("{RESULT_MARKER} {}", doc.to_json());
}

/// Child-side half of trace propagation: prints the recorded events as
/// the trace marker line. Call before [`emit_result`] so the result
/// stays the final line.
pub fn emit_trace(events: &[TraceEvent], dropped: u64) {
    println!(
        "{TRACE_MARKER} {}",
        events_to_json(events, dropped).to_json()
    );
}

/// Whether the supervising parent asked this process to trace itself.
pub fn child_trace_requested() -> bool {
    std::env::var_os(CHILD_TRACE_ENV).is_some_and(|v| v == "1")
}

/// How one supervised attempt ended, as the parent sees it.
#[derive(Debug)]
pub enum ChildAttempt {
    /// The child reported a result payload.
    Ok(JsonValue),
    /// The child reported a structured (deterministic) job error.
    Err(JobError),
    /// The child died without reporting: signal, abort, bad exit.
    Crashed(String),
    /// The child outlived the deadline and was killed.
    Hung,
}

/// One supervised attempt plus the trace events the child reported
/// (empty unless the parent asked for tracing and the child complied).
#[derive(Debug)]
pub struct SupervisedAttempt {
    /// How the attempt ended.
    pub attempt: ChildAttempt,
    /// Trace events the child shipped over the marker protocol.
    pub trace: Vec<TraceEvent>,
    /// Events the child's own recorder dropped.
    pub trace_dropped: u64,
}

impl SupervisedAttempt {
    fn bare(attempt: ChildAttempt) -> SupervisedAttempt {
        SupervisedAttempt {
            attempt,
            trace: Vec::new(),
            trace_dropped: 0,
        }
    }
}

/// Runs one supervised attempt: spawns the current executable with
/// `args`, waits (killing at `timeout` if set), and parses the marker
/// line(s). With `trace` set, the child is asked (via
/// [`CHILD_TRACE_ENV`]) to report its own spans.
pub(crate) fn attempt(
    args: &[String],
    timeout: Option<Duration>,
    trace: bool,
) -> SupervisedAttempt {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            return SupervisedAttempt::bare(ChildAttempt::Crashed(format!(
                "cannot locate current executable: {e}"
            )))
        }
    };
    run_program_inner(&exe, args, timeout, trace, false)
}

/// Runs one supervised attempt of an arbitrary `program` speaking the
/// [`RESULT_MARKER`] protocol. This is the building block the grid
/// service uses to shard cells submitted by *other* binaries: the
/// client transmits its own executable path and per-cell argv, and the
/// coordinator supervises it exactly like a local `--isolate=process`
/// child.
pub fn run_program(
    program: &Path,
    args: &[String],
    timeout: Option<Duration>,
    trace: bool,
) -> SupervisedAttempt {
    run_program_inner(program, args, timeout, trace, false)
}

/// [`run_program`], except the child is SIGKILLed immediately after
/// spawn, before it can report. The attempt therefore ends as a
/// genuine [`ChildAttempt::Crashed`] — the chaos hook behind the
/// service's `--chaos-kill-label`, exercising the crash/re-shard path
/// with a real dead process rather than a simulated error.
pub fn run_program_sabotaged(
    program: &Path,
    args: &[String],
    timeout: Option<Duration>,
    trace: bool,
) -> SupervisedAttempt {
    run_program_inner(program, args, timeout, trace, true)
}

fn run_program_inner(
    exe: &Path,
    args: &[String],
    timeout: Option<Duration>,
    trace: bool,
    sabotage_kill: bool,
) -> SupervisedAttempt {
    let mut cmd = Command::new(exe);
    cmd.args(args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if trace {
        cmd.env(CHILD_TRACE_ENV, "1");
    } else {
        // Never inherit a stale request from our own environment.
        cmd.env_remove(CHILD_TRACE_ENV);
    }
    let mut child = match cmd.spawn() {
        Ok(c) => c,
        Err(e) => {
            return SupervisedAttempt::bare(ChildAttempt::Crashed(format!(
                "cannot spawn job process: {e}"
            )))
        }
    };
    if sabotage_kill {
        let _ = child.kill();
    }

    // Drain both pipes on their own threads so a chatty child can never
    // deadlock against a full pipe while we wait on it.
    let stdout = child.stdout.take().map(drain);
    let stderr = child.stderr.take().map(drain);

    let deadline = timeout.map(|t| Instant::now() + t);
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    let _ = child.kill();
                    let _ = child.wait();
                    join(stdout);
                    join(stderr);
                    return SupervisedAttempt::bare(ChildAttempt::Hung);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                let _ = child.kill();
                return SupervisedAttempt::bare(ChildAttempt::Crashed(format!(
                    "cannot wait for job process: {e}"
                )));
            }
        }
    };
    let out = join(stdout);
    let err = join(stderr);

    // Trust the marker wherever it is: a child that reported and then
    // crashed in teardown still produced its cell.
    let attempt = match parse_result(&out) {
        Some(Ok(v)) => ChildAttempt::Ok(v),
        Some(Err(e)) => ChildAttempt::Err(e),
        None => ChildAttempt::Crashed(crash_message(&status.to_string(), &err)),
    };
    let (trace, trace_dropped) = parse_trace(&out).unwrap_or_default();
    SupervisedAttempt {
        attempt,
        trace,
        trace_dropped,
    }
}

/// Parses the last marker line of a child's stdout.
pub(crate) fn parse_result(stdout: &str) -> Option<Result<JsonValue, JobError>> {
    let line = stdout
        .lines()
        .rev()
        .find_map(|l| l.trim().strip_prefix(RESULT_MARKER))?;
    let doc = cmpsim_telemetry::parse(line.trim()).ok()?;
    if let Some(ok) = doc.get("ok") {
        return Some(Ok(ok.clone()));
    }
    let err = doc.get("err")?;
    Some(Err(JobError::new(
        err.get("category").and_then(JsonValue::as_str)?,
        err.get("message").and_then(JsonValue::as_str)?,
    )))
}

/// Parses the last trace marker line of a child's stdout (if any).
pub(crate) fn parse_trace(stdout: &str) -> Option<(Vec<TraceEvent>, u64)> {
    let line = stdout
        .lines()
        .rev()
        .find_map(|l| l.trim().strip_prefix(TRACE_MARKER))?;
    let doc = cmpsim_telemetry::parse(line.trim()).ok()?;
    cmpsim_telemetry::trace::events_from_json(&doc)
}

fn crash_message(status: &str, stderr: &str) -> String {
    let tail: String = {
        let t = stderr.trim();
        let start = t.len().saturating_sub(400);
        // Don't split a UTF-8 sequence when trimming to the tail.
        let start = (start..t.len())
            .find(|&i| t.is_char_boundary(i))
            .unwrap_or(t.len());
        t[start..].to_owned()
    };
    if tail.is_empty() {
        format!("job process died without a result ({status})")
    } else {
        format!("job process died without a result ({status}); stderr tail: {tail}")
    }
}

fn drain(mut pipe: impl Read + Send + 'static) -> std::thread::JoinHandle<String> {
    std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = pipe.read_to_string(&mut buf);
        buf
    })
}

fn join(handle: Option<std::thread::JoinHandle<String>>) -> String {
    handle.and_then(|h| h.join().ok()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_line_parses_after_noise() {
        let out = format!(
            "Figure 4: header noise\nplot rows...\n{RESULT_MARKER} {}\n",
            "{\"ok\":{\"mpki\":1.5}}"
        );
        let parsed = parse_result(&out).unwrap().unwrap();
        assert_eq!(parsed.get("mpki").and_then(JsonValue::as_f64), Some(1.5));
    }

    #[test]
    fn structured_error_round_trips() {
        let out = format!(
            "{RESULT_MARKER} {}",
            "{\"err\":{\"category\":\"invariant\",\"message\":\"llc drift\"}}"
        );
        let err = parse_result(&out).unwrap().unwrap_err();
        assert_eq!(err.category, "invariant");
        assert_eq!(err.message, "llc drift");
    }

    #[test]
    fn missing_marker_is_a_crash() {
        assert!(parse_result("no marker here\n").is_none());
        assert!(parse_result("").is_none());
    }

    #[test]
    fn trace_marker_parses_alongside_result() {
        use cmpsim_telemetry::trace::{EventKind, TraceEvent};
        let ev = TraceEvent {
            name: "cosim".to_owned(),
            cell: String::new(),
            lane: 0,
            id: 4,
            parent: 0,
            ts_ns: 1_000,
            kind: EventKind::Span { dur_ns: 2_000 },
            args: Vec::new(),
        };
        let out = format!(
            "noise\n{TRACE_MARKER} {}\n{RESULT_MARKER} {}\n",
            events_to_json(std::slice::from_ref(&ev), 5).to_json(),
            "{\"ok\":{\"mpki\":1.5}}"
        );
        let (events, dropped) = parse_trace(&out).unwrap();
        assert_eq!(events, [ev]);
        assert_eq!(dropped, 5);
        assert!(parse_result(&out).unwrap().is_ok());
        assert!(parse_trace("just a result, no trace\n").is_none());
    }

    #[test]
    fn crash_message_includes_stderr_tail() {
        let m = crash_message("signal: 6 (SIGABRT)", "thread panicked: boom");
        assert!(m.contains("SIGABRT"));
        assert!(m.contains("boom"));
        assert!(crash_message("exit status: 1", "").contains("without a result"));
    }
}
