//! The write-ahead run journal: an append-only, fsync'd, checksummed
//! record of every job's start, finish, and outcome.
//!
//! One journal file per run, `<dir>/<run-id>.jsonl`, one record per
//! line. Each line is framed by the same length+FNV-1a codec as the
//! result cache (see [`crate::record`]):
//!
//! ```json
//! {"len":64,"fnv":"0a1b...","record":{"kind":"job_done","seq":3,...}}
//! ```
//!
//! Record kinds, in the order a run emits them:
//!
//! * `run_start` — run id, batch size, whether this run resumed,
//! * `job_start` — written **before** a cell executes (write-ahead:
//!   a cell with a `job_start` but no `job_done` was in flight when the
//!   process died and is re-enqueued on resume),
//! * `job_done` — the cell's terminal [`JobOutcome`], including the
//!   full result payload for `ok`/`cached` cells so a resumed run can
//!   replay them without the result cache,
//! * `interrupted` — a graceful shutdown drained the pool,
//! * `run_end` — the batch finished.
//!
//! Every append is a single `write` of one `\n`-terminated line followed
//! by `fdatasync`, so a SIGKILL can tear at most the final line. Replay
//! verifies each line's checksum and stops at the first torn or corrupt
//! record; [`RunJournal::open`] then truncates the file back to the
//! verified prefix before appending, so the journal never grows a
//! mid-file scar.

use crate::pool::JobOutcome;
use crate::record;
use cmpsim_telemetry::{parse, JsonValue};
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Where a batch journals to, and whether it replays first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalConfig {
    /// Directory holding the journal files.
    pub dir: PathBuf,
    /// This run's identity — the journal file stem, and what `--resume`
    /// takes.
    pub run_id: String,
    /// Replay an existing journal for `run_id` before executing: cells
    /// with a recorded terminal outcome are served from the journal,
    /// in-flight ones are re-enqueued.
    pub resume: bool,
}

impl JournalConfig {
    /// A fresh (non-resuming) journal for `run_id` under `dir`.
    pub fn new(dir: impl Into<PathBuf>, run_id: impl Into<String>) -> Self {
        JournalConfig {
            dir: dir.into(),
            run_id: run_id.into(),
            resume: false,
        }
    }

    /// The same journal, replayed before running.
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }

    /// The journal file this configuration reads and appends.
    pub fn path(&self) -> PathBuf {
        self.dir.join(format!("{}.jsonl", self.run_id))
    }
}

/// A per-process random nonce, minted once at first use.
///
/// Seeded from the wall-clock nanosecond counter, the pid, and a static's
/// address (ASLR entropy), then mixed through the splitmix64 finalizer so
/// every bit depends on every input bit. Two processes — including a
/// restarted daemon that inherited its predecessor's pid — agree on this
/// value only with negligible probability.
pub fn process_nonce() -> u64 {
    use std::sync::OnceLock;
    static NONCE: OnceLock<u64> = OnceLock::new();
    *NONCE.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        let aslr = &NONCE as *const _ as u64;
        let mut x = nanos ^ (u64::from(std::process::id()) << 32) ^ aslr.rotate_left(17);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x
    })
}

/// Mints a unique run id for `experiment`:
/// `<experiment>-<unix-secs>-<pid>-<nonce>-<n>`.
///
/// The id is the journal file stem, so two runs minting the same id
/// silently interleave their write-ahead logs. Wall-clock seconds alone
/// collide for submissions in the same second; seconds+pid still
/// collide for two submissions inside one process (a multi-client
/// service coordinator, tests spawning concurrent sweeps); and even
/// seconds+pid+counter collide for a daemon restarted into a recycled
/// pid within the same second — so a [`process_nonce`] component makes
/// the id unique across process incarnations too. The trailing
/// process-wide atomic counter makes it unique per process.
pub fn fresh_run_id(experiment: &str) -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    format!(
        "{experiment}-{secs}-{}-{:08x}-{n}",
        std::process::id(),
        process_nonce() as u32
    )
}

/// What replaying a journal recovered.
#[derive(Debug, Clone, Default)]
pub struct JournalReplay {
    /// Terminal outcomes by canonical job key: these cells are served
    /// without executing.
    pub completed: HashMap<String, ReplayedJob>,
    /// Canonical keys that started but never finished — the in-flight
    /// cells a crash forfeited; they re-run.
    pub in_flight: HashSet<String>,
    /// Records whose checksum or framing failed; replay stopped there.
    pub torn: usize,
    /// Highest record-stream sequence (`rseq`) among replayed
    /// `job_done` records; appends resume numbering after it.
    pub max_rseq: u64,
    /// The journal saw a `run_end`: the run finished, nothing is
    /// recoverable beyond the record of it.
    pub ended: bool,
    /// The raw body of the last `submission` record, if the writer
    /// journalled one (the service coordinator does, so a restarted
    /// daemon can rebuild the run without the client).
    pub submission: Option<JsonValue>,
}

/// One cell's journalled terminal outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedJob {
    /// The cell's display label as recorded.
    pub label: String,
    /// The recorded outcome, payload included.
    pub outcome: JobOutcome,
    /// Execution attempts the original run spent.
    pub attempts: u32,
    /// Record-stream sequence assigned when the outcome was journalled
    /// (`0` for records written before rseq tracking existed).
    pub rseq: u64,
}

/// The append side of the journal, shared across workers.
#[derive(Debug)]
pub struct RunJournal {
    file: Mutex<File>,
    path: PathBuf,
    /// The last record-stream sequence handed out by
    /// [`job_done_tracked`](Self::job_done_tracked).
    next_rseq: AtomicU64,
    /// Appends that failed (disk full, I/O error). Non-zero means the
    /// journal is an incomplete record of the run — still readable, no
    /// longer trustworthy for resume.
    append_failures: AtomicU64,
}

impl RunJournal {
    /// Opens (and on resume, replays) the journal for `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers may run un-journalled after
    /// a failed open, but should say so loudly — it forfeits
    /// crash-safety.
    pub fn open(cfg: &JournalConfig) -> std::io::Result<(RunJournal, JournalReplay)> {
        std::fs::create_dir_all(&cfg.dir)?;
        let path = cfg.path();
        let (replay, valid_len) = if cfg.resume && path.exists() {
            let text = std::fs::read_to_string(&path)?;
            replay_text(&text)
        } else {
            (JournalReplay::default(), 0)
        };
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        // Resume: drop any torn final line so the next append starts a
        // fresh record instead of extending the scar. Fresh run: a
        // reused run id replaces its old journal outright.
        if file.metadata()?.len() != valid_len {
            file.set_len(valid_len)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            RunJournal {
                file: Mutex::new(file),
                path,
                next_rseq: AtomicU64::new(replay.max_rseq),
                append_failures: AtomicU64::new(0),
            },
            replay,
        ))
    }

    /// The journal file being appended.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one checksummed record line and syncs it to disk.
    fn append(&self, body: JsonValue) {
        let doc = record::seal(Vec::new(), "record", &body);
        let mut line = doc.to_json();
        line.push('\n');
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        // A failed append degrades durability, not correctness: warn,
        // count it, and keep running (the batch itself is unaffected) —
        // callers check `degraded()` to downgrade the run to
        // non-resumable instead of aborting.
        if let Err(e) = file
            .write_all(line.as_bytes())
            .and_then(|()| file.sync_data())
        {
            self.append_failures.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "warning: journal append failed ({}): {e}",
                self.path.display()
            );
        }
    }

    /// Appends an arbitrary extra record (e.g. the service
    /// coordinator's `submission` record). Replay surfaces unknown
    /// kinds it cares about and ignores the rest, so writers may extend
    /// the journal without breaking older readers.
    pub fn append_record(&self, body: JsonValue) {
        self.append(body);
    }

    /// `true` once any append has failed: the journal no longer holds a
    /// complete record of the run and must not be trusted for resume.
    pub fn degraded(&self) -> bool {
        self.append_failures.load(Ordering::Relaxed) > 0
    }

    /// How many appends have failed so far.
    pub fn append_failures(&self) -> u64 {
        self.append_failures.load(Ordering::Relaxed)
    }

    /// Records the batch header.
    pub fn run_start(&self, run_id: &str, total: usize, resumed: usize) {
        self.append(JsonValue::object([
            ("kind", JsonValue::from("run_start")),
            ("run_id", JsonValue::from(run_id)),
            ("total", JsonValue::from(total)),
            ("resumed", JsonValue::from(resumed)),
        ]));
    }

    /// Write-ahead: records that cell `seq` is about to execute.
    pub fn job_start(&self, seq: usize, key: &str, label: &str) {
        self.append(JsonValue::object([
            ("kind", JsonValue::from("job_start")),
            ("seq", JsonValue::from(seq)),
            ("key", JsonValue::from(key)),
            ("label", JsonValue::from(label)),
        ]));
    }

    /// Records cell `seq`'s terminal outcome (payload included).
    pub fn job_done(
        &self,
        seq: usize,
        key: &str,
        label: &str,
        outcome: &JobOutcome,
        attempts: u32,
    ) {
        self.append(JsonValue::object([
            ("kind", JsonValue::from("job_done")),
            ("seq", JsonValue::from(seq)),
            ("key", JsonValue::from(key)),
            ("label", JsonValue::from(label)),
            ("attempts", JsonValue::from(u64::from(attempts))),
            ("outcome", outcome.to_json()),
        ]));
    }

    /// Like [`job_done`](Self::job_done), but stamps the record with
    /// the next record-stream sequence (`rseq`) and returns it.
    ///
    /// `rseq` totally orders a run's `job_done` records, which is what
    /// lets a disconnected client reattach with "give me everything
    /// after N". Callers that stream records to a client must serialize
    /// this call with the send (the coordinator holds a per-run emit
    /// lock), so the rseq order, the journal order, and the wire order
    /// all agree.
    pub fn job_done_tracked(
        &self,
        seq: usize,
        key: &str,
        label: &str,
        outcome: &JobOutcome,
        attempts: u32,
    ) -> u64 {
        let rseq = self.next_rseq.fetch_add(1, Ordering::Relaxed) + 1;
        self.append(JsonValue::object([
            ("kind", JsonValue::from("job_done")),
            ("rseq", JsonValue::from(rseq)),
            ("seq", JsonValue::from(seq)),
            ("key", JsonValue::from(key)),
            ("label", JsonValue::from(label)),
            ("attempts", JsonValue::from(u64::from(attempts))),
            ("outcome", outcome.to_json()),
        ]));
        rseq
    }

    /// Records a graceful shutdown: `done` cells finished, `skipped`
    /// never started.
    pub fn interrupted(&self, done: usize, skipped: usize) {
        self.append(JsonValue::object([
            ("kind", JsonValue::from("interrupted")),
            ("done", JsonValue::from(done)),
            ("skipped", JsonValue::from(skipped)),
        ]));
    }

    /// Records batch completion.
    pub fn run_end(&self, ok: usize, cached: usize, failed: usize) {
        self.append(JsonValue::object([
            ("kind", JsonValue::from("run_end")),
            ("ok", JsonValue::from(ok)),
            ("cached", JsonValue::from(cached)),
            ("failed", JsonValue::from(failed)),
        ]));
    }
}

/// Replays journal text into the recovered state plus the byte length of
/// the valid prefix (everything before the first torn record).
fn replay_text(text: &str) -> (JournalReplay, u64) {
    let mut replay = JournalReplay::default();
    let mut valid_len = 0u64;
    for line in text.split_inclusive('\n') {
        let body = line.strip_suffix('\n').unwrap_or(line);
        if body.is_empty() {
            valid_len += line.len() as u64;
            continue;
        }
        let Some(rec) = parse(body)
            .ok()
            .and_then(|doc| record::verify(&doc, "record"))
        else {
            // Torn or corrupt: trust only the prefix.
            replay.torn += 1;
            break;
        };
        apply_record(&mut replay, &rec);
        valid_len += line.len() as u64;
    }
    (replay, valid_len)
}

fn apply_record(replay: &mut JournalReplay, rec: &JsonValue) {
    let kind = rec.get("kind").and_then(JsonValue::as_str).unwrap_or("");
    let key = rec.get("key").and_then(JsonValue::as_str);
    match (kind, key) {
        ("job_start", Some(key)) => {
            replay.in_flight.insert(key.to_owned());
        }
        ("job_done", Some(key)) => {
            let Some(outcome) = rec.get("outcome").and_then(JobOutcome::from_json) else {
                return;
            };
            let rseq = rec.get("rseq").and_then(JsonValue::as_u64).unwrap_or(0);
            replay.max_rseq = replay.max_rseq.max(rseq);
            replay.in_flight.remove(key);
            replay.completed.insert(
                key.to_owned(),
                ReplayedJob {
                    label: rec
                        .get("label")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("")
                        .to_owned(),
                    outcome,
                    attempts: rec.get("attempts").and_then(JsonValue::as_u64).unwrap_or(0) as u32,
                    rseq,
                },
            );
        }
        ("submission", _) => replay.submission = Some(rec.clone()),
        ("run_end", _) => replay.ended = true,
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cfg(tag: &str) -> JournalConfig {
        let dir = std::env::temp_dir().join(format!("cmpsim_journal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        JournalConfig::new(dir, "run1")
    }

    #[test]
    fn concurrent_submissions_never_share_a_run_id() {
        // Two submissions in the same process and second (the service
        // coordinator's steady state) must journal to distinct files.
        let ids: Vec<String> = std::thread::scope(|s| {
            (0..8)
                .map(|_| s.spawn(|| fresh_run_id("fig4_scmp")))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let unique: std::collections::HashSet<&String> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len(), "colliding run ids: {ids:?}");
        let paths: std::collections::HashSet<PathBuf> = ids
            .iter()
            .map(|id| JournalConfig::new("j", id.clone()).path())
            .collect();
        assert_eq!(paths.len(), ids.len(), "colliding journal paths");
    }

    #[test]
    fn journal_roundtrips_outcomes_through_replay() {
        let cfg = temp_cfg("roundtrip");
        let (j, replay) = RunJournal::open(&cfg).unwrap();
        assert!(replay.completed.is_empty());
        j.run_start("run1", 3, 0);
        j.job_start(0, "k0", "FIMI");
        j.job_done(0, "k0", "FIMI", &JobOutcome::Ok(JsonValue::U64(42)), 1);
        j.job_start(1, "k1", "MDS");
        j.job_done(
            1,
            "k1",
            "MDS",
            &JobOutcome::Errored {
                category: "invariant".into(),
                error: "drift".into(),
            },
            1,
        );
        j.job_start(2, "k2", "SHOT"); // in flight: no job_done
        drop(j);

        let (_, replay) = RunJournal::open(&cfg.clone().resuming()).unwrap();
        assert_eq!(replay.completed.len(), 2);
        assert_eq!(
            replay.completed["k0"].outcome,
            JobOutcome::Ok(JsonValue::U64(42))
        );
        assert!(matches!(
            &replay.completed["k1"].outcome,
            JobOutcome::Errored { category, .. } if category == "invariant"
        ));
        assert_eq!(replay.in_flight.iter().collect::<Vec<_>>(), ["k2"]);
        assert_eq!(replay.torn, 0);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn torn_final_line_is_dropped_and_truncated() {
        let cfg = temp_cfg("torn");
        let (j, _) = RunJournal::open(&cfg).unwrap();
        j.job_start(0, "k0", "A");
        j.job_done(0, "k0", "A", &JobOutcome::Ok(JsonValue::Bool(true)), 1);
        drop(j);
        // Simulate a SIGKILL mid-append: a half-written final record.
        let mut text = std::fs::read_to_string(cfg.path()).unwrap();
        let intact_len = text.len() as u64;
        text.push_str("{\"len\":999,\"fnv\":\"dead");
        std::fs::write(cfg.path(), &text).unwrap();

        let (j, replay) = RunJournal::open(&cfg.clone().resuming()).unwrap();
        assert_eq!(replay.torn, 1);
        assert_eq!(replay.completed.len(), 1, "intact prefix survives");
        // The scar is gone and the journal appends cleanly again.
        assert_eq!(
            std::fs::metadata(cfg.path()).unwrap().len(),
            intact_len,
            "torn tail must be truncated"
        );
        j.job_start(1, "k1", "B");
        drop(j);
        let (_, replay) = RunJournal::open(&cfg.clone().resuming()).unwrap();
        assert_eq!(replay.torn, 0);
        assert!(replay.in_flight.contains("k1"));
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn tracked_job_dones_number_the_record_stream_across_reopens() {
        let cfg = temp_cfg("rseq");
        let (j, _) = RunJournal::open(&cfg).unwrap();
        j.append_record(JsonValue::object([
            ("kind", JsonValue::from("submission")),
            ("exe", JsonValue::from("/bin/echo")),
        ]));
        assert_eq!(
            j.job_done_tracked(0, "k0", "A", &JobOutcome::Ok(JsonValue::U64(1)), 1),
            1
        );
        assert_eq!(
            j.job_done_tracked(1, "k1", "B", &JobOutcome::Ok(JsonValue::U64(2)), 1),
            2
        );
        drop(j);

        let (j, replay) = RunJournal::open(&cfg.clone().resuming()).unwrap();
        assert_eq!(replay.max_rseq, 2);
        assert_eq!(replay.completed["k0"].rseq, 1);
        assert_eq!(replay.completed["k1"].rseq, 2);
        assert!(!replay.ended, "no run_end journalled yet");
        let sub = replay
            .submission
            .expect("submission record survives replay");
        assert_eq!(
            sub.get("exe").and_then(JsonValue::as_str),
            Some("/bin/echo")
        );
        // Numbering resumes after the replayed maximum — a restarted
        // coordinator never reissues an rseq.
        assert_eq!(
            j.job_done_tracked(2, "k2", "C", &JobOutcome::Ok(JsonValue::U64(3)), 1),
            3
        );
        j.run_end(3, 0, 0);
        drop(j);
        let (_, replay) = RunJournal::open(&cfg.clone().resuming()).unwrap();
        assert!(replay.ended);
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn append_failure_degrades_the_journal_without_panicking() {
        // `/dev/full` fails every write with ENOSPC — the disk-full
        // case the daemon must survive.
        let Ok(file) = OpenOptions::new().write(true).open("/dev/full") else {
            return; // environment without /dev/full: nothing to test
        };
        let j = RunJournal {
            file: Mutex::new(file),
            path: PathBuf::from("/dev/full"),
            next_rseq: AtomicU64::new(0),
            append_failures: AtomicU64::new(0),
        };
        assert!(!j.degraded());
        j.job_start(0, "k0", "A");
        // rseq numbering still advances: the in-memory stream stays
        // coherent even when durability is gone.
        assert_eq!(
            j.job_done_tracked(0, "k0", "A", &JobOutcome::Ok(JsonValue::Null), 1),
            1
        );
        assert!(j.degraded(), "failed appends must mark the journal");
        assert_eq!(j.append_failures(), 2);
    }

    #[test]
    fn fresh_open_ignores_existing_journal_unless_resuming() {
        let cfg = temp_cfg("fresh");
        let (j, _) = RunJournal::open(&cfg).unwrap();
        j.job_done(0, "k0", "A", &JobOutcome::Ok(JsonValue::Null), 1);
        drop(j);
        let (_, replay) = RunJournal::open(&cfg).unwrap();
        assert!(
            replay.completed.is_empty(),
            "non-resume open must not replay"
        );
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }
}
