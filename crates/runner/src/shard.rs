//! Scoped fan-out of borrowed work items across OS threads.
//!
//! The worker pool in [`pool`](crate::pool) owns its jobs and moves
//! them (`'static` closures, results shipped back over channels); that
//! shape cannot drive sweep replay, where each shard needs a *mutable
//! borrow* of a contiguous group of boards living in the caller's
//! `Vec`. [`scoped_shards`] covers that case with `std::thread::scope`:
//! the borrows stay on the caller's stack, every shard joins before the
//! function returns, and a panicking shard propagates to the caller
//! instead of being swallowed.

/// Runs `f(index, item)` for every item, each on its own scoped thread,
/// and joins them all before returning.
///
/// Items are claimed in order, so `index` is the position of `item` in
/// `items` — shard 0 gets the first group, shard 1 the second, and so
/// on. With a single item no thread is spawned: the closure runs
/// inline, so the one-shard path has zero threading overhead and
/// identical thread-local context (tracing, etc.) to a plain call.
///
/// # Panics
///
/// If any shard panics, the panic is resumed on the calling thread
/// after all other shards have joined (the behavior of
/// `std::thread::scope`).
pub fn scoped_shards<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    if items.len() == 1 {
        let item = items.into_iter().next().expect("len checked");
        f(0, item);
        return;
    }
    std::thread::scope(|scope| {
        for (index, item) in items.into_iter().enumerate() {
            let f = &f;
            scope.spawn(move || f(index, item));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn every_item_runs_with_its_index() {
        let mut groups: Vec<Vec<u64>> = vec![vec![1, 2], vec![3], vec![4, 5, 6]];
        let total = AtomicU64::new(0);
        let weighted = AtomicU64::new(0);
        scoped_shards(groups.iter_mut().collect(), |i, group: &mut Vec<u64>| {
            for v in group.iter_mut() {
                total.fetch_add(*v, Ordering::Relaxed);
                weighted.fetch_add(i as u64, Ordering::Relaxed);
                *v += 100;
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 21);
        // Index-weighted element count: 0·2 + 1·1 + 2·3.
        assert_eq!(weighted.load(Ordering::Relaxed), 7);
        // Mutations through the borrow are visible after the join.
        assert_eq!(groups, vec![vec![101, 102], vec![103], vec![104, 105, 106]]);
    }

    #[test]
    fn single_item_runs_inline() {
        let caller = std::thread::current().id();
        let mut seen = None;
        scoped_shards(vec![&mut seen], |_, slot| {
            *slot = Some(std::thread::current().id());
        });
        assert_eq!(seen, Some(caller));
    }

    #[test]
    fn shard_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            scoped_shards(vec![0u64, 1], |_, item| {
                assert!(item != 1, "shard failure must not be swallowed");
            });
        });
        assert!(result.is_err());
    }
}
