//! Deterministic exponential backoff between job attempts.
//!
//! A crashed or hung attempt is retried after a delay of
//! `base * factor^(n)` (capped at `max`), where `n` counts the retries
//! already spent. The schedule is a pure function of the policy and the
//! attempt number — no clocks, no jitter — so a test can assert the
//! exact delay sequence and a resumed run retries on the same schedule
//! as the original.

use std::time::Duration;

/// How one job failure class is allowed to proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// The attempt crashed: an in-process panic, or a supervised child
    /// process that died (abort, OOM kill, stack overflow).
    Crash,
    /// The attempt blew through the watchdog deadline.
    Hang,
    /// The job returned a structured [`JobError`](crate::JobError) —
    /// deterministic by contract, so not retried unless the policy
    /// explicitly opts in.
    Structured,
}

/// The retry/backoff policy of a batch.
///
/// This is the single authority on *whether* a failed attempt is
/// retried and *how long* to wait first. Deterministic structured
/// errors route through here too (see [`retry_structured`]
/// (BackoffPolicy::retry_structured)) instead of being special-cased at
/// the failure site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry (attempt 2).
    pub base: Duration,
    /// Multiplier applied per further retry.
    pub factor: u32,
    /// Upper bound on any single delay.
    pub max: Duration,
    /// Whether structured [`JobError`](crate::JobError)s are retried.
    /// They are deterministic by contract (a pure job that errored once
    /// errors identically again), so this defaults to `false`; enable it
    /// only for jobs whose structured errors cover transient host
    /// failures (e.g. `io`).
    pub retry_structured: bool,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(25),
            factor: 4,
            max: Duration::from_secs(2),
            retry_structured: false,
        }
    }
}

impl BackoffPolicy {
    /// A policy with no delays (retries are immediate). The schedule is
    /// still deterministic — it is constantly zero.
    pub fn immediate() -> Self {
        BackoffPolicy {
            base: Duration::ZERO,
            ..BackoffPolicy::default()
        }
    }

    /// The deterministic delay before attempt `attempt` (1-based; the
    /// first attempt never waits): `base * factor^(attempt - 2)`,
    /// saturating at [`max`](BackoffPolicy::max).
    pub fn delay_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 || self.base.is_zero() {
            return Duration::ZERO;
        }
        let exp = attempt - 2;
        // Saturate instead of overflowing: past the cap every delay is
        // `max` anyway.
        let scaled = self
            .factor
            .checked_pow(exp)
            .and_then(|m| self.base.checked_mul(m))
            .unwrap_or(self.max);
        scaled.min(self.max)
    }

    /// Whether a failure of `class` on attempt `attempt` (1-based) may
    /// be retried under a budget of `retries` extra attempts, and after
    /// what delay. `None` means the failure is final.
    pub fn next_delay(&self, class: FailureClass, attempt: u32, retries: u32) -> Option<Duration> {
        if attempt > retries {
            return None;
        }
        if class == FailureClass::Structured && !self.retry_structured {
            return None;
        }
        Some(self.delay_before(attempt + 1))
    }

    /// The full delay schedule for a job allowed `retries` extra
    /// attempts — one entry per retry, in order.
    pub fn schedule(&self, retries: u32) -> Vec<Duration> {
        (2..=retries + 1).map(|a| self.delay_before(a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_geometrically_and_cap() {
        let p = BackoffPolicy {
            base: Duration::from_millis(10),
            factor: 2,
            max: Duration::from_millis(35),
            retry_structured: false,
        };
        assert_eq!(p.delay_before(1), Duration::ZERO);
        assert_eq!(p.delay_before(2), Duration::from_millis(10));
        assert_eq!(p.delay_before(3), Duration::from_millis(20));
        // 40ms would exceed the cap.
        assert_eq!(p.delay_before(4), Duration::from_millis(35));
        assert_eq!(
            p.schedule(3),
            [
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(35)
            ]
        );
    }

    #[test]
    fn huge_attempt_numbers_saturate_instead_of_overflowing() {
        let p = BackoffPolicy::default();
        assert_eq!(p.delay_before(u32::MAX), p.max);
    }

    #[test]
    fn structured_failures_are_final_unless_opted_in() {
        let p = BackoffPolicy::default();
        assert_eq!(p.next_delay(FailureClass::Structured, 1, 5), None);
        let lenient = BackoffPolicy {
            retry_structured: true,
            ..p.clone()
        };
        assert_eq!(
            lenient.next_delay(FailureClass::Structured, 1, 5),
            Some(lenient.delay_before(2))
        );
        // Crashes retry until the budget runs out.
        assert!(p.next_delay(FailureClass::Crash, 1, 1).is_some());
        assert_eq!(p.next_delay(FailureClass::Crash, 2, 1), None);
        assert!(p.next_delay(FailureClass::Hang, 1, 1).is_some());
    }

    #[test]
    fn immediate_policy_never_sleeps() {
        let p = BackoffPolicy::immediate();
        for attempt in 1..6 {
            assert_eq!(p.delay_before(attempt), Duration::ZERO);
        }
    }
}
