//! The content-addressed on-disk result cache.
//!
//! Layout: one JSON file per finished job under
//! `<root>/<hh>/<hash16>.json`, where `hh` is the first two hex digits
//! of the key fingerprint (a fan-out so a 10k-cell sweep does not put
//! 10k files in one directory). Each file stores the full canonical key
//! next to the result:
//!
//! ```json
//! {
//!   "key": "experiment=fig4_scmp;scale=1/16;...",
//!   "len": 123,
//!   "fnv": "90b1c5f6b1e3d2a4",
//!   "result": { ... }
//! }
//! ```
//!
//! `len` and `fnv` form an integrity header over the canonical (compact)
//! serialization of `result` (the [`crate::record`] codec, shared with
//! the run journal): a lookup re-serializes the parsed result and
//! verifies both, so an entry whose payload was truncated, bit-rotted,
//! or hand-edited is **evicted** (the file is removed) and recomputed
//! rather than trusted. Lookups also verify the stored key against the
//! requested one, so a fingerprint collision degrades to a plain cache
//! miss (no eviction — the entry is someone else's valid result), never
//! a wrong answer. Writes go through a temp file in the same directory
//! followed by a rename, so a killed run never leaves a torn entry
//! behind.

use crate::hash::JobKey;
use crate::record;
use cmpsim_telemetry::{parse, JsonValue};
use std::path::{Path, PathBuf};

/// A result cache rooted at one directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `root` (created lazily on first store).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ResultCache { root: root.into() }
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path of `key`'s entry.
    pub fn entry_path(&self, key: &JobKey) -> PathBuf {
        let hex = key.hex();
        self.root.join(&hex[..2]).join(format!("{hex}.json"))
    }

    /// Returns the cached result for `key`, or `None` on a miss
    /// (absent, unreadable, corrupt, or a fingerprint collision).
    ///
    /// An entry that parses but fails integrity validation — missing or
    /// wrong `len`/`fnv` header, payload not matching its checksum — is
    /// evicted from disk so the recomputed result can replace it.
    pub fn lookup(&self, key: &JobKey) -> Option<JsonValue> {
        let path = self.entry_path(key);
        let text = std::fs::read_to_string(&path).ok()?;
        let Ok(doc) = parse(&text) else {
            let _ = std::fs::remove_file(&path);
            return None;
        };
        // A key mismatch is a fingerprint collision: the entry is some
        // other job's valid result, so miss without evicting.
        if doc.get("key").and_then(JsonValue::as_str) != Some(key.canonical().as_str()) {
            return None;
        }
        match record::verify(&doc, "result") {
            Some(result) => Some(result),
            None => {
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Stores `result` under `key`, atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers may treat a failed store as
    /// non-fatal (the job result is still returned, only the warm-run
    /// shortcut is lost).
    pub fn store(&self, key: &JobKey, result: &JsonValue) -> std::io::Result<()> {
        let path = self.entry_path(key);
        let dir = path.parent().expect("entry path has a parent");
        std::fs::create_dir_all(dir)?;
        let doc = record::seal(
            vec![("key".to_owned(), JsonValue::from(key.canonical()))],
            "result",
            result,
        );
        let tmp = dir.join(format!(
            "{}.tmp.{}",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("entry"),
            std::process::id()
        ));
        std::fs::write(&tmp, doc.to_json_pretty())?;
        std::fs::rename(&tmp, &path)
    }

    /// Number of entries currently on disk (walks the fan-out dirs).
    pub fn len(&self) -> usize {
        let Ok(shards) = std::fs::read_dir(&self.root) else {
            return 0;
        };
        shards
            .flatten()
            .filter_map(|d| std::fs::read_dir(d.path()).ok())
            .flat_map(|files| files.flatten())
            .filter(|f| f.path().extension().is_some_and(|e| e == "json"))
            .count()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_cache(tag: &str) -> ResultCache {
        let root =
            std::env::temp_dir().join(format!("cmpsim_runner_cache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        ResultCache::new(root)
    }

    #[test]
    fn store_then_lookup_roundtrips() {
        let cache = temp_cache("roundtrip");
        let key = JobKey::new("t").field("workload", "FIMI");
        assert_eq!(cache.lookup(&key), None);
        let result = JsonValue::object([("mpki", JsonValue::F64(1.25))]);
        cache.store(&key, &result).unwrap();
        assert_eq!(cache.lookup(&key), Some(result));
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let cache = temp_cache("corrupt");
        let key = JobKey::new("t").field("workload", "MDS");
        cache.store(&key, &JsonValue::Bool(true)).unwrap();
        std::fs::write(cache.entry_path(&key), "{ not json").unwrap();
        assert_eq!(cache.lookup(&key), None);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn checksum_mismatch_evicts_entry() {
        let cache = temp_cache("checksum");
        let key = JobKey::new("t").field("workload", "SNP");
        cache
            .store(&key, &JsonValue::object([("mpki", JsonValue::F64(2.5))]))
            .unwrap();
        // Bit-rot the payload without touching key or header: the entry
        // still parses, but the checksum no longer matches.
        let path = cache.entry_path(&key);
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("2.5", "9.5");
        std::fs::write(&path, tampered).unwrap();
        assert_eq!(cache.lookup(&key), None, "tampered entry must not serve");
        assert!(!path.exists(), "corrupt entry must be evicted");
        // The slot is clean: a recompute can store and serve again.
        let fresh = JsonValue::object([("mpki", JsonValue::F64(2.5))]);
        cache.store(&key, &fresh).unwrap();
        assert_eq!(cache.lookup(&key), Some(fresh));
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn headerless_legacy_entry_is_evicted() {
        let cache = temp_cache("legacy");
        let key = JobKey::new("t").field("workload", "OLD");
        let legacy = JsonValue::object([
            ("key", JsonValue::from(key.canonical())),
            ("result", JsonValue::U64(7)),
        ]);
        let path = cache.entry_path(&key);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, legacy.to_json()).unwrap();
        assert_eq!(cache.lookup(&key), None, "no integrity header, no trust");
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        // Simulate a fingerprint collision: an entry at the right path
        // whose stored canonical key belongs to someone else.
        let cache = temp_cache("collision");
        let key = JobKey::new("t").field("seed", 1u64);
        cache.store(&key, &JsonValue::U64(7)).unwrap();
        let forged = JsonValue::object([
            ("key", JsonValue::from("experiment=other")),
            ("result", JsonValue::U64(9)),
        ]);
        std::fs::write(cache.entry_path(&key), forged.to_json()).unwrap();
        assert_eq!(cache.lookup(&key), None);
        let _ = std::fs::remove_dir_all(cache.root());
    }
}
