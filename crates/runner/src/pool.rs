//! The work-stealing worker pool and its job/outcome types.
//!
//! Jobs are distributed round-robin across per-worker deques up front;
//! each worker pops from the front of its own deque and, when empty,
//! steals from the back of its peers'. Because the job set is fixed at
//! submission (no job spawns further jobs), "every deque empty" is the
//! termination condition — no condition variables needed.
//!
//! Determinism: results are written into a slot per submission index,
//! so the report order equals submission order no matter which worker
//! finished which job when. Each job closure is a self-contained,
//! seeded computation, so a parallel run is byte-identical to a serial
//! one.

use crate::cache::ResultCache;
use crate::hash::JobKey;
use cmpsim_telemetry::{JsonValue, Labels, MetricRegistry, SpanProfiler};
use std::collections::VecDeque;
use std::fmt;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How the pool runs a batch of jobs.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads; `0` means one per available CPU.
    pub workers: usize,
    /// Root of the content-addressed result cache; `None` disables
    /// caching entirely.
    pub cache_dir: Option<PathBuf>,
    /// How many times a panicking or hung job is re-run before it is
    /// reported as [`JobOutcome::Failed`] / [`JobOutcome::TimedOut`]
    /// (`1` = one retry, two attempts total).
    pub retries: u32,
    /// Emit a live `\r`-rewritten progress line on stderr.
    pub progress: bool,
    /// Per-job watchdog deadline. `None` (the default) runs jobs inline
    /// on the worker with no deadline; `Some(t)` runs each attempt on a
    /// detached thread and gives up on it after `t`, so one hung cell
    /// cannot stall the whole grid. An abandoned attempt's thread is
    /// left to finish in the background (std threads cannot be killed);
    /// its eventual result is discarded.
    pub job_timeout: Option<Duration>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            workers: 1,
            cache_dir: None,
            retries: 1,
            progress: false,
            job_timeout: None,
        }
    }
}

/// A structured, deterministic job failure: unlike a panic, it states
/// which class of invariant broke, and it is not retried (a pure job
/// that errored once will error identically again).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Failure class, e.g. `protocol`, `invariant`, `io`, `config`.
    pub category: String,
    /// Human-readable detail.
    pub message: String,
}

impl JobError {
    /// A job error in `category` with detail `message`.
    pub fn new(category: impl Into<String>, message: impl Into<String>) -> Self {
        JobError {
            category: category.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.category, self.message)
    }
}

impl std::error::Error for JobError {}

/// One unit of work: a cache key plus a closure producing the job's
/// JSON result payload.
pub struct ExperimentJob {
    /// Display label (progress line, failure summary).
    pub label: String,
    /// Content-address of the result.
    pub key: JobKey,
    run: Box<dyn Fn() -> Result<JsonValue, JobError> + Send + Sync>,
}

impl ExperimentJob {
    /// A job running `run` whenever the cache misses on `key`.
    pub fn new(
        label: impl Into<String>,
        key: JobKey,
        run: impl Fn() -> JsonValue + Send + Sync + 'static,
    ) -> Self {
        Self::try_new(label, key, move || Ok(run()))
    }

    /// Like [`new`](ExperimentJob::new), but the closure may fail with a
    /// structured [`JobError`] instead of panicking. Structured errors
    /// are reported as [`JobOutcome::Errored`] and never retried.
    pub fn try_new(
        label: impl Into<String>,
        key: JobKey,
        run: impl Fn() -> Result<JsonValue, JobError> + Send + Sync + 'static,
    ) -> Self {
        ExperimentJob {
            label: label.into(),
            key,
            run: Box::new(run),
        }
    }
}

impl std::fmt::Debug for ExperimentJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentJob")
            .field("label", &self.label)
            .field("key", &self.key.canonical())
            .finish_non_exhaustive()
    }
}

/// How one job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Executed this run.
    Ok(JsonValue),
    /// Served from the result cache without executing.
    Cached(JsonValue),
    /// Panicked on every attempt; the rest of the batch still ran.
    Failed {
        /// Rendered panic payload of the last attempt.
        error: String,
    },
    /// Returned a structured [`JobError`] (deterministic, not retried).
    Errored {
        /// The error's failure class (`protocol`, `invariant`, ...).
        category: String,
        /// The error's detail message.
        error: String,
    },
    /// Hung past the watchdog deadline on every attempt; the attempt
    /// threads were abandoned and the batch moved on.
    TimedOut {
        /// What the watchdog observed (deadline, attempts).
        error: String,
    },
}

impl JobOutcome {
    /// The result payload, if the job produced one.
    pub fn payload(&self) -> Option<&JsonValue> {
        match self {
            JobOutcome::Ok(v) | JobOutcome::Cached(v) => Some(v),
            JobOutcome::Failed { .. }
            | JobOutcome::Errored { .. }
            | JobOutcome::TimedOut { .. } => None,
        }
    }

    /// Short machine-readable kind: `ok`, `cached`, `failed`, `error`,
    /// or `timeout`.
    pub fn kind(&self) -> &'static str {
        match self {
            JobOutcome::Ok(_) => "ok",
            JobOutcome::Cached(_) => "cached",
            JobOutcome::Failed { .. } => "failed",
            JobOutcome::Errored { .. } => "error",
            JobOutcome::TimedOut { .. } => "timeout",
        }
    }

    /// The failure detail, if the job did not produce a payload.
    pub fn error(&self) -> Option<&str> {
        match self {
            JobOutcome::Ok(_) | JobOutcome::Cached(_) => None,
            JobOutcome::Failed { error }
            | JobOutcome::Errored { error, .. }
            | JobOutcome::TimedOut { error } => Some(error),
        }
    }
}

/// Per-job record in the batch report.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// The job's display label.
    pub label: String,
    /// How it ended.
    pub outcome: JobOutcome,
    /// Wall-clock time spent on this job (cache lookup + attempts).
    pub wall_ms: f64,
    /// Execution attempts (0 for a cache hit).
    pub attempts: u32,
}

/// The structured report of one batch: per-job outcomes in submission
/// order plus batch-level counters.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Per-job reports, in submission order.
    pub jobs: Vec<JobReport>,
    /// Worker threads the batch actually used.
    pub workers: usize,
    /// Wall-clock time of the whole batch.
    pub wall_ms: f64,
}

impl RunReport {
    /// Jobs executed this run.
    pub fn ok_count(&self) -> usize {
        self.count(|o| matches!(o, JobOutcome::Ok(_)))
    }

    /// Jobs served from the cache.
    pub fn cached_count(&self) -> usize {
        self.count(|o| matches!(o, JobOutcome::Cached(_)))
    }

    /// Jobs that produced no payload: panicked every attempt, returned
    /// a structured error, or hung past the watchdog deadline.
    pub fn failed_count(&self) -> usize {
        self.count(|o| o.error().is_some())
    }

    /// Jobs the watchdog gave up on.
    pub fn timed_out_count(&self) -> usize {
        self.count(|o| matches!(o, JobOutcome::TimedOut { .. }))
    }

    fn count(&self, f: impl Fn(&JobOutcome) -> bool) -> usize {
        self.jobs.iter().filter(|j| f(&j.outcome)).count()
    }

    /// Result payloads of the successful jobs, in submission order
    /// (failed jobs are skipped).
    pub fn payloads(&self) -> impl Iterator<Item = &JsonValue> {
        self.jobs.iter().filter_map(|j| j.outcome.payload())
    }

    /// `(label, error)` for every failed job, in submission order.
    pub fn failures(&self) -> Vec<(&str, &str)> {
        self.jobs
            .iter()
            .filter_map(|j| Some((j.label.as_str(), j.outcome.error()?)))
            .collect()
    }

    /// One-line human summary, e.g.
    /// `0 ok, 8 cached, 0 failed of 8 jobs (4 workers, 12.3 ms)`.
    pub fn summary(&self) -> String {
        format!(
            "{} ok, {} cached, {} failed of {} jobs ({} workers, {:.1} ms)",
            self.ok_count(),
            self.cached_count(),
            self.failed_count(),
            self.jobs.len(),
            self.workers,
            self.wall_ms
        )
    }

    /// Feeds batch counters and the per-job wall-time histogram into a
    /// telemetry registry (`runner_jobs{outcome=...}`,
    /// `runner_job_micros`).
    pub fn export_metrics(&self, reg: &mut MetricRegistry) {
        for j in &self.jobs {
            let labels = Labels::none().with("outcome", j.outcome.kind());
            reg.count("runner_jobs", &labels, 1);
            reg.observe(
                "runner_job_micros",
                &Labels::none(),
                (j.wall_ms * 1e3) as u64,
            );
        }
    }

    /// Replays each job as a finished span (`job:<label>`) on a span
    /// profiler, under one `runner` parent span.
    pub fn export_spans(&self, spans: &mut SpanProfiler) {
        for j in &self.jobs {
            spans.record(&format!("job:{}", j.label), (j.wall_ms * 1e6) as u128, 1);
        }
        spans.record("runner", (self.wall_ms * 1e6) as u128, 0);
    }

    /// The report as a JSON object (embedded in result documents).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("workers", JsonValue::from(self.workers)),
            ("wall_ms", JsonValue::F64(self.wall_ms)),
            ("ok", JsonValue::from(self.ok_count())),
            ("cached", JsonValue::from(self.cached_count())),
            ("failed", JsonValue::from(self.failed_count())),
            (
                "jobs",
                JsonValue::Array(
                    self.jobs
                        .iter()
                        .map(|j| {
                            let mut fields = vec![
                                ("label".to_owned(), JsonValue::from(j.label.clone())),
                                ("outcome".to_owned(), JsonValue::from(j.outcome.kind())),
                                ("wall_ms".to_owned(), JsonValue::F64(j.wall_ms)),
                                (
                                    "attempts".to_owned(),
                                    JsonValue::from(u64::from(j.attempts)),
                                ),
                            ];
                            if let Some(error) = j.outcome.error() {
                                fields.push(("error".to_owned(), JsonValue::from(error)));
                            }
                            if let JobOutcome::Errored { category, .. } = &j.outcome {
                                fields.push((
                                    "category".to_owned(),
                                    JsonValue::from(category.clone()),
                                ));
                            }
                            JsonValue::Object(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Live progress counters shared by the workers.
struct Progress {
    total: usize,
    done: AtomicUsize,
    ok: AtomicUsize,
    cached: AtomicUsize,
    failed: AtomicUsize,
    started: Instant,
    /// Serializes the `\r` line so two workers never interleave writes.
    line: Mutex<()>,
    enabled: bool,
}

impl Progress {
    fn new(total: usize, enabled: bool) -> Self {
        Progress {
            total,
            done: AtomicUsize::new(0),
            ok: AtomicUsize::new(0),
            cached: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            started: Instant::now(),
            line: Mutex::new(()),
            enabled,
        }
    }

    fn update(&self, outcome: &JobOutcome) {
        match outcome {
            JobOutcome::Ok(_) => &self.ok,
            JobOutcome::Cached(_) => &self.cached,
            JobOutcome::Failed { .. }
            | JobOutcome::Errored { .. }
            | JobOutcome::TimedOut { .. } => &self.failed,
        }
        .fetch_add(1, Ordering::Relaxed);
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let eta = if done > 0 && done < self.total {
            elapsed / done as f64 * (self.total - done) as f64
        } else {
            0.0
        };
        let _guard = self.line.lock().unwrap_or_else(|e| e.into_inner());
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r[{done}/{}] {} ok, {} cached, {} failed, eta {eta:.1}s   ",
            self.total,
            self.ok.load(Ordering::Relaxed),
            self.cached.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
        );
        if done == self.total {
            let _ = writeln!(err);
        }
        let _ = err.flush();
    }
}

/// The worker pool itself.
#[derive(Debug, Clone, Default)]
pub struct Runner {
    cfg: RunnerConfig,
}

impl Runner {
    /// A runner with the given configuration.
    pub fn new(cfg: RunnerConfig) -> Self {
        Runner { cfg }
    }

    /// Executes a batch of jobs and reports per-job outcomes in
    /// submission order.
    ///
    /// A job found in the cache is not executed ([`JobOutcome::Cached`]);
    /// a job that panics is retried up to `retries` times and then
    /// reported as [`JobOutcome::Failed`] without aborting the batch.
    pub fn run(&self, jobs: Vec<ExperimentJob>) -> RunReport {
        let started = Instant::now();
        let total = jobs.len();
        let workers = match self.cfg.workers {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
        .min(total.max(1));
        let cache = self.cfg.cache_dir.as_ref().map(ResultCache::new);

        // Jobs are shared via `Arc` so a watchdog attempt can outlive the
        // batch: an abandoned attempt thread holds its own reference.
        let jobs: Vec<Arc<ExperimentJob>> = jobs.into_iter().map(Arc::new).collect();

        // Round-robin pre-distribution over per-worker deques.
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..total {
            queues[i % workers]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(i);
        }
        let slots: Vec<Mutex<Option<JobReport>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let progress = Progress::new(total, self.cfg.progress);

        std::thread::scope(|scope| {
            for me in 0..workers {
                let jobs = &jobs;
                let queues = &queues;
                let slots = &slots;
                let progress = &progress;
                let cache = cache.as_ref();
                let retries = self.cfg.retries;
                let timeout = self.cfg.job_timeout;
                scope.spawn(move || {
                    while let Some(i) = next_job(queues, me) {
                        let report = execute(&jobs[i], cache, retries, timeout);
                        progress.update(&report.outcome);
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(report);
                    }
                });
            }
        });

        RunReport {
            jobs: slots
                .into_iter()
                .map(|s| {
                    s.into_inner()
                        .unwrap_or_else(|e| e.into_inner())
                        .expect("every submitted job produced a report")
                })
                .collect(),
            workers,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        }
    }
}

/// Pops from the front of `me`'s deque, or steals from the back of a
/// peer's. `None` only when every deque is empty, which is final
/// because no job enqueues further jobs.
fn next_job(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(i) = queues[me]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .pop_front()
    {
        return Some(i);
    }
    for off in 1..queues.len() {
        let victim = (me + off) % queues.len();
        if let Some(i) = queues[victim]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_back()
        {
            return Some(i);
        }
    }
    None
}

/// One attempt's result as the worker sees it: the closure finished
/// (possibly by panicking), or the watchdog gave up waiting.
enum Attempt {
    Finished(std::thread::Result<Result<JsonValue, JobError>>),
    Hung,
}

/// Runs one attempt, inline or under a watchdog deadline.
///
/// With a deadline, the attempt runs on a *detached* thread and the
/// worker waits on a channel: if the deadline passes, the thread is
/// abandoned (std threads cannot be killed) and its eventual result —
/// sent into a channel nobody reads — is dropped.
fn attempt(job: &Arc<ExperimentJob>, timeout: Option<Duration>) -> Attempt {
    let Some(deadline) = timeout else {
        return Attempt::Finished(catch_unwind(AssertUnwindSafe(|| (job.run)())));
    };
    let (tx, rx) = mpsc::channel();
    let worker = Arc::clone(job);
    let spawned = std::thread::Builder::new()
        .name(format!("watchdog:{}", job.label))
        .spawn(move || {
            let _ = tx.send(catch_unwind(AssertUnwindSafe(|| (worker.run)())));
        });
    match spawned {
        Err(e) => Attempt::Finished(Ok(Err(JobError::new(
            "io",
            format!("cannot spawn watchdog thread: {e}"),
        )))),
        Ok(_handle) => match rx.recv_timeout(deadline) {
            Ok(result) => Attempt::Finished(result),
            Err(_) => Attempt::Hung,
        },
    }
}

fn execute(
    job: &Arc<ExperimentJob>,
    cache: Option<&ResultCache>,
    retries: u32,
    timeout: Option<Duration>,
) -> JobReport {
    let started = Instant::now();
    if let Some(c) = cache {
        if let Some(v) = c.lookup(&job.key) {
            return JobReport {
                label: job.label.clone(),
                outcome: JobOutcome::Cached(v),
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                attempts: 0,
            };
        }
    }
    let mut attempts = 0;
    let outcome = loop {
        attempts += 1;
        match attempt(job, timeout) {
            Attempt::Finished(Ok(Ok(v))) => {
                if let Some(c) = cache {
                    if let Err(e) = c.store(&job.key, &v) {
                        eprintln!("warning: cannot cache result of {}: {e}", job.label);
                    }
                }
                break JobOutcome::Ok(v);
            }
            // A structured error is deterministic — a pure job would
            // fail identically on a retry, so report it immediately.
            Attempt::Finished(Ok(Err(e))) => {
                break JobOutcome::Errored {
                    category: e.category,
                    error: e.message,
                };
            }
            Attempt::Finished(Err(payload)) => {
                if attempts > retries {
                    break JobOutcome::Failed {
                        error: panic_message(payload.as_ref()),
                    };
                }
            }
            Attempt::Hung => {
                if attempts > retries {
                    let ms = timeout.map_or(0, |t| t.as_millis());
                    break JobOutcome::TimedOut {
                        error: format!(
                            "no result within {ms} ms on any of {attempts} attempt(s); \
                             attempt thread(s) abandoned"
                        ),
                    };
                }
            }
        }
    };
    JobReport {
        label: job.label.clone(),
        outcome,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        attempts,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
