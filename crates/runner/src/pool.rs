//! The work-stealing worker pool and its job/outcome types.
//!
//! Jobs are distributed round-robin across per-worker deques up front;
//! each worker pops from the front of its own deque and, when empty,
//! steals from the back of its peers'. Because the job set is fixed at
//! submission (no job spawns further jobs), "every deque empty" is the
//! termination condition — no condition variables needed.
//!
//! Determinism: results are written into a slot per submission index,
//! so the report order equals submission order no matter which worker
//! finished which job when. Each job closure is a self-contained,
//! seeded computation, so a parallel run is byte-identical to a serial
//! one.
//!
//! Crash-safety: with a [`JournalConfig`] the pool write-ahead-journals
//! every job start and terminal outcome (fsync'd, checksummed — see
//! [`crate::journal`]); a resumed batch replays completed cells from the
//! journal and re-enqueues in-flight ones. With
//! [`IsolateMode::Process`] each attempt runs in a supervised child
//! process (see [`crate::supervisor`]), so aborts and OOM kills are
//! contained, retried on the [`BackoffPolicy`] schedule, and quarantined
//! as [`JobOutcome::Poisoned`]. A [`ShutdownFlag`] drains the pool:
//! in-flight cells finish, queued ones are [`JobOutcome::Skipped`].

use crate::backoff::{BackoffPolicy, FailureClass};
use crate::cache::ResultCache;
use crate::hash::JobKey;
use crate::journal::{JournalConfig, JournalReplay, RunJournal};
use crate::shutdown::ShutdownFlag;
use crate::supervisor::{self, ChildAttempt};
use cmpsim_telemetry::trace::{
    self as ftrace, EventKind, FlightRecorder, Lane, OpenSpan, TraceEvent,
};
use cmpsim_telemetry::{JsonValue, Labels, MetricRegistry, SpanProfiler};
use std::collections::VecDeque;
use std::fmt;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a job attempt executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsolateMode {
    /// On the worker thread (panics are caught with `catch_unwind`).
    #[default]
    Inline,
    /// In a supervised child process re-exec'd from the current binary
    /// (jobs must carry [`ExperimentJob::with_child_args`]; jobs without
    /// a child spec fall back to inline execution).
    Process,
}

impl std::str::FromStr for IsolateMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "inline" => Ok(IsolateMode::Inline),
            "process" => Ok(IsolateMode::Process),
            other => Err(format!("unknown isolation mode `{other}`")),
        }
    }
}

/// How the pool runs a batch of jobs.
#[derive(Debug, Clone, Default)]
pub struct RunnerConfig {
    /// Worker threads; `0` means one per available CPU.
    pub workers: usize,
    /// Root of the content-addressed result cache; `None` disables
    /// caching entirely.
    pub cache_dir: Option<PathBuf>,
    /// How many times a crashing or hung job is re-run before it is
    /// reported as [`JobOutcome::Failed`] / [`JobOutcome::Poisoned`] /
    /// [`JobOutcome::TimedOut`] (`1` = one retry, two attempts total).
    pub retries: u32,
    /// Emit a live `\r`-rewritten progress line on stderr.
    pub progress: bool,
    /// Per-job watchdog deadline. `None` (the default) runs jobs with no
    /// deadline. Inline: `Some(t)` runs each attempt on a detached
    /// thread and gives up on it after `t` (the thread is abandoned —
    /// std threads cannot be killed). Process isolation: the child is
    /// **killed** at the deadline, so nothing leaks.
    pub job_timeout: Option<Duration>,
    /// Retry/backoff schedule for failed attempts (see
    /// [`BackoffPolicy`]): deterministic exponential delays, and the
    /// single authority on whether structured errors retry.
    pub backoff: BackoffPolicy,
    /// Where attempts execute (inline threads or supervised child
    /// processes).
    pub isolate: IsolateMode,
    /// Write-ahead journal configuration; `None` runs un-journalled.
    pub journal: Option<JournalConfig>,
    /// Graceful-shutdown flag the pool polls between jobs (wire up
    /// [`crate::shutdown::install`] for SIGINT/SIGTERM).
    pub shutdown: Option<ShutdownFlag>,
    /// Flight recorder for span timelines (see
    /// [`cmpsim_telemetry::trace`]); `None` — the default — runs
    /// untraced, and every instrumentation site is a no-op.
    pub tracer: Option<Arc<FlightRecorder>>,
}

impl RunnerConfig {
    /// The default single-worker configuration (used via `Default`).
    pub fn single() -> Self {
        RunnerConfig {
            workers: 1,
            retries: 1,
            ..RunnerConfig::default()
        }
    }
}

/// A structured, deterministic job failure: unlike a panic, it states
/// which class of invariant broke. Whether it is retried is the
/// [`BackoffPolicy`]'s call (by default it is not: a pure job that
/// errored once will error identically again).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Failure class, e.g. `protocol`, `invariant`, `io`, `config`.
    pub category: String,
    /// Human-readable detail.
    pub message: String,
}

impl JobError {
    /// A job error in `category` with detail `message`.
    pub fn new(category: impl Into<String>, message: impl Into<String>) -> Self {
        JobError {
            category: category.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.category, self.message)
    }
}

impl std::error::Error for JobError {}

/// One unit of work: a cache key plus a closure producing the job's
/// JSON result payload.
pub struct ExperimentJob {
    /// Display label (progress line, failure summary).
    pub label: String,
    /// Content-address of the result.
    pub key: JobKey,
    run: Box<dyn Fn() -> Result<JsonValue, JobError> + Send + Sync>,
    /// Argv (after the program name) that re-computes this job in a
    /// re-exec'd child under [`IsolateMode::Process`].
    child_args: Option<Vec<String>>,
}

impl ExperimentJob {
    /// A job running `run` whenever the cache misses on `key`.
    pub fn new(
        label: impl Into<String>,
        key: JobKey,
        run: impl Fn() -> JsonValue + Send + Sync + 'static,
    ) -> Self {
        Self::try_new(label, key, move || Ok(run()))
    }

    /// Like [`new`](ExperimentJob::new), but the closure may fail with a
    /// structured [`JobError`] instead of panicking. Structured errors
    /// are reported as [`JobOutcome::Errored`].
    pub fn try_new(
        label: impl Into<String>,
        key: JobKey,
        run: impl Fn() -> Result<JsonValue, JobError> + Send + Sync + 'static,
    ) -> Self {
        ExperimentJob {
            label: label.into(),
            key,
            run: Box::new(run),
            child_args: None,
        }
    }

    /// Declares how a child process recomputes this job: the current
    /// executable is re-exec'd with exactly `args`. Required for
    /// [`IsolateMode::Process`] to take effect on this job.
    pub fn with_child_args(mut self, args: Vec<String>) -> Self {
        self.child_args = Some(args);
        self
    }
}

impl std::fmt::Debug for ExperimentJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentJob")
            .field("label", &self.label)
            .field("key", &self.key.canonical())
            .field("child_args", &self.child_args)
            .finish_non_exhaustive()
    }
}

/// How one job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Executed this run.
    Ok(JsonValue),
    /// Served from the result cache without executing.
    Cached(JsonValue),
    /// Crashed (in-process panic) on every attempt; the rest of the
    /// batch still ran.
    Failed {
        /// Rendered panic payload of the last attempt.
        error: String,
    },
    /// Returned a structured [`JobError`] (deterministic; retried only
    /// if the [`BackoffPolicy`] opts in).
    Errored {
        /// The error's failure class (`protocol`, `invariant`, ...).
        category: String,
        /// The error's detail message.
        error: String,
    },
    /// Hung past the watchdog deadline on every attempt.
    TimedOut {
        /// What the watchdog observed (deadline, attempts).
        error: String,
    },
    /// A supervised child process died (abort, OOM kill, stack
    /// overflow) on every attempt: the cell is quarantined — journalled
    /// as terminal, so a resumed run will not retry it either.
    Poisoned {
        /// The last attempt's crash report.
        error: String,
    },
    /// Never started: a graceful shutdown drained the pool first. Not
    /// journalled, so a resumed run executes it.
    Skipped,
}

impl JobOutcome {
    /// The result payload, if the job produced one.
    pub fn payload(&self) -> Option<&JsonValue> {
        match self {
            JobOutcome::Ok(v) | JobOutcome::Cached(v) => Some(v),
            _ => None,
        }
    }

    /// Short machine-readable kind: `ok`, `cached`, `failed`, `error`,
    /// `timeout`, `poisoned`, or `skipped`.
    pub fn kind(&self) -> &'static str {
        match self {
            JobOutcome::Ok(_) => "ok",
            JobOutcome::Cached(_) => "cached",
            JobOutcome::Failed { .. } => "failed",
            JobOutcome::Errored { .. } => "error",
            JobOutcome::TimedOut { .. } => "timeout",
            JobOutcome::Poisoned { .. } => "poisoned",
            JobOutcome::Skipped => "skipped",
        }
    }

    /// The failure detail, if the job did not produce a payload.
    pub fn error(&self) -> Option<&str> {
        match self {
            JobOutcome::Ok(_) | JobOutcome::Cached(_) => None,
            JobOutcome::Failed { error }
            | JobOutcome::Errored { error, .. }
            | JobOutcome::TimedOut { error }
            | JobOutcome::Poisoned { error } => Some(error),
            JobOutcome::Skipped => Some("not started: shutdown requested"),
        }
    }

    /// The outcome as a self-contained JSON object — the form the run
    /// journal records and replays.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![("kind".to_owned(), JsonValue::from(self.kind()))];
        match self {
            JobOutcome::Ok(v) | JobOutcome::Cached(v) => {
                fields.push(("payload".to_owned(), v.clone()));
            }
            JobOutcome::Errored { category, error } => {
                fields.push(("category".to_owned(), JsonValue::from(category.clone())));
                fields.push(("error".to_owned(), JsonValue::from(error.clone())));
            }
            JobOutcome::Failed { error }
            | JobOutcome::TimedOut { error }
            | JobOutcome::Poisoned { error } => {
                fields.push(("error".to_owned(), JsonValue::from(error.clone())));
            }
            JobOutcome::Skipped => {}
        }
        JsonValue::Object(fields)
    }

    /// Parses [`to_json`](JobOutcome::to_json)'s form back; `None` on an
    /// unknown kind or missing fields (the journal record is then
    /// ignored).
    pub fn from_json(doc: &JsonValue) -> Option<JobOutcome> {
        let error = || {
            doc.get("error")
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
        };
        Some(match doc.get("kind")?.as_str()? {
            "ok" => JobOutcome::Ok(doc.get("payload")?.clone()),
            "cached" => JobOutcome::Cached(doc.get("payload")?.clone()),
            "failed" => JobOutcome::Failed { error: error()? },
            "error" => JobOutcome::Errored {
                category: doc.get("category")?.as_str()?.to_owned(),
                error: error()?,
            },
            "timeout" => JobOutcome::TimedOut { error: error()? },
            "poisoned" => JobOutcome::Poisoned { error: error()? },
            "skipped" => JobOutcome::Skipped,
            _ => return None,
        })
    }
}

/// Per-job record in the batch report.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// The job's display label.
    pub label: String,
    /// How it ended.
    pub outcome: JobOutcome,
    /// Wall-clock time spent on this job (cache lookup + attempts +
    /// backoff waits).
    pub wall_ms: f64,
    /// Execution attempts (0 for a cache hit or a journal replay).
    pub attempts: u32,
    /// Served from the run journal of an interrupted run, without
    /// executing.
    pub replayed: bool,
    /// Total deterministic backoff delay spent between attempts.
    pub backoff_ms: f64,
}

/// The structured report of one batch: per-job outcomes in submission
/// order plus batch-level counters.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Per-job reports, in submission order.
    pub jobs: Vec<JobReport>,
    /// Worker threads the batch actually used.
    pub workers: usize,
    /// Wall-clock time of the whole batch.
    pub wall_ms: f64,
    /// A graceful shutdown drained this batch before it finished.
    pub interrupted: bool,
    /// The journal run id, when journalling was active (what `--resume`
    /// takes).
    pub run_id: Option<String>,
    /// Cells that were in flight when a previous run died and were
    /// re-enqueued by this resume.
    pub recovered: usize,
}

impl RunReport {
    /// Jobs executed this run.
    pub fn ok_count(&self) -> usize {
        self.count(|j| matches!(j.outcome, JobOutcome::Ok(_)))
    }

    /// Jobs served from the cache.
    pub fn cached_count(&self) -> usize {
        self.count(|j| matches!(j.outcome, JobOutcome::Cached(_)))
    }

    /// Jobs that produced no payload: crashed every attempt, returned a
    /// structured error, hung past the deadline, were poisoned, or were
    /// skipped by a shutdown.
    pub fn failed_count(&self) -> usize {
        self.count(|j| j.outcome.error().is_some())
    }

    /// Jobs the watchdog gave up on.
    pub fn timed_out_count(&self) -> usize {
        self.count(|j| matches!(j.outcome, JobOutcome::TimedOut { .. }))
    }

    /// Jobs quarantined after crashing a supervised child on every
    /// attempt.
    pub fn poisoned_count(&self) -> usize {
        self.count(|j| matches!(j.outcome, JobOutcome::Poisoned { .. }))
    }

    /// Jobs a graceful shutdown prevented from starting.
    pub fn skipped_count(&self) -> usize {
        self.count(|j| matches!(j.outcome, JobOutcome::Skipped))
    }

    /// Jobs served from the run journal without executing.
    pub fn replayed_count(&self) -> usize {
        self.count(|j| j.replayed)
    }

    /// Total deterministic backoff delay the batch spent, in ms.
    pub fn backoff_ms(&self) -> f64 {
        self.jobs.iter().map(|j| j.backoff_ms).sum()
    }

    fn count(&self, f: impl Fn(&JobReport) -> bool) -> usize {
        self.jobs.iter().filter(|j| f(j)).count()
    }

    /// Result payloads of the successful jobs, in submission order
    /// (failed jobs are skipped).
    pub fn payloads(&self) -> impl Iterator<Item = &JsonValue> {
        self.jobs.iter().filter_map(|j| j.outcome.payload())
    }

    /// `(label, error)` for every failed job, in submission order.
    pub fn failures(&self) -> Vec<(&str, &str)> {
        self.jobs
            .iter()
            .filter_map(|j| Some((j.label.as_str(), j.outcome.error()?)))
            .collect()
    }

    /// One-line human summary, e.g.
    /// `0 ok, 8 cached, 0 failed of 8 jobs (4 workers, 12.3 ms)`.
    /// Replay/interruption details are appended only when present, so a
    /// clean run's summary is byte-stable.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} ok, {} cached, {} failed of {} jobs ({} workers, {:.1} ms)",
            self.ok_count(),
            self.cached_count(),
            self.failed_count(),
            self.jobs.len(),
            self.workers,
            self.wall_ms
        );
        if self.replayed_count() > 0 {
            s.push_str(&format!(
                "; {} replayed from journal, {} in-flight recovered",
                self.replayed_count(),
                self.recovered
            ));
        }
        if self.interrupted {
            s.push_str(&format!(
                "; interrupted — {} cells skipped",
                self.skipped_count()
            ));
        }
        s
    }

    /// Feeds batch counters and the per-job wall-time histogram into a
    /// telemetry registry (`runner_jobs{outcome=...}`,
    /// `runner_job_micros`, plus recovery/backoff counters when
    /// nonzero).
    pub fn export_metrics(&self, reg: &mut MetricRegistry) {
        for j in &self.jobs {
            let labels = Labels::none().with("outcome", j.outcome.kind());
            reg.count("runner_jobs", &labels, 1);
            reg.observe(
                "runner_job_micros",
                &Labels::none(),
                (j.wall_ms * 1e3) as u64,
            );
        }
        if self.replayed_count() > 0 {
            reg.count(
                "runner_replayed",
                &Labels::none(),
                self.replayed_count() as u64,
            );
        }
        if self.recovered > 0 {
            reg.count("runner_recovered", &Labels::none(), self.recovered as u64);
        }
        if self.backoff_ms() > 0.0 {
            reg.count(
                "runner_backoff_ms",
                &Labels::none(),
                self.backoff_ms() as u64,
            );
        }
    }

    /// Replays each job as a finished span (`job:<label>`) on a span
    /// profiler, under one `runner` parent span.
    pub fn export_spans(&self, spans: &mut SpanProfiler) {
        for j in &self.jobs {
            spans.record(&format!("job:{}", j.label), (j.wall_ms * 1e6) as u128, 1);
        }
        spans.record("runner", (self.wall_ms * 1e6) as u128, 0);
    }

    /// The report as a JSON object (embedded in result documents).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("workers", JsonValue::from(self.workers)),
            ("wall_ms", JsonValue::F64(self.wall_ms)),
            ("ok", JsonValue::from(self.ok_count())),
            ("cached", JsonValue::from(self.cached_count())),
            ("failed", JsonValue::from(self.failed_count())),
            ("replayed", JsonValue::from(self.replayed_count())),
            ("skipped", JsonValue::from(self.skipped_count())),
            ("poisoned", JsonValue::from(self.poisoned_count())),
            ("recovered", JsonValue::from(self.recovered)),
            ("interrupted", JsonValue::from(self.interrupted)),
            (
                "jobs",
                JsonValue::Array(
                    self.jobs
                        .iter()
                        .map(|j| {
                            let mut fields = vec![
                                ("label".to_owned(), JsonValue::from(j.label.clone())),
                                ("outcome".to_owned(), JsonValue::from(j.outcome.kind())),
                                ("wall_ms".to_owned(), JsonValue::F64(j.wall_ms)),
                                (
                                    "attempts".to_owned(),
                                    JsonValue::from(u64::from(j.attempts)),
                                ),
                            ];
                            if j.replayed {
                                fields.push(("replayed".to_owned(), JsonValue::Bool(true)));
                            }
                            if j.backoff_ms > 0.0 {
                                fields
                                    .push(("backoff_ms".to_owned(), JsonValue::F64(j.backoff_ms)));
                            }
                            if let Some(error) = j.outcome.error() {
                                fields.push(("error".to_owned(), JsonValue::from(error)));
                            }
                            if let JobOutcome::Errored { category, .. } = &j.outcome {
                                fields.push((
                                    "category".to_owned(),
                                    JsonValue::from(category.clone()),
                                ));
                            }
                            JsonValue::Object(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Live progress counters shared by the workers.
struct Progress {
    total: usize,
    done: AtomicUsize,
    ok: AtomicUsize,
    cached: AtomicUsize,
    failed: AtomicUsize,
    started: Instant,
    /// Serializes the `\r` line so two workers never interleave writes.
    line: Mutex<()>,
    enabled: bool,
    /// Whether stderr is an interactive terminal. On a TTY the line is
    /// `\r`-rewritten in place; on a pipe (service clients, CI logs,
    /// `2>file`) each update is one newline-terminated, single-write
    /// line so downstream readers see whole records, never a torn tail
    /// of carriage returns.
    tty: bool,
}

impl Progress {
    fn new(total: usize, enabled: bool) -> Self {
        use std::io::IsTerminal;
        Progress {
            total,
            done: AtomicUsize::new(0),
            ok: AtomicUsize::new(0),
            cached: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            started: Instant::now(),
            line: Mutex::new(()),
            enabled,
            tty: std::io::stderr().is_terminal(),
        }
    }

    fn update(&self, outcome: &JobOutcome) {
        match outcome {
            JobOutcome::Ok(_) => &self.ok,
            JobOutcome::Cached(_) => &self.cached,
            JobOutcome::Failed { .. }
            | JobOutcome::Errored { .. }
            | JobOutcome::TimedOut { .. }
            | JobOutcome::Poisoned { .. }
            | JobOutcome::Skipped => &self.failed,
        }
        .fetch_add(1, Ordering::Relaxed);
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let eta = if done > 0 && done < self.total {
            elapsed / done as f64 * (self.total - done) as f64
        } else {
            0.0
        };
        let body = format!(
            "[{done}/{}] {} ok, {} cached, {} failed, eta {eta:.1}s",
            self.total,
            self.ok.load(Ordering::Relaxed),
            self.cached.load(Ordering::Relaxed),
            self.failed.load(Ordering::Relaxed),
        );
        let line = if self.tty {
            let newline = if done == self.total { "\n" } else { "" };
            format!("\r{body}   {newline}")
        } else {
            format!("{body}\n")
        };
        let _guard = self.line.lock().unwrap_or_else(|e| e.into_inner());
        let mut err = std::io::stderr().lock();
        let _ = err.write_all(line.as_bytes());
        let _ = err.flush();
    }
}

/// The worker pool itself.
#[derive(Debug, Clone)]
pub struct Runner {
    cfg: RunnerConfig,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new(RunnerConfig::single())
    }
}

impl Runner {
    /// A runner with the given configuration.
    pub fn new(cfg: RunnerConfig) -> Self {
        Runner { cfg }
    }

    /// Executes a batch of jobs and reports per-job outcomes in
    /// submission order.
    ///
    /// A job found in the cache is not executed ([`JobOutcome::Cached`]);
    /// with a resuming journal, a job with a recorded terminal outcome
    /// is replayed from it. A crashing job is retried on the backoff
    /// schedule and then reported as [`JobOutcome::Failed`] (inline) or
    /// [`JobOutcome::Poisoned`] (process isolation) without aborting the
    /// batch.
    pub fn run(&self, jobs: Vec<ExperimentJob>) -> RunReport {
        let started = Instant::now();
        let total = jobs.len();
        let workers = match self.cfg.workers {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
        .min(total.max(1));
        let cache = self.cfg.cache_dir.as_ref().map(ResultCache::new);

        // Open (and on resume, replay) the write-ahead journal. A failed
        // open degrades to an un-journalled run — loudly, because it
        // forfeits crash-safety.
        let mut journal = None;
        let mut replay = JournalReplay::default();
        if let Some(jc) = &self.cfg.journal {
            match RunJournal::open(jc) {
                Ok((j, r)) => {
                    journal = Some(j);
                    replay = r;
                }
                Err(e) => eprintln!(
                    "warning: running WITHOUT crash-safety — cannot open journal {}: {e}",
                    jc.path().display()
                ),
            }
        }
        let run_id = self.cfg.journal.as_ref().map(|jc| jc.run_id.clone());

        // Jobs are shared via `Arc` so a watchdog attempt can outlive the
        // batch: an abandoned attempt thread holds its own reference.
        let jobs: Vec<Arc<ExperimentJob>> = jobs.into_iter().map(Arc::new).collect();
        let keys: Vec<String> = jobs.iter().map(|j| j.key.canonical()).collect();
        let recovered = keys
            .iter()
            .filter(|k| replay.in_flight.contains(k.as_str()))
            .count();
        if let Some(j) = &journal {
            j.run_start(
                run_id.as_deref().unwrap_or(""),
                total,
                replay.completed.len(),
            );
        }

        // Round-robin pre-distribution over per-worker deques.
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..total {
            queues[i % workers]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(i);
        }
        let slots: Vec<Mutex<Option<JobReport>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let progress = Progress::new(total, self.cfg.progress);

        // Flight-recorder lanes: one for the pool, one per worker.
        // `None` everywhere when tracing is off — the worker loop then
        // takes exactly the pre-tracing code path.
        let tracer = self.cfg.tracer.clone();
        let pool_lane = tracer.as_ref().map(|rec| rec.lane("pool"));
        let worker_lanes: Option<Vec<Lane>> = tracer.as_ref().map(|rec| {
            (0..workers)
                .map(|w| rec.lane(&format!("worker-{w}")))
                .collect()
        });
        let batch_start_ns = tracer.as_ref().map_or(0, |rec| rec.now_ns());
        let run_span = pool_lane.as_ref().map(|lane| {
            let mut s = lane.begin("run", "", 0);
            s.arg("jobs", total as u64);
            s.arg("workers", workers as u64);
            s.arg("replayed", replay.completed.len() as u64);
            s
        });
        let run_root = run_span.as_ref().map_or(0, OpenSpan::span_id);

        std::thread::scope(|scope| {
            for me in 0..workers {
                let jobs = &jobs;
                let keys = &keys;
                let queues = &queues;
                let slots = &slots;
                let progress = &progress;
                let journal = journal.as_ref();
                let replay = &replay;
                let shutdown = self.cfg.shutdown.as_ref();
                let lanes = worker_lanes.as_ref();
                let ctx = ExecCtx {
                    cache: cache.as_ref(),
                    retries: self.cfg.retries,
                    timeout: self.cfg.job_timeout,
                    backoff: &self.cfg.backoff,
                    isolate: self.cfg.isolate,
                };
                scope.spawn(move || {
                    let lane = lanes.map(|ls| ls[me].clone());
                    let mut busy_ns = 0u64;
                    while let Some(i) = next_job(queues, me) {
                        let job = &jobs[i];
                        let key = keys[i].as_str();
                        let tr = lane.as_ref().map(|lane| {
                            let depth: usize = queues
                                .iter()
                                .map(|q| q.lock().unwrap_or_else(|e| e.into_inner()).len())
                                .sum();
                            lane.counter("queue_depth", "", depth as f64);
                            CellTrace::begin(lane.clone(), &job.label, run_root, batch_start_ns)
                        });
                        let pickup_ns = lane.as_ref().map_or(0, |l| l.recorder().now_ns());
                        let report = if shutdown.is_some_and(ShutdownFlag::requested) {
                            // Draining: finish nothing new, journal
                            // nothing (the cell re-runs on resume).
                            if let Some(t) = &tr {
                                t.instant("skipped", Vec::new());
                            }
                            JobReport {
                                label: job.label.clone(),
                                outcome: JobOutcome::Skipped,
                                wall_ms: 0.0,
                                attempts: 0,
                                replayed: false,
                                backoff_ms: 0.0,
                            }
                        } else if let Some(done) = replay.completed.get(key) {
                            // Completed in the journalled run: serve the
                            // recorded outcome without executing.
                            if let Some(t) = &tr {
                                t.instant("journal-replayed", Vec::new());
                            }
                            JobReport {
                                label: job.label.clone(),
                                outcome: done.outcome.clone(),
                                wall_ms: 0.0,
                                attempts: done.attempts,
                                replayed: true,
                                backoff_ms: 0.0,
                            }
                        } else {
                            // Write-ahead: the start record marks this
                            // cell in-flight until its outcome lands.
                            if let Some(j) = journal {
                                let _s = tr.as_ref().map(|t| t.span("journal-append"));
                                j.job_start(i, key, &job.label);
                            }
                            let report = execute(job, &ctx, tr.as_ref());
                            if let Some(j) = journal {
                                let _s = tr.as_ref().map(|t| t.span("journal-append"));
                                j.job_done(i, key, &job.label, &report.outcome, report.attempts);
                            }
                            report
                        };
                        if let Some(t) = tr {
                            busy_ns += t.lane.recorder().now_ns().saturating_sub(pickup_ns);
                            t.finish(&report.outcome, report.attempts);
                        }
                        progress.update(&report.outcome);
                        *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(report);
                    }
                    // Utilization gauge: fraction of the batch this
                    // worker spent on cells (cache lookups included).
                    if let Some(lane) = &lane {
                        let total_ns = lane.recorder().now_ns().saturating_sub(batch_start_ns);
                        if total_ns > 0 {
                            lane.counter("utilization", "", busy_ns as f64 / total_ns as f64);
                        }
                    }
                });
            }
        });
        drop(run_span);

        let report = RunReport {
            jobs: slots
                .into_iter()
                .map(|s| {
                    s.into_inner()
                        .unwrap_or_else(|e| e.into_inner())
                        .expect("every submitted job produced a report")
                })
                .collect(),
            workers,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            interrupted: self
                .cfg
                .shutdown
                .as_ref()
                .is_some_and(ShutdownFlag::requested),
            run_id,
            recovered,
        };
        if let Some(j) = &journal {
            if report.interrupted {
                j.interrupted(
                    report.jobs.len() - report.skipped_count(),
                    report.skipped_count(),
                );
            } else {
                j.run_end(
                    report.ok_count(),
                    report.cached_count(),
                    report.failed_count(),
                );
            }
        }
        report
    }
}

/// Pops from the front of `me`'s deque, or steals from the back of a
/// peer's. `None` only when every deque is empty, which is final
/// because no job enqueues further jobs.
fn next_job(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(i) = queues[me]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .pop_front()
    {
        return Some(i);
    }
    for off in 1..queues.len() {
        let victim = (me + off) % queues.len();
        if let Some(i) = queues[victim]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_back()
        {
            return Some(i);
        }
    }
    None
}

/// Everything one attempt needs besides the job itself.
struct ExecCtx<'a> {
    cache: Option<&'a ResultCache>,
    retries: u32,
    timeout: Option<Duration>,
    backoff: &'a BackoffPolicy,
    isolate: IsolateMode,
}

/// Per-cell tracing scope: the umbrella `cell:<label>` span plus the
/// synthetic queue-wait span (submission → pickup).
struct CellTrace {
    lane: Lane,
    label: String,
    cell_id: u64,
    cell: Option<OpenSpan>,
}

impl CellTrace {
    fn begin(lane: Lane, label: &str, run_root: u64, batch_start_ns: u64) -> CellTrace {
        let pickup_ns = lane.recorder().now_ns();
        let cell = lane.begin(
            &format!("{}{label}", ftrace::CELL_SPAN_PREFIX),
            label,
            run_root,
        );
        let cell_id = cell.span_id();
        // Queue wait: every job is submitted at batch start; the gap to
        // pickup is time spent behind other cells.
        lane.push(TraceEvent {
            name: "queue-wait".to_owned(),
            cell: label.to_owned(),
            lane: 0,
            id: lane.recorder().next_span_id(),
            parent: cell_id,
            ts_ns: batch_start_ns,
            kind: EventKind::Span {
                dur_ns: pickup_ns.saturating_sub(batch_start_ns),
            },
            args: Vec::new(),
        });
        CellTrace {
            lane,
            label: label.to_owned(),
            cell_id,
            cell: Some(cell),
        }
    }

    fn span(&self, name: &str) -> OpenSpan {
        self.lane.begin(name, &self.label, self.cell_id)
    }

    fn instant(&self, name: &str, args: Vec<(String, JsonValue)>) {
        self.lane.instant(name, &self.label, self.cell_id, args);
    }

    fn finish(mut self, outcome: &JobOutcome, attempts: u32) {
        if let Some(mut cell) = self.cell.take() {
            cell.arg("outcome", outcome.kind());
            cell.arg("attempts", u64::from(attempts));
            cell.end();
        }
    }
}

fn failure_class_name(class: FailureClass) -> &'static str {
    match class {
        FailureClass::Structured => "structured",
        FailureClass::Crash => "crash",
        FailureClass::Hang => "hang",
    }
}

/// One attempt's result, execution mode erased: inline panics and child
/// process deaths both surface as [`Attempt::Crashed`].
enum Attempt {
    Ok(JsonValue),
    Err(JobError),
    Crashed(String),
    Hung,
}

/// Runs one attempt — in a supervised child process if the mode and job
/// allow it, otherwise inline (optionally under the watchdog deadline).
/// With tracing on, the attempt runs under an `execute` span; a traced
/// child's reported spans are grafted under it.
fn attempt(job: &Arc<ExperimentJob>, ctx: &ExecCtx, tr: Option<&CellTrace>, n: u32) -> Attempt {
    let mut span = tr.map(|t| {
        let mut s = t.span("execute");
        s.arg("attempt", u64::from(n));
        s
    });
    if ctx.isolate == IsolateMode::Process {
        if let Some(args) = &job.child_args {
            if let Some(s) = span.as_mut() {
                s.arg("mode", "process");
            }
            // The child's clock starts at spawn; re-base its events to
            // our clock's "now" so they land inside the execute span.
            let base_ns = tr.map_or(0, |t| t.lane.recorder().now_ns());
            let sup = supervisor::attempt(args, ctx.timeout, tr.is_some());
            if let Some(t) = tr {
                t.lane.recorder().add_dropped(sup.trace_dropped);
                ftrace::graft(
                    &t.lane,
                    sup.trace,
                    &t.label,
                    span.as_ref().map_or(0, OpenSpan::span_id),
                    base_ns,
                    &[("proc", JsonValue::from("child"))],
                );
            }
            return match sup.attempt {
                ChildAttempt::Ok(v) => Attempt::Ok(v),
                ChildAttempt::Err(e) => Attempt::Err(e),
                ChildAttempt::Crashed(m) => Attempt::Crashed(m),
                ChildAttempt::Hung => Attempt::Hung,
            };
        }
    }
    if let Some(s) = span.as_mut() {
        s.arg("mode", "inline");
    }
    let install = tr.map(|t| {
        (
            t.lane.clone(),
            t.label.clone(),
            span.as_ref().map_or(0, OpenSpan::span_id),
        )
    });
    inline_attempt(job, ctx.timeout, install)
}

/// Runs one inline attempt, optionally under a watchdog deadline.
///
/// With a deadline, the attempt runs on a *detached* thread and the
/// worker waits on a channel: if the deadline passes, the thread is
/// abandoned (std threads cannot be killed) and its eventual result —
/// sent into a channel nobody reads — is dropped.
fn inline_attempt(
    job: &Arc<ExperimentJob>,
    timeout: Option<Duration>,
    install: Option<(Lane, String, u64)>,
) -> Attempt {
    let fold = |caught: std::thread::Result<Result<JsonValue, JobError>>| match caught {
        Ok(Ok(v)) => Attempt::Ok(v),
        Ok(Err(e)) => Attempt::Err(e),
        Err(payload) => Attempt::Crashed(panic_message(payload.as_ref())),
    };
    let Some(deadline) = timeout else {
        let _ctx = install.map(|(lane, cell, root)| ftrace::install(lane, &cell, root));
        return fold(catch_unwind(AssertUnwindSafe(|| (job.run)())));
    };
    let (tx, rx) = mpsc::channel();
    let worker = Arc::clone(job);
    let spawned = std::thread::Builder::new()
        .name(format!("watchdog:{}", job.label))
        .spawn(move || {
            let _ctx = install.map(|(lane, cell, root)| ftrace::install(lane, &cell, root));
            let _ = tx.send(catch_unwind(AssertUnwindSafe(|| (worker.run)())));
        });
    match spawned {
        Err(e) => Attempt::Err(JobError::new(
            "io",
            format!("cannot spawn watchdog thread: {e}"),
        )),
        Ok(_handle) => match rx.recv_timeout(deadline) {
            Ok(result) => fold(result),
            Err(_) => Attempt::Hung,
        },
    }
}

fn execute(job: &Arc<ExperimentJob>, ctx: &ExecCtx, tr: Option<&CellTrace>) -> JobReport {
    let started = Instant::now();
    if let Some(c) = ctx.cache {
        let lookup = tr.map(|t| t.span("cache-lookup"));
        let hit = c.lookup(&job.key);
        drop(lookup);
        if let Some(v) = hit {
            if let Some(t) = tr {
                t.instant("cache-hit", Vec::new());
            }
            return JobReport {
                label: job.label.clone(),
                outcome: JobOutcome::Cached(v),
                wall_ms: started.elapsed().as_secs_f64() * 1e3,
                attempts: 0,
                replayed: false,
                backoff_ms: 0.0,
            };
        }
        if let Some(t) = tr {
            t.instant("cache-miss", Vec::new());
        }
    }
    let supervised = ctx.isolate == IsolateMode::Process && job.child_args.is_some();
    let mut attempts = 0u32;
    let mut backoff_ms = 0.0f64;
    // Every failure class routes through the backoff policy: it decides
    // both whether another attempt happens and how long to wait first
    // (deterministic schedule — see `BackoffPolicy`). Structured errors
    // are final under the default policy, but that is the policy's
    // decision, not a special case here.
    let retry_after = |class: FailureClass, attempts: u32, backoff_ms: &mut f64| -> bool {
        match ctx.backoff.next_delay(class, attempts, ctx.retries) {
            Some(delay) => {
                if let Some(t) = tr {
                    t.instant(
                        "retry",
                        vec![
                            (
                                "class".to_owned(),
                                JsonValue::from(failure_class_name(class)),
                            ),
                            ("attempt".to_owned(), JsonValue::from(u64::from(attempts))),
                            (
                                "delay_ms".to_owned(),
                                JsonValue::F64(delay.as_secs_f64() * 1e3),
                            ),
                        ],
                    );
                }
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                *backoff_ms += delay.as_secs_f64() * 1e3;
                true
            }
            None => false,
        }
    };
    let outcome = loop {
        attempts += 1;
        match attempt(job, ctx, tr, attempts) {
            Attempt::Ok(v) => {
                if let Some(c) = ctx.cache {
                    let store = tr.map(|t| t.span("cache-store"));
                    let stored = c.store(&job.key, &v);
                    drop(store);
                    if let Err(e) = stored {
                        eprintln!("warning: cannot cache result of {}: {e}", job.label);
                    }
                }
                break JobOutcome::Ok(v);
            }
            Attempt::Err(e) => {
                if !retry_after(FailureClass::Structured, attempts, &mut backoff_ms) {
                    break JobOutcome::Errored {
                        category: e.category,
                        error: e.message,
                    };
                }
            }
            Attempt::Crashed(error) => {
                if !retry_after(FailureClass::Crash, attempts, &mut backoff_ms) {
                    if let Some(t) = tr {
                        t.instant(if supervised { "poisoned" } else { "crashed" }, Vec::new());
                    }
                    break if supervised {
                        JobOutcome::Poisoned {
                            error: format!("quarantined after {attempts} attempt(s): {error}"),
                        }
                    } else {
                        JobOutcome::Failed { error }
                    };
                }
            }
            Attempt::Hung => {
                if !retry_after(FailureClass::Hang, attempts, &mut backoff_ms) {
                    if let Some(t) = tr {
                        t.instant("timeout", Vec::new());
                    }
                    let ms = ctx.timeout.map_or(0, |t| t.as_millis());
                    break JobOutcome::TimedOut {
                        error: if supervised {
                            format!(
                                "no result within {ms} ms on any of {attempts} attempt(s); \
                                 child process(es) killed"
                            )
                        } else {
                            format!(
                                "no result within {ms} ms on any of {attempts} attempt(s); \
                                 attempt thread(s) abandoned"
                            )
                        },
                    };
                }
            }
        }
    };
    JobReport {
        label: job.label.clone(),
        outcome,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        attempts,
        replayed: false,
        backoff_ms,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(n: u64) -> Vec<ExperimentJob> {
        (0..n)
            .map(|i| {
                ExperimentJob::new(
                    format!("cell{i}"),
                    JobKey::new("trace-test").field("cell", i),
                    move || JsonValue::U64(i),
                )
            })
            .collect()
    }

    #[test]
    fn traced_run_records_cell_spans_and_gauges() {
        let rec = FlightRecorder::new();
        let report = Runner::new(RunnerConfig {
            workers: 2,
            tracer: Some(Arc::clone(&rec)),
            ..RunnerConfig::default()
        })
        .run(jobs(4));
        assert_eq!(report.ok_count(), 4);
        let events = rec.drain_sorted();
        let span_names: Vec<&str> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Span { .. }))
            .map(|e| e.name.as_str())
            .collect();
        assert!(span_names.contains(&"run"));
        for i in 0..4 {
            let cell = format!("{}cell{i}", ftrace::CELL_SPAN_PREFIX);
            assert!(span_names.contains(&cell.as_str()), "missing {cell}");
        }
        assert_eq!(span_names.iter().filter(|n| **n == "queue-wait").count(), 4);
        assert_eq!(span_names.iter().filter(|n| **n == "execute").count(), 4);
        // Every cell-scoped event carries its cell label, and the
        // execute spans parent under their cell span.
        let cells: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.name.starts_with(ftrace::CELL_SPAN_PREFIX))
            .collect();
        for exec in events.iter().filter(|e| e.name == "execute") {
            let parent = cells.iter().find(|c| c.id == exec.parent).unwrap();
            assert_eq!(parent.cell, exec.cell);
        }
        // Worker utilization gauges: one per worker lane.
        let utils: Vec<&TraceEvent> = events.iter().filter(|e| e.name == "utilization").collect();
        assert_eq!(utils.len(), 2);
        assert!(utils.iter().all(
            |u| matches!(u.kind, EventKind::Counter { value } if (0.0..=1.0).contains(&value))
        ));
        // Queue-depth samples landed too.
        assert!(events.iter().any(|e| e.name == "queue_depth"));
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn untraced_run_report_is_identical_to_traced() {
        // The recorder must observe, never perturb: job outcomes and
        // ordering are identical with and without a tracer attached.
        let traced = Runner::new(RunnerConfig {
            workers: 2,
            tracer: Some(FlightRecorder::new()),
            ..RunnerConfig::default()
        })
        .run(jobs(6));
        let untraced = Runner::new(RunnerConfig {
            workers: 2,
            ..RunnerConfig::default()
        })
        .run(jobs(6));
        let payloads = |r: &RunReport| -> Vec<JsonValue> { r.payloads().cloned().collect() };
        assert_eq!(payloads(&traced), payloads(&untraced));
        assert_eq!(traced.ok_count(), untraced.ok_count());
    }

    #[test]
    fn traced_failure_records_retry_markers() {
        let rec = FlightRecorder::new();
        let job = ExperimentJob::new(
            "boom",
            JobKey::new("trace-test").field("cell", "boom"),
            || panic!("kaboom"),
        );
        let report = Runner::new(RunnerConfig {
            workers: 1,
            retries: 1,
            tracer: Some(Arc::clone(&rec)),
            ..RunnerConfig::default()
        })
        .run(vec![job]);
        assert_eq!(report.failed_count(), 1);
        let events = rec.drain_sorted();
        assert_eq!(events.iter().filter(|e| e.name == "retry").count(), 1);
        assert!(events.iter().any(|e| e.name == "crashed"));
        assert_eq!(events.iter().filter(|e| e.name == "execute").count(), 2);
    }
}
