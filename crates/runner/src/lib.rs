#![warn(missing_docs)]

//! `cmpsim-runner` — the parallel experiment execution engine.
//!
//! Every figure/table of the study is a grid of *independent*
//! co-simulations (workload × CMP class × cache geometry). The paper's
//! own infrastructure farmed those cells out to emulator runs; this
//! crate is the software equivalent: a std-only work-stealing worker
//! pool that executes [`ExperimentJob`]s across `--jobs N` OS threads
//! with
//!
//! * a **content-addressed result cache** ([`ResultCache`]) keyed by a
//!   stable FNV-1a fingerprint of the job identity ([`JobKey`]:
//!   experiment, scale, seed, config fields, crate version), so warm
//!   re-runs skip finished cells,
//! * **fault isolation** — a panicking job is caught
//!   (`catch_unwind`), retried on a deterministic [`BackoffPolicy`]
//!   schedule, and reported as [`JobOutcome::Failed`] while the rest of
//!   the batch completes; with [`IsolateMode::Process`] each attempt
//!   runs in a supervised child process (see [`supervisor`]), so aborts
//!   and OOM kills are contained too and an unrecoverable cell is
//!   quarantined as [`JobOutcome::Poisoned`],
//! * **crash-safety** — an optional write-ahead [`journal`] records
//!   every job start and outcome (fsync'd, checksummed with the same
//!   [`record`] codec as the cache); a resumed run replays completed
//!   cells and re-enqueues in-flight ones, and a [`shutdown`] flag wired
//!   to SIGINT/SIGTERM drains the pool gracefully,
//! * **deterministic ordering** — per-job results land in submission
//!   order, so a `--jobs 8` run is byte-identical to `--jobs 1`,
//! * **telemetry** — [`RunReport::export_metrics`] /
//!   [`RunReport::export_spans`] feed the `cmpsim-telemetry` registry,
//!   and an optional live progress line tracks completed/cached/failed
//!   counts with an ETA.
//!
//! # Example
//!
//! ```
//! use cmpsim_runner::{ExperimentJob, JobKey, Runner, RunnerConfig};
//! use cmpsim_telemetry::JsonValue;
//!
//! let jobs = (0..4u64)
//!     .map(|i| {
//!         ExperimentJob::new(
//!             format!("cell{i}"),
//!             JobKey::new("demo").field("cell", i),
//!             move || JsonValue::U64(i * i),
//!         )
//!     })
//!     .collect();
//! let report = Runner::new(RunnerConfig {
//!     workers: 2,
//!     ..RunnerConfig::default()
//! })
//! .run(jobs);
//! assert_eq!(report.ok_count(), 4);
//! let squares: Vec<u64> = report.payloads().filter_map(|v| v.as_u64()).collect();
//! assert_eq!(squares, [0, 1, 4, 9]); // submission order, not completion order
//! ```

pub mod backoff;
pub mod cache;
pub mod hash;
pub mod journal;
pub mod pool;
pub mod record;
pub mod shard;
pub mod shutdown;
pub mod supervisor;

pub use backoff::{BackoffPolicy, FailureClass};
pub use cache::ResultCache;
pub use hash::{file_fingerprint, JobKey};
pub use journal::{
    fresh_run_id, process_nonce, JournalConfig, JournalReplay, ReplayedJob, RunJournal,
};
pub use pool::{
    ExperimentJob, IsolateMode, JobError, JobOutcome, JobReport, RunReport, Runner, RunnerConfig,
};
pub use shard::scoped_shards;
pub use shutdown::ShutdownFlag;
pub use supervisor::{
    child_trace_requested, emit_result, emit_trace, run_program, run_program_sabotaged,
    ChildAttempt, SupervisedAttempt, CHILD_ENTRY, CHILD_TRACE_ENV, RESULT_MARKER, TRACE_MARKER,
};
