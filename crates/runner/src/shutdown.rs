//! Graceful shutdown: SIGINT/SIGTERM drain the pool instead of
//! forfeiting the batch.
//!
//! [`install`] registers handlers (raw libc `signal(2)` — the crate
//! stays zero-dependency) that set a process-global [`ShutdownFlag`].
//! The worker pool polls the flag between jobs: in-flight cells finish
//! and are journalled, queued cells are reported as
//! [`JobOutcome::Skipped`](crate::JobOutcome) without starting, and the
//! caller prints the exact resume command. The first signal drains; the
//! handler then restores the default disposition, so a second signal
//! kills immediately (the fsync'd journal makes even that recoverable).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// A shared "stop starting new jobs" flag.
///
/// The pool accepts any flag (tests drive one directly); [`install`]
/// wires the process-global one to SIGINT/SIGTERM.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A fresh, unsignalled flag.
    pub fn new() -> Self {
        ShutdownFlag::default()
    }

    /// Requests a drain: no new jobs start after this.
    pub fn request(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether a drain has been requested.
    pub fn requested(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

static INSTALLED: OnceLock<ShutdownFlag> = OnceLock::new();

/// Registers SIGINT/SIGTERM handlers (once per process) and returns the
/// flag they set. Safe to call repeatedly; later calls return the same
/// flag. On non-Unix platforms this is a no-op flag that never trips.
pub fn install() -> ShutdownFlag {
    let flag = INSTALLED.get_or_init(ShutdownFlag::new).clone();
    imp::register();
    flag
}

#[cfg(unix)]
mod imp {
    use std::os::raw::c_int;
    use std::sync::atomic::{AtomicBool, Ordering};

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        // `signal(2)` from libc, declared directly: the handler installed
        // is a plain function pointer and the only work it does —
        // an atomic store and re-registration — is async-signal-safe.
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_sig: c_int) {
        if let Some(flag) = super::INSTALLED.get() {
            flag.0.store(true, Ordering::Release);
        }
        // One signal drains; the next one kills.
        unsafe {
            signal(SIGINT, SIG_DFL);
            signal(SIGTERM, SIG_DFL);
        }
    }

    static REGISTERED: AtomicBool = AtomicBool::new(false);

    pub(super) fn register() {
        if REGISTERED.swap(true, Ordering::AcqRel) {
            return;
        }
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn register() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_trips_once_requested() {
        let f = ShutdownFlag::new();
        assert!(!f.requested());
        f.request();
        assert!(f.requested());
        // Clones observe the same state.
        let g = f.clone();
        assert!(g.requested());
    }

    #[test]
    fn install_is_idempotent_and_returns_the_same_flag() {
        let a = install();
        let b = install();
        assert_eq!(a.requested(), b.requested());
        // NOTE: not raising a real signal here — that would race the
        // test harness; the end-to-end drain is covered by the
        // kill-and-resume integration test.
    }
}
