#![warn(missing_docs)]

//! DRAM, bandwidth, and timing models for `cmpsim`.
//!
//! The cache simulator produces *counts* (hits and misses per level); this
//! crate turns counts into *time*:
//!
//! * [`DramConfig`] — a DDR-era DRAM latency model (row hits vs row
//!   conflicts) that yields the average memory latency in bus cycles,
//! * [`MachineConfig`] / [`RunCounts`] — an analytic CPI model with a
//!   finite-bandwidth memory bus and an M/M/1-style queueing correction,
//!   solved to a fixed point,
//! * [`BandwidthMeter`] — sliding-window bus utilization measurement.
//!
//! The timing model is what reproduces the paper's Table 2 IPC column and
//! the Figure 8 prefetching study: prefetching converts exposed miss
//! latency into (cheaper) LLC hits *and* extra bus traffic, so its benefit
//! saturates exactly when demand traffic already fills the bus — which is
//! why the parallel versions of SNP and MDS gain less than their serial
//! versions (§4.4).

pub mod bandwidth;
pub mod dram;
pub mod timing;

pub use bandwidth::BandwidthMeter;
pub use dram::DramConfig;
pub use timing::{MachineConfig, RunCounts, TimingBreakdown};
