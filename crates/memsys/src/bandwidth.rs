//! Sliding-window bus-bandwidth measurement.

use std::collections::VecDeque;

/// Measures bytes transferred per cycle over a sliding window of bus
/// activity. Dragonhead's host samples cache counters every 500 µs; this
/// meter provides the matching bandwidth series for a sampling interval.
#[derive(Debug, Clone)]
pub struct BandwidthMeter {
    window_cycles: u64,
    events: VecDeque<(u64, u64)>, // (cycle, bytes)
    bytes_in_window: u64,
    total_bytes: u64,
    last_cycle: u64,
}

impl BandwidthMeter {
    /// Creates a meter with the given window length in bus cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles` is zero.
    pub fn new(window_cycles: u64) -> Self {
        assert!(window_cycles > 0, "window must be nonzero");
        BandwidthMeter {
            window_cycles,
            events: VecDeque::new(),
            bytes_in_window: 0,
            total_bytes: 0,
            last_cycle: 0,
        }
    }

    /// Records a transfer of `bytes` at `cycle`. Cycles must be
    /// non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `cycle` goes backwards.
    pub fn record(&mut self, cycle: u64, bytes: u64) {
        debug_assert!(cycle >= self.last_cycle, "cycles must be monotonic");
        self.last_cycle = cycle;
        self.events.push_back((cycle, bytes));
        self.bytes_in_window += bytes;
        self.total_bytes += bytes;
        let horizon = cycle.saturating_sub(self.window_cycles);
        while let Some(&(c, b)) = self.events.front() {
            if c < horizon {
                self.events.pop_front();
                self.bytes_in_window -= b;
            } else {
                break;
            }
        }
    }

    /// Bytes per cycle over the current window.
    pub fn window_rate(&self) -> f64 {
        self.bytes_in_window as f64 / self.window_cycles as f64
    }

    /// Bytes per cycle averaged over the whole run.
    pub fn lifetime_rate(&self) -> f64 {
        if self.last_cycle == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.last_cycle as f64
        }
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_stream_rate() {
        let mut m = BandwidthMeter::new(100);
        for c in 1..=100 {
            m.record(c, 64);
        }
        assert!((m.window_rate() - 64.0).abs() < 1.0);
    }

    #[test]
    fn old_events_age_out() {
        let mut m = BandwidthMeter::new(10);
        m.record(1, 1000);
        m.record(100, 64);
        assert!(m.window_rate() < 10.0, "burst must have aged out");
        assert_eq!(m.total_bytes(), 1064);
    }

    #[test]
    fn lifetime_rate_covers_all() {
        let mut m = BandwidthMeter::new(10);
        m.record(50, 100);
        m.record(100, 100);
        assert!((m.lifetime_rate() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_meter_rates_are_zero() {
        let m = BandwidthMeter::new(10);
        assert_eq!(m.window_rate(), 0.0);
        assert_eq!(m.lifetime_rate(), 0.0);
    }
}
