//! Average-latency DRAM model.

/// Timing parameters of a DDR-era SDRAM part, in memory-bus cycles.
///
/// The model computes the average access latency from the row-buffer hit
/// rate: a row hit pays CAS only; a row miss pays precharge + activate +
/// CAS. This is deliberately an *average* model — the co-simulation is
/// count-driven, matching the paper's methodology where Dragonhead counts
/// events and latency enters analytically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Column access latency (tCAS/tCL), cycles.
    pub t_cas: f64,
    /// Row-to-column delay (tRCD), cycles.
    pub t_rcd: f64,
    /// Row precharge (tRP), cycles.
    pub t_rp: f64,
    /// Data burst transfer time for one cache line, cycles.
    pub t_burst: f64,
    /// Fraction of accesses hitting an open row, in [0, 1].
    pub row_hit_rate: f64,
    /// Fixed controller + interconnect overhead, cycles.
    pub overhead: f64,
}

impl DramConfig {
    /// DDR2-533-era part behind a 2007 front-side bus, with a typical
    /// streaming row-hit rate.
    pub fn ddr2_533() -> Self {
        DramConfig {
            t_cas: 4.0,
            t_rcd: 4.0,
            t_rp: 4.0,
            t_burst: 4.0,
            row_hit_rate: 0.6,
            overhead: 20.0,
        }
    }

    /// Average latency of one line fill, in memory-bus cycles.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `row_hit_rate` is outside [0, 1].
    pub fn avg_latency(&self) -> f64 {
        debug_assert!((0.0..=1.0).contains(&self.row_hit_rate));
        let hit = self.t_cas + self.t_burst;
        let miss = self.t_rp + self.t_rcd + self.t_cas + self.t_burst;
        self.overhead + self.row_hit_rate * hit + (1.0 - self.row_hit_rate) * miss
    }

    /// Average latency converted to CPU cycles given the CPU:memory clock
    /// ratio (e.g. 3 GHz CPU over 533 MHz bus ≈ 5.6).
    pub fn avg_latency_cpu_cycles(&self, clock_ratio: f64) -> f64 {
        self.avg_latency() * clock_ratio
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr2_533()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_is_cheaper_than_conflict() {
        let mut all_hit = DramConfig::ddr2_533();
        all_hit.row_hit_rate = 1.0;
        let mut all_miss = DramConfig::ddr2_533();
        all_miss.row_hit_rate = 0.0;
        assert!(all_hit.avg_latency() < all_miss.avg_latency());
    }

    #[test]
    fn latency_interpolates_with_hit_rate() {
        let mut lo = DramConfig::ddr2_533();
        lo.row_hit_rate = 0.0;
        let mut mid = DramConfig::ddr2_533();
        mid.row_hit_rate = 0.5;
        let mut hi = DramConfig::ddr2_533();
        hi.row_hit_rate = 1.0;
        let expect = (lo.avg_latency() + hi.avg_latency()) / 2.0;
        assert!((mid.avg_latency() - expect).abs() < 1e-9);
    }

    #[test]
    fn cpu_cycle_conversion_scales() {
        let d = DramConfig::ddr2_533();
        assert!((d.avg_latency_cpu_cycles(5.0) - 5.0 * d.avg_latency()).abs() < 1e-9);
    }

    #[test]
    fn default_latency_is_plausible() {
        // A 2007 memory access is roughly 50-400 CPU cycles at 3 GHz.
        let lat = DramConfig::default().avg_latency_cpu_cycles(5.6);
        assert!((50.0..400.0).contains(&lat), "latency {lat}");
    }
}
