//! Analytic CPI model with finite memory bandwidth.

use crate::dram::DramConfig;

/// Parameters of the modeled machine.
///
/// Latencies are in CPU cycles. Bandwidth is in bytes per CPU cycle for
/// the whole socket (shared by all threads), which is what creates the
/// parallel-vs-serial prefetching asymmetry of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Base CPI of the core on non-memory work and L1 hits.
    pub cpi_exec: f64,
    /// L2 hit latency (exposed portion), cycles.
    pub lat_l2: f64,
    /// Shared-LLC hit latency (exposed portion), cycles.
    pub lat_llc: f64,
    /// Average memory latency at zero load, cycles.
    pub lat_mem: f64,
    /// Socket memory bandwidth, bytes per CPU cycle.
    pub bw_bytes_per_cycle: f64,
    /// Cache line (bus transfer) size in bytes.
    pub line_bytes: u64,
    /// Memory-level-parallelism factor in (0, 1]: the fraction of miss
    /// latency that is actually exposed (1.0 = fully serialized misses).
    pub mlp_exposure: f64,
}

impl MachineConfig {
    /// A 3 GHz Xeon-class 2007 machine: DDR2 memory behind a 800 MT/s
    /// front-side bus (~6.4 GB/s ≈ 2.1 B/cycle at 3 GHz). The base CPI
    /// and exposure factor are calibrated so Table 2's IPC range
    /// (0.06–1.08) and Figure 8's ≤ 33 % prefetch gains are reproduced:
    /// the NetBurst-era core sustains roughly one instruction per cycle
    /// on cache-resident code, and its out-of-order window hides a bit
    /// over half of each miss's latency.
    pub fn xeon_2007() -> Self {
        MachineConfig {
            cpi_exec: 0.9,
            lat_l2: 14.0,
            lat_llc: 40.0,
            lat_mem: DramConfig::ddr2_533().avg_latency_cpu_cycles(5.6),
            bw_bytes_per_cycle: 2.1,
            line_bytes: 64,
            mlp_exposure: 0.45,
        }
    }

    /// Evaluates the model for one run, solving the bandwidth fixed point.
    ///
    /// The memory latency under load is `lat_mem * (1 + u/(1-u))` with
    /// `u` the bus utilization, which itself depends on total run time.
    /// Writing total cycles as `C = base + stalls(u(C))`, the right-hand
    /// side is strictly decreasing in `C` (more time means lower
    /// utilization means shorter latency), so the fixed point is unique
    /// and found by bisection.
    pub fn evaluate(&self, c: &RunCounts) -> TimingBreakdown {
        let threads = c.threads.max(1) as f64;
        let inst_per_thread = c.instructions as f64 / threads;
        let base = inst_per_thread * self.cpi_exec;

        // Per-thread exposed stall events.
        let l2_stall = c.l2_hits as f64 / threads * self.lat_l2 * self.mlp_exposure;
        let llc_stall = c.llc_hits as f64 / threads * self.lat_llc * self.mlp_exposure;
        let mem_events_per_thread = c.mem_fills as f64 / threads;

        // Total bus traffic (demand fills + prefetch fills + writebacks).
        let traffic_bytes =
            (c.mem_fills + c.prefetch_fills + c.mem_writebacks) as f64 * self.line_bytes as f64;

        let util_at =
            |cycles: f64| -> f64 { (traffic_bytes / (self.bw_bytes_per_cycle * cycles)).min(0.98) };
        let rhs = |cycles: f64| -> f64 {
            let u = util_at(cycles);
            let queue_factor = 1.0 + u / (1.0 - u);
            base + l2_stall
                + llc_stall
                + mem_events_per_thread * self.lat_mem * queue_factor * self.mlp_exposure
        };

        // Bracket the root: zero-load cycles below, saturated-bus cycles
        // above (rhs(lo) >= lo and rhs(hi) <= hi by monotonicity).
        let zero_load =
            base + l2_stall + llc_stall + mem_events_per_thread * self.lat_mem * self.mlp_exposure;
        let mut lo = zero_load.max(1.0);
        let mut hi = rhs(lo).max(lo);
        // Expand until hi is a true upper bound.
        for _ in 0..64 {
            if rhs(hi) <= hi {
                break;
            }
            hi *= 2.0;
        }
        for _ in 0..96 {
            let mid = 0.5 * (lo + hi);
            if rhs(mid) > mid {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let cycles = 0.5 * (lo + hi);
        let utilization = util_at(cycles);
        let lat_mem_eff = self.lat_mem * (1.0 + utilization / (1.0 - utilization));

        TimingBreakdown {
            cycles,
            ipc: inst_per_thread / cycles,
            utilization,
            lat_mem_effective: lat_mem_eff,
            stall_cycles: cycles - base,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::xeon_2007()
    }
}

/// Event counts from one simulated run (whole workload, all threads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCounts {
    /// Total instructions retired.
    pub instructions: u64,
    /// Accesses satisfied by the private L2 (missed L1).
    pub l2_hits: u64,
    /// Accesses satisfied by the shared LLC (missed L2).
    pub llc_hits: u64,
    /// Demand fills from memory (LLC misses).
    pub mem_fills: u64,
    /// Prefetch fills from memory (bandwidth, but no exposed latency).
    pub prefetch_fills: u64,
    /// Dirty writebacks to memory.
    pub mem_writebacks: u64,
    /// Number of threads sharing the socket.
    pub threads: u32,
}

/// Output of [`MachineConfig::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingBreakdown {
    /// Wall-clock cycles for the run (per-thread critical path).
    pub cycles: f64,
    /// Instructions per cycle per thread.
    pub ipc: f64,
    /// Memory-bus utilization in [0, 0.98].
    pub utilization: f64,
    /// Memory latency under load, cycles.
    pub lat_mem_effective: f64,
    /// Cycles spent stalled on the memory hierarchy (per thread).
    pub stall_cycles: f64,
}

impl TimingBreakdown {
    /// Speedup of `self` relative to a `baseline` run of the same work.
    pub fn speedup_over(&self, baseline: &TimingBreakdown) -> f64 {
        baseline.cycles / self.cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(instructions: u64, mem_fills: u64, threads: u32) -> RunCounts {
        RunCounts {
            instructions,
            mem_fills,
            threads,
            ..Default::default()
        }
    }

    #[test]
    fn no_misses_gives_base_cpi() {
        let m = MachineConfig::xeon_2007();
        let t = m.evaluate(&counts(1_000_000, 0, 1));
        assert!((t.ipc - 1.0 / m.cpi_exec).abs() < 1e-6);
        assert_eq!(t.stall_cycles, 0.0);
    }

    #[test]
    fn more_misses_lower_ipc() {
        let m = MachineConfig::xeon_2007();
        let lo = m.evaluate(&counts(1_000_000, 1_000, 1));
        let hi = m.evaluate(&counts(1_000_000, 50_000, 1));
        assert!(hi.ipc < lo.ipc);
        assert!(hi.utilization >= lo.utilization);
    }

    #[test]
    fn table2_ipc_range_reproduced() {
        // MDS-like: ~19 LLC misses per 1000 instructions -> IPC far below
        // PLSA-like: ~0.2 misses per 1000 instructions.
        let m = MachineConfig::xeon_2007();
        let mds = m.evaluate(&counts(1_000_000, 19_000, 1));
        let plsa = m.evaluate(&counts(1_000_000, 200, 1));
        assert!(mds.ipc < 0.4, "MDS-like IPC {}", mds.ipc);
        assert!(plsa.ipc > 1.0, "PLSA-like IPC {}", plsa.ipc);
    }

    #[test]
    fn bandwidth_contention_grows_with_threads() {
        let m = MachineConfig::xeon_2007();
        // Same per-thread behavior, 16x the traffic.
        let serial = m.evaluate(&counts(1_000_000, 20_000, 1));
        let parallel = m.evaluate(&counts(16_000_000, 320_000, 16));
        assert!(parallel.utilization > serial.utilization);
        assert!(parallel.lat_mem_effective > serial.lat_mem_effective);
    }

    #[test]
    fn prefetch_converts_misses_to_hits_and_speeds_up() {
        let m = MachineConfig::xeon_2007();
        let off = m.evaluate(&RunCounts {
            instructions: 1_000_000,
            mem_fills: 20_000,
            threads: 1,
            ..Default::default()
        });
        // Prefetching covers 80% of misses; covered lines become LLC hits
        // and the prefetches themselves become bus traffic.
        let on = m.evaluate(&RunCounts {
            instructions: 1_000_000,
            llc_hits: 16_000,
            mem_fills: 4_000,
            prefetch_fills: 18_000,
            threads: 1,
            ..Default::default()
        });
        let speedup = on.speedup_over(&off);
        assert!(speedup > 1.1, "prefetch speedup {speedup}");
    }

    #[test]
    fn prefetch_benefit_shrinks_when_bus_saturated() {
        let m = MachineConfig::xeon_2007();
        // Serial: plenty of headroom.
        let s_off = m.evaluate(&counts(1_000_000, 30_000, 1));
        let s_on = m.evaluate(&RunCounts {
            instructions: 1_000_000,
            llc_hits: 24_000,
            mem_fills: 6_000,
            prefetch_fills: 27_000,
            threads: 1,
            ..Default::default()
        });
        // Parallel 16 threads: same per-thread profile, shared bus.
        let p_off = m.evaluate(&counts(16_000_000, 480_000, 16));
        let p_on = m.evaluate(&RunCounts {
            instructions: 16_000_000,
            llc_hits: 384_000,
            mem_fills: 96_000,
            prefetch_fills: 432_000,
            threads: 16,
            ..Default::default()
        });
        let serial_gain = s_on.speedup_over(&s_off);
        let parallel_gain = p_on.speedup_over(&p_off);
        assert!(
            parallel_gain < serial_gain,
            "saturated bus must shrink prefetch gain: serial {serial_gain}, parallel {parallel_gain}"
        );
    }

    #[test]
    fn utilization_never_exceeds_cap() {
        let m = MachineConfig::xeon_2007();
        let t = m.evaluate(&counts(1_000, 1_000_000, 32));
        assert!(t.utilization <= 0.98);
        assert!(t.cycles.is_finite());
    }

    #[test]
    fn speedup_is_symmetric_identity() {
        let m = MachineConfig::xeon_2007();
        let t = m.evaluate(&counts(1_000_000, 100, 1));
        assert!((t.speedup_over(&t) - 1.0).abs() < 1e-12);
    }
}
