//! The virtual platform: workload kernels over coherent private caches,
//! producing the FSB transaction stream.

use crate::dex::{DexScheduler, SliceDecision};
use cmpsim_cache::{CacheStats, CoherentCores, HierarchyConfig};
use cmpsim_trace::{
    Addr, FsbKind, FsbTransaction, MemRef, Message, MessageCodec, Pcg32, TraceSink, Tracer,
};
use cmpsim_workloads::{ThreadKernel, Workload};

/// A consumer of front-side-bus transactions (Dragonhead, a trace file
/// writer, a test counter, ...).
pub trait FsbListener {
    /// Observes one bus transaction.
    fn transaction(&mut self, txn: &FsbTransaction);
}

impl<L: FsbListener + ?Sized> FsbListener for &mut L {
    #[inline]
    fn transaction(&mut self, txn: &FsbTransaction) {
        (**self).transaction(txn);
    }
}

/// A listener that only counts, for tests and examples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingListener {
    /// Data transactions (fills + writebacks) seen.
    pub data_transactions: u64,
    /// Message-window transactions seen.
    pub message_transactions: u64,
}

impl FsbListener for CountingListener {
    fn transaction(&mut self, txn: &FsbTransaction) {
        if txn.is_message() {
            self.message_transactions += 1;
        } else {
            self.data_transactions += 1;
        }
    }
}

/// Host/OS interference model: when enabled, the platform emits bursts of
/// non-workload bus traffic *outside* the start/stop message window at
/// every slice switch — the accesses a real co-simulation host (SoftSDV
/// itself plus the host OS) puts on the bus, which Dragonhead must
/// exclude (§3.3: "the SoftSDV code and the host OS will also execute
/// during the simulation, and by restricting the emulation to the window
/// between start and stop, these accesses are excluded").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostNoiseConfig {
    /// Bus transactions injected per slice switch.
    pub transactions_per_switch: u32,
}

/// How workload references are filtered before reaching the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterMode {
    /// One *physical* cache stack shared by every virtual core — the
    /// paper's actual measurement setup: DEX time-slices all virtual
    /// cores onto one physical processor, so Dragonhead observes the FSB
    /// behind that single processor's caches, with slice switches
    /// naturally thrashing them. This is the default because it is what
    /// produced the paper's figures.
    #[default]
    SharedPhysical,
    /// A private stack per virtual core with MESI-style snooping — the
    /// memory system a real N-core CMP would have. Used by the
    /// filter-fidelity ablation.
    PerCore,
}

/// Platform configuration.
#[derive(Debug, Clone, Copy)]
pub struct PlatformConfig {
    /// Number of virtual cores (= workload threads).
    pub cores: usize,
    /// Cache stack geometry (one stack total or one per core, per
    /// `filter_mode`).
    pub hierarchy: HierarchyConfig,
    /// Physical-cache modeling mode.
    pub filter_mode: FilterMode,
    /// Kernel steps executed per DEX time slice.
    pub quantum_steps: usize,
    /// Instructions between counter messages (instructions-retired and
    /// cycles-completed), the paper's instruction/time synchronization.
    pub counter_period: u64,
    /// Optional host/OS interference traffic.
    pub host_noise: Option<HostNoiseConfig>,
}

impl PlatformConfig {
    /// A platform with `cores` virtual cores and default settings: the
    /// CMP per-core stack, 4-step quanta, counters every 100 k
    /// instructions, no host noise.
    pub fn new(cores: usize) -> Self {
        PlatformConfig {
            cores,
            hierarchy: HierarchyConfig::cmp_core(),
            filter_mode: FilterMode::default(),
            quantum_steps: 4,
            counter_period: 100_000,
            host_noise: None,
        }
    }

    /// Selects the physical-cache modeling mode.
    pub fn with_filter_mode(mut self, mode: FilterMode) -> Self {
        self.filter_mode = mode;
        self
    }

    /// Replaces the private hierarchy.
    pub fn with_hierarchy(mut self, h: HierarchyConfig) -> Self {
        self.hierarchy = h;
        self
    }

    /// Enables host-noise injection.
    pub fn with_host_noise(mut self, n: HostNoiseConfig) -> Self {
        self.host_noise = Some(n);
        self
    }
}

/// Per-core execution summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreSummary {
    /// Instructions retired by this virtual core.
    pub instructions: u64,
    /// Memory instructions (loads + stores).
    pub memory_instructions: u64,
    /// Loads.
    pub loads: u64,
    /// Time slices this core received.
    pub slices: u64,
}

/// Whole-run summary returned by [`VirtualPlatform::run`].
#[derive(Debug, Clone, Default)]
pub struct RunSummary {
    /// Total instructions retired across all cores.
    pub instructions: u64,
    /// Total memory instructions.
    pub memory_instructions: u64,
    /// Total loads.
    pub loads: u64,
    /// Total stores.
    pub stores: u64,
    /// Final platform cycle count (functional time domain: one cycle per
    /// instruction).
    pub cycles: u64,
    /// Per-core breakdown.
    pub per_core: Vec<CoreSummary>,
    /// Merged private-L1 counters.
    pub l1: CacheStats,
    /// Merged private-L2 counters.
    pub l2: CacheStats,
    /// Bus data transactions emitted (LLC demand traffic).
    pub bus_transactions: u64,
}

impl RunSummary {
    /// Fraction of instructions that reference memory.
    pub fn memory_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.memory_instructions as f64 / self.instructions as f64
        }
    }

    /// Exports the platform-side counters into `reg` as labeled series:
    /// run totals, private-cache counters (`level` label), and the
    /// per-core retirement breakdown (`core` label).
    pub fn export_metrics(&self, reg: &mut cmpsim_telemetry::MetricRegistry) {
        use cmpsim_telemetry::Labels;
        let none = Labels::none();
        reg.count("instructions", &none, self.instructions);
        reg.count("memory_instructions", &none, self.memory_instructions);
        reg.count("loads", &none, self.loads);
        reg.count("stores", &none, self.stores);
        reg.count("cycles", &none, self.cycles);
        reg.count("bus_transactions", &none, self.bus_transactions);
        for (level, stats) in [("l1", &self.l1), ("l2", &self.l2)] {
            let l = Labels::none().with("level", level);
            reg.count("private_accesses", &l, stats.accesses);
            reg.count("private_hits", &l, stats.hits);
            reg.count("private_misses", &l, stats.misses);
            reg.count("private_writebacks", &l, stats.writebacks);
        }
        for (i, c) in self.per_core.iter().enumerate() {
            let l = Labels::none().with("core", i.to_string());
            reg.count("core_instructions", &l, c.instructions);
            reg.count("core_memory_instructions", &l, c.memory_instructions);
            reg.count("core_loads", &l, c.loads);
            reg.count("core_slices", &l, c.slices);
        }
    }
}

/// The virtual platform: N virtual cores, their coherent private caches,
/// and the message-annotated FSB stream.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct VirtualPlatform {
    cfg: PlatformConfig,
    kernels: Vec<Box<dyn ThreadKernel>>,
    cores: CoherentCores,
    scheduler: DexScheduler,
    cycle: u64,
    per_core: Vec<CoreSummary>,
    noise_rng: Pcg32,
    bus_transactions: u64,
}

impl VirtualPlatform {
    /// Builds a platform running `workload` on `cfg.cores` virtual cores.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores == 0`.
    pub fn new(cfg: PlatformConfig, workload: &dyn Workload) -> Self {
        assert!(cfg.cores > 0, "at least one core");
        let kernels = workload.make_threads(cfg.cores);
        let stacks = match cfg.filter_mode {
            FilterMode::SharedPhysical => 1,
            FilterMode::PerCore => cfg.cores,
        };
        VirtualPlatform {
            kernels,
            cores: CoherentCores::new(stacks, cfg.hierarchy),
            scheduler: DexScheduler::new(cfg.cores),
            cycle: 0,
            per_core: vec![CoreSummary::default(); cfg.cores],
            noise_rng: Pcg32::seed(0x4057_0150),
            bus_transactions: 0,
            cfg,
        }
    }

    /// The current platform cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Runs the workload to completion, streaming every bus transaction
    /// (data + messages) to `listener`, and returns the run summary.
    pub fn run<L: FsbListener>(&mut self, listener: &mut L) -> RunSummary {
        self.emit_message(listener, Message::Start);
        let mut last_counter_emit = 0u64;
        let mut current_core = u32::MAX;
        loop {
            match self.scheduler.next_slice() {
                SliceDecision::AllDone => break,
                SliceDecision::Run(core) => {
                    // Host/OS interference between slices happens outside
                    // the start/stop window.
                    if self.cfg.host_noise.is_some() && current_core != u32::MAX {
                        self.emit_message(listener, Message::Stop);
                        self.emit_host_noise(listener);
                        self.emit_message(listener, Message::Start);
                    }
                    if core != current_core {
                        self.emit_message(listener, Message::CoreId(core));
                        current_core = core;
                    }
                    let live = self.run_slice(core, listener);
                    if !live {
                        self.scheduler.retire(core);
                    }
                    let total = self.total_instructions();
                    if total - last_counter_emit >= self.cfg.counter_period {
                        last_counter_emit = total;
                        self.emit_message(listener, Message::InstructionsRetired(total));
                        self.emit_message(listener, Message::CyclesCompleted(self.cycle));
                    }
                }
            }
        }
        let total = self.total_instructions();
        self.emit_message(listener, Message::InstructionsRetired(total));
        self.emit_message(listener, Message::CyclesCompleted(self.cycle));
        self.emit_message(listener, Message::Stop);
        self.summary()
    }

    /// Executes one time slice (quantum_steps kernel steps) on `core`.
    /// Returns whether the kernel still has work.
    fn run_slice<L: FsbListener>(&mut self, core: u32, listener: &mut L) -> bool {
        let line_size = self.cores.line_size();
        let mut live = true;
        self.per_core[core as usize].slices += 1;
        let stack = match self.cfg.filter_mode {
            FilterMode::SharedPhysical => 0,
            FilterMode::PerCore => core as usize,
        };
        for _ in 0..self.cfg.quantum_steps {
            let mut sink = PlatformSink {
                cores: &mut self.cores,
                listener,
                stack,
                cycle: &mut self.cycle,
                line_size,
                bus_transactions: &mut self.bus_transactions,
            };
            let mut tracer: Tracer<&mut dyn TraceSink> = Tracer::new(&mut sink);
            live = self.kernels[core as usize].step(&mut tracer);
            let cs = &mut self.per_core[core as usize];
            cs.instructions += tracer.instructions();
            cs.memory_instructions += tracer.memory_instructions();
            cs.loads += tracer.loads();
            // Advance the functional clock past this slice's work.
            self.cycle += tracer
                .instructions()
                .saturating_sub(tracer.memory_instructions());
            if !live {
                break;
            }
        }
        live
    }

    fn total_instructions(&self) -> u64 {
        self.per_core.iter().map(|c| c.instructions).sum()
    }

    fn emit_message<L: FsbListener>(&mut self, listener: &mut L, msg: Message) {
        for txn in MessageCodec::encode(msg, self.cycle) {
            listener.transaction(&txn);
        }
    }

    /// Injects host/OS traffic at low physical addresses (below any
    /// workload region).
    fn emit_host_noise<L: FsbListener>(&mut self, listener: &mut L) {
        let Some(noise) = self.cfg.host_noise else {
            return;
        };
        for _ in 0..noise.transactions_per_switch {
            let addr = Addr::new(self.noise_rng.below(0x100_0000) & !63);
            let kind = if self.noise_rng.chance(0.3) {
                FsbKind::WriteLine
            } else {
                FsbKind::ReadLine
            };
            listener.transaction(&FsbTransaction::new(self.cycle, kind, addr));
        }
    }

    fn summary(&self) -> RunSummary {
        let mut s = RunSummary {
            instructions: self.total_instructions(),
            memory_instructions: self.per_core.iter().map(|c| c.memory_instructions).sum(),
            loads: self.per_core.iter().map(|c| c.loads).sum(),
            stores: 0,
            cycles: self.cycle,
            per_core: self.per_core.clone(),
            l1: self.cores.l1_stats_merged(),
            l2: self.cores.l2_stats_merged(),
            bus_transactions: self.bus_transactions,
        };
        s.stores = s.memory_instructions - s.loads;
        s
    }
}

/// The per-slice trace sink: feeds kernel references through the current
/// core's private stack and forwards resulting bus events (tagged with
/// the *originating* core — snoop flushes come from other cores) to the
/// listener.
struct PlatformSink<'a, L> {
    cores: &'a mut CoherentCores,
    listener: &'a mut L,
    /// Which physical stack filters this slice's references (always 0 in
    /// shared-physical mode).
    stack: usize,
    cycle: &'a mut u64,
    line_size: u64,
    bus_transactions: &'a mut u64,
}

impl<L: FsbListener> TraceSink for PlatformSink<'_, L> {
    #[inline]
    fn record(&mut self, r: MemRef) {
        *self.cycle += 1;
        let cycle = *self.cycle;
        let line_size = self.line_size;
        let listener = &mut *self.listener;
        let bus = &mut *self.bus_transactions;
        self.cores.access(self.stack, r, |_origin, ev| {
            *bus += 1;
            listener.transaction(&FsbTransaction::new(
                cycle,
                ev.kind,
                Addr::new(ev.line * line_size),
            ));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::MessageDecodeError;
    use cmpsim_workloads::{Scale, WorkloadId};

    fn run_workload(id: WorkloadId, cores: usize) -> (RunSummary, CountingListener) {
        let wl = id.build(Scale::tiny(), 1);
        let mut p = VirtualPlatform::new(PlatformConfig::new(cores), wl.as_ref());
        let mut l = CountingListener::default();
        let s = p.run(&mut l);
        (s, l)
    }

    #[test]
    fn plsa_runs_on_four_cores() {
        let (s, l) = run_workload(WorkloadId::Plsa, 4);
        assert!(s.instructions > 0);
        assert_eq!(s.per_core.len(), 4);
        assert!(s.per_core.iter().all(|c| c.instructions > 0));
        assert!(l.data_transactions > 0);
        assert!(
            l.message_transactions >= 4,
            "start, core-ids, counters, stop"
        );
    }

    #[test]
    fn per_core_mode_keeps_private_data_on_core() {
        // SHOT's frame buffers are per-thread private. With one shared
        // physical stack (the paper's rig) slice switches thrash them
        // onto the bus; with true per-core caches they stay resident,
        // so the per-core platform must emit *fewer* bus transactions.
        // L2 sized between one thread's frame buffers (~10 KB at tiny
        // scale) and all four threads' combined (~40 KB): per-core stacks
        // hold their thread's buffers; the shared physical stack cannot
        // hold all four at once.
        let hierarchy = HierarchyConfig {
            l1: cmpsim_cache::CacheConfig::lru(1 << 10, 64, 8).unwrap(),
            l2: Some(cmpsim_cache::CacheConfig::lru(16 << 10, 64, 8).unwrap()),
        };
        let run_mode = |mode: FilterMode| {
            let wl = WorkloadId::Shot.build(Scale::tiny(), 3);
            let cfg = PlatformConfig::new(4)
                .with_filter_mode(mode)
                .with_hierarchy(hierarchy);
            let mut p = VirtualPlatform::new(cfg, wl.as_ref());
            let mut l = CountingListener::default();
            let s = p.run(&mut l);
            (s.bus_transactions, s.instructions)
        };
        let (shared_bus, shared_instr) = run_mode(FilterMode::SharedPhysical);
        let (percore_bus, percore_instr) = run_mode(FilterMode::PerCore);
        assert_eq!(shared_instr, percore_instr, "same work either way");
        assert!(
            percore_bus < shared_bus,
            "per-core caches should filter better: {percore_bus} vs {shared_bus}"
        );
    }

    #[test]
    fn per_core_mode_emits_coherence_traffic_for_shared_writes() {
        // MDS threads share the score vector; per-core caches must
        // generate ownership/invalidation traffic for it, so the run
        // still completes with consistent counters.
        let wl = WorkloadId::Mds.build(Scale::tiny(), 4);
        let cfg = PlatformConfig::new(4).with_filter_mode(FilterMode::PerCore);
        let mut p = VirtualPlatform::new(cfg, wl.as_ref());
        let mut l = CountingListener::default();
        let s = p.run(&mut l);
        assert!(s.instructions > 0);
        assert!(l.data_transactions > 0);
        // Upgrades across cores show up in merged L1 stats.
        assert!(
            s.l1.upgrades + s.l1.invalidations > 0,
            "shared writes must produce coherence activity"
        );
    }

    #[test]
    fn l1_filters_most_traffic() {
        let (s, _) = run_workload(WorkloadId::Plsa, 2);
        assert!(s.l1.accesses > 0);
        // The bus must see far fewer transactions than there were memory
        // instructions — that's the whole point of the private stack.
        assert!(
            s.bus_transactions * 5 < s.memory_instructions,
            "bus {} vs mem {}",
            s.bus_transactions,
            s.memory_instructions
        );
    }

    #[test]
    fn message_stream_is_decodable() {
        let wl = WorkloadId::Viewtype.build(Scale::tiny(), 2);
        let mut p = VirtualPlatform::new(PlatformConfig::new(2), wl.as_ref());

        #[derive(Default)]
        struct Decoder {
            codec: MessageCodec,
            messages: Vec<Message>,
            errors: Vec<MessageDecodeError>,
        }
        impl FsbListener for Decoder {
            fn transaction(&mut self, txn: &FsbTransaction) {
                if txn.is_message() {
                    match self.codec.decode(txn) {
                        Ok(Some(m)) => self.messages.push(m),
                        Ok(None) => {}
                        Err(e) => self.errors.push(e),
                    }
                }
            }
        }
        let mut d = Decoder::default();
        let s = p.run(&mut d);
        assert!(d.errors.is_empty(), "{:?}", d.errors);
        assert_eq!(d.messages.first(), Some(&Message::Start));
        assert_eq!(d.messages.last(), Some(&Message::Stop));
        assert!(d.messages.contains(&Message::CoreId(0)));
        assert!(d.messages.contains(&Message::CoreId(1)));
        // The final instructions-retired message matches the summary.
        let final_count = d
            .messages
            .iter()
            .rev()
            .find_map(|m| match m {
                Message::InstructionsRetired(v) => Some(*v),
                _ => None,
            })
            .expect("counter message present");
        assert_eq!(final_count, s.instructions);
    }

    #[test]
    fn cycles_are_monotonic_on_bus() {
        let wl = WorkloadId::Plsa.build(Scale::tiny(), 3);
        let mut p = VirtualPlatform::new(PlatformConfig::new(2), wl.as_ref());
        struct Monotone {
            last: u64,
            ok: bool,
        }
        impl FsbListener for Monotone {
            fn transaction(&mut self, txn: &FsbTransaction) {
                self.ok &= txn.cycle >= self.last;
                self.last = txn.cycle;
            }
        }
        let mut m = Monotone { last: 0, ok: true };
        p.run(&mut m);
        assert!(m.ok, "bus timestamps went backwards");
    }

    #[test]
    fn host_noise_is_outside_window() {
        let wl = WorkloadId::Plsa.build(Scale::tiny(), 4);
        let cfg = PlatformConfig::new(2).with_host_noise(HostNoiseConfig {
            transactions_per_switch: 3,
        });
        let mut p = VirtualPlatform::new(cfg, wl.as_ref());
        // Track whether any *low-address* (host) transaction arrives
        // while the window is open.
        struct WindowCheck {
            codec: MessageCodec,
            open: bool,
            violations: u64,
            noise_seen: u64,
        }
        impl FsbListener for WindowCheck {
            fn transaction(&mut self, txn: &FsbTransaction) {
                if txn.is_message() {
                    match self.codec.decode(txn) {
                        Ok(Some(Message::Start)) => self.open = true,
                        Ok(Some(Message::Stop)) => self.open = false,
                        _ => {}
                    }
                } else if txn.addr.raw() < 0x100_0000 {
                    self.noise_seen += 1;
                    if self.open {
                        self.violations += 1;
                    }
                }
            }
        }
        let mut w = WindowCheck {
            codec: MessageCodec::new(),
            open: false,
            violations: 0,
            noise_seen: 0,
        };
        p.run(&mut w);
        assert!(w.noise_seen > 0, "noise must be injected");
        assert_eq!(w.violations, 0, "host noise leaked into the window");
    }

    #[test]
    fn workload_results_survive_platform_run() {
        // The platform drives real kernels: FIMI still produces frequent
        // pairs when run through the whole platform stack.
        let wl = WorkloadId::Fimi.build(Scale::tiny(), 5);
        let mut p = VirtualPlatform::new(PlatformConfig::new(4), wl.as_ref());
        let mut l = CountingListener::default();
        let _ = p.run(&mut l);
        // Downcast via the known concrete type.
        let any: &dyn std::any::Any = &wl;
        let _ = any;
        // (Result inspection is covered in the workloads crate; here we
        // assert the run completed with traffic.)
        assert!(l.data_transactions > 0);
    }

    #[test]
    fn memory_fraction_matches_table2_shape() {
        let (s, _) = run_workload(WorkloadId::Plsa, 1);
        assert!((s.memory_fraction() - 0.831).abs() < 0.02);
        let (s2, _) = run_workload(WorkloadId::Rsearch, 1);
        assert!((s2.memory_fraction() - 0.423).abs() < 0.03);
    }
}
