#![warn(missing_docs)]

//! SoftSDV-style virtual platform with DEX time-slice scheduling (§3.2).
//!
//! The paper's SoftSDV exposes N virtual cores to the guest OS while
//! executing on fewer physical processors: VMX lets it run the workload
//! *natively* for a time slice, snapshot the core state, and resume a
//! different virtual core — "a physical processor will execute the work
//! for multiple logical cores in a sequential manner, scheduled by the
//! DEX driver" (§3.3).
//!
//! This crate reproduces that structure in software:
//!
//! * [`DexScheduler`] — round-robin time slicing with per-slice quanta,
//! * [`VirtualPlatform`] — N virtual cores running a
//!   [`Workload`](cmpsim_workloads::Workload)'s thread kernels over a
//!   coherent private-cache model, emitting the front-side-bus
//!   transaction stream a passive emulator snoops, complete with the
//!   co-simulation *messages* (start/stop, core-id, instructions-retired,
//!   cycles-completed) encoded as reserved-window transactions,
//! * [`FsbListener`] — the consumer interface Dragonhead implements.
//!
//! # Example
//!
//! ```
//! use cmpsim_softsdv::{CountingListener, PlatformConfig, VirtualPlatform};
//! use cmpsim_workloads::{Scale, WorkloadId};
//!
//! let workload = WorkloadId::Plsa.build(Scale::tiny(), 1);
//! let mut platform = VirtualPlatform::new(PlatformConfig::new(2), workload.as_ref());
//! let mut listener = CountingListener::default();
//! let summary = platform.run(&mut listener);
//! assert!(summary.instructions > 0);
//! assert!(listener.data_transactions > 0);
//! ```

pub mod dex;
pub mod platform;

pub use dex::{DexScheduler, SliceDecision};
pub use platform::{
    CoreSummary, CountingListener, FilterMode, FsbListener, HostNoiseConfig, PlatformConfig,
    RunSummary, VirtualPlatform,
};
