//! The DEX time-slice scheduler.

/// What the scheduler decided for the next slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceDecision {
    /// Run this virtual core for the next quantum.
    Run(u32),
    /// Every virtual core has retired (the workload completed).
    AllDone,
}

/// Round-robin scheduler multiplexing N virtual cores onto one execution
/// stream, the way SoftSDV's DEX driver time-slices a physical processor
/// among the logical cores it exposes to the guest.
///
/// The scheduler only tracks liveness; the quantum (how much work one
/// slice performs) is enforced by the platform, matching the paper's
/// description where the DEX driver grants a duration and regains
/// control afterwards.
///
/// # Example
///
/// ```
/// use cmpsim_softsdv::{DexScheduler, SliceDecision};
/// let mut s = DexScheduler::new(3);
/// assert_eq!(s.next_slice(), SliceDecision::Run(0));
/// assert_eq!(s.next_slice(), SliceDecision::Run(1));
/// s.retire(2);
/// assert_eq!(s.next_slice(), SliceDecision::Run(0)); // 2 skipped
/// ```
#[derive(Debug, Clone)]
pub struct DexScheduler {
    alive: Vec<bool>,
    cursor: usize,
    slices: u64,
}

impl DexScheduler {
    /// Creates a scheduler over `cores` virtual cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "at least one virtual core");
        DexScheduler {
            alive: vec![true; cores],
            cursor: 0,
            slices: 0,
        }
    }

    /// Number of virtual cores (alive or retired).
    pub fn cores(&self) -> usize {
        self.alive.len()
    }

    /// Number of slices granted so far.
    pub fn slices_granted(&self) -> u64 {
        self.slices
    }

    /// Marks a virtual core as finished; it will not be scheduled again.
    pub fn retire(&mut self, core: u32) {
        self.alive[core as usize] = false;
    }

    /// Whether any virtual core still has work.
    pub fn any_alive(&self) -> bool {
        self.alive.iter().any(|&a| a)
    }

    /// Picks the next virtual core to run, round-robin over live cores.
    pub fn next_slice(&mut self) -> SliceDecision {
        let n = self.alive.len();
        for _ in 0..n {
            let c = self.cursor;
            self.cursor = (self.cursor + 1) % n;
            if self.alive[c] {
                self.slices += 1;
                return SliceDecision::Run(c as u32);
            }
        }
        SliceDecision::AllDone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_order() {
        let mut s = DexScheduler::new(3);
        let picks: Vec<_> = (0..6).map(|_| s.next_slice()).collect();
        assert_eq!(
            picks,
            vec![
                SliceDecision::Run(0),
                SliceDecision::Run(1),
                SliceDecision::Run(2),
                SliceDecision::Run(0),
                SliceDecision::Run(1),
                SliceDecision::Run(2),
            ]
        );
        assert_eq!(s.slices_granted(), 6);
    }

    #[test]
    fn retired_cores_are_skipped() {
        let mut s = DexScheduler::new(3);
        s.retire(1);
        let picks: Vec<_> = (0..4).map(|_| s.next_slice()).collect();
        assert!(picks.iter().all(|p| !matches!(p, SliceDecision::Run(1))));
    }

    #[test]
    fn all_done_when_everyone_retired() {
        let mut s = DexScheduler::new(2);
        s.retire(0);
        s.retire(1);
        assert_eq!(s.next_slice(), SliceDecision::AllDone);
        assert!(!s.any_alive());
    }

    #[test]
    fn single_core_keeps_running() {
        let mut s = DexScheduler::new(1);
        for _ in 0..10 {
            assert_eq!(s.next_slice(), SliceDecision::Run(0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_cores_panics() {
        let _ = DexScheduler::new(0);
    }
}
