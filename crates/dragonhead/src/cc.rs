//! The CC0–CC3 cache-controller FPGAs: a bank-interleaved shared LLC.

use cmpsim_cache::{CacheConfig, CacheStats, ConfigError, SetAssocCache};

/// A bank-interleaved set-associative cache.
///
/// The hardware splits the emulated LLC across four cache-controller
/// FPGAs by low line-address bits. Interleaving by `line % banks` and
/// indexing each bank with `line / banks` partitions lines across
/// (bank, set) pairs *identically* to a flat cache's `line % sets`
/// partition, so the banked organization is hit/miss-equivalent to the
/// flat cache — the integration suite asserts this equivalence.
#[derive(Debug, Clone)]
pub struct BankedCache {
    banks: Vec<SetAssocCache>,
    num_banks: u64,
    /// `num_banks - 1` when the bank count is a power of two (the
    /// hardware's CC0–CC3 always is), letting [`route`](Self::route)
    /// use mask/shift instead of two integer divisions per access; the
    /// sentinel `u64::MAX` selects the general div/mod path.
    bank_mask: u64,
    bank_shift: u32,
    line_bytes: u64,
}

impl BankedCache {
    /// Builds a banked cache totalling `cfg.size_bytes()` split across
    /// `banks` equal banks.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the per-bank geometry is invalid
    /// (e.g. the size does not divide evenly across banks).
    pub fn new(cfg: CacheConfig, banks: u32) -> Result<Self, ConfigError> {
        if banks == 0 {
            return Err(ConfigError::Zero("bank count"));
        }
        if !cfg.size_bytes().is_multiple_of(u64::from(banks)) {
            return Err(ConfigError::UnevenBanks {
                size: cfg.size_bytes(),
                banks,
            });
        }
        let per_bank = CacheConfig::builder()
            .size_bytes(cfg.size_bytes() / u64::from(banks))
            .line_bytes(cfg.line_bytes())
            .associativity(cfg.associativity())
            .replacement(cfg.replacement())
            .write_policy(cfg.write_policy())
            .build()?;
        let num_banks = u64::from(banks);
        let (bank_mask, bank_shift) = if num_banks.is_power_of_two() {
            (num_banks - 1, num_banks.trailing_zeros())
        } else {
            (u64::MAX, 0)
        };
        Ok(BankedCache {
            banks: (0..banks).map(|_| SetAssocCache::new(per_bank)).collect(),
            num_banks,
            bank_mask,
            bank_shift,
            line_bytes: cfg.line_bytes(),
        })
    }

    /// Line size in bytes.
    pub const fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Number of banks.
    pub fn num_banks(&self) -> u32 {
        self.banks.len() as u32
    }

    #[inline]
    fn route(&self, line: u64) -> (usize, u64) {
        if self.bank_mask != u64::MAX {
            ((line & self.bank_mask) as usize, line >> self.bank_shift)
        } else {
            ((line % self.num_banks) as usize, line / self.num_banks)
        }
    }

    /// Hints the host CPU to pull `line`'s set metadata into its own
    /// cache ahead of a future [`access_line`](Self::access_line). A
    /// pure host-side prefetch: no simulated state changes, so replay
    /// output is byte-identical with or without it.
    #[inline]
    pub fn prime_host_cache(&self, line: u64) {
        let (bank, bank_line) = self.route(line);
        self.banks[bank].prime_host_cache(bank_line);
    }

    /// Demand access to the line containing `addr`.
    pub fn access_addr(&mut self, addr: cmpsim_trace::Addr, write: bool) -> bool {
        let line = addr.line(self.line_bytes);
        self.access_line(line, write)
    }

    /// Demand access by global line number. Returns whether it hit.
    pub fn access_line(&mut self, line: u64, write: bool) -> bool {
        let (bank, bank_line) = self.route(line);
        self.banks[bank].access(bank_line, write).is_hit()
    }

    /// Absorbs an upper-level writeback; returns false if the line was
    /// not resident (it then goes to memory).
    pub fn receive_writeback(&mut self, line: u64) -> bool {
        let (bank, bank_line) = self.route(line);
        self.banks[bank].receive_writeback(bank_line)
    }

    /// Prefetch fill; returns true if the line was newly inserted.
    pub fn prefetch_line(&mut self, line: u64) -> bool {
        let (bank, bank_line) = self.route(line);
        if self.banks[bank].contains(bank_line) {
            false
        } else {
            let _ = self.banks[bank].prefetch_fill(bank_line);
            true
        }
    }

    /// Whether the line is resident (no state change).
    pub fn contains(&self, line: u64) -> bool {
        let (bank, bank_line) = self.route(line);
        self.banks[bank].contains(bank_line)
    }

    /// Counters merged across banks.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for b in &self.banks {
            s.merge(b.stats());
        }
        s
    }

    /// Per-bank counters (CB reads each controller separately).
    pub fn bank_stats(&self) -> Vec<CacheStats> {
        self.banks.iter().map(|b| *b.stats()).collect()
    }

    /// Resets all counters, preserving contents.
    pub fn reset_stats(&mut self) {
        for b in &mut self.banks {
            b.reset_stats();
        }
    }

    /// Total resident lines across banks.
    pub fn resident_lines(&self) -> u64 {
        self.banks.iter().map(|b| b.resident_lines()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::Pcg32;

    fn flat_and_banked(size: u64, line: u64, ways: u32) -> (SetAssocCache, BankedCache) {
        let cfg = CacheConfig::lru(size, line, ways).unwrap();
        (SetAssocCache::new(cfg), BankedCache::new(cfg, 4).unwrap())
    }

    #[test]
    fn banked_equals_flat_on_random_stream() {
        let (mut flat, mut banked) = flat_and_banked(1 << 20, 64, 16);
        let mut rng = Pcg32::seed(99);
        for _ in 0..200_000 {
            let line = rng.below(40_000);
            let write = rng.chance(0.3);
            let f = flat.access(line, write).is_hit();
            let b = banked.access_line(line, write);
            assert_eq!(f, b, "divergence at line {line}");
        }
        assert_eq!(flat.stats().hits, banked.stats().hits);
        assert_eq!(flat.stats().misses, banked.stats().misses);
        assert_eq!(flat.stats().writebacks, banked.stats().writebacks);
    }

    #[test]
    fn banked_equals_flat_on_streaming() {
        let (mut flat, mut banked) = flat_and_banked(1 << 20, 256, 8);
        for pass in 0..3 {
            for line in 0..10_000u64 {
                let f = flat.access(line, false).is_hit();
                let b = banked.access_line(line, false);
                assert_eq!(f, b, "pass {pass} line {line}");
            }
        }
    }

    #[test]
    fn addresses_map_to_lines() {
        let cfg = CacheConfig::lru(1 << 20, 256, 8).unwrap();
        let mut c = BankedCache::new(cfg, 4).unwrap();
        assert!(!c.access_addr(cmpsim_trace::Addr::new(0x1000), false));
        // Same 256-byte line, different 64-byte offset: hit.
        assert!(c.access_addr(cmpsim_trace::Addr::new(0x1040), false));
    }

    #[test]
    fn writeback_absorption() {
        let (_, mut banked) = flat_and_banked(1 << 20, 64, 16);
        assert!(!banked.receive_writeback(5), "absent line goes to memory");
        banked.access_line(5, false);
        assert!(banked.receive_writeback(5));
    }

    #[test]
    fn prefetch_fills_once() {
        let (_, mut banked) = flat_and_banked(1 << 20, 64, 16);
        assert!(banked.prefetch_line(9));
        assert!(!banked.prefetch_line(9));
        assert!(banked.contains(9));
    }

    #[test]
    fn zero_banks_rejected() {
        let cfg = CacheConfig::lru(1 << 20, 64, 16).unwrap();
        assert!(BankedCache::new(cfg, 0).is_err());
    }

    #[test]
    fn uneven_bank_split_rejected() {
        // 1 MiB across 3 banks would silently truncate to 3 × 349525 B;
        // the doc promises a ConfigError instead.
        let cfg = CacheConfig::lru(1 << 20, 64, 16).unwrap();
        match BankedCache::new(cfg, 3) {
            Err(ConfigError::UnevenBanks { size, banks }) => {
                assert_eq!((size, banks), (1 << 20, 3));
            }
            other => panic!("expected UnevenBanks error, got {other:?}"),
        }
        // The error message names both offending quantities.
        let msg = BankedCache::new(cfg, 3).unwrap_err().to_string();
        assert!(msg.contains("1048576") && msg.contains("3 banks"), "{msg}");
    }

    #[test]
    fn bank_load_is_balanced_for_sequential_lines() {
        let (_, mut banked) = flat_and_banked(1 << 20, 64, 16);
        for line in 0..4096u64 {
            banked.access_line(line, false);
        }
        let per_bank = banked.bank_stats();
        assert!(per_bank.iter().all(|s| s.accesses == 1024));
    }
}
