//! The CB-to-host sampling channel: periodic counter snapshots.

use std::fmt;

/// A [`Sampler::flush`] was asked to close the series *before* a sample
/// it already recorded — time ran backwards, which on real hardware
/// means the host clock and the emulator clock have desynchronized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerError {
    /// The cycle passed to the offending flush.
    pub cycle: u64,
    /// The cycle of the newest sample already recorded.
    pub last: u64,
}

impl fmt::Display for SamplerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flush at cycle {} is behind the last recorded sample at cycle {}",
            self.cycle, self.last
        )
    }
}

impl std::error::Error for SamplerError {}

/// One counter snapshot, as read by the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Sample {
    /// Bus cycle at which the sample was taken.
    pub cycle: u64,
    /// Instructions retired (from the last SoftSDV counter message).
    pub instructions: u64,
    /// Cumulative LLC accesses.
    pub accesses: u64,
    /// Cumulative LLC misses.
    pub misses: u64,
}

impl Sample {
    /// Misses per 1000 instructions *in the interval* ending at `self`,
    /// given the previous sample.
    ///
    /// An interval that retired no instructions but still missed is a
    /// memory-stalled interval, not a perfect one: it yields
    /// [`f64::NAN`] so downstream renderers can mark it explicitly
    /// instead of plotting 0 MPKI. A truly idle interval (no
    /// instructions *and* no misses) stays `0.0`.
    pub fn interval_mpki(&self, prev: &Sample) -> f64 {
        let di = self.instructions.saturating_sub(prev.instructions);
        let dm = self.misses.saturating_sub(prev.misses);
        if di == 0 {
            if dm == 0 {
                0.0
            } else {
                f64::NAN
            }
        } else {
            dm as f64 * 1000.0 / di as f64
        }
    }
}

/// Periodic sampler: the paper's host "reads performance data from CB
/// every 500 microseconds"; at the emulator's 100 MHz that is one sample
/// per 50 000 bus cycles (the default period here).
#[derive(Debug, Clone)]
pub struct Sampler {
    period: u64,
    next_at: u64,
    samples: Vec<Sample>,
}

/// 500 µs at the 100 MHz Dragonhead clock.
pub const DEFAULT_PERIOD_CYCLES: u64 = 50_000;

impl Sampler {
    /// Creates a sampler with the given period in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: u64) -> Self {
        assert!(period > 0, "sampling period must be nonzero");
        Sampler {
            period,
            next_at: period,
            samples: Vec::new(),
        }
    }

    /// Whether a [`tick`](Sampler::tick) at `cycle` would record at
    /// least one sample. Callers on the hot path use this to skip
    /// gathering the counter arguments (merging per-bank stats) for the
    /// overwhelming majority of transactions that land inside the
    /// current sampling interval.
    #[inline]
    pub const fn due(&self, cycle: u64) -> bool {
        cycle >= self.next_at
    }

    /// Offers the current counters at `cycle`; records samples for every
    /// period boundary passed since the last call.
    pub fn tick(&mut self, cycle: u64, instructions: u64, accesses: u64, misses: u64) {
        while cycle >= self.next_at {
            self.samples.push(Sample {
                cycle: self.next_at,
                instructions,
                accesses,
                misses,
            });
            self.next_at += self.period;
        }
    }

    /// Records any samples still owed up to `cycle` (the catch-up loop
    /// of [`tick`](Sampler::tick)), then closes out the trailing partial
    /// interval with a final sample at `cycle` itself.
    ///
    /// Runs rarely end exactly on a period boundary; without a flush the
    /// tail of the run — up to one full period of activity — would be
    /// missing from the time series. Flushing again at the cycle of the
    /// last recorded sample is an idempotent no-op.
    ///
    /// # Errors
    ///
    /// Returns a [`SamplerError`] (recording nothing) if `cycle` is
    /// strictly behind the newest sample already recorded: the time
    /// series is append-only and must stay monotone.
    pub fn flush(
        &mut self,
        cycle: u64,
        instructions: u64,
        accesses: u64,
        misses: u64,
    ) -> Result<(), SamplerError> {
        if let Some(last) = self.samples.last() {
            if cycle < last.cycle {
                return Err(SamplerError {
                    cycle,
                    last: last.cycle,
                });
            }
        }
        self.tick(cycle, instructions, accesses, misses);
        if self.samples.last().map_or(cycle > 0, |s| s.cycle < cycle) {
            self.samples.push(Sample {
                cycle,
                instructions,
                accesses,
                misses,
            });
            self.next_at = cycle - cycle % self.period + self.period;
        }
        Ok(())
    }

    /// All samples recorded so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The sampling period in cycles.
    pub fn period(&self) -> u64 {
        self.period
    }
}

impl Default for Sampler {
    fn default() -> Self {
        Self::new(DEFAULT_PERIOD_CYCLES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_on_period_boundaries() {
        let mut s = Sampler::new(100);
        s.tick(50, 1, 1, 0);
        assert!(s.samples().is_empty());
        s.tick(100, 2, 2, 1);
        assert_eq!(s.samples().len(), 1);
        assert_eq!(s.samples()[0].cycle, 100);
    }

    #[test]
    fn catch_up_over_long_gaps() {
        let mut s = Sampler::new(100);
        s.tick(350, 10, 20, 5);
        let cycles: Vec<u64> = s.samples().iter().map(|x| x.cycle).collect();
        assert_eq!(cycles, vec![100, 200, 300]);
    }

    #[test]
    fn interval_mpki() {
        let a = Sample {
            cycle: 100,
            instructions: 1000,
            accesses: 10,
            misses: 2,
        };
        let b = Sample {
            cycle: 200,
            instructions: 3000,
            accesses: 30,
            misses: 8,
        };
        assert!((b.interval_mpki(&a) - 3.0).abs() < 1e-12);
        assert_eq!(a.interval_mpki(&a), 0.0);
    }

    #[test]
    fn memory_stalled_interval_is_nan_not_zero() {
        let a = Sample {
            cycle: 100,
            instructions: 1000,
            accesses: 10,
            misses: 2,
        };
        // No instructions retired, but the interval missed: a stalled
        // interval must not render as 0 MPKI (perfect).
        let stalled = Sample {
            cycle: 200,
            instructions: 1000,
            accesses: 14,
            misses: 6,
        };
        assert!(stalled.interval_mpki(&a).is_nan());
        // Idle interval (no instructions, no misses) stays 0.0.
        let idle = Sample { cycle: 200, ..a };
        assert_eq!(idle.interval_mpki(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_period_panics() {
        let _ = Sampler::new(0);
    }

    #[test]
    fn flush_records_trailing_partial_interval() {
        let mut s = Sampler::new(100);
        s.tick(100, 10, 20, 5);
        s.flush(150, 15, 30, 8).unwrap();
        let cycles: Vec<u64> = s.samples().iter().map(|x| x.cycle).collect();
        assert_eq!(cycles, vec![100, 150]);
        assert_eq!(s.samples()[1].misses, 8);
    }

    #[test]
    fn flush_catches_up_missed_boundaries_first() {
        let mut s = Sampler::new(100);
        s.flush(250, 9, 12, 3).unwrap();
        let cycles: Vec<u64> = s.samples().iter().map(|x| x.cycle).collect();
        assert_eq!(cycles, vec![100, 200, 250]);
    }

    #[test]
    fn flush_on_boundary_adds_nothing_extra() {
        let mut s = Sampler::new(100);
        s.flush(200, 4, 8, 2).unwrap();
        let cycles: Vec<u64> = s.samples().iter().map(|x| x.cycle).collect();
        assert_eq!(cycles, vec![100, 200]);
        // Flushing again at the last sample's cycle is an idempotent no-op.
        s.flush(200, 4, 8, 2).unwrap();
        assert_eq!(s.samples().len(), 2);
        // Ticking resumes from the next boundary, not a stale one.
        s.tick(300, 5, 9, 2);
        assert_eq!(s.samples().last().unwrap().cycle, 300);
    }

    #[test]
    fn flush_rejects_time_reversal() {
        let mut s = Sampler::new(100);
        s.flush(200, 4, 8, 2).unwrap();
        assert_eq!(
            s.flush(150, 4, 8, 2),
            Err(SamplerError {
                cycle: 150,
                last: 200
            })
        );
        // The rejected flush recorded nothing and broke nothing.
        assert_eq!(s.samples().len(), 2);
        s.flush(250, 5, 9, 2).unwrap();
        assert_eq!(s.samples().last().unwrap().cycle, 250);
    }

    #[test]
    fn flush_at_zero_records_nothing() {
        let mut s = Sampler::new(100);
        s.flush(0, 0, 0, 0).unwrap();
        assert!(s.samples().is_empty());
    }
}
