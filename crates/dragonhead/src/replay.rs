//! Replaying a recorded FSB stream into one or more boards.
//!
//! Dragonhead is a *passive* snooper: it never affects the workload or
//! the platform's private caches, so any number of emulated boards can
//! legally observe the same bus stream. The paper re-ran the workload
//! per LLC configuration only because it had a single FPGA board; a
//! recorded stream lifts that constraint — one pass drives N
//! independently-configured boards simultaneously (cache-size sweeps,
//! line-size sweeps, replacement/sharing ablations), and per-core
//! attribution survives because co-simulation `Message` transactions
//! are part of the stream.
//!
//! Replay is observationally identical to live snooping: each board
//! sees the exact transaction sequence in order, so its counters,
//! samples, and per-core statistics are bit-for-bit those of a live
//! run. The `cmpsim-core` crate pins this equivalence end to end.

use crate::emulator::Dragonhead;
use crate::sampler::SamplerError;
use cmpsim_telemetry::trace as ftrace;
use cmpsim_trace::FsbTransaction;

/// Transactions per broadcast batch: each board consumes the stream in
/// runs of this many transactions, so its tag arrays stay hot for a
/// whole run instead of being evicted between boards on every
/// transaction. Batch boundaries are fixed relative to the stream —
/// never to the board grouping — which is part of the determinism
/// argument for sharded replay (DESIGN.md §17).
pub const BATCH_TRANSACTIONS: usize = 4096;

/// Drives every board in `boards` over `stream`, in order, then closes
/// each board's sample series at `final_cycle` (the platform run's
/// total cycle count, exactly as a live run's teardown does).
///
/// Returns the number of transactions replayed.
///
/// # Errors
///
/// Propagates the first [`SamplerError`] from a board flush — possible
/// only if `final_cycle` is behind the stream's newest sample boundary,
/// i.e. the stream and the claimed run length disagree. Every board is
/// still flushed (see [`flush_all`]).
pub fn replay<I>(
    stream: I,
    boards: &mut [Dragonhead],
    final_cycle: u64,
) -> Result<u64, SamplerError>
where
    I: IntoIterator<Item = FsbTransaction>,
{
    let _t = ftrace::span("board-replay");
    let mut batch = Vec::with_capacity(BATCH_TRANSACTIONS);
    let mut n = 0u64;
    for txn in stream {
        batch.push(txn);
        if batch.len() == BATCH_TRANSACTIONS {
            for board in boards.iter_mut() {
                board.observe_batch(&batch);
            }
            n += batch.len() as u64;
            batch.clear();
        }
    }
    if !batch.is_empty() {
        for board in boards.iter_mut() {
            board.observe_batch(&batch);
        }
        n += batch.len() as u64;
    }
    flush_all(boards, final_cycle)?;
    Ok(n)
}

/// Drives every board in `boards` over pre-decoded transaction batches
/// (see `CapturedStream::decode_chunks` in `cmpsim-core`), then closes
/// each board's sample series at `final_cycle`.
///
/// This is the shard entry point for parallel sweep replay: the chunks
/// are decoded once and shared read-only, and each shard calls this
/// with its own contiguous board group. Batch boundaries come from the
/// chunking, not the grouping, so any shard count replays every board
/// identically.
///
/// Returns the number of transactions replayed.
///
/// # Errors
///
/// As [`replay`]: the first [`SamplerError`] from a board flush, after
/// every board has been flushed.
pub fn replay_chunks<'a, I>(
    chunks: I,
    boards: &mut [Dragonhead],
    final_cycle: u64,
) -> Result<u64, SamplerError>
where
    I: IntoIterator<Item = &'a [FsbTransaction]>,
{
    let _t = ftrace::span("board-replay");
    let mut n = 0u64;
    for chunk in chunks {
        for board in boards.iter_mut() {
            board.observe_batch(chunk);
        }
        n += chunk.len() as u64;
    }
    flush_all(boards, final_cycle)?;
    Ok(n)
}

/// Flushes every board at `final_cycle`, returning the first error —
/// but only after attempting all of them. A mid-sweep flush failure
/// must not leave later boards with their sample-series tails missing:
/// a retrying caller could otherwise silently reuse half-flushed
/// boards.
fn flush_all(boards: &mut [Dragonhead], final_cycle: u64) -> Result<(), SamplerError> {
    let mut first_err = None;
    for board in boards.iter_mut() {
        if let Err(e) = board.flush(final_cycle) {
            first_err.get_or_insert(e);
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulator::DragonheadConfig;
    use cmpsim_cache::CacheConfig;
    use cmpsim_trace::{Addr, FsbKind, Message, MessageCodec, Pcg32};

    /// A plausible co-simulation stream: start, core announcements,
    /// data traffic, counter messages, stop.
    fn sample_stream() -> Vec<FsbTransaction> {
        let mut rng = Pcg32::seed(11);
        let mut txns = Vec::new();
        let mut cycle = 10u64;
        txns.extend(MessageCodec::encode(Message::Start, cycle));
        for burst in 0..40u64 {
            cycle += 5;
            txns.extend(MessageCodec::encode(
                Message::CoreId((burst % 4) as u32),
                cycle,
            ));
            for _ in 0..500 {
                cycle += rng.below(20) + 1;
                let kind = match rng.below(3) {
                    0 => FsbKind::ReadLine,
                    1 => FsbKind::ReadInvalidateLine,
                    _ => FsbKind::WriteLine,
                };
                // A 1 MiB working set: fits the big test cache, thrashes
                // the small one.
                txns.push(FsbTransaction::new(
                    cycle,
                    kind,
                    Addr::new(rng.below(1 << 20) & !63),
                ));
            }
            cycle += 3;
            txns.extend(MessageCodec::encode(
                Message::InstructionsRetired(burst * 100_000),
                cycle,
            ));
        }
        cycle += 2;
        txns.extend(MessageCodec::encode(Message::Stop, cycle));
        txns
    }

    fn board(size: u64) -> Dragonhead {
        let mut cfg = DragonheadConfig::new(CacheConfig::lru(size, 64, 16).unwrap());
        // Sample densely so the stream spans many boundaries.
        cfg.sample_period = 1_000;
        Dragonhead::new(cfg)
    }

    #[test]
    fn replay_matches_live_observation() {
        let stream = sample_stream();
        let final_cycle = stream.last().unwrap().cycle + 100;

        let mut live = board(1 << 20);
        for t in &stream {
            live.observe(t);
        }
        live.flush(final_cycle).unwrap();

        let mut boards = vec![board(1 << 20)];
        let n = replay(stream.iter().copied(), &mut boards, final_cycle).unwrap();
        assert_eq!(n, stream.len() as u64);
        assert_eq!(boards[0].stats(), live.stats());
        assert_eq!(boards[0].samples(), live.samples());
        assert_eq!(boards[0].per_core(), live.per_core());
    }

    #[test]
    fn boards_in_one_replay_are_independent() {
        let stream = sample_stream();
        let final_cycle = stream.last().unwrap().cycle + 100;

        // Three boards replayed together must equal three boards
        // replayed alone: passive observation cannot couple them.
        let sizes = [1u64 << 18, 1 << 20, 1 << 22];
        let mut together: Vec<Dragonhead> = sizes.iter().map(|&s| board(s)).collect();
        replay(stream.iter().copied(), &mut together, final_cycle).unwrap();

        for (i, &size) in sizes.iter().enumerate() {
            let mut alone = vec![board(size)];
            replay(stream.iter().copied(), &mut alone, final_cycle).unwrap();
            assert_eq!(together[i].stats(), alone[0].stats(), "board {i}");
            assert_eq!(together[i].samples(), alone[0].samples(), "board {i}");
        }
        // And a bigger cache actually behaves differently (the boards
        // were not accidentally identical).
        assert!(together[0].stats().misses > together[2].stats().misses);
    }

    #[test]
    fn flush_error_surfaces_from_replay() {
        let stream = sample_stream();
        let mut boards = vec![board(1 << 20)];
        // Closing the series before the stream's end must fail, not
        // silently truncate the sample series.
        assert!(replay(stream.iter().copied(), &mut boards, 1).is_err());
    }

    #[test]
    fn observe_batch_matches_per_transaction_observe() {
        let stream = sample_stream();
        let mut one_by_one = board(1 << 19);
        for t in &stream {
            one_by_one.observe(t);
        }
        let mut batched = board(1 << 19);
        for chunk in stream.chunks(997) {
            // Deliberately odd batch size: boundaries must not matter.
            batched.observe_batch(chunk);
        }
        assert_eq!(batched.stats(), one_by_one.stats());
        assert_eq!(batched.samples(), one_by_one.samples());
        assert_eq!(batched.per_core(), one_by_one.per_core());
        assert_eq!(
            batched.transactions_quarantined(),
            one_by_one.transactions_quarantined()
        );
    }

    #[test]
    fn replay_chunks_matches_replay() {
        let stream = sample_stream();
        let final_cycle = stream.last().unwrap().cycle + 100;
        let sizes = [1u64 << 18, 1 << 20, 1 << 22];

        let mut streamed: Vec<Dragonhead> = sizes.iter().map(|&s| board(s)).collect();
        let n1 = replay(stream.iter().copied(), &mut streamed, final_cycle).unwrap();

        let chunks: Vec<&[FsbTransaction]> = stream.chunks(BATCH_TRANSACTIONS).collect();
        let mut chunked: Vec<Dragonhead> = sizes.iter().map(|&s| board(s)).collect();
        let n2 = replay_chunks(chunks, &mut chunked, final_cycle).unwrap();

        assert_eq!(n1, n2);
        for i in 0..sizes.len() {
            assert_eq!(streamed[i].stats(), chunked[i].stats(), "board {i}");
            assert_eq!(streamed[i].samples(), chunked[i].samples(), "board {i}");
            assert_eq!(streamed[i].per_core(), chunked[i].per_core(), "board {i}");
        }
    }

    #[test]
    fn failed_flush_still_flushes_every_board() {
        let stream = sample_stream();
        let final_cycle = stream.last().unwrap().cycle + 100;
        // Board 0 samples densely, so flushing at cycle 1 is an error
        // for it; board 1 uses a period longer than the stream, so its
        // only sample comes from the flush itself.
        let mut sparse_cfg = DragonheadConfig::new(CacheConfig::lru(1 << 20, 64, 16).unwrap());
        sparse_cfg.sample_period = u64::MAX;
        let mut boards = vec![board(1 << 20), Dragonhead::new(sparse_cfg)];
        let err = replay(stream.iter().copied(), &mut boards, 1).unwrap_err();
        assert_eq!(err.cycle, 1);
        // The old code returned on board 0's error and never flushed
        // board 1, losing its entire (tail-only) sample series.
        assert_eq!(boards[1].samples().len(), 1);
        assert_eq!(boards[1].samples()[0].cycle, 1);
        // A successful flush at the true final cycle still works on
        // board 0 afterwards: the failed attempt poisoned nothing.
        assert!(boards[0].flush(final_cycle).is_ok());
    }
}
