//! Replaying a recorded FSB stream into one or more boards.
//!
//! Dragonhead is a *passive* snooper: it never affects the workload or
//! the platform's private caches, so any number of emulated boards can
//! legally observe the same bus stream. The paper re-ran the workload
//! per LLC configuration only because it had a single FPGA board; a
//! recorded stream lifts that constraint — one pass drives N
//! independently-configured boards simultaneously (cache-size sweeps,
//! line-size sweeps, replacement/sharing ablations), and per-core
//! attribution survives because co-simulation `Message` transactions
//! are part of the stream.
//!
//! Replay is observationally identical to live snooping: each board
//! sees the exact transaction sequence in order, so its counters,
//! samples, and per-core statistics are bit-for-bit those of a live
//! run. The `cmpsim-core` crate pins this equivalence end to end.

use crate::emulator::Dragonhead;
use crate::sampler::SamplerError;
use cmpsim_telemetry::trace as ftrace;
use cmpsim_trace::FsbTransaction;

/// Drives every board in `boards` over `stream`, in order, then closes
/// each board's sample series at `final_cycle` (the platform run's
/// total cycle count, exactly as a live run's teardown does).
///
/// Returns the number of transactions replayed.
///
/// # Errors
///
/// Propagates the first [`SamplerError`] from a board flush — possible
/// only if `final_cycle` is behind the stream's newest sample boundary,
/// i.e. the stream and the claimed run length disagree.
pub fn replay<I>(
    stream: I,
    boards: &mut [Dragonhead],
    final_cycle: u64,
) -> Result<u64, SamplerError>
where
    I: IntoIterator<Item = FsbTransaction>,
{
    let _t = ftrace::span("board-replay");
    let mut n = 0u64;
    for txn in stream {
        for board in boards.iter_mut() {
            board.observe(&txn);
        }
        n += 1;
    }
    for board in boards.iter_mut() {
        board.flush(final_cycle)?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulator::DragonheadConfig;
    use cmpsim_cache::CacheConfig;
    use cmpsim_trace::{Addr, FsbKind, Message, MessageCodec, Pcg32};

    /// A plausible co-simulation stream: start, core announcements,
    /// data traffic, counter messages, stop.
    fn sample_stream() -> Vec<FsbTransaction> {
        let mut rng = Pcg32::seed(11);
        let mut txns = Vec::new();
        let mut cycle = 10u64;
        txns.extend(MessageCodec::encode(Message::Start, cycle));
        for burst in 0..40u64 {
            cycle += 5;
            txns.extend(MessageCodec::encode(
                Message::CoreId((burst % 4) as u32),
                cycle,
            ));
            for _ in 0..500 {
                cycle += rng.below(20) + 1;
                let kind = match rng.below(3) {
                    0 => FsbKind::ReadLine,
                    1 => FsbKind::ReadInvalidateLine,
                    _ => FsbKind::WriteLine,
                };
                // A 1 MiB working set: fits the big test cache, thrashes
                // the small one.
                txns.push(FsbTransaction::new(
                    cycle,
                    kind,
                    Addr::new(rng.below(1 << 20) & !63),
                ));
            }
            cycle += 3;
            txns.extend(MessageCodec::encode(
                Message::InstructionsRetired(burst * 100_000),
                cycle,
            ));
        }
        cycle += 2;
        txns.extend(MessageCodec::encode(Message::Stop, cycle));
        txns
    }

    fn board(size: u64) -> Dragonhead {
        let mut cfg = DragonheadConfig::new(CacheConfig::lru(size, 64, 16).unwrap());
        // Sample densely so the stream spans many boundaries.
        cfg.sample_period = 1_000;
        Dragonhead::new(cfg)
    }

    #[test]
    fn replay_matches_live_observation() {
        let stream = sample_stream();
        let final_cycle = stream.last().unwrap().cycle + 100;

        let mut live = board(1 << 20);
        for t in &stream {
            live.observe(t);
        }
        live.flush(final_cycle).unwrap();

        let mut boards = vec![board(1 << 20)];
        let n = replay(stream.iter().copied(), &mut boards, final_cycle).unwrap();
        assert_eq!(n, stream.len() as u64);
        assert_eq!(boards[0].stats(), live.stats());
        assert_eq!(boards[0].samples(), live.samples());
        assert_eq!(boards[0].per_core(), live.per_core());
    }

    #[test]
    fn boards_in_one_replay_are_independent() {
        let stream = sample_stream();
        let final_cycle = stream.last().unwrap().cycle + 100;

        // Three boards replayed together must equal three boards
        // replayed alone: passive observation cannot couple them.
        let sizes = [1u64 << 18, 1 << 20, 1 << 22];
        let mut together: Vec<Dragonhead> = sizes.iter().map(|&s| board(s)).collect();
        replay(stream.iter().copied(), &mut together, final_cycle).unwrap();

        for (i, &size) in sizes.iter().enumerate() {
            let mut alone = vec![board(size)];
            replay(stream.iter().copied(), &mut alone, final_cycle).unwrap();
            assert_eq!(together[i].stats(), alone[0].stats(), "board {i}");
            assert_eq!(together[i].samples(), alone[0].samples(), "board {i}");
        }
        // And a bigger cache actually behaves differently (the boards
        // were not accidentally identical).
        assert!(together[0].stats().misses > together[2].stats().misses);
    }

    #[test]
    fn flush_error_surfaces_from_replay() {
        let stream = sample_stream();
        let mut boards = vec![board(1 << 20)];
        // Closing the series before the stream's end must fail, not
        // silently truncate the sample series.
        assert!(replay(stream.iter().copied(), &mut boards, 1).is_err());
    }
}
