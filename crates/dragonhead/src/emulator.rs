//! The assembled Dragonhead board.

use crate::af::{AddressFilter, FilterOutcome};
use crate::cc::BankedCache;
use crate::sampler::{Sampler, SamplerError};
use cmpsim_cache::{CacheConfig, CacheStats, ConfigError};
use cmpsim_prefetch::{Prefetcher, StrideConfig, StridePrefetcher};
use cmpsim_telemetry::{Labels, MetricRegistry};
use cmpsim_trace::{FsbKind, FsbTransaction};

/// Dragonhead configuration: the emulated cache plus board parameters.
#[derive(Debug, Clone, Copy)]
pub struct DragonheadConfig {
    /// Geometry and policies of the emulated shared LLC. The hardware
    /// supports 1 MB–256 MB, 64 B–4096 B lines, LRU.
    pub cache: CacheConfig,
    /// Cache-controller FPGAs the LLC is interleaved across (CC0–CC3).
    pub banks: u32,
    /// Host sampling period in bus cycles (500 µs at 100 MHz = 50 000).
    pub sample_period: u64,
    /// Attach a stride prefetcher in front of the emulated LLC.
    pub prefetch: Option<StrideConfig>,
}

impl DragonheadConfig {
    /// Default board setup for a given emulated cache: 4 banks, 500 µs
    /// sampling, no prefetcher.
    pub fn new(cache: CacheConfig) -> Self {
        DragonheadConfig {
            cache,
            banks: 4,
            sample_period: crate::sampler::DEFAULT_PERIOD_CYCLES,
            prefetch: None,
        }
    }

    /// Enables the stride prefetcher.
    pub fn with_prefetch(mut self, cfg: StrideConfig) -> Self {
        self.prefetch = Some(cfg);
        self
    }
}

/// Per-core demand counters, as the CB reports them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCounters {
    /// Demand LLC accesses attributed to this core.
    pub accesses: u64,
    /// Demand LLC misses attributed to this core.
    pub misses: u64,
}

/// The whole emulator: AF → CC0..CC3 → CB, with host sampling.
///
/// Feed it every bus transaction via [`observe`](Dragonhead::observe);
/// read totals via [`stats`](Dragonhead::stats), per-core counters via
/// [`per_core`](Dragonhead::per_core), and the 500 µs time series via
/// [`samples`](Dragonhead::samples).
#[derive(Debug)]
pub struct Dragonhead {
    cfg: DragonheadConfig,
    af: AddressFilter,
    cc: BankedCache,
    sampler: Sampler,
    per_core: Vec<CoreCounters>,
    prefetcher: Option<StridePrefetcher>,
    prefetch_buf: Vec<u64>,
    prefetch_issued_to_memory: u64,
    wb_absorbed: u64,
    wb_to_memory: u64,
    data_path_messages: u64,
}

impl Dragonhead {
    /// Builds the emulator.
    ///
    /// # Panics
    ///
    /// Panics if the per-bank cache geometry is invalid; use
    /// [`try_new`](Dragonhead::try_new) to handle that structurally.
    pub fn new(cfg: DragonheadConfig) -> Self {
        Self::try_new(cfg).expect("bank geometry must divide")
    }

    /// Builds the emulator, reporting an invalid per-bank cache geometry
    /// (e.g. a size that does not divide evenly across banks, or zero
    /// banks) as an error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from the banked-cache construction.
    pub fn try_new(cfg: DragonheadConfig) -> Result<Self, ConfigError> {
        Ok(Dragonhead {
            af: AddressFilter::new(),
            cc: BankedCache::new(cfg.cache, cfg.banks)?,
            sampler: Sampler::new(cfg.sample_period),
            per_core: Vec::new(),
            prefetcher: cfg.prefetch.map(StridePrefetcher::new),
            prefetch_buf: Vec::new(),
            prefetch_issued_to_memory: 0,
            wb_absorbed: 0,
            wb_to_memory: 0,
            data_path_messages: 0,
            cfg,
        })
    }

    /// The configuration the board was built with.
    pub const fn config(&self) -> &DragonheadConfig {
        &self.cfg
    }

    /// Observes one FSB transaction (the snoop port).
    pub fn observe(&mut self, txn: &FsbTransaction) {
        match self.af.filter(txn) {
            FilterOutcome::Control(_)
            | FilterOutcome::Malformed(_)
            | FilterOutcome::Quarantined(_) => {}
            FilterOutcome::Excluded => {}
            FilterOutcome::Emulate { core } => self.emulate(core, txn),
        }
    }

    /// Observes a whole batch of transactions — the replay fast path.
    ///
    /// Byte-identical to calling [`observe`](Dragonhead::observe) once
    /// per transaction; the batch form exists so per-batch constants
    /// (the line-size shift) are hoisted out of the per-transaction
    /// loop, and so sweep replay can keep one board's working set hot
    /// across a whole batch instead of round-robining boards on every
    /// transaction.
    pub fn observe_batch(&mut self, batch: &[FsbTransaction]) {
        let line_shift = self.cfg.cache.line_bytes().trailing_zeros();
        // Emulated LLCs dwarf the host's caches, so the tag lookup for a
        // random set is a host-DRAM stall — the dominant cost of replay.
        // Prime the set metadata a fixed distance ahead so the loads
        // overlap with emulation of the current transactions. The hint
        // touches no simulated state (messages prime a meaningless but
        // in-bounds set), so results stay byte-identical.
        const PRIME_AHEAD: usize = 16;
        for (i, txn) in batch.iter().enumerate() {
            if let Some(ahead) = batch.get(i + PRIME_AHEAD) {
                self.cc.prime_host_cache(ahead.addr.raw() >> line_shift);
            }
            match self.af.filter(txn) {
                FilterOutcome::Control(_)
                | FilterOutcome::Malformed(_)
                | FilterOutcome::Quarantined(_) => {}
                FilterOutcome::Excluded => {}
                // Line size is a power of two (enforced at config
                // build), so the shift equals `addr.line(line_bytes)`.
                FilterOutcome::Emulate { core } => {
                    self.emulate_line(core, txn, txn.addr.raw() >> line_shift);
                }
            }
        }
    }

    fn emulate(&mut self, core: u32, txn: &FsbTransaction) {
        let line = txn.addr.line(self.cfg.cache.line_bytes());
        self.emulate_line(core, txn, line);
    }

    fn emulate_line(&mut self, core: u32, txn: &FsbTransaction, line: u64) {
        match txn.kind {
            FsbKind::ReadLine | FsbKind::ReadInvalidateLine => {
                let write = txn.kind == FsbKind::ReadInvalidateLine;
                let hit = self.cc.access_line(line, write);
                let c = self.core_mut(core);
                c.accesses += 1;
                c.misses += u64::from(!hit);
                if let Some(pf) = &mut self.prefetcher {
                    self.prefetch_buf.clear();
                    pf.observe(line, hit, &mut self.prefetch_buf);
                    for i in 0..self.prefetch_buf.len() {
                        let target = self.prefetch_buf[i];
                        if self.cc.prefetch_line(target) {
                            self.prefetch_issued_to_memory += 1;
                        }
                    }
                }
            }
            FsbKind::WriteLine => {
                if self.cc.receive_writeback(line) {
                    self.wb_absorbed += 1;
                } else {
                    self.wb_to_memory += 1;
                }
            }
            // The AF routes every message-window transaction to the
            // codec, so this arm fires only if the filter and the data
            // path ever disagree on classification — a protocol bug a
            // degraded channel must surface as a counter, not a panic.
            FsbKind::Message => {
                self.data_path_messages += 1;
                return;
            }
        }
        // Merging per-bank counters for the sampler is the single most
        // expensive step of a quiet transaction, so it only happens when
        // the tick would actually record a sample.
        if self.sampler.due(txn.cycle) {
            let s = self.stats();
            self.sampler
                .tick(txn.cycle, self.af.instructions(), s.accesses, s.misses);
        }
    }

    fn core_mut(&mut self, core: u32) -> &mut CoreCounters {
        let idx = core as usize;
        if idx >= self.per_core.len() {
            self.per_core.resize(idx + 1, CoreCounters::default());
        }
        &mut self.per_core[idx]
    }

    /// Demand counters merged across banks.
    pub fn stats(&self) -> CacheStats {
        self.cc.stats()
    }

    /// LLC misses per 1000 instructions, using the instruction count
    /// SoftSDV last reported — the y-axis of Figures 4–6.
    pub fn mpki(&self) -> f64 {
        self.stats().mpki(self.af.instructions())
    }

    /// Per-core demand counters.
    pub fn per_core(&self) -> &[CoreCounters] {
        &self.per_core
    }

    /// The 500 µs counter time series.
    pub fn samples(&self) -> &[crate::sampler::Sample] {
        self.sampler.samples()
    }

    /// The address filter (window state, exclusion counters).
    pub fn address_filter(&self) -> &AddressFilter {
        &self.af
    }

    /// Writebacks absorbed by the emulated LLC.
    pub fn writebacks_absorbed(&self) -> u64 {
        self.wb_absorbed
    }

    /// Writebacks that missed the LLC and went to memory.
    pub fn writebacks_to_memory(&self) -> u64 {
        self.wb_to_memory
    }

    /// Prefetch fills that caused memory traffic.
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_issued_to_memory
    }

    /// Per-bank counters, as the CB reads each cache controller.
    pub fn bank_stats(&self) -> Vec<CacheStats> {
        self.cc.bank_stats()
    }

    /// Total lines resident across the LLC banks (for occupancy
    /// invariants: residency can never exceed capacity).
    pub fn resident_lines(&self) -> u64 {
        self.cc.resident_lines()
    }

    /// Desynchronizations the protocol decoder detected and recovered
    /// from (orphan payload halves).
    pub fn desyncs_detected(&self) -> u64 {
        self.af.protocol_stats().desyncs
    }

    /// Transactions quarantined anywhere on the board: undefined message
    /// kinds at the decoder, implausible decoded messages at the filter,
    /// and message-kind transactions that leaked into the data path.
    pub fn transactions_quarantined(&self) -> u64 {
        self.af.protocol_stats().quarantined + self.af.quarantined() + self.data_path_messages
    }

    /// Message transactions whose cycle stamps ran backwards.
    pub fn cycle_regressions(&self) -> u64 {
        self.af.protocol_stats().cycle_regressions
    }

    /// Closes out the sampler's trailing partial interval at `cycle`
    /// (see [`Sampler::flush`]); call once when the run ends so the tail
    /// of the 500 µs time series is not lost.
    ///
    /// # Errors
    ///
    /// Returns the [`SamplerError`] if `cycle` is behind the newest
    /// recorded sample (the host and emulator clocks desynchronized).
    pub fn flush(&mut self, cycle: u64) -> Result<(), SamplerError> {
        self.sampler.flush(
            cycle,
            self.af.instructions(),
            self.stats().accesses,
            self.stats().misses,
        )
    }

    /// Exports every board counter into `reg` as labeled series: the
    /// merged LLC demand counters, per-bank CC counters (`bank` label),
    /// per-core attribution (`core` label), AF window counters, and the
    /// writeback/prefetch memory-traffic split.
    pub fn export_metrics(&self, reg: &mut MetricRegistry) {
        let llc = self.stats();
        let none = Labels::none();
        reg.count("llc_accesses", &none, llc.accesses);
        reg.count("llc_hits", &none, llc.hits);
        reg.count("llc_misses", &none, llc.misses);
        reg.count("llc_evictions", &none, llc.evictions);
        reg.count("llc_writebacks", &none, llc.writebacks);
        for (i, b) in self.cc.bank_stats().iter().enumerate() {
            let l = Labels::none().with("bank", i.to_string());
            reg.count("llc_bank_accesses", &l, b.accesses);
            reg.count("llc_bank_misses", &l, b.misses);
        }
        for (i, c) in self.per_core.iter().enumerate() {
            let l = Labels::none().with("core", i.to_string());
            reg.count("core_llc_accesses", &l, c.accesses);
            reg.count("core_llc_misses", &l, c.misses);
        }
        reg.count("af_excluded", &none, self.af.excluded());
        reg.count("af_decode_errors", &none, self.af.decode_errors());
        reg.count("instructions_reported", &none, self.af.instructions());
        reg.count("writebacks_absorbed", &none, self.wb_absorbed);
        reg.count("writebacks_to_memory", &none, self.wb_to_memory);
        reg.count("prefetch_fills", &none, self.prefetch_issued_to_memory);
        // Channel-anomaly counters are exported only when an anomaly
        // occurred, so a clean run's telemetry is byte-identical to
        // builds that predate fault tolerance.
        for (name, v) in [
            ("desyncs_detected", self.desyncs_detected()),
            ("transactions_quarantined", self.transactions_quarantined()),
            ("cycle_regressions", self.cycle_regressions()),
        ] {
            if v > 0 {
                reg.count(name, &none, v);
            }
        }
        reg.gauge("llc_mpki", &none, self.mpki());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::{Addr, Message, MessageCodec};

    fn board(size: u64, line: u64) -> Dragonhead {
        Dragonhead::new(DragonheadConfig::new(
            CacheConfig::lru(size, line, 16).unwrap(),
        ))
    }

    fn open(dh: &mut Dragonhead) {
        for t in MessageCodec::encode(Message::Start, 0) {
            dh.observe(&t);
        }
    }

    fn read(dh: &mut Dragonhead, cycle: u64, addr: u64) {
        dh.observe(&FsbTransaction::new(
            cycle,
            FsbKind::ReadLine,
            Addr::new(addr),
        ));
    }

    #[test]
    fn closed_window_emulates_nothing() {
        let mut dh = board(1 << 20, 64);
        read(&mut dh, 0, 0x1000);
        assert_eq!(dh.stats().accesses, 0);
        assert_eq!(dh.address_filter().excluded(), 1);
    }

    #[test]
    fn large_lines_turn_neighbor_misses_into_hits() {
        let mut small = board(1 << 20, 64);
        let mut large = board(1 << 20, 1024);
        open(&mut small);
        open(&mut large);
        // 16 sequential 64-byte transactions = 16 small lines, 1 large.
        for i in 0..16u64 {
            read(&mut small, i, i * 64);
            read(&mut large, i, i * 64);
        }
        assert_eq!(small.stats().misses, 16);
        assert_eq!(large.stats().misses, 1);
        assert_eq!(large.stats().hits, 15);
    }

    #[test]
    fn per_core_attribution_follows_core_id() {
        let mut dh = board(1 << 20, 64);
        open(&mut dh);
        for t in MessageCodec::encode(Message::CoreId(2), 0) {
            dh.observe(&t);
        }
        read(&mut dh, 1, 0x8000);
        for t in MessageCodec::encode(Message::CoreId(5), 0) {
            dh.observe(&t);
        }
        read(&mut dh, 2, 0x8000);
        let pc = dh.per_core();
        assert_eq!(pc[2].accesses, 1);
        assert_eq!(pc[2].misses, 1);
        assert_eq!(pc[5].accesses, 1);
        assert_eq!(pc[5].misses, 0, "second read hits");
    }

    #[test]
    fn mpki_uses_reported_instructions() {
        let mut dh = board(1 << 20, 64);
        open(&mut dh);
        for i in 0..10u64 {
            read(&mut dh, i, i * 4096 * 64); // all misses (distinct sets)
        }
        for t in MessageCodec::encode(Message::InstructionsRetired(10_000), 10) {
            dh.observe(&t);
        }
        assert!((dh.mpki() - 1.0).abs() < 1e-9, "mpki {}", dh.mpki());
    }

    #[test]
    fn sampler_produces_series() {
        let mut dh = Dragonhead::new(DragonheadConfig {
            sample_period: 10,
            ..DragonheadConfig::new(CacheConfig::lru(1 << 20, 64, 16).unwrap())
        });
        open(&mut dh);
        for i in 0..100u64 {
            read(&mut dh, i, i * 64);
        }
        assert!(dh.samples().len() >= 9, "samples {}", dh.samples().len());
    }

    #[test]
    fn prefetcher_reduces_streaming_misses() {
        let base_cfg = CacheConfig::lru(1 << 20, 64, 16).unwrap();
        let mut off = Dragonhead::new(DragonheadConfig::new(base_cfg));
        let mut on =
            Dragonhead::new(DragonheadConfig::new(base_cfg).with_prefetch(StrideConfig::default()));
        open(&mut off);
        open(&mut on);
        for i in 0..2000u64 {
            read(&mut off, i, i * 64);
            read(&mut on, i, i * 64);
        }
        assert!(
            on.stats().misses * 2 < off.stats().misses,
            "prefetch on {} vs off {}",
            on.stats().misses,
            off.stats().misses
        );
        assert!(on.prefetch_fills() > 0);
    }

    #[test]
    fn flush_closes_trailing_interval() {
        let mut dh = Dragonhead::new(DragonheadConfig {
            sample_period: 100,
            ..DragonheadConfig::new(CacheConfig::lru(1 << 20, 64, 16).unwrap())
        });
        open(&mut dh);
        for i in 0..25u64 {
            read(&mut dh, i * 10, i * 64); // last access at cycle 240
        }
        assert_eq!(dh.samples().len(), 2, "boundaries at 100 and 200");
        dh.flush(240).unwrap();
        assert_eq!(dh.samples().len(), 3);
        let tail = dh.samples().last().unwrap();
        assert_eq!(tail.cycle, 240);
        assert_eq!(tail.accesses, 25);
    }

    #[test]
    fn export_metrics_partitions_by_core_and_bank() {
        let mut dh = board(1 << 20, 64);
        open(&mut dh);
        for t in MessageCodec::encode(Message::CoreId(1), 0) {
            dh.observe(&t);
        }
        for i in 0..8u64 {
            read(&mut dh, i, i * 64);
        }
        let mut reg = cmpsim_telemetry::MetricRegistry::new();
        dh.export_metrics(&mut reg);
        assert_eq!(reg.counter_total("llc_accesses"), 8);
        assert_eq!(reg.counter_total("llc_bank_accesses"), 8);
        assert_eq!(reg.counter_total("core_llc_accesses"), 8);
        assert_eq!(
            reg.counter_value(
                "core_llc_accesses",
                &cmpsim_telemetry::Labels::none().with("core", "1")
            ),
            8
        );
    }

    #[test]
    fn writeback_paths_accounted() {
        let mut dh = board(1 << 20, 64);
        open(&mut dh);
        read(&mut dh, 0, 0x4000);
        dh.observe(&FsbTransaction::new(
            1,
            FsbKind::WriteLine,
            Addr::new(0x4000),
        ));
        dh.observe(&FsbTransaction::new(
            2,
            FsbKind::WriteLine,
            Addr::new(0xF000_0000),
        ));
        assert_eq!(dh.writebacks_absorbed(), 1);
        assert_eq!(dh.writebacks_to_memory(), 1);
    }
}
