//! The AF (address filter) FPGA: message decoding, window tracking, and
//! core attribution.

use cmpsim_trace::{FsbTransaction, Message, MessageCodec, MessageDecodeError, ProtocolStats};

/// The largest core id the filter will believe. The hardware attributes
/// traffic to a handful of virtual cores; a core id beyond this bound
/// can only be a corrupted message, and accepting it would let one bad
/// transaction allocate an absurd per-core counter table downstream.
pub const MAX_PLAUSIBLE_CORES: u32 = 4096;

/// What the address filter decided about one bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterOutcome {
    /// A data transaction inside the emulation window, attributed to the
    /// given virtual core: forward to the cache controllers.
    Emulate {
        /// The virtual core that owns the current time slice.
        core: u32,
    },
    /// A data transaction outside the start/stop window (host OS or
    /// simulator traffic): dropped.
    Excluded,
    /// A decoded control message (already applied to filter state).
    Control(Message),
    /// A malformed message-window transaction.
    Malformed(MessageDecodeError),
    /// A message that decoded but failed a plausibility check
    /// (implausible core id, counter running backwards): the filter
    /// state is left untouched and the message is counted, not applied.
    Quarantined(Message),
}

/// Address-filter state machine.
///
/// Tracks the emulation window (§3.3: "Start and stop emulation allows
/// the emulator to avoid memory accesses outside of the simulated
/// workload") and the current core id, and keeps the instruction/cycle
/// counters last reported by SoftSDV for synchronized statistics.
#[derive(Debug, Clone, Default)]
pub struct AddressFilter {
    codec: MessageCodec,
    window_open: bool,
    core: u32,
    instructions: u64,
    cycles: u64,
    excluded: u64,
    decode_errors: u64,
    quarantined: u64,
}

impl AddressFilter {
    /// Creates a filter with the window closed and core 0 active.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the emulation window is currently open.
    pub fn window_open(&self) -> bool {
        self.window_open
    }

    /// The active virtual core id.
    pub fn core(&self) -> u32 {
        self.core
    }

    /// Instructions retired, as last reported by SoftSDV.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Cycles completed, as last reported by SoftSDV.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Data transactions dropped for being outside the window.
    pub fn excluded(&self) -> u64 {
        self.excluded
    }

    /// Message transactions that failed to decode.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Decoder anomaly counters (desyncs, quarantined kinds, cycle
    /// regressions) accumulated by the protocol state machine.
    pub fn protocol_stats(&self) -> &ProtocolStats {
        self.codec.stats()
    }

    /// Messages the filter quarantined at the plausibility layer:
    /// implausible core ids and counters running backwards. Transactions
    /// quarantined for undefined kind bits are counted separately in
    /// [`protocol_stats`](AddressFilter::protocol_stats).
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// A decoded message is applied only if it is plausible; a fault on
    /// the channel can produce well-formed messages carrying garbage.
    fn apply(&mut self, msg: Message) -> FilterOutcome {
        match msg {
            Message::Start => self.window_open = true,
            Message::Stop => self.window_open = false,
            Message::CoreId(c) => {
                if c >= MAX_PLAUSIBLE_CORES {
                    self.quarantined += 1;
                    return FilterOutcome::Quarantined(msg);
                }
                self.core = c;
            }
            // SoftSDV reports cumulative totals: a value running
            // backwards is channel corruption, not progress.
            Message::InstructionsRetired(v) => {
                if v < self.instructions {
                    self.quarantined += 1;
                    return FilterOutcome::Quarantined(msg);
                }
                self.instructions = v;
            }
            Message::CyclesCompleted(v) => {
                if v < self.cycles {
                    self.quarantined += 1;
                    return FilterOutcome::Quarantined(msg);
                }
                self.cycles = v;
            }
        }
        FilterOutcome::Control(msg)
    }

    /// Processes one bus transaction.
    pub fn filter(&mut self, txn: &FsbTransaction) -> FilterOutcome {
        if txn.is_message() {
            return match self.codec.decode(txn) {
                Ok(Some(msg)) => self.apply(msg),
                Ok(None) => FilterOutcome::Control(Message::CyclesCompleted(self.cycles)),
                Err(e) => {
                    self.decode_errors += 1;
                    FilterOutcome::Malformed(e)
                }
            };
        }
        if self.window_open {
            FilterOutcome::Emulate { core: self.core }
        } else {
            self.excluded += 1;
            FilterOutcome::Excluded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::{Addr, FsbKind};

    fn data(addr: u64) -> FsbTransaction {
        FsbTransaction::new(0, FsbKind::ReadLine, Addr::new(addr))
    }

    fn send(af: &mut AddressFilter, msg: Message) {
        for t in MessageCodec::encode(msg, 0) {
            af.filter(&t);
        }
    }

    #[test]
    fn window_closed_by_default() {
        let mut af = AddressFilter::new();
        assert_eq!(af.filter(&data(0x1000)), FilterOutcome::Excluded);
        assert_eq!(af.excluded(), 1);
    }

    #[test]
    fn start_opens_stop_closes() {
        let mut af = AddressFilter::new();
        send(&mut af, Message::Start);
        assert!(matches!(
            af.filter(&data(0x1000)),
            FilterOutcome::Emulate { core: 0 }
        ));
        send(&mut af, Message::Stop);
        assert_eq!(af.filter(&data(0x1000)), FilterOutcome::Excluded);
    }

    #[test]
    fn core_id_attributes_traffic() {
        let mut af = AddressFilter::new();
        send(&mut af, Message::Start);
        send(&mut af, Message::CoreId(7));
        assert!(matches!(
            af.filter(&data(0x40)),
            FilterOutcome::Emulate { core: 7 }
        ));
    }

    #[test]
    fn counters_are_tracked() {
        let mut af = AddressFilter::new();
        send(&mut af, Message::InstructionsRetired(123_456_789_000));
        send(&mut af, Message::CyclesCompleted(42));
        assert_eq!(af.instructions(), 123_456_789_000);
        assert_eq!(af.cycles(), 42);
    }

    #[test]
    fn implausible_core_id_is_quarantined() {
        let mut af = AddressFilter::new();
        send(&mut af, Message::CoreId(3));
        let msg = Message::CoreId(MAX_PLAUSIBLE_CORES);
        for t in MessageCodec::encode(msg, 0) {
            assert_eq!(af.filter(&t), FilterOutcome::Quarantined(msg));
        }
        assert_eq!(af.core(), 3, "corrupt core id must not be applied");
        assert_eq!(af.quarantined(), 1);
    }

    #[test]
    fn counter_regression_is_quarantined() {
        let mut af = AddressFilter::new();
        send(&mut af, Message::InstructionsRetired(1_000));
        send(&mut af, Message::InstructionsRetired(400));
        assert_eq!(af.instructions(), 1_000, "counters only move forward");
        send(&mut af, Message::CyclesCompleted(90));
        send(&mut af, Message::CyclesCompleted(80));
        assert_eq!(af.cycles(), 90);
        assert_eq!(af.quarantined(), 2);
        // Plausible progress is still accepted afterwards.
        send(&mut af, Message::InstructionsRetired(2_000));
        assert_eq!(af.instructions(), 2_000);
    }

    #[test]
    fn protocol_stats_surface_codec_anomalies() {
        let mut af = AddressFilter::new();
        let pair = MessageCodec::encode(Message::InstructionsRetired(1 << 40), 0);
        af.filter(&pair[0]); // orphan high half
        send(&mut af, Message::Start); // interrupts the pair: desync
        assert_eq!(af.protocol_stats().desyncs, 1);
    }

    #[test]
    fn malformed_messages_counted() {
        let mut af = AddressFilter::new();
        let bad = FsbTransaction::new(
            0,
            FsbKind::Message,
            Addr::new(cmpsim_trace::MSG_WINDOW_BASE | (15 << 38)),
        );
        assert!(matches!(af.filter(&bad), FilterOutcome::Malformed(_)));
        assert_eq!(af.decode_errors(), 1);
    }
}
