#![warn(missing_docs)]

//! Software model of the **Dragonhead** FPGA passive cache emulator
//! (§3.1 of the paper).
//!
//! The real Dragonhead is a board of six FPGAs snooping the front-side
//! bus:
//!
//! * **AF** (address filter) receives FSB transactions from the logic
//!   analyzer interface and "sends them to CC after regulation" — it
//!   decodes the co-simulation messages, tracks the start/stop emulation
//!   window, and tags transactions with the active virtual core;
//! * **CC0–CC3** (cache controllers) emulate the configured shared LLC,
//!   bank-interleaved four ways;
//! * **CB** (collection board) configures the others and collects
//!   performance counters, which "a host computer reads ... every 500
//!   microseconds".
//!
//! This crate models each stage with the same division of labor:
//! [`AddressFilter`], [`BankedCache`], and [`Sampler`] compose into
//! [`Dragonhead`], which implements the platform's
//! `FsbListener`-shaped interface (see the `cmpsim-softsdv` crate) via
//! [`Dragonhead::observe`] (kept dependency-free of the softsdv crate;
//! the `cmpsim-core` crate provides the glue).
//!
//! The emulated cache range matches the hardware: 1 MB–256 MB capacity,
//! 64 B–4096 B lines, LRU replacement, shared across all cores. An
//! optional stride prefetcher can be attached for the §4.4 study.
//!
//! # Example
//!
//! ```
//! use cmpsim_cache::CacheConfig;
//! use cmpsim_dragonhead::{Dragonhead, DragonheadConfig};
//! use cmpsim_trace::{Addr, FsbKind, FsbTransaction, Message, MessageCodec};
//!
//! let cfg = DragonheadConfig::new(CacheConfig::lru(1 << 20, 64, 16)?);
//! let mut dh = Dragonhead::new(cfg);
//! for txn in MessageCodec::encode(Message::Start, 0) {
//!     dh.observe(&txn);
//! }
//! dh.observe(&FsbTransaction::new(1, FsbKind::ReadLine, Addr::new(0x4000)));
//! dh.observe(&FsbTransaction::new(2, FsbKind::ReadLine, Addr::new(0x4000)));
//! assert_eq!(dh.stats().misses, 1);
//! assert_eq!(dh.stats().hits, 1);
//! # Ok::<(), cmpsim_cache::ConfigError>(())
//! ```

pub mod af;
pub mod cc;
pub mod emulator;
pub mod replay;
pub mod sampler;

pub use af::{AddressFilter, FilterOutcome, MAX_PLAUSIBLE_CORES};
pub use cc::BankedCache;
pub use emulator::{Dragonhead, DragonheadConfig};
pub use replay::{replay, replay_chunks, BATCH_TRANSACTIONS};
pub use sampler::{Sample, Sampler, SamplerError};
