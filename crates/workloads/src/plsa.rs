//! PLSA — parallel linear-space sequence alignment (§2.4).
//!
//! Smith–Waterman local alignment of two DNA sequences with the
//! linear-space row recurrence, parallelized the way the paper's cited
//! implementation (Li et al., Euro-Par'05) does: the DP matrix is split
//! into per-thread *column strips*; thread *t* can compute row *r* of its
//! strip only after thread *t−1* has produced the boundary cell of row
//! *r*, so the computation proceeds as a pipelined wavefront.
//!
//! Memory behaviour this reproduces (paper §4.2–4.3): the inner loop is
//! load/store dominated (83 % memory instructions — the highest of all
//! eight workloads), the row buffers are small and reused constantly
//! (lowest L2 MPKI, highest IPC), and the per-thread state is tiny, so
//! the LLC curve barely moves when scaling 8 → 32 cores.

use crate::datagen;
use crate::mix::OpMix;
use crate::scale::Scale;
use crate::spec::{DatasetSpec, KernelTracer, ThreadKernel, Workload, WorkloadId};
use cmpsim_trace::{AddressSpace, Region};
use std::sync::{Arc, Mutex};

/// Match/mismatch/gap scores (linear gap model).
const MATCH: f32 = 2.0;
const MISMATCH: f32 = -1.0;
const GAP: f32 = -2.0;

#[derive(Debug)]
struct PlsaShared {
    seq_a: Vec<u8>,
    seq_b: Vec<u8>,
    seq_a_region: Region,
    seq_b_region: Region,
    /// Rows completed per thread (wavefront progress).
    progress: Mutex<Vec<u64>>,
    /// Boundary H values: `boundary[t][r]` = H at the last column of
    /// thread t's strip in row r.
    boundary: Mutex<Vec<Vec<f32>>>,
    /// Best local-alignment score seen anywhere (the workload's result).
    best: Arc<Mutex<f32>>,
}

/// The PLSA workload: see the module docs.
#[derive(Debug)]
pub struct Plsa {
    scale: Scale,
    shared_space: AddressSpace,
    seq_a: Vec<u8>,
    seq_b: Vec<u8>,
    seq_a_region: Region,
    seq_b_region: Region,
    result: Arc<Mutex<f32>>,
}

impl Plsa {
    /// Builds the workload: two related DNA sequences of paper length
    /// 30 000 (scaled).
    pub fn new(scale: Scale, seed: u64) -> Self {
        let n = scale.count(30_000) as usize;
        let seq_a = datagen::dna_sequence(n, seed);
        // 70% similar so real high-scoring local alignments exist.
        let seq_b = datagen::related_dna_sequence(&seq_a, 0.7, seed ^ 1);
        let mut space = AddressSpace::new();
        let seq_a_region = space.alloc_pages("plsa.seq_a", n as u64);
        let seq_b_region = space.alloc_pages("plsa.seq_b", n as u64);
        Plsa {
            scale,
            shared_space: space,
            seq_a,
            seq_b,
            seq_a_region,
            seq_b_region,
            result: Arc::new(Mutex::new(0.0)),
        }
    }

    /// Sequence length at this scale.
    pub fn seq_len(&self) -> usize {
        self.seq_a.len()
    }

    /// Best local-alignment score found by the most recent completed run
    /// (0.0 before any run finishes).
    pub fn best_score(&self) -> f32 {
        *self.result.lock().expect("result lock")
    }
}

impl Workload for Plsa {
    fn id(&self) -> WorkloadId {
        WorkloadId::Plsa
    }

    fn make_threads(&self, threads: usize) -> Vec<Box<dyn ThreadKernel>> {
        assert!(threads > 0, "at least one thread");
        let n = self.seq_a.len();
        let shared = Arc::new(PlsaShared {
            seq_a: self.seq_a.clone(),
            seq_b: self.seq_b.clone(),
            seq_a_region: self.seq_a_region.clone(),
            seq_b_region: self.seq_b_region.clone(),
            progress: Mutex::new(vec![0; threads]),
            boundary: Mutex::new(vec![vec![0.0; n + 1]; threads]),
            best: Arc::clone(&self.result),
        });
        let mut space = self.shared_space.clone();
        let strip = n / threads;
        // Allocate all per-thread regions first so each kernel can also
        // address its *neighbor's* boundary buffer (the wavefront relay
        // reads the previous strip's right edge).
        let mut rows_regions = Vec::with_capacity(threads);
        let mut boundary_regions = Vec::with_capacity(threads);
        for t in 0..threads {
            let col_start = t * strip;
            let col_end = if t + 1 == threads { n } else { (t + 1) * strip };
            let width = col_end - col_start;
            rows_regions
                .push(space.alloc_pages(&format!("plsa.rows.t{t}"), (2 * (width + 1) * 4) as u64));
            boundary_regions
                .push(space.alloc_pages(&format!("plsa.boundary.t{t}"), ((n + 1) * 4) as u64));
        }
        let mut kernels: Vec<Box<dyn ThreadKernel>> = Vec::with_capacity(threads);
        for t in 0..threads {
            let col_start = t * strip;
            let col_end = if t + 1 == threads { n } else { (t + 1) * strip };
            let width = col_end - col_start;
            kernels.push(Box::new(PlsaThread {
                shared: Arc::clone(&shared),
                tid: t,
                col_start,
                width,
                prev: vec![0.0; width + 1],
                cur: vec![0.0; width + 1],
                rows_region: rows_regions[t].clone(),
                boundary_region: boundary_regions[t].clone(),
                west_boundary_region: t.checked_sub(1).map(|p| boundary_regions[p].clone()),
                row: 0,
                best: 0.0,
                rows_per_step: (8192 / width.max(1)).max(1),
                mix: OpMix::for_workload(WorkloadId::Plsa),
            }));
        }
        kernels
    }

    fn footprint(&self) -> u64 {
        self.shared_space.footprint()
    }

    fn dataset(&self) -> DatasetSpec {
        DatasetSpec {
            workload: WorkloadId::Plsa,
            parameters: format!("two sequences in {} length", self.seq_a.len()),
            input_bytes: self.scale.bytes(60 * 1024),
            provenance: "synthetic related DNA pair (70% identity) standing in for \
                         GenBank sequences"
                .to_owned(),
        }
    }
}

#[derive(Debug)]
struct PlsaThread {
    shared: Arc<PlsaShared>,
    tid: usize,
    col_start: usize,
    width: usize,
    prev: Vec<f32>,
    cur: Vec<f32>,
    rows_region: Region,
    boundary_region: Region,
    /// The previous thread's boundary region (None for thread 0); the
    /// wavefront relay reads from it, which is what makes the boundary
    /// buffers *shared* lines between adjacent cores.
    west_boundary_region: Option<Region>,
    row: usize,
    best: f32,
    rows_per_step: usize,
    mix: OpMix,
}

impl PlsaThread {
    fn rows_total(&self) -> usize {
        self.shared.seq_a.len()
    }

    /// Highest row this thread may compute right now (exclusive).
    fn row_limit(&self) -> u64 {
        if self.tid == 0 {
            self.rows_total() as u64
        } else {
            self.shared.progress.lock().expect("progress lock")[self.tid - 1]
        }
    }

    fn compute_row(&mut self, t: &mut KernelTracer<'_>) {
        let r = self.row;
        let shared = Arc::clone(&self.shared);
        let a_char = shared.seq_a[r];
        // Read a[r] once per row.
        self.mix.read(t, shared.seq_a_region.addr_at(r as u64), 1);

        // Left boundary: H of the previous strip at this row (H[r+1] of
        // column col_start-1) and the diagonal from the row above.
        let (mut west, diag_seed) = if self.tid == 0 {
            (0.0, 0.0)
        } else {
            let b = shared.boundary.lock().expect("boundary lock");
            let prev_thread = &b[self.tid - 1];
            // Reading the neighbor's boundary cells (their region).
            let west_region = self
                .west_boundary_region
                .as_ref()
                .expect("tid > 0 has a west neighbor");
            self.mix.read(t, west_region.addr_at((r as u64) * 4), 4);
            (prev_thread[r + 1], prev_thread[r])
        };
        let mut diag = diag_seed;

        let row_addr_cur = |c: u64| ((r % 2) as u64) * ((self.width as u64 + 1) * 4) + c * 4;
        let row_addr_prev = |c: u64| (((r + 1) % 2) as u64) * ((self.width as u64 + 1) * 4) + c * 4;

        self.cur[0] = west;
        for c in 0..self.width {
            let b_char = shared.seq_b[self.col_start + c];
            // Loads: b[j], prev_row[c+1]; store: cur[c+1]. The diagonal
            // and west cells stay in registers, as in a tuned kernel.
            self.mix.read(
                t,
                shared.seq_b_region.addr_at((self.col_start + c) as u64),
                1,
            );
            self.mix
                .read(t, self.rows_region.addr_at(row_addr_prev(c as u64 + 1)), 4);
            let north = self.prev[c + 1];
            let s = if a_char == b_char { MATCH } else { MISMATCH };
            let h = (diag + s).max(west + GAP).max(north + GAP).max(0.0);
            self.mix
                .write(t, self.rows_region.addr_at(row_addr_cur(c as u64 + 1)), 4);
            self.cur[c + 1] = h;
            if h > self.best {
                self.best = h;
            }
            diag = north;
            west = h;
        }

        // Publish the strip's right-edge H for the next thread.
        {
            let mut b = shared.boundary.lock().expect("boundary lock");
            b[self.tid][r + 1] = west;
            self.mix
                .write(t, self.boundary_region.addr_at((r as u64 + 1) * 4), 4);
        }
        std::mem::swap(&mut self.prev, &mut self.cur);
        self.row += 1;
        let mut p = shared.progress.lock().expect("progress lock");
        p[self.tid] = self.row as u64;
    }
}

impl ThreadKernel for PlsaThread {
    fn step(&mut self, t: &mut KernelTracer<'_>) -> bool {
        if self.row >= self.rows_total() {
            return false;
        }
        let limit = self.row_limit().min(self.rows_total() as u64);
        let mut done = 0;
        while (self.row as u64) < limit && done < self.rows_per_step {
            self.compute_row(t);
            done += 1;
        }
        if self.row >= self.rows_total() {
            // Fold the thread-local best into the workload result.
            let mut best = self.shared.best.lock().expect("best lock");
            if self.best > *best {
                *best = self.best;
            }
            return false;
        }
        true
    }
}

/// Plain quadratic-space Smith–Waterman, used as the correctness oracle.
pub fn smith_waterman_best(a: &[u8], b: &[u8]) -> f32 {
    let mut prev = vec![0.0f32; b.len() + 1];
    let mut cur = vec![0.0f32; b.len() + 1];
    let mut best = 0.0f32;
    for &ac in a {
        for (j, &bc) in b.iter().enumerate() {
            let s = if ac == bc { MATCH } else { MISMATCH };
            let h = (prev[j] + s)
                .max(cur[j] + GAP)
                .max(prev[j + 1] + GAP)
                .max(0.0);
            cur[j + 1] = h;
            if h > best {
                best = h;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0.0;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::{CountingSink, TraceSink, Tracer, VecSink};

    fn run_threads(wl: &Plsa, n: usize) -> (CountingSink, f32) {
        let mut threads = wl.make_threads(n);
        let mut sink = CountingSink::new();
        let mut running = true;
        let mut guard = 0u64;
        while running {
            running = false;
            for th in &mut threads {
                let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
                running |= th.step(&mut tr);
            }
            guard += 1;
            assert!(guard < 1_000_000, "wavefront deadlock");
        }
        (sink, 0.0)
    }

    #[test]
    fn single_thread_completes_and_traces() {
        let wl = Plsa::new(Scale::tiny(), 1);
        let (sink, _) = run_threads(&wl, 1);
        let n = wl.seq_len() as u64;
        // ~2 reads + 1 write per cell plus per-row overhead.
        assert!(sink.reads >= n * n * 2, "reads {} for n {}", sink.reads, n);
        assert!(sink.writes >= n * n, "writes {}", sink.writes);
    }

    #[test]
    fn wavefront_matches_oracle() {
        // Run the strip-parallel version and compare its best score to
        // plain Smith-Waterman.
        let wl = Plsa::new(Scale::tiny(), 2);
        let mut threads = wl.make_threads(4);
        let mut sink = cmpsim_trace::NullSink;
        let mut running = true;
        while running {
            running = false;
            for th in &mut threads {
                let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
                running |= th.step(&mut tr);
            }
        }
        let oracle = smith_waterman_best(&wl.seq_a, &wl.seq_b);
        assert!(oracle > 0.0);
        assert_eq!(
            wl.best_score(),
            oracle,
            "strip-parallel DP must match the oracle"
        );
    }

    #[test]
    fn multi_thread_work_splits() {
        let wl = Plsa::new(Scale::tiny(), 3);
        let (s1, _) = run_threads(&wl, 1);
        let (s4, _) = run_threads(&wl, 4);
        // Total cells are identical; per-row overheads differ slightly.
        let r1 = s1.reads as f64;
        let r4 = s4.reads as f64;
        assert!((r4 / r1 - 1.0).abs() < 0.1, "reads {r1} vs {r4}");
    }

    #[test]
    fn memory_fraction_near_table2() {
        let wl = Plsa::new(Scale::tiny(), 4);
        let mut threads = wl.make_threads(1);
        let mut sink = cmpsim_trace::NullSink;
        let mut total_mem = 0u64;
        let mut total_inst = 0u64;
        loop {
            let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
            let more = threads[0].step(&mut tr);
            total_mem += tr.memory_instructions();
            total_inst += tr.instructions();
            if !more {
                break;
            }
        }
        let frac = total_mem as f64 / total_inst as f64;
        assert!((frac - 0.831).abs() < 0.02, "memory fraction {frac}");
    }

    #[test]
    fn addresses_stay_inside_regions() {
        let wl = Plsa::new(Scale::with_shift(10), 5);
        let mut threads = wl.make_threads(2);
        let mut sink = VecSink::new();
        let mut running = true;
        while running {
            running = false;
            for th in &mut threads {
                let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
                running |= th.step(&mut tr);
            }
        }
        assert!(!sink.records().is_empty());
    }

    #[test]
    fn oracle_knows_identical_sequences() {
        let a = vec![0u8, 1, 2, 3, 0, 1, 2, 3];
        assert_eq!(smith_waterman_best(&a, &a), MATCH * a.len() as f32);
    }

    #[test]
    fn oracle_zero_for_disjoint_alphabets() {
        // Mismatch-only alignments score 0 under local alignment.
        let a = vec![0u8; 16];
        let b = vec![1u8; 16];
        assert_eq!(smith_waterman_best(&a, &b), 0.0);
    }
}
