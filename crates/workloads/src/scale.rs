//! Re-export of the global scale knob (defined in `cmpsim-trace` so every
//! layer of the stack — including the cache hierarchy — can scale with
//! the workloads).

pub use cmpsim_trace::Scale;
