//! Deterministic synthetic dataset generators.
//!
//! The paper's inputs are real datasets we cannot redistribute (HGBASE
//! SNP data, a cancer micro-array, GenBank sequences, the Kosarak click
//! stream, MPEG-2 footage). Each generator here produces a synthetic
//! stand-in with the *statistics that drive memory behaviour*: alphabet
//! and length for sequences, Zipf-skewed item frequencies for
//! transactions, class-correlated expression for the gene matrix, and
//! piecewise-stationary scenes with known shot boundaries for video.

use cmpsim_trace::{Pcg32, ZipfTable};

/// Mixes two integers into a well-distributed 64-bit hash
/// (splitmix64-style finalizer). Used by generators that synthesize
/// values on the fly instead of storing hundreds of megabytes.
#[inline]
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pseudo-random f32 in [0, 1) derived from two keys.
#[inline]
pub fn mix_f32(a: u64, b: u64) -> f32 {
    (mix64(a, b) >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Generates a DNA sequence (bytes 0..4 encoding A/C/G/T).
pub fn dna_sequence(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = Pcg32::seed(seed);
    (0..len).map(|_| (rng.next_u32() & 3) as u8).collect()
}

/// Generates a DNA sequence that shares `similarity` of its positions
/// with `base` (for alignment workloads, so Smith–Waterman finds real
/// high-scoring local alignments).
pub fn related_dna_sequence(base: &[u8], similarity: f64, seed: u64) -> Vec<u8> {
    let mut rng = Pcg32::seed(seed);
    base.iter()
        .map(|&b| {
            if rng.chance(similarity) {
                b
            } else {
                (rng.next_u32() & 3) as u8
            }
        })
        .collect()
}

/// A Kosarak-shaped transactional dataset: item frequencies follow a
/// Zipf law, transaction lengths are geometric-ish around the mean.
#[derive(Debug, Clone)]
pub struct TransactionSet {
    /// Transactions; item ids are *frequency ranks* (0 = most frequent),
    /// sorted ascending within a transaction and deduplicated — the order
    /// FP-growth inserts them in.
    pub transactions: Vec<Vec<u32>>,
    /// Number of distinct items.
    pub num_items: u32,
}

impl TransactionSet {
    /// Generates `count` transactions over `num_items` items with the
    /// given mean length and Zipf exponent.
    ///
    /// # Panics
    ///
    /// Panics if `num_items == 0` or `mean_len == 0`.
    pub fn generate(count: usize, num_items: u32, mean_len: usize, skew: f64, seed: u64) -> Self {
        assert!(num_items > 0 && mean_len > 0);
        let zipf = ZipfTable::new(num_items as usize, skew);
        let mut rng = Pcg32::seed(seed);
        let mut transactions = Vec::with_capacity(count);
        for _ in 0..count {
            // Length in [1, 2*mean_len).
            let len = 1 + rng.below(2 * mean_len as u64 - 1) as usize;
            let mut txn: Vec<u32> = (0..len).map(|_| zipf.sample(&mut rng) as u32).collect();
            txn.sort_unstable();
            txn.dedup();
            transactions.push(txn);
        }
        TransactionSet {
            transactions,
            num_items,
        }
    }

    /// Total item occurrences across all transactions.
    pub fn total_items(&self) -> usize {
        self.transactions.iter().map(Vec::len).sum()
    }
}

/// A gene-expression matrix with class structure: `informative` genes
/// carry signal separating two tissue classes; the rest are noise. Stored
/// row-major as `genes × samples` f32.
#[derive(Debug, Clone)]
pub struct GeneMatrix {
    /// Expression values, `genes * samples`, row-major by gene.
    pub values: Vec<f32>,
    /// Class label (0/1) per sample.
    pub labels: Vec<i8>,
    /// Number of genes (rows).
    pub genes: usize,
    /// Number of samples (columns).
    pub samples: usize,
    /// Indices of the genes that actually carry signal.
    pub informative: Vec<usize>,
}

impl GeneMatrix {
    /// Generates a matrix with `informative_count` signal genes.
    pub fn generate(genes: usize, samples: usize, informative_count: usize, seed: u64) -> Self {
        let mut rng = Pcg32::seed(seed);
        let labels: Vec<i8> = (0..samples).map(|_| (rng.next_u32() & 1) as i8).collect();
        let mut informative: Vec<usize> = (0..genes).collect();
        rng.shuffle(&mut informative);
        informative.truncate(informative_count.min(genes));
        informative.sort_unstable();
        let is_informative: Vec<bool> = {
            let mut v = vec![false; genes];
            for &g in &informative {
                v[g] = true;
            }
            v
        };
        let mut values = Vec::with_capacity(genes * samples);
        for &informative in is_informative.iter().take(genes) {
            for &label in &labels {
                let noise = rng.f64() as f32 - 0.5;
                let signal = if informative {
                    f32::from(label) * 1.5
                } else {
                    0.0
                };
                values.push(signal + noise);
            }
        }
        GeneMatrix {
            values,
            labels,
            genes,
            samples,
            informative,
        }
    }

    /// Expression of `gene` in `sample`.
    #[inline]
    pub fn at(&self, gene: usize, sample: usize) -> f32 {
        self.values[gene * self.samples + sample]
    }
}

/// A synthetic video: piecewise-stationary scenes with known shot
/// boundaries and per-scene dominant colors. Pixels are synthesized on
/// demand (a stored 200 MB clip would double host memory for no trace
/// benefit); the *kernel* still writes each decoded frame into its
/// simulated frame buffer and reads it back, so the traced behaviour
/// matches a real decoder pipeline.
#[derive(Debug, Clone)]
pub struct SyntheticVideo {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Total frames.
    pub frames: u32,
    /// First frame index of each shot, ascending, starting at 0.
    pub shot_starts: Vec<u32>,
    seed: u64,
}

impl SyntheticVideo {
    /// Generates shot structure for a clip: shots last 40–200 frames.
    pub fn generate(width: u32, height: u32, frames: u32, seed: u64) -> Self {
        let mut rng = Pcg32::seed(seed);
        let mut shot_starts = vec![0u32];
        let mut f = 0u32;
        loop {
            f += 40 + rng.below(161) as u32;
            if f >= frames {
                break;
            }
            shot_starts.push(f);
        }
        SyntheticVideo {
            width,
            height,
            frames,
            shot_starts,
            seed,
        }
    }

    /// The shot index containing `frame`.
    pub fn shot_of(&self, frame: u32) -> usize {
        match self.shot_starts.binary_search(&frame) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// Whether `frame` starts a new shot (frame 0 does not count).
    pub fn is_boundary(&self, frame: u32) -> bool {
        frame != 0 && self.shot_starts.binary_search(&frame).is_ok()
    }

    /// RGB pixel value at (frame, x, y): a per-shot base color plus
    /// deterministic texture and mild temporal noise. Consecutive frames
    /// in one shot are similar; frames across a boundary differ strongly.
    #[inline]
    pub fn pixel(&self, frame: u32, x: u32, y: u32) -> [u8; 3] {
        let shot = self.shot_of(frame) as u64;
        let base = mix64(self.seed, shot);
        let texture = mix64(base, (u64::from(x) << 20) | u64::from(y));
        let flicker = mix64(base ^ u64::from(frame), u64::from(x ^ y)) & 0x0F;
        [
            ((base & 0xFF) as u8).wrapping_add((texture & 0x3F) as u8) ^ flicker as u8,
            (((base >> 8) & 0xFF) as u8).wrapping_add(((texture >> 8) & 0x3F) as u8),
            (((base >> 16) & 0xFF) as u8).wrapping_add(((texture >> 16) & 0x3F) as u8),
        ]
    }

    /// Per-shot "view type" ground truth for the VIEWTYPE workload:
    /// 0 = global, 1 = medium, 2 = close-up, 3 = out of view, derived
    /// deterministically from the shot id.
    pub fn view_type_of_shot(&self, shot: usize) -> u8 {
        (mix64(self.seed ^ 0x5649_4557, shot as u64) & 3) as u8 // "VIEW"
    }
}

/// A synthetic document-similarity graph in CSR form. Column indices are
/// stored (they drive the gather pattern); edge weights are synthesized
/// on demand with [`mix_f32`].
#[derive(Debug, Clone)]
pub struct SimilarityCsr {
    /// Row start offsets, `docs + 1` entries.
    pub row_ptr: Vec<u64>,
    /// Column (document) indices, `nnz` entries.
    pub cols: Vec<u32>,
    /// Number of documents (rows).
    pub docs: u32,
    seed: u64,
}

impl SimilarityCsr {
    /// Generates a graph with `docs` documents and ~`nnz` edges, with
    /// mild clustering (documents link mostly to a neighborhood, the way
    /// topically-sorted document collections do).
    ///
    /// # Panics
    ///
    /// Panics if `docs == 0`.
    pub fn generate(docs: u32, nnz: u64, seed: u64) -> Self {
        assert!(docs > 0);
        let mut rng = Pcg32::seed(seed);
        let per_row = (nnz / u64::from(docs)).max(1);
        let mut row_ptr = Vec::with_capacity(docs as usize + 1);
        let mut cols = Vec::with_capacity(nnz as usize);
        row_ptr.push(0u64);
        for d in 0..docs {
            let degree = (per_row / 2 + rng.below(per_row.max(1)) + 1) as usize;
            for _ in 0..degree {
                // 70% of links fall in a +/- docs/16 neighborhood.
                let col = if rng.chance(0.7) {
                    let span = (docs / 16).max(1);
                    let off = rng.below(u64::from(span) * 2) as i64 - i64::from(span);
                    ((i64::from(d) + off).rem_euclid(i64::from(docs))) as u32
                } else {
                    rng.below(u64::from(docs)) as u32
                };
                cols.push(col);
            }
            row_ptr.push(cols.len() as u64);
        }
        SimilarityCsr {
            row_ptr,
            cols,
            docs,
            seed,
        }
    }

    /// Number of stored edges.
    pub fn nnz(&self) -> u64 {
        self.cols.len() as u64
    }

    /// Edge weight of the `k`-th stored edge, synthesized on demand.
    #[inline]
    pub fn weight(&self, k: u64) -> f32 {
        0.01 + mix_f32(self.seed, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spread() {
        assert_eq!(mix64(1, 2), mix64(1, 2));
        assert_ne!(mix64(1, 2), mix64(2, 1));
        // Low bits should not be constant across consecutive keys.
        let parity: u64 = (0..64).map(|i| mix64(7, i) & 1).sum();
        assert!(parity > 16 && parity < 48);
    }

    #[test]
    fn dna_alphabet_is_four_letters() {
        let s = dna_sequence(10_000, 3);
        assert!(s.iter().all(|&b| b < 4));
        let mut counts = [0u32; 4];
        for &b in &s {
            counts[b as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 2000), "{counts:?}");
    }

    #[test]
    fn related_sequence_matches_at_given_rate() {
        let a = dna_sequence(10_000, 4);
        let b = related_dna_sequence(&a, 0.8, 5);
        let matches = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        // 0.8 + 0.2*0.25 accidental = 0.85 expected.
        assert!((0.82..0.88).contains(&(matches as f64 / 10_000.0)));
    }

    #[test]
    fn transactions_are_sorted_dedup_zipf() {
        let ts = TransactionSet::generate(2_000, 1_000, 8, 1.1, 6);
        assert_eq!(ts.transactions.len(), 2_000);
        let mut freq = vec![0u32; 1_000];
        for t in &ts.transactions {
            assert!(t.windows(2).all(|w| w[0] < w[1]), "sorted+dedup");
            for &i in t {
                freq[i as usize] += 1;
            }
        }
        // Zipf: rank 0 much more frequent than rank 500.
        assert!(freq[0] > freq[500] * 3, "{} vs {}", freq[0], freq[500]);
    }

    #[test]
    fn gene_matrix_informative_genes_separate_classes() {
        let m = GeneMatrix::generate(500, 100, 20, 7);
        let g = m.informative[0];
        let (mut sum0, mut n0, mut sum1, mut n1) = (0.0f64, 0, 0.0f64, 0);
        for s in 0..m.samples {
            if m.labels[s] == 0 {
                sum0 += f64::from(m.at(g, s));
                n0 += 1;
            } else {
                sum1 += f64::from(m.at(g, s));
                n1 += 1;
            }
        }
        let gap = (sum1 / f64::from(n1) - sum0 / f64::from(n0)).abs();
        assert!(gap > 1.0, "informative gene gap {gap}");
    }

    #[test]
    fn video_shot_structure() {
        let v = SyntheticVideo::generate(64, 48, 1000, 8);
        assert_eq!(v.shot_starts[0], 0);
        assert!(v.shot_starts.len() > 2);
        assert!(v.shot_starts.windows(2).all(|w| w[1] > w[0]));
        let b = v.shot_starts[1];
        assert!(v.is_boundary(b));
        assert!(!v.is_boundary(b - 1));
        assert_eq!(v.shot_of(b), 1);
        assert_eq!(v.shot_of(b - 1), 0);
    }

    #[test]
    fn video_frames_similar_within_shot_different_across() {
        let v = SyntheticVideo::generate(32, 32, 1000, 9);
        let b = v.shot_starts[1];
        let diff = |f1: u32, f2: u32| -> u64 {
            let mut d = 0u64;
            for y in 0..32 {
                for x in 0..32 {
                    let p1 = v.pixel(f1, x, y);
                    let p2 = v.pixel(f2, x, y);
                    d += p1
                        .iter()
                        .zip(&p2)
                        .map(|(a, b)| u64::from(a.abs_diff(*b)))
                        .sum::<u64>();
                }
            }
            d
        };
        let within = diff(b - 2, b - 1);
        let across = diff(b - 1, b);
        assert!(across > within * 2, "across {across} within {within}");
    }

    #[test]
    fn csr_is_well_formed() {
        let m = SimilarityCsr::generate(1000, 20_000, 10);
        assert_eq!(m.row_ptr.len(), 1001);
        assert_eq!(*m.row_ptr.last().unwrap(), m.nnz());
        assert!(m.row_ptr.windows(2).all(|w| w[1] >= w[0]));
        assert!(m.cols.iter().all(|&c| c < 1000));
        // Weight synthesis is deterministic and positive.
        assert_eq!(m.weight(5), m.weight(5));
        assert!(m.weight(5) > 0.0);
    }

    #[test]
    fn csr_has_locality() {
        let m = SimilarityCsr::generate(1600, 32_000, 11);
        let mut near = 0usize;
        let mut total = 0usize;
        for d in 0..1600u32 {
            for k in m.row_ptr[d as usize]..m.row_ptr[d as usize + 1] {
                let c = m.cols[k as usize];
                let dist = (i64::from(c) - i64::from(d)).unsigned_abs();
                let wrapped = dist.min(1600 - dist);
                if wrapped <= 100 {
                    near += 1;
                }
                total += 1;
            }
        }
        assert!(near * 10 > total * 5, "near {near} of {total}");
    }
}
