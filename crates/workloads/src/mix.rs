//! Instruction-mix calibration.
//!
//! Table 2 of the paper reports, per workload, the fraction of
//! instructions that reference memory (45–83 %). Our kernels emit real
//! memory references from real traversals; the *non-memory* instructions
//! (address arithmetic, compares, branches, FP ops) are charged in bulk at
//! a per-workload ops-per-memory-access ratio derived from Table 2:
//!
//! `ops_per_mem = (1 - mem_fraction) / mem_fraction`.

use crate::spec::KernelTracer;
use cmpsim_trace::Addr;

/// Per-workload instruction-mix constants.
///
/// Use the [`read`](OpMix::read)/[`write`](OpMix::write) helpers instead
/// of raw tracer calls so every memory access automatically charges the
/// workload's share of non-memory work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Non-memory instructions charged per memory access.
    pub ops_per_mem: f64,
}

impl OpMix {
    /// Builds a mix from the paper's "% Memory Instructions" column.
    ///
    /// # Panics
    ///
    /// Panics if `mem_fraction` is not in (0, 1].
    pub fn from_memory_fraction(mem_fraction: f64) -> Self {
        assert!(
            mem_fraction > 0.0 && mem_fraction <= 1.0,
            "memory fraction must be in (0, 1], got {mem_fraction}"
        );
        OpMix {
            ops_per_mem: (1.0 - mem_fraction) / mem_fraction,
        }
    }

    /// Table 2 calibration for each workload.
    pub fn for_workload(id: crate::WorkloadId) -> Self {
        use crate::WorkloadId::*;
        let mem_pct = match id {
            Snp => 0.5075,
            SvmRfe => 0.4514,
            Mds => 0.4934,
            Shot => 0.5385,
            Fimi => 0.4710,
            Viewtype => 0.4902,
            Plsa => 0.8310,
            Rsearch => 0.4230,
        };
        Self::from_memory_fraction(mem_pct)
    }

    /// Records a load plus this workload's share of non-memory work.
    #[inline]
    pub fn read(&self, t: &mut KernelTracer<'_>, addr: Addr, size: u32) {
        t.read(addr, size);
        t.ops_f(self.ops_per_mem);
    }

    /// Records a store plus this workload's share of non-memory work.
    #[inline]
    pub fn write(&self, t: &mut KernelTracer<'_>, addr: Addr, size: u32) {
        t.write(addr, size);
        t.ops_f(self.ops_per_mem);
    }

    /// Records a read-modify-write (two memory instructions).
    #[inline]
    pub fn update(&self, t: &mut KernelTracer<'_>, addr: Addr, size: u32) {
        self.read(t, addr, size);
        self.write(t, addr, size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadId;
    use cmpsim_trace::{NullSink, TraceSink, Tracer};

    #[test]
    fn plsa_mix_reaches_83_percent_memory() {
        let mix = OpMix::for_workload(WorkloadId::Plsa);
        let mut sink = NullSink;
        let mut t = Tracer::new(&mut sink as &mut dyn TraceSink);
        for i in 0..100_000u64 {
            mix.read(&mut t, Addr::new(i * 4), 4);
        }
        let frac = t.memory_fraction();
        assert!((frac - 0.831).abs() < 0.005, "memory fraction {frac}");
    }

    #[test]
    fn rsearch_mix_reaches_42_percent_memory() {
        let mix = OpMix::for_workload(WorkloadId::Rsearch);
        let mut sink = NullSink;
        let mut t = Tracer::new(&mut sink as &mut dyn TraceSink);
        for i in 0..100_000u64 {
            mix.write(&mut t, Addr::new(i * 4), 4);
        }
        let frac = t.memory_fraction();
        assert!((frac - 0.423).abs() < 0.005, "memory fraction {frac}");
    }

    #[test]
    fn update_counts_two_memory_instructions() {
        let mix = OpMix::from_memory_fraction(0.5);
        let mut sink = NullSink;
        let mut t = Tracer::new(&mut sink as &mut dyn TraceSink);
        mix.update(&mut t, Addr::new(0), 8);
        assert_eq!(t.memory_instructions(), 2);
    }

    #[test]
    #[should_panic(expected = "memory fraction")]
    fn zero_fraction_rejected() {
        let _ = OpMix::from_memory_fraction(0.0);
    }
}
