//! SHOT — video shot-boundary detection (§2.6).
//!
//! For every consecutive frame pair, compute a 48-bin RGB color histogram
//! (16 bins per channel) and a pixel-wise difference, and declare a shot
//! boundary when both signals spike — the feature combination the paper's
//! workload uses. Threads partition the clip into contiguous segments, so
//! each thread owns a private decode ring of two frame buffers (~4 MB per
//! thread at paper scale: 720×576 RGB double-buffered plus scratch).
//!
//! Memory behaviour this reproduces (§4.3): per-thread *private* working
//! sets (category (b)) — 32 MB at 8 cores doubling to 64/128 MB at 16/32
//! cores — and a streaming constant-stride access pattern that makes SHOT
//! one of the biggest beneficiaries of large cache lines (Figure 7).

use crate::datagen::SyntheticVideo;
use crate::mix::OpMix;
use crate::scale::Scale;
use crate::spec::{DatasetSpec, KernelTracer, ThreadKernel, Workload, WorkloadId};
use cmpsim_trace::{AddressSpace, Region};
use std::sync::{Arc, Mutex};

/// Histogram bins (16 per RGB channel).
const BINS: usize = 48;
/// SIMD access width the kernel models (SSE-era 16-byte loads/stores).
const VEC: u64 = 16;
/// Histogram-difference threshold (fraction of pixels) for a boundary.
const HIST_THRESHOLD: f64 = 0.35;
/// Pixel-difference threshold (mean absolute difference per channel).
const PIXEL_THRESHOLD: f64 = 18.0;

#[derive(Debug)]
struct ShotShared {
    video: SyntheticVideo,
}

/// The SHOT workload: see the module docs.
#[derive(Debug)]
pub struct Shot {
    scale: Scale,
    space: AddressSpace,
    video: SyntheticVideo,
    frame_bytes: u64,
    result: Arc<Mutex<Vec<u32>>>,
}

impl Shot {
    /// Builds the workload: a 10-minute 720×576 clip at 25 fps (scaled:
    /// the frame area and frame count shrink together).
    pub fn new(scale: Scale, seed: u64) -> Self {
        // Scale area by the scale factor, split across both dimensions.
        let dim_shift = scale.shift() / 2;
        let extra = scale.shift() % 2;
        let width = (720u32 >> dim_shift).max(32);
        let height = ((576u32 >> dim_shift) >> extra).max(24);
        let frames = scale.count(15_000).max(200) as u32;
        let video = SyntheticVideo::generate(width, height, frames, seed);
        let frame_bytes = u64::from(width) * u64::from(height) * 3;
        Shot {
            scale,
            space: AddressSpace::new(),
            video,
            frame_bytes,
            result: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Ground-truth shot starts of the synthetic clip.
    pub fn ground_truth(&self) -> &[u32] {
        &self.video.shot_starts
    }

    /// Boundaries detected by the last completed run, ascending.
    pub fn detected_boundaries(&self) -> Vec<u32> {
        let mut v = self.result.lock().expect("result lock").clone();
        v.sort_unstable();
        v
    }

    /// Bytes of one decoded RGB frame at this scale.
    pub fn frame_bytes(&self) -> u64 {
        self.frame_bytes
    }
}

impl Workload for Shot {
    fn id(&self) -> WorkloadId {
        WorkloadId::Shot
    }

    fn make_threads(&self, threads: usize) -> Vec<Box<dyn ThreadKernel>> {
        assert!(threads > 0, "at least one thread");
        let shared = Arc::new(ShotShared {
            video: self.video.clone(),
        });
        self.result.lock().expect("result lock").clear();
        let mut space = self.space.clone();
        let frames = self.video.frames as usize;
        let per = frames.div_ceil(threads);
        (0..threads)
            .map(|t| {
                // Private double-buffered decode ring + histogram scratch.
                let ring = space.alloc_pages(&format!("shot.ring.t{t}"), self.frame_bytes * 2);
                let hist = space.alloc_pages(&format!("shot.hist.t{t}"), (BINS * 8) as u64 * 2);
                let start = (t * per).min(frames) as u32;
                let end = ((t + 1) * per).min(frames) as u32;
                Box::new(ShotThread {
                    shared: Arc::clone(&shared),
                    result: Arc::clone(&self.result),
                    ring_region: ring,
                    hist_region: hist,
                    frame_bytes: self.frame_bytes,
                    next: start,
                    end,
                    prev_hist: [0u32; BINS],
                    have_prev: false,
                    local: Vec::new(),
                    mix: OpMix::for_workload(WorkloadId::Shot),
                }) as Box<dyn ThreadKernel>
            })
            .collect()
    }

    fn footprint(&self) -> u64 {
        // Base footprint is per-run (private rings); report one thread's.
        self.frame_bytes * 2
    }

    fn dataset(&self) -> DatasetSpec {
        DatasetSpec {
            workload: WorkloadId::Shot,
            parameters: format!(
                "{} frames, {}x{} RGB",
                self.video.frames, self.video.width, self.video.height
            ),
            input_bytes: self.scale.bytes(200 << 20),
            provenance: "procedural piecewise-stationary clip with known boundaries \
                         standing in for MPEG-2 footage"
                .to_owned(),
        }
    }
}

#[derive(Debug)]
struct ShotThread {
    shared: Arc<ShotShared>,
    result: Arc<Mutex<Vec<u32>>>,
    ring_region: Region,
    hist_region: Region,
    frame_bytes: u64,
    next: u32,
    end: u32,
    prev_hist: [u32; BINS],
    have_prev: bool,
    local: Vec<u32>,
    mix: OpMix,
}

impl ShotThread {
    /// Processes one frame: decode into the ring, histogram it, and if a
    /// previous frame exists, compute the pixel diff and test for a
    /// boundary.
    fn process_frame(&mut self, t: &mut KernelTracer<'_>) {
        let video = &self.shared.video;
        let f = self.next;
        let slot = u64::from(f % 2) * self.frame_bytes;
        let prev_slot = u64::from((f + 1) % 2) * self.frame_bytes;
        let (w, h) = (video.width, video.height);

        // Decode pass: write every pixel of the current frame buffer
        // (16-byte vector stores, streaming).
        for off in (0..self.frame_bytes).step_by(VEC as usize) {
            self.mix
                .write(t, self.ring_region.addr_at(slot + off), VEC as u32);
        }

        // Histogram + diff pass: read the current frame (and previous
        // frame when present) with vector loads.
        let mut hist = [0u32; BINS];
        let mut diff_accum = 0u64;
        let mut px = 0u64;
        for y in 0..h {
            for x in 0..w {
                let p = video.pixel(f, x, y);
                hist[usize::from(p[0]) >> 4] += 1;
                hist[16 + (usize::from(p[1]) >> 4)] += 1;
                hist[32 + (usize::from(p[2]) >> 4)] += 1;
                if self.have_prev {
                    let q = video.pixel(f - 1, x, y);
                    diff_accum += u64::from(p[0].abs_diff(q[0]))
                        + u64::from(p[1].abs_diff(q[1]))
                        + u64::from(p[2].abs_diff(q[2]));
                }
                // One vector load covers VEC/3 pixels; emit per vector.
                if px.is_multiple_of(VEC / 3) {
                    let off = px * 3;
                    self.mix.read(
                        t,
                        self.ring_region
                            .addr_at(slot + off.min(self.frame_bytes - VEC)),
                        VEC as u32,
                    );
                    if self.have_prev {
                        self.mix.read(
                            t,
                            self.ring_region
                                .addr_at(prev_slot + off.min(self.frame_bytes - VEC)),
                            VEC as u32,
                        );
                    }
                }
                px += 1;
            }
        }
        // Histogram bin updates land in the private scratch region.
        for b in 0..BINS as u64 {
            self.mix.update(t, self.hist_region.addr_at(b * 8), 4);
        }

        if self.have_prev {
            let total = u64::from(w) * u64::from(h);
            let hist_diff: u64 = hist
                .iter()
                .zip(&self.prev_hist)
                .map(|(a, b)| u64::from(a.abs_diff(*b)))
                .sum();
            let hist_frac = hist_diff as f64 / (total * 3) as f64;
            let mad = diff_accum as f64 / (total * 3) as f64;
            t.ops(BINS as u64);
            if hist_frac > HIST_THRESHOLD && mad > PIXEL_THRESHOLD {
                self.local.push(f);
            }
        }
        self.prev_hist = hist;
        self.have_prev = true;
        self.next += 1;
    }
}

impl ThreadKernel for ShotThread {
    fn step(&mut self, t: &mut KernelTracer<'_>) -> bool {
        if self.next >= self.end {
            if !self.local.is_empty() {
                self.result
                    .lock()
                    .expect("result lock")
                    .append(&mut self.local);
            }
            return false;
        }
        self.process_frame(t);
        self.next < self.end || {
            // Final frame processed: flush results now.
            self.result
                .lock()
                .expect("result lock")
                .append(&mut self.local);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::{CountingSink, TraceSink, Tracer};

    fn run(wl: &Shot, threads: usize) -> CountingSink {
        let mut kernels = wl.make_threads(threads);
        let mut sink = CountingSink::new();
        let mut running = true;
        let mut guard = 0u64;
        while running {
            running = false;
            for k in &mut kernels {
                let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
                running |= k.step(&mut tr);
            }
            guard += 1;
            assert!(guard < 10_000_000, "SHOT did not terminate");
        }
        sink
    }

    #[test]
    fn detects_most_true_boundaries() {
        let wl = Shot::new(Scale::tiny(), 1);
        let _ = run(&wl, 1);
        let detected = wl.detected_boundaries();
        let truth: Vec<u32> = wl.ground_truth()[1..].to_vec();
        assert!(!truth.is_empty());
        let hits = truth.iter().filter(|b| detected.contains(b)).count();
        // Recall: the synthetic boundaries are strong; most must be found.
        assert!(
            hits * 10 >= truth.len() * 7,
            "recall {hits}/{} detected={detected:?} truth={truth:?}",
            truth.len()
        );
    }

    #[test]
    fn few_false_positives() {
        let wl = Shot::new(Scale::tiny(), 2);
        let _ = run(&wl, 1);
        let detected = wl.detected_boundaries();
        let truth = wl.ground_truth();
        let false_pos = detected.iter().filter(|f| !truth.contains(f)).count();
        assert!(
            false_pos * 5 <= detected.len().max(1),
            "false positives {false_pos} of {}",
            detected.len()
        );
    }

    #[test]
    fn write_share_is_high() {
        // Decode writes a full frame per frame: Table 2 gives SHOT the
        // highest store share of the eight workloads.
        let wl = Shot::new(Scale::tiny(), 3);
        let sink = run(&wl, 1);
        let store_frac = sink.writes as f64 / (sink.reads + sink.writes) as f64;
        assert!(store_frac > 0.25, "store fraction {store_frac}");
    }

    #[test]
    fn segment_split_covers_all_frames() {
        let wl = Shot::new(Scale::tiny(), 4);
        let s1 = run(&wl, 1);
        let s4 = run(&wl, 4);
        // Same frames processed -> within a few % of the same traffic
        // (boundary frames at segment edges lose their diff pass).
        let ratio = s4.total() as f64 / s1.total() as f64;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }
}
