//! SVM-RFE — recursive feature elimination for gene selection (§2.2).
//!
//! At each RFE step a classifier is trained on the active genes, genes
//! are scored, and the lowest-scoring half is discarded — repeated until
//! a small informative subset remains. Following the paper's footnote
//! ("SVM-RFE behaves different from \[14\] due to *data blocking*
//! optimizations"), the gene matrix is processed in 4 MB blocks with
//! several passes per block, which is precisely what gives the workload
//! its 4 MB working set in Figure 4.
//!
//! The per-step classifier is a one-pass linear scorer (class-correlation
//! criterion) rather than a full SMO solve; the elimination loop, the
//! blocked traversal, and the matrix layout are the real thing, and the
//! test suite checks that RFE actually recovers the informative genes
//! planted by the generator.
//!
//! Sharing category (a): all threads work on the *same* block of the
//! shared matrix; per-thread private state is a score slice. Thread
//! scaling leaves the LLC curve essentially unchanged (Figures 5–6).

use crate::datagen::GeneMatrix;
use crate::mix::OpMix;
use crate::scale::Scale;
use crate::spec::{DatasetSpec, KernelTracer, ThreadKernel, Workload, WorkloadId};
use cmpsim_trace::{AddressSpace, Region};
use std::sync::{Arc, Mutex};

/// Bytes per processing block at paper scale (the data-blocking window).
const BLOCK_BYTES_PAPER: u64 = 4 << 20;
/// Passes over each block per RFE step (score, margin, update, and
/// convergence check — the passes a blocked SVM implementation makes).
const PASSES: usize = 4;
/// Fraction of active genes eliminated per RFE step.
const ELIMINATE: f64 = 0.5;
/// Stop when this many genes remain.
const TARGET_GENES: usize = 32;
/// Cross-validation folds: the full RFE elimination is repeated once per
/// fold (as the original SVM-RFE protocol does), which also amortizes
/// cold misses so the blocked working set dominates the steady state.
const FOLDS: usize = 3;

#[derive(Debug)]
struct RfeState {
    /// Current cross-validation fold.
    fold: usize,
    /// Indices of still-active genes.
    active: Vec<u32>,
    /// Scores for the current RFE step, indexed like `active`.
    scores: Vec<f32>,
    /// Threads that have finished the current step.
    arrived: usize,
    /// RFE step number.
    step_no: usize,
    /// Set when elimination has shrunk `active` to the target.
    finished: bool,
}

#[derive(Debug)]
struct RfeShared {
    matrix: GeneMatrix,
    matrix_region: Region,
    labels_region: Region,
    scores_region: Region,
    state: Mutex<RfeState>,
    threads: usize,
    block_genes: usize,
}

/// The SVM-RFE workload: see the module docs.
#[derive(Debug)]
pub struct SvmRfe {
    scale: Scale,
    space: AddressSpace,
    matrix: GeneMatrix,
    matrix_region: Region,
    labels_region: Region,
    scores_region: Region,
    result: Arc<Mutex<Vec<u32>>>,
}

impl SvmRfe {
    /// Builds the workload: 15 000 genes × 253 samples (paper Table 1),
    /// with 64 informative genes planted.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let genes = scale.count(15_000).max(256) as usize;
        let samples = 253;
        let informative = (genes / 64).max(TARGET_GENES.min(genes));
        let matrix = GeneMatrix::generate(genes, samples, informative, seed);
        let mut space = AddressSpace::new();
        let matrix_region = space.alloc_pages("svmrfe.matrix", (genes * samples * 8) as u64);
        let labels_region = space.alloc_pages("svmrfe.labels", samples as u64);
        let scores_region = space.alloc_pages("svmrfe.scores", (genes * 4) as u64);
        SvmRfe {
            scale,
            space,
            matrix,
            matrix_region,
            labels_region,
            scores_region,
            result: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Genes surviving the last completed run (empty before any run).
    pub fn selected_genes(&self) -> Vec<u32> {
        self.result.lock().expect("result lock").clone()
    }

    /// Number of genes at this scale.
    pub fn genes(&self) -> usize {
        self.matrix.genes
    }

    /// Indices of the informative genes the generator planted.
    pub fn planted_genes(&self) -> &[usize] {
        &self.matrix.informative
    }
}

impl Workload for SvmRfe {
    fn id(&self) -> WorkloadId {
        WorkloadId::SvmRfe
    }

    fn make_threads(&self, threads: usize) -> Vec<Box<dyn ThreadKernel>> {
        assert!(threads > 0, "at least one thread");
        let bytes_per_gene = (self.matrix.samples * 8) as u64;
        let block_bytes = self
            .scale
            .bytes_floor(BLOCK_BYTES_PAPER, 16 * bytes_per_gene);
        let block_genes = (block_bytes / bytes_per_gene).max(16) as usize;
        let shared = Arc::new(RfeShared {
            matrix: self.matrix.clone(),
            matrix_region: self.matrix_region.clone(),
            labels_region: self.labels_region.clone(),
            scores_region: self.scores_region.clone(),
            state: Mutex::new(RfeState {
                fold: 0,
                active: (0..self.matrix.genes as u32).collect(),
                scores: vec![0.0; self.matrix.genes],
                arrived: 0,
                step_no: 0,
                finished: false,
            }),
            threads,
            block_genes,
        });
        (0..threads)
            .map(|t| {
                Box::new(RfeThread {
                    shared: Arc::clone(&shared),
                    result: Arc::clone(&self.result),
                    tid: t,
                    local_step: 0,
                    block_no: 0,
                    pass: 0,
                    within: 0,
                    mix: OpMix::for_workload(WorkloadId::SvmRfe),
                }) as Box<dyn ThreadKernel>
            })
            .collect()
    }

    fn footprint(&self) -> u64 {
        self.space.footprint()
    }

    fn dataset(&self) -> DatasetSpec {
        DatasetSpec {
            workload: WorkloadId::SvmRfe,
            parameters: format!(
                "{} tissue samples, each with {} genes",
                self.matrix.samples, self.matrix.genes
            ),
            input_bytes: (self.matrix.genes * self.matrix.samples * 8) as u64,
            provenance: "synthetic class-correlated expression matrix standing in for \
                         the cancer micro-array dataset"
                .to_owned(),
        }
    }
}

#[derive(Debug)]
struct RfeThread {
    shared: Arc<RfeShared>,
    result: Arc<Mutex<Vec<u32>>>,
    tid: usize,
    local_step: usize,
    /// Current block index into the active-gene list.
    block_no: usize,
    /// Current pass over the current block (data blocking: all passes
    /// complete on one block before moving to the next, so the reuse
    /// window is one block — 4 MB at paper scale).
    pass: usize,
    /// Position within the current block.
    within: usize,
    mix: OpMix,
}

impl RfeThread {
    /// Scores this thread's share of the current (block, pass). Returns
    /// true when the thread has processed every block and pass of this
    /// RFE step.
    fn score_chunk(&mut self, t: &mut KernelTracer<'_>) -> bool {
        let shared = Arc::clone(&self.shared);
        let mut state = shared.state.lock().expect("state lock");
        let active_len = state.active.len();
        let samples = shared.matrix.samples;
        let block = shared.block_genes;
        let num_blocks = active_len.div_ceil(block).max(1);
        let mut processed = 0usize;
        while self.block_no < num_blocks && processed < 64 {
            let block_start = self.block_no * block;
            let block_len = block.min(active_len - block_start);
            if self.within >= block_len {
                // Finished this pass over the block.
                self.pass += 1;
                self.within = 0;
                if self.pass >= PASSES {
                    self.pass = 0;
                    self.block_no += 1;
                }
                continue;
            }
            // Threads interleave genes within the block.
            if self.within % shared.threads != self.tid {
                self.within += 1;
                continue;
            }
            let gene = state.active[block_start + self.within] as usize;
            // One pass over the gene's row: sequential 8-byte loads, plus
            // the label byte per sample.
            let mut acc = 0.0f32;
            for s in 0..samples {
                let off = (gene * samples + s) as u64 * 8;
                self.mix.read(t, shared.matrix_region.addr_at(off), 8);
                self.mix.read(t, shared.labels_region.addr_at(s as u64), 1);
                let y = f32::from(shared.matrix.labels[s]) * 2.0 - 1.0;
                acc += shared.matrix.at(gene, s) * y;
            }
            // Fold the pass contribution into the gene's score.
            let contribution = acc.abs() / PASSES as f32;
            state.scores[gene] += contribution;
            self.mix
                .write(t, shared.scores_region.addr_at(gene as u64 * 4), 4);
            self.within += 1;
            processed += 1;
        }
        self.block_no >= num_blocks
    }

    /// Barrier + elimination, performed by the last thread to arrive.
    fn arrive_and_maybe_eliminate(&mut self) {
        let shared = Arc::clone(&self.shared);
        let mut state = shared.state.lock().expect("state lock");
        state.arrived += 1;
        if state.arrived == shared.threads {
            state.arrived = 0;
            state.step_no += 1;
            // Eliminate the lowest-scoring half.
            let mut ranked: Vec<u32> = state.active.clone();
            let scores = &state.scores;
            ranked.sort_by(|&a, &b| {
                scores[b as usize]
                    .partial_cmp(&scores[a as usize])
                    .expect("scores are finite")
            });
            let keep = ((ranked.len() as f64 * (1.0 - ELIMINATE)) as usize).max(TARGET_GENES);
            ranked.truncate(keep);
            ranked.sort_unstable();
            state.active = ranked;
            for s in state.scores.iter_mut() {
                *s = 0.0;
            }
            if state.active.len() <= TARGET_GENES {
                state.fold += 1;
                if state.fold >= FOLDS {
                    state.finished = true;
                    *self.result.lock().expect("result lock") = state.active.clone();
                } else {
                    // Next fold restarts the elimination from all genes.
                    state.active = (0..shared.matrix.genes as u32).collect();
                }
            }
        }
        self.local_step += 1;
        self.block_no = 0;
        self.pass = 0;
        self.within = 0;
    }
}

impl ThreadKernel for RfeThread {
    fn step(&mut self, t: &mut KernelTracer<'_>) -> bool {
        {
            let state = self.shared.state.lock().expect("state lock");
            if state.finished {
                return false;
            }
            if self.local_step > state.step_no {
                return true; // waiting for slower threads at the barrier
            }
        }
        if self.score_chunk(t) {
            self.arrive_and_maybe_eliminate();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::{CountingSink, TraceSink, Tracer};

    fn run(wl: &SvmRfe, threads: usize) -> CountingSink {
        let mut kernels = wl.make_threads(threads);
        let mut sink = CountingSink::new();
        let mut running = true;
        let mut guard = 0u64;
        while running {
            running = false;
            for k in &mut kernels {
                let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
                running |= k.step(&mut tr);
            }
            guard += 1;
            assert!(guard < 10_000_000, "RFE deadlock");
        }
        sink
    }

    #[test]
    fn rfe_recovers_planted_genes() {
        let wl = SvmRfe::new(Scale::tiny(), 1);
        let _ = run(&wl, 2);
        let selected = wl.selected_genes();
        assert!(!selected.is_empty());
        assert!(selected.len() <= wl.genes());
        let planted: std::collections::HashSet<u32> =
            wl.planted_genes().iter().map(|&g| g as u32).collect();
        let hits = selected.iter().filter(|g| planted.contains(g)).count();
        // At least half of the survivors must be genuinely informative.
        assert!(
            hits * 2 >= selected.len(),
            "only {hits} of {} selected genes are informative",
            selected.len()
        );
    }

    #[test]
    fn elimination_shrinks_to_target() {
        let wl = SvmRfe::new(Scale::tiny(), 2);
        let _ = run(&wl, 1);
        assert!(wl.selected_genes().len() <= TARGET_GENES.max(wl.genes() / 2));
    }

    #[test]
    fn result_invariant_to_thread_count() {
        let a = SvmRfe::new(Scale::tiny(), 3);
        let _ = run(&a, 1);
        let b = SvmRfe::new(Scale::tiny(), 3);
        let _ = run(&b, 8);
        assert_eq!(a.selected_genes(), b.selected_genes());
    }

    #[test]
    fn first_step_reads_every_active_gene_thrice() {
        let wl = SvmRfe::new(Scale::tiny(), 4);
        let sink = run(&wl, 1);
        // Matrix reads >= genes * samples * PASSES for the first RFE step
        // alone; later steps add more.
        let floor = (wl.genes() * 253 * PASSES) as u64;
        assert!(sink.reads > floor, "reads {} floor {floor}", sink.reads);
    }

    #[test]
    fn footprint_is_matrix_dominated() {
        let wl = SvmRfe::new(Scale::tiny(), 5);
        let matrix_bytes = (wl.genes() * 253 * 8) as u64;
        assert!(wl.footprint() >= matrix_bytes);
        assert!(wl.footprint() < matrix_bytes + (1 << 20));
    }
}
