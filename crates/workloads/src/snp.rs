//! SNP — Bayesian-network structure learning over SNP data (§2.1).
//!
//! Hill climbing: from the current DAG, evaluate neighbor graphs (single
//! edge additions/removals), move to the best-scoring neighbor, repeat
//! until no neighbor improves. Scoring a candidate family reads the SNP
//! data table (600 k sequences × 50 sites), consults a *score cache*
//! memoizing family scores, and maintains a *sufficient-statistics
//! table* of contingency counts.
//!
//! Memory behaviour this reproduces (Figure 4): two working-set knees —
//! around 16 MB when the hot score cache fits, and around 128 MB when the
//! statistics table and data table also fit. Sharing category (a): the
//! data table, cache, and statistics are all global; threads partition
//! candidate evaluations, so thread scaling leaves the LLC curve flat
//! (Figures 5–6).

use crate::datagen::mix64;
use crate::mix::OpMix;
use crate::scale::Scale;
use crate::spec::{DatasetSpec, KernelTracer, ThreadKernel, Workload, WorkloadId};
use cmpsim_trace::{AddressSpace, Pcg32, Region};
use std::sync::{Arc, Mutex};

/// Number of SNP sites (variables in the Bayesian network).
const SITES: usize = 50;
/// Rows sampled from the data table per family scoring.
const SCORE_SAMPLE_ROWS_PAPER: u64 = 16_384;
/// Hill-climbing restarts (each from a different seed graph).
const RESTARTS: usize = 2;
/// Candidate moves evaluated per climbing round.
const CANDIDATES_PER_ROUND: usize = 192;
/// Maximum climbing rounds per restart.
const MAX_ROUNDS: usize = 16;

/// Paper-scale region sizes (bytes): chosen so the hot score cache fits
/// at 16 MB and cache+statistics+data fit at 128 MB, the two knees the
/// paper reports for SNP.
const SCORE_CACHE_PAPER: u64 = 14 << 20;
const STAT_TABLE_PAPER: u64 = 80 << 20;
/// Statistics cells updated per computed family.
const STAT_CELLS: u64 = 64;

#[derive(Debug)]
struct SnpShared {
    /// Row-major data table: `rows × SITES` of 2-bit genotypes in bytes.
    data: Vec<u8>,
    rows: u64,
    data_region: Region,
    cache_region: Region,
    stat_region: Region,
    cache_entries: u64,
    stat_entries: u64,
    sample_rows: u64,
    state: Mutex<ClimbState>,
}

#[derive(Debug)]
struct ClimbState {
    /// Adjacency matrix of the current DAG (row = child).
    adj: Vec<bool>,
    /// Current total score.
    score: f64,
    /// Next restart to hand out.
    next_restart: usize,
    /// Best (score, restart) over all restarts.
    best: (f64, usize),
}

/// The SNP workload: see the module docs.
#[derive(Debug)]
pub struct Snp {
    space: AddressSpace,
    shared_init: SnpInit,
    result: Arc<Mutex<f64>>,
}

#[derive(Debug, Clone)]
struct SnpInit {
    data: Vec<u8>,
    rows: u64,
    data_region: Region,
    cache_region: Region,
    stat_region: Region,
    cache_entries: u64,
    stat_entries: u64,
    sample_rows: u64,
}

impl Snp {
    /// Builds the workload: 600 k sequences of 50 sites (scaled).
    pub fn new(scale: Scale, seed: u64) -> Self {
        let rows = scale.count(600_000).max(1024);
        let mut rng = Pcg32::seed(seed);
        // Genotypes 0..3 with site-dependent frequencies so family scores
        // carry real signal.
        let mut data = Vec::with_capacity((rows as usize) * SITES);
        for _ in 0..rows {
            for site in 0..SITES {
                let bias = (site % 4) as u64;
                let g = if rng.chance(0.5) { bias } else { rng.below(4) };
                data.push(g as u8);
            }
        }
        let mut space = AddressSpace::new();
        let data_region = space.alloc_pages("snp.data", rows * SITES as u64);
        let cache_bytes = scale.bytes_floor(SCORE_CACHE_PAPER, 16 << 10);
        let stat_bytes = scale.bytes_floor(STAT_TABLE_PAPER, 64 << 10);
        let cache_region = space.alloc_pages("snp.score_cache", cache_bytes);
        let stat_region = space.alloc_pages("snp.stats", stat_bytes);
        Snp {
            space,
            shared_init: SnpInit {
                data,
                rows,
                data_region,
                cache_region,
                stat_region,
                cache_entries: cache_bytes / 16,
                stat_entries: stat_bytes / 8,
                sample_rows: scale.count(SCORE_SAMPLE_ROWS_PAPER).max(256).min(rows),
            },
            result: Arc::new(Mutex::new(f64::NEG_INFINITY)),
        }
    }

    /// Best network score found by the last completed run.
    pub fn best_score(&self) -> f64 {
        *self.result.lock().expect("result lock")
    }
}

impl Workload for Snp {
    fn id(&self) -> WorkloadId {
        WorkloadId::Snp
    }

    fn make_threads(&self, threads: usize) -> Vec<Box<dyn ThreadKernel>> {
        assert!(threads > 0, "at least one thread");
        let i = &self.shared_init;
        let shared = Arc::new(SnpShared {
            data: i.data.clone(),
            rows: i.rows,
            data_region: i.data_region.clone(),
            cache_region: i.cache_region.clone(),
            stat_region: i.stat_region.clone(),
            cache_entries: i.cache_entries,
            stat_entries: i.stat_entries,
            sample_rows: i.sample_rows,
            state: Mutex::new(ClimbState {
                adj: vec![false; SITES * SITES],
                score: f64::NEG_INFINITY,
                next_restart: 0,
                best: (f64::NEG_INFINITY, 0),
            }),
        });
        let mut space = self.space.clone();
        (0..threads)
            .map(|t| {
                // 64-byte stack frame for the contingency counts.
                let stack_region = space.alloc(&format!("snp.stack.t{t}"), 64, 64);
                Box::new(SnpThread {
                    shared: Arc::clone(&shared),
                    result: Arc::clone(&self.result),
                    tid: t,
                    threads,
                    restart: 0,
                    round: 0,
                    rng: Pcg32::seed_stream(0x5A9, t as u64),
                    done: false,
                    stack_region,
                    mix: OpMix::for_workload(WorkloadId::Snp),
                }) as Box<dyn ThreadKernel>
            })
            .collect()
    }

    fn footprint(&self) -> u64 {
        self.space.footprint()
    }

    fn dataset(&self) -> DatasetSpec {
        DatasetSpec {
            workload: WorkloadId::Snp,
            parameters: format!(
                "{}k sequences, each with length {SITES}",
                self.shared_init.rows / 1000
            ),
            input_bytes: self.shared_init.rows * SITES as u64,
            provenance: "synthetic genotype table with site-dependent allele bias \
                         standing in for HGBASE"
                .to_owned(),
        }
    }
}

#[derive(Debug)]
struct SnpThread {
    shared: Arc<SnpShared>,
    result: Arc<Mutex<f64>>,
    tid: usize,
    threads: usize,
    restart: usize,
    round: usize,
    rng: Pcg32,
    done: bool,
    stack_region: Region,
    mix: OpMix,
}

impl SnpThread {
    /// Scores family (child, parent) on a row sample: reads the score
    /// cache first (hot, 16 MB region); on a model miss, streams sampled
    /// data rows and updates contingency counts in the statistics table.
    fn score_family(&mut self, t: &mut KernelTracer<'_>, child: usize, parent: usize) -> f64 {
        let shared = Arc::clone(&self.shared);
        let key = mix64(child as u64 * 64 + parent as u64, self.restart as u64);
        // Probe the score cache: the candidate family plus the child's
        // other existing families (the climber computes a score *delta*,
        // so it looks up every family the move perturbs). These probes
        // are what make the cache the hottest structure per byte and
        // produce the paper's first working-set knee near 16 MB.
        for probe in 0..8u64 {
            let slot = mix64(key, probe) % shared.cache_entries;
            self.mix.read(t, shared.cache_region.addr_at(slot * 16), 16);
        }
        // ~70% of probes hit the memoized score (the hill climber
        // re-scores the same families constantly).
        if self.rng.chance(0.7) {
            t.ops(4);
            // Deterministic memoized value.
            return (key % 1000) as f64 / 1000.0;
        }

        // Model miss: compute from data. Contingency table over the
        // sampled rows: counts[g_child][g_parent]. The counts live in a
        // small stack buffer; its accesses are traced too (they are real
        // loads and stores, and they are what keeps real DL1 hit rates
        // high for this workload).
        let mut counts = [[0u32; 4]; 4];
        let stack = self.stack_region.clone();
        let stride = (shared.rows / shared.sample_rows).max(1);
        let mut row = key % stride.max(1);
        for _ in 0..shared.sample_rows {
            let base = row * SITES as u64;
            self.mix
                .read(t, shared.data_region.addr_at(base + child as u64), 1);
            self.mix
                .read(t, shared.data_region.addr_at(base + parent as u64), 1);
            let gc = shared.data[(base + child as u64) as usize] & 3;
            let gp = shared.data[(base + parent as u64) as usize] & 3;
            counts[gc as usize][gp as usize] += 1;
            self.mix
                .update(t, stack.addr_at(u64::from(gc) * 16 + u64::from(gp) * 4), 4);
            row += stride;
            if row >= shared.rows {
                row %= shared.rows;
            }
        }
        // Update sufficient statistics for this family: contingency
        // counts over parent-configuration blocks, hash-placed in the
        // big statistics table. 64 cells per family makes the touched
        // statistics footprint the structure behind the paper's second
        // (128 MB) working-set knee.
        let stat_base = (key.rotate_left(17)) % (shared.stat_entries - STAT_CELLS);
        for cell in 0..STAT_CELLS {
            self.mix
                .update(t, shared.stat_region.addr_at((stat_base + cell) * 8), 8);
        }
        // BIC-ish local score: mutual-information estimate minus a
        // complexity penalty.
        let n = shared.sample_rows as f64;
        let mut mi = 0.0;
        for gc in 0..4 {
            for gp in 0..4 {
                let nij = f64::from(counts[gc][gp]);
                if nij > 0.0 {
                    let ni: f64 = counts[gc].iter().map(|&c| f64::from(c)).sum();
                    let nj: f64 = counts.iter().map(|r| f64::from(r[gp])).sum();
                    mi += (nij / n) * ((nij * n) / (ni * nj)).ln();
                }
            }
        }
        t.ops(64);
        mi - (16.0 / n)
    }

    /// One climbing round: evaluate this thread's share of candidate
    /// moves, then apply the best found (under the state lock).
    fn climb_round(&mut self, t: &mut KernelTracer<'_>) {
        let mut best_move = None;
        let mut best_gain = 0.0f64;
        for c in 0..CANDIDATES_PER_ROUND {
            if c % self.threads != self.tid {
                continue;
            }
            let child = self.rng.below(SITES as u64) as usize;
            let mut parent = self.rng.below(SITES as u64) as usize;
            if parent == child {
                parent = (parent + 1) % SITES;
            }
            let gain = self.score_family(t, child, parent);
            if gain > best_gain {
                best_gain = gain;
                best_move = Some((child, parent));
            }
        }
        if let Some((child, parent)) = best_move {
            let mut state = self.shared.state.lock().expect("state lock");
            let idx = child * SITES + parent;
            if !state.adj[idx] {
                state.adj[idx] = true;
                if state.score == f64::NEG_INFINITY {
                    state.score = 0.0;
                }
                state.score += best_gain;
            }
        }
    }
}

impl ThreadKernel for SnpThread {
    fn step(&mut self, t: &mut KernelTracer<'_>) -> bool {
        if self.done {
            return false;
        }
        self.climb_round(t);
        self.round += 1;
        if self.round >= MAX_ROUNDS {
            self.restart += 1;
            self.round = 0;
            if self.restart >= RESTARTS {
                // Fold the shared climb score into the workload result.
                let mut state = self.shared.state.lock().expect("state lock");
                if state.score > state.best.0 {
                    state.best = (state.score, self.restart);
                }
                let _ = state.next_restart;
                let mut best = self.result.lock().expect("result lock");
                if state.best.0 > *best {
                    *best = state.best.0;
                }
                self.done = true;
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::{CountingSink, TraceSink, Tracer};

    fn run(wl: &Snp, threads: usize) -> CountingSink {
        let mut kernels = wl.make_threads(threads);
        let mut sink = CountingSink::new();
        let mut running = true;
        let mut guard = 0u64;
        while running {
            running = false;
            for k in &mut kernels {
                let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
                running |= k.step(&mut tr);
            }
            guard += 1;
            assert!(guard < 10_000_000, "SNP did not terminate");
        }
        sink
    }

    #[test]
    fn completes_and_improves_score() {
        let wl = Snp::new(Scale::tiny(), 1);
        let _ = run(&wl, 2);
        assert!(wl.best_score() > f64::NEG_INFINITY);
    }

    #[test]
    fn touches_cache_stats_and_data() {
        let wl = Snp::new(Scale::tiny(), 2);
        let mut kernels = wl.make_threads(1);
        let mut sink = cmpsim_trace::VecSink::new();
        let mut running = true;
        while running {
            running = false;
            for k in &mut kernels {
                let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
                running |= k.step(&mut tr);
            }
        }
        let i = &wl.shared_init;
        let in_region = |r: &Region| sink.records().iter().filter(|m| r.contains(m.addr)).count();
        assert!(in_region(&i.cache_region) > 0, "score cache untouched");
        assert!(in_region(&i.stat_region) > 0, "stat table untouched");
        assert!(in_region(&i.data_region) > 0, "data table untouched");
    }

    #[test]
    fn cache_region_is_hottest_per_byte() {
        let wl = Snp::new(Scale::tiny(), 3);
        let mut kernels = wl.make_threads(1);
        let mut sink = cmpsim_trace::VecSink::new();
        let mut running = true;
        while running {
            running = false;
            for k in &mut kernels {
                let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
                running |= k.step(&mut tr);
            }
        }
        let i = &wl.shared_init;
        let count =
            |r: &Region| sink.records().iter().filter(|m| r.contains(m.addr)).count() as f64;
        let cache_density = count(&i.cache_region) / i.cache_region.size() as f64;
        let stat_density = count(&i.stat_region) / i.stat_region.size() as f64;
        // The score cache must be re-touched far more densely than the
        // statistics table — that is what creates the first knee.
        assert!(
            cache_density > stat_density,
            "cache {cache_density} vs stats {stat_density}"
        );
    }

    #[test]
    fn deterministic_trace_for_same_seed() {
        let count = |wl: &Snp| {
            let s = run(wl, 2);
            (s.reads, s.writes)
        };
        let a = Snp::new(Scale::tiny(), 7);
        let b = Snp::new(Scale::tiny(), 7);
        assert_eq!(count(&a), count(&b));
    }

    #[test]
    fn footprint_has_three_regions() {
        let wl = Snp::new(Scale::tiny(), 4);
        assert_eq!(wl.space.regions().len(), 3);
        assert!(wl.footprint() > 0);
    }
}
