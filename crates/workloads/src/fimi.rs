//! FIMI — frequent-itemset mining with FP-growth (§2.3).
//!
//! The FP-Zhu-style pipeline the paper describes, in its three stages:
//! (1) *first scan* — stream the transaction database counting item
//! frequencies; (2) *FP-tree construction* — insert each transaction's
//! frequent items, ordered by descending global frequency, into a prefix
//! tree; (3) *mining* — for each frequent item, walk its node-link chain
//! bottom-up through the shared read-only tree, accumulating conditional
//! pattern counts in per-thread private buffers.
//!
//! Memory behaviour this reproduces (§4.3): "all threads in FIMI share a
//! read-only global tree structure, and each thread operates on a portion
//! of the tree. Additionally, each thread also allocates private data to
//! compute and store the temporary mining results" — the shared arena
//! dominates the footprint, and the per-thread conditional buffers add
//! the 20–30 % extra misses seen when scaling cores.

use crate::datagen::TransactionSet;
use crate::mix::OpMix;
use crate::scale::Scale;
use crate::spec::{DatasetSpec, KernelTracer, ThreadKernel, Workload, WorkloadId};
use cmpsim_trace::{AddressSpace, Region};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Bytes per FP-tree arena node as laid out in the simulated space.
const NODE_BYTES: u64 = 24;
/// Minimum support as a fraction of transactions (paper: minsup 800 of
/// 990 k ≈ 0.08 %).
const MIN_SUPPORT_FRAC: f64 = 0.0008;

/// One FP-tree node (host-side arena form).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpNode {
    /// Item id (frequency rank).
    pub item: u32,
    /// Occurrence count along this path.
    pub count: u32,
    /// Parent node index (`u32::MAX` for the root).
    pub parent: u32,
    /// First child index (`u32::MAX` if leaf).
    pub first_child: u32,
    /// Next sibling index (`u32::MAX` if last).
    pub next_sibling: u32,
    /// Next node with the same item (header chain), `u32::MAX` at end.
    pub node_link: u32,
}

const NONE: u32 = u32::MAX;

/// An FP-tree in arena form with per-item header links.
#[derive(Debug, Clone)]
pub struct FpTree {
    /// All nodes; index 0 is the root.
    pub nodes: Vec<FpNode>,
    /// First node-link per item (indexed by item id).
    pub headers: Vec<u32>,
    /// Global support per item.
    pub supports: Vec<u32>,
    /// Items meeting minimum support, ascending.
    pub frequent: Vec<u32>,
}

impl FpTree {
    /// Builds the tree from a transaction set with the given absolute
    /// minimum support. Items within a transaction are inserted in
    /// descending global-frequency order (ascending rank, since item ids
    /// are frequency ranks).
    pub fn build(ts: &TransactionSet, min_support: u32) -> Self {
        let mut supports = vec![0u32; ts.num_items as usize];
        for txn in &ts.transactions {
            for &i in txn {
                supports[i as usize] += 1;
            }
        }
        let frequent: Vec<u32> = (0..ts.num_items)
            .filter(|&i| supports[i as usize] >= min_support)
            .collect();
        let mut headers = vec![NONE; ts.num_items as usize];
        let mut nodes = vec![FpNode {
            item: NONE,
            count: 0,
            parent: NONE,
            first_child: NONE,
            next_sibling: NONE,
            node_link: NONE,
        }];
        for txn in &ts.transactions {
            let mut cur = 0u32;
            for &item in txn {
                if supports[item as usize] < min_support {
                    continue;
                }
                // Find the child of `cur` with this item.
                let mut child = nodes[cur as usize].first_child;
                while child != NONE && nodes[child as usize].item != item {
                    child = nodes[child as usize].next_sibling;
                }
                if child == NONE {
                    let idx = nodes.len() as u32;
                    nodes.push(FpNode {
                        item,
                        count: 0,
                        parent: cur,
                        first_child: NONE,
                        next_sibling: nodes[cur as usize].first_child,
                        node_link: headers[item as usize],
                    });
                    nodes[cur as usize].first_child = idx;
                    headers[item as usize] = idx;
                    child = idx;
                }
                nodes[child as usize].count += 1;
                cur = child;
            }
        }
        FpTree {
            nodes,
            headers,
            supports,
            frequent,
        }
    }
}

#[derive(Debug)]
struct FimiShared {
    ts: TransactionSet,
    tree: FpTree,
    min_support: u32,
    txn_region: Region,
    count_region: Region,
    tree_region: Region,
    header_region: Region,
    /// Items not yet mined (work queue).
    queue: Mutex<VecDeque<u32>>,
    /// Set when stage 1+2 replay is complete and mining may start.
    built: Mutex<bool>,
}

/// The FIMI workload: see the module docs.
#[derive(Debug)]
pub struct Fimi {
    space: AddressSpace,
    ts: TransactionSet,
    tree: FpTree,
    min_support: u32,
    txn_region: Region,
    count_region: Region,
    tree_region: Region,
    header_region: Region,
    result: Arc<Mutex<Vec<(u32, u32, u32)>>>,
}

impl Fimi {
    /// Builds the workload: 990 k transactions (scaled) over a
    /// Kosarak-like Zipf item universe.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let count = scale.count(990_000).max(2_000) as usize;
        let items = scale.count(41_270).max(512) as u32;
        let ts = TransactionSet::generate(count, items, 8, 1.15, seed);
        let min_support = ((count as f64 * MIN_SUPPORT_FRAC) as u32).max(2);
        let tree = FpTree::build(&ts, min_support);
        let mut space = AddressSpace::new();
        let txn_region = space.alloc_pages("fimi.txns", (ts.total_items() as u64 * 4).max(4096));
        let count_region = space.alloc_pages("fimi.counts", u64::from(items) * 4);
        let tree_region = space.alloc_pages(
            "fimi.tree",
            (tree.nodes.len() as u64 * NODE_BYTES).max(4096),
        );
        let header_region = space.alloc_pages("fimi.headers", u64::from(items) * 4);
        Fimi {
            space,
            ts,
            tree,
            min_support,
            txn_region,
            count_region,
            tree_region,
            header_region,
            result: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The built FP-tree (for inspection and tests).
    pub fn tree(&self) -> &FpTree {
        &self.tree
    }

    /// Frequent pairs `(item, co_item, support)` found by the last run.
    pub fn frequent_pairs(&self) -> Vec<(u32, u32, u32)> {
        self.result.lock().expect("result lock").clone()
    }

    /// The absolute minimum support at this scale.
    pub fn min_support(&self) -> u32 {
        self.min_support
    }
}

impl Workload for Fimi {
    fn id(&self) -> WorkloadId {
        WorkloadId::Fimi
    }

    fn make_threads(&self, threads: usize) -> Vec<Box<dyn ThreadKernel>> {
        assert!(threads > 0, "at least one thread");
        let shared = Arc::new(FimiShared {
            ts: self.ts.clone(),
            tree: self.tree.clone(),
            min_support: self.min_support,
            txn_region: self.txn_region.clone(),
            count_region: self.count_region.clone(),
            tree_region: self.tree_region.clone(),
            header_region: self.header_region.clone(),
            queue: Mutex::new(self.tree.frequent.iter().copied().collect()),
            built: Mutex::new(false),
        });
        self.result.lock().expect("result lock").clear();
        let mut space = self.space.clone();
        let num_items = self.ts.num_items as u64;
        (0..threads)
            .map(|t| {
                let cpb_region =
                    space.alloc_pages(&format!("fimi.cpb.t{t}"), (num_items * 8).max(4096));
                Box::new(FimiThread {
                    shared: Arc::clone(&shared),
                    result: Arc::clone(&self.result),
                    cpb_region,
                    cpb: vec![0u32; self.ts.num_items as usize],
                    touched: Vec::new(),
                    phase: if t == 0 {
                        Phase::FirstScan(0)
                    } else {
                        Phase::WaitBuild
                    },
                    local_pairs: Vec::new(),
                    mix: OpMix::for_workload(WorkloadId::Fimi),
                }) as Box<dyn ThreadKernel>
            })
            .collect()
    }

    fn footprint(&self) -> u64 {
        self.space.footprint()
    }

    fn dataset(&self) -> DatasetSpec {
        DatasetSpec {
            workload: WorkloadId::Fimi,
            parameters: format!(
                "{}k transactions and mini-support={}",
                self.ts.transactions.len() / 1000,
                self.min_support
            ),
            input_bytes: self.ts.total_items() as u64 * 4,
            provenance: "synthetic Zipf-skewed click stream standing in for Kosarak".to_owned(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Stage 1 on thread 0: streaming frequency count; cursor = next txn.
    FirstScan(usize),
    /// Stage 2 on thread 0: tree-path insertion replay; cursor = next txn.
    BuildReplay(usize),
    /// Other threads wait here for the build to finish.
    WaitBuild,
    /// Stage 3: mining items off the shared queue.
    Mine,
    Done,
}

#[derive(Debug)]
struct FimiThread {
    shared: Arc<FimiShared>,
    result: Arc<Mutex<Vec<(u32, u32, u32)>>>,
    cpb_region: Region,
    /// Host-side conditional pattern counts (item -> support in the
    /// conditional base of the item being mined).
    cpb: Vec<u32>,
    /// Items with nonzero counts for the current mined item.
    touched: Vec<u32>,
    phase: Phase,
    local_pairs: Vec<(u32, u32, u32)>,
    mix: OpMix,
}

/// Transactions processed per step in stages 1 and 2.
const TXNS_PER_STEP: usize = 512;

impl FimiThread {
    /// Stage 1: stream transactions, bump per-item counters.
    fn first_scan(&mut self, t: &mut KernelTracer<'_>, mut cursor: usize) -> Phase {
        let shared = Arc::clone(&self.shared);
        let mut offset: u64 = shared.ts.transactions[..cursor]
            .iter()
            .map(|x| x.len() as u64 * 4)
            .sum();
        let end = (cursor + TXNS_PER_STEP).min(shared.ts.transactions.len());
        while cursor < end {
            for &item in &shared.ts.transactions[cursor] {
                self.mix.read(t, shared.txn_region.addr_at(offset), 4);
                self.mix
                    .update(t, shared.count_region.addr_at(u64::from(item) * 4), 4);
                offset += 4;
            }
            cursor += 1;
        }
        if cursor >= shared.ts.transactions.len() {
            Phase::BuildReplay(0)
        } else {
            Phase::FirstScan(cursor)
        }
    }

    /// Stage 2: replay each transaction's insertion path through the
    /// already-built tree — the same node addresses construction touched.
    fn build_replay(&mut self, t: &mut KernelTracer<'_>, mut cursor: usize) -> Phase {
        let shared = Arc::clone(&self.shared);
        let mut offset: u64 = shared.ts.transactions[..cursor]
            .iter()
            .map(|x| x.len() as u64 * 4)
            .sum();
        let end = (cursor + TXNS_PER_STEP).min(shared.ts.transactions.len());
        while cursor < end {
            let mut cur = 0u32;
            for &item in &shared.ts.transactions[cursor] {
                self.mix.read(t, shared.txn_region.addr_at(offset), 4);
                offset += 4;
                if shared.tree.supports[item as usize] < shared.min_support {
                    continue;
                }
                // Walk the sibling chain exactly as the builder did.
                let mut child = shared.tree.nodes[cur as usize].first_child;
                self.mix.read(
                    t,
                    shared.tree_region.addr_at(u64::from(cur) * NODE_BYTES),
                    8,
                );
                while child != NONE && shared.tree.nodes[child as usize].item != item {
                    self.mix.read(
                        t,
                        shared.tree_region.addr_at(u64::from(child) * NODE_BYTES),
                        8,
                    );
                    child = shared.tree.nodes[child as usize].next_sibling;
                }
                debug_assert_ne!(child, NONE, "replay must find the inserted path");
                // Count bump on the path node.
                self.mix.update(
                    t,
                    shared
                        .tree_region
                        .addr_at(u64::from(child) * NODE_BYTES + 4),
                    4,
                );
                cur = child;
            }
            cursor += 1;
        }
        if cursor >= shared.ts.transactions.len() {
            *shared.built.lock().expect("built lock") = true;
            Phase::Mine
        } else {
            Phase::BuildReplay(cursor)
        }
    }

    /// Stage 3: mine one item from the queue — walk its node links
    /// bottom-up, build the conditional pattern base in the private
    /// buffer, then extract frequent pairs.
    fn mine_one(&mut self, t: &mut KernelTracer<'_>) -> bool {
        let shared = Arc::clone(&self.shared);
        let Some(item) = shared.queue.lock().expect("queue lock").pop_front() else {
            return false;
        };
        // Clear only the conditional counts the previous item touched
        // (the standard FP-growth optimization: a full memset per item
        // would stream the whole buffer through the cache every time).
        for &co in &self.touched {
            self.cpb[co as usize] = 0;
            self.mix
                .write(t, self.cpb_region.addr_at(u64::from(co) * 8), 8);
        }
        self.touched.clear();

        self.mix
            .read(t, shared.header_region.addr_at(u64::from(item) * 4), 4);
        let mut node = shared.tree.headers[item as usize];
        while node != NONE {
            let n = shared.tree.nodes[node as usize];
            self.mix.read(
                t,
                shared.tree_region.addr_at(u64::from(node) * NODE_BYTES),
                24,
            );
            // Climb to the root accumulating the prefix path with this
            // node's count.
            let path_count = n.count;
            let mut up = n.parent;
            while up != NONE && up != 0 {
                let un = shared.tree.nodes[up as usize];
                self.mix.read(
                    t,
                    shared.tree_region.addr_at(u64::from(up) * NODE_BYTES),
                    24,
                );
                if self.cpb[un.item as usize] == 0 {
                    self.touched.push(un.item);
                }
                self.cpb[un.item as usize] += path_count;
                self.mix
                    .update(t, self.cpb_region.addr_at(u64::from(un.item) * 8), 8);
                up = un.parent;
            }
            node = n.node_link;
        }
        // Extract frequent pairs (item, co-item) from the touched set.
        self.touched.sort_unstable();
        for &co in &self.touched {
            let support = self.cpb[co as usize];
            self.mix
                .read(t, self.cpb_region.addr_at(u64::from(co) * 8), 8);
            if support >= shared.min_support {
                self.local_pairs.push((item, co, support));
            }
        }
        t.ops(self.touched.len() as u64);
        true
    }
}

impl ThreadKernel for FimiThread {
    fn step(&mut self, t: &mut KernelTracer<'_>) -> bool {
        match self.phase {
            Phase::FirstScan(cursor) => {
                self.phase = self.first_scan(t, cursor);
                true
            }
            Phase::BuildReplay(cursor) => {
                self.phase = self.build_replay(t, cursor);
                true
            }
            Phase::WaitBuild => {
                if *self.shared.built.lock().expect("built lock") {
                    self.phase = Phase::Mine;
                }
                true
            }
            Phase::Mine => {
                if self.mine_one(t) {
                    true
                } else {
                    // Merge results and finish.
                    let mut all = self.result.lock().expect("result lock");
                    all.append(&mut self.local_pairs);
                    all.sort_unstable();
                    self.phase = Phase::Done;
                    false
                }
            }
            Phase::Done => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::{CountingSink, TraceSink, Tracer};

    fn run(wl: &Fimi, threads: usize) -> CountingSink {
        let mut kernels = wl.make_threads(threads);
        let mut sink = CountingSink::new();
        let mut running = true;
        let mut guard = 0u64;
        while running {
            running = false;
            for k in &mut kernels {
                let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
                running |= k.step(&mut tr);
            }
            guard += 1;
            assert!(guard < 10_000_000, "FIMI did not terminate");
        }
        sink
    }

    #[test]
    fn tree_counts_match_supports() {
        let wl = Fimi::new(Scale::tiny(), 1);
        let tree = wl.tree();
        // Sum of counts over an item's node-link chain equals its support
        // (for frequent items).
        for &item in tree.frequent.iter().take(16) {
            let mut sum = 0u32;
            let mut n = tree.headers[item as usize];
            while n != NONE {
                sum += tree.nodes[n as usize].count;
                n = tree.nodes[n as usize].node_link;
            }
            assert_eq!(sum, tree.supports[item as usize], "item {item}");
        }
    }

    #[test]
    fn tree_paths_are_sorted_by_rank() {
        let wl = Fimi::new(Scale::tiny(), 2);
        let tree = wl.tree();
        // Every child's item rank is greater than its parent's (root has
        // item NONE): transactions are inserted in ascending rank order.
        for (i, n) in tree.nodes.iter().enumerate().skip(1) {
            if n.parent != 0 && n.parent != NONE {
                let p = &tree.nodes[n.parent as usize];
                assert!(p.item < n.item, "node {i} breaks prefix ordering");
            }
        }
    }

    #[test]
    fn mining_finds_frequent_pairs() {
        let wl = Fimi::new(Scale::tiny(), 3);
        let _ = run(&wl, 2);
        let pairs = wl.frequent_pairs();
        // Zipf data guarantees the top items co-occur often.
        assert!(!pairs.is_empty(), "no frequent pairs found");
        for &(a, b, s) in &pairs {
            assert!(s >= wl.min_support());
            assert_ne!(a, b);
        }
    }

    #[test]
    fn pair_supports_match_brute_force() {
        let wl = Fimi::new(Scale::with_shift(10), 4);
        let _ = run(&wl, 1);
        let pairs = wl.frequent_pairs();
        if let Some(&(a, b, s)) = pairs.first() {
            let brute = wl
                .ts
                .transactions
                .iter()
                .filter(|t| t.contains(&a) && t.contains(&b))
                .count() as u32;
            assert_eq!(s, brute, "pair ({a},{b})");
        }
    }

    #[test]
    fn results_invariant_to_thread_count() {
        let a = Fimi::new(Scale::tiny(), 5);
        let _ = run(&a, 1);
        let b = Fimi::new(Scale::tiny(), 5);
        let _ = run(&b, 4);
        assert_eq!(a.frequent_pairs(), b.frequent_pairs());
    }

    #[test]
    fn shared_tree_dominates_footprint() {
        let wl = Fimi::new(Scale::tiny(), 6);
        let tree_bytes = wl.tree().nodes.len() as u64 * NODE_BYTES;
        assert!(tree_bytes > 0);
        assert!(wl.footprint() >= tree_bytes);
    }
}
