//! MDS — multi-document summarization (§2.5).
//!
//! Graph-based ranking (power iteration over a document-similarity graph)
//! followed by Maximum-Marginal-Relevance selection, the combination the
//! paper's MDS workload uses. The similarity graph is a CSR sparse matrix
//! sized to the paper's 300 MB; every ranking iteration streams the whole
//! matrix with constant stride while gathering from the (small) score
//! vector.
//!
//! Memory behaviour this reproduces: *no* working-set knee up to 256 MB
//! (Figure 4: "MDS receives no benefit ... because one of its frequently
//! referenced data structures is a sparse matrix of 300MB"), category (a)
//! sharing (threads partition rows of one shared matrix; per-thread
//! private data is negligible), and near-linear gains from larger cache
//! lines (constant-stride streaming, §4.3).

use crate::datagen::SimilarityCsr;
use crate::mix::OpMix;
use crate::scale::Scale;
use crate::spec::{DatasetSpec, KernelTracer, ThreadKernel, Workload, WorkloadId};
use cmpsim_trace::{AddressSpace, Region};
use std::sync::{Arc, Mutex};

/// Ranking damping factor (PageRank-style).
const DAMPING: f32 = 0.85;
/// Power-iteration count.
const ITERATIONS: usize = 3;
/// Summary size selected by MMR.
const SUMMARY: usize = 8;
/// MMR relevance/redundancy trade-off.
const LAMBDA: f32 = 0.7;

#[derive(Debug)]
struct MdsState {
    x: Vec<f32>,
    y: Vec<f32>,
    iter: usize,
    arrived: usize,
    summary: Vec<u32>,
}

#[derive(Debug)]
struct MdsShared {
    graph: SimilarityCsr,
    vals_region: Region,
    cols_region: Region,
    rowptr_region: Region,
    scores_region: Region,
    state: Mutex<MdsState>,
    threads: usize,
}

/// The MDS workload: see the module docs.
#[derive(Debug)]
pub struct Mds {
    scale: Scale,
    space: AddressSpace,
    graph: SimilarityCsr,
    vals_region: Region,
    cols_region: Region,
    rowptr_region: Region,
    scores_region: Region,
    result: Arc<Mutex<Vec<u32>>>,
}

impl Mds {
    /// Builds the workload. At paper scale the matrix holds 37.5 M edges
    /// (vals + cols = 300 MB); document count is 64 Ki so the score
    /// vector stays small, as in the paper's description.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let docs = scale.count(65_536).max(64) as u32;
        let nnz = scale.count(37_500_000).max(4096);
        let graph = SimilarityCsr::generate(docs, nnz, seed);
        let nnz = graph.nnz();
        let mut space = AddressSpace::new();
        let vals_region = space.alloc_pages("mds.vals", nnz * 4);
        let cols_region = space.alloc_pages("mds.cols", nnz * 4);
        let rowptr_region = space.alloc_pages("mds.rowptr", (u64::from(docs) + 1) * 8);
        let scores_region = space.alloc_pages("mds.scores", u64::from(docs) * 8);
        Mds {
            scale,
            space,
            graph,
            vals_region,
            cols_region,
            rowptr_region,
            scores_region,
            result: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Number of documents in the graph.
    pub fn docs(&self) -> u32 {
        self.graph.docs
    }

    /// The summary (document ids) selected by the last completed run.
    pub fn summary(&self) -> Vec<u32> {
        self.result.lock().expect("result lock").clone()
    }
}

impl Workload for Mds {
    fn id(&self) -> WorkloadId {
        WorkloadId::Mds
    }

    fn make_threads(&self, threads: usize) -> Vec<Box<dyn ThreadKernel>> {
        assert!(threads > 0, "at least one thread");
        let docs = self.graph.docs as usize;
        let shared = Arc::new(MdsShared {
            graph: self.graph.clone(),
            vals_region: self.vals_region.clone(),
            cols_region: self.cols_region.clone(),
            rowptr_region: self.rowptr_region.clone(),
            scores_region: self.scores_region.clone(),
            state: Mutex::new(MdsState {
                x: vec![1.0 / docs as f32; docs],
                y: vec![0.0; docs],
                iter: 0,
                arrived: 0,
                summary: Vec::new(),
            }),
            threads,
        });
        let rows_per = docs.div_ceil(threads);
        (0..threads)
            .map(|t| {
                let row_start = (t * rows_per).min(docs);
                let row_end = ((t + 1) * rows_per).min(docs);
                Box::new(MdsThread {
                    shared: Arc::clone(&shared),
                    result: Arc::clone(&self.result),
                    row_start,
                    row_end,
                    next_row: row_start,
                    local_iter: 0,
                    done: false,
                    is_selector: t == 0,
                    mix: OpMix::for_workload(WorkloadId::Mds),
                }) as Box<dyn ThreadKernel>
            })
            .collect()
    }

    fn footprint(&self) -> u64 {
        self.space.footprint()
    }

    fn dataset(&self) -> DatasetSpec {
        DatasetSpec {
            workload: WorkloadId::Mds,
            parameters: format!(
                "{} documents, {} similarity edges",
                self.graph.docs,
                self.graph.nnz()
            ),
            input_bytes: self.scale.bytes(4_100_000),
            provenance: "synthetic clustered similarity graph standing in for the \
                         web-search document set"
                .to_owned(),
        }
    }
}

#[derive(Debug)]
struct MdsThread {
    shared: Arc<MdsShared>,
    result: Arc<Mutex<Vec<u32>>>,
    row_start: usize,
    row_end: usize,
    next_row: usize,
    local_iter: usize,
    done: bool,
    is_selector: bool,
    mix: OpMix,
}

/// Edges processed per `step` call (bounds a DEX time slice).
const EDGES_PER_STEP: u64 = 32_768;

impl MdsThread {
    /// Processes a chunk of this thread's rows for the current iteration.
    /// Returns `true` if the thread finished its row range.
    fn rank_chunk(&mut self, t: &mut KernelTracer<'_>) -> bool {
        let shared = Arc::clone(&self.shared);
        let g = &shared.graph;
        let mut budget = EDGES_PER_STEP;
        let mut state = shared.state.lock().expect("state lock");
        while self.next_row < self.row_end && budget > 0 {
            let r = self.next_row;
            // row_ptr[r], row_ptr[r+1]
            self.mix
                .read(t, shared.rowptr_region.addr_at(r as u64 * 8), 8);
            let (lo, hi) = (g.row_ptr[r], g.row_ptr[r + 1]);
            let mut acc = 0.0f32;
            for k in lo..hi {
                let col = g.cols[k as usize];
                // Sequential streams over vals and cols...
                self.mix.read(t, shared.vals_region.addr_at(k * 4), 4);
                self.mix.read(t, shared.cols_region.addr_at(k * 4), 4);
                // ...and a gather from the shared score vector.
                self.mix
                    .read(t, shared.scores_region.addr_at(u64::from(col) * 8), 4);
                acc += g.weight(k) * state.x[col as usize];
            }
            let rank = (1.0 - DAMPING) / g.docs as f32 + DAMPING * acc;
            state.y[r] = rank;
            self.mix
                .write(t, shared.scores_region.addr_at(r as u64 * 8 + 4), 4);
            budget = budget.saturating_sub(hi - lo + 1);
            self.next_row += 1;
        }
        self.next_row >= self.row_end
    }

    /// Barrier bookkeeping once this thread's rows are done; the last
    /// arriver swaps x/y and advances the iteration.
    fn arrive(&mut self) {
        let mut state = self.shared.state.lock().expect("state lock");
        state.arrived += 1;
        if state.arrived == self.shared.threads {
            state.arrived = 0;
            state.iter += 1;
            let MdsState { x, y, .. } = &mut *state;
            std::mem::swap(x, y);
        }
        self.local_iter += 1;
        self.next_row = self.row_start;
    }

    /// MMR selection: greedy pick maximizing relevance minus redundancy.
    /// Runs on the selector thread after the last iteration.
    fn select_summary(&mut self, t: &mut KernelTracer<'_>) {
        let shared = Arc::clone(&self.shared);
        let mut state = shared.state.lock().expect("state lock");
        let g = &shared.graph;
        let docs = g.docs as usize;
        let mut selected: Vec<u32> = Vec::with_capacity(SUMMARY);
        let mut chosen = vec![false; docs];
        for _ in 0..SUMMARY.min(docs) {
            let mut best_doc = None;
            let mut best_score = f32::NEG_INFINITY;
            #[allow(clippy::needless_range_loop)] // d is also the doc id
            for d in 0..docs {
                if chosen[d] {
                    continue;
                }
                self.mix
                    .read(t, shared.scores_region.addr_at(d as u64 * 8), 4);
                // Redundancy: max similarity to already-selected docs,
                // approximated by neighborhood distance (the synthetic
                // graph encodes similarity by locality).
                let mut redundancy = 0.0f32;
                for &s in &selected {
                    let dist = (d as i64 - i64::from(s)).unsigned_abs();
                    let wrapped = dist.min(docs as u64 - dist) as f32;
                    redundancy = redundancy.max(1.0 / (1.0 + wrapped));
                }
                let mmr = LAMBDA * state.x[d] - (1.0 - LAMBDA) * redundancy;
                t.ops(2);
                if mmr > best_score {
                    best_score = mmr;
                    best_doc = Some(d as u32);
                }
            }
            let d = best_doc.expect("docs remain");
            chosen[d as usize] = true;
            selected.push(d);
        }
        state.summary = selected.clone();
        *self.result.lock().expect("result lock") = selected;
    }
}

impl ThreadKernel for MdsThread {
    fn step(&mut self, t: &mut KernelTracer<'_>) -> bool {
        if self.done {
            return false;
        }
        // Waiting at the barrier for slower threads?
        let iter_now = self.shared.state.lock().expect("state lock").iter;
        if self.local_iter > iter_now {
            return true; // yield; others still ranking
        }
        if self.local_iter >= ITERATIONS {
            if self.is_selector {
                self.select_summary(t);
            }
            self.done = true;
            return false;
        }
        if self.rank_chunk(t) {
            self.arrive();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::{CountingSink, TraceSink, Tracer};

    fn run(wl: &Mds, threads: usize) -> CountingSink {
        let mut kernels = wl.make_threads(threads);
        let mut sink = CountingSink::new();
        let mut running = true;
        let mut guard = 0u64;
        while running {
            running = false;
            for k in &mut kernels {
                let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
                running |= k.step(&mut tr);
            }
            guard += 1;
            assert!(guard < 10_000_000, "barrier deadlock");
        }
        sink
    }

    #[test]
    fn completes_and_selects_summary() {
        let wl = Mds::new(Scale::tiny(), 1);
        let _ = run(&wl, 2);
        let summary = wl.summary();
        assert_eq!(summary.len(), SUMMARY);
        let mut uniq = summary.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), SUMMARY, "summary must be distinct docs");
    }

    #[test]
    fn traffic_dominated_by_matrix_stream() {
        let wl = Mds::new(Scale::tiny(), 2);
        let sink = run(&wl, 1);
        // Each edge costs ~3 reads x ITERATIONS.
        let expect = wl.graph.nnz() * 3 * ITERATIONS as u64;
        assert!(
            sink.reads as f64 > expect as f64 * 0.9,
            "reads {} expect >= {}",
            sink.reads,
            expect
        );
    }

    #[test]
    fn thread_count_does_not_change_total_work() {
        let wl = Mds::new(Scale::tiny(), 3);
        let s1 = run(&wl, 1);
        let s8 = run(&wl, 8);
        let ratio = s8.reads as f64 / s1.reads as f64;
        assert!((ratio - 1.0).abs() < 0.05, "reads ratio {ratio}");
    }

    #[test]
    fn summary_prefers_high_rank_docs() {
        let wl = Mds::new(Scale::tiny(), 4);
        let _ = run(&wl, 1);
        // Deterministic: same workload rerun gives the same summary.
        let first = wl.summary();
        let wl2 = Mds::new(Scale::tiny(), 4);
        let _ = run(&wl2, 4);
        assert_eq!(
            first,
            wl2.summary(),
            "summary must be thread-count invariant"
        );
    }

    #[test]
    fn footprint_matches_paper_shape() {
        let wl = Mds::new(Scale::tiny(), 5);
        // vals + cols dominate: ~8 bytes per edge.
        let expect = wl.graph.nnz() * 8;
        assert!(wl.footprint() >= expect);
        assert!(wl.footprint() < expect * 2);
    }
}
