//! RSEARCH — RNA secondary-structure homology search (§2.2).
//!
//! RSEARCH scans a sequence database with the CYK algorithm, decoding a
//! stochastic context-free grammar (SCFG) to score how well each database
//! window could fold like the query RNA. Full CYK is cubic; like the real
//! tool, we bound the inner loop — spans are limited to a band of
//! `MAX_SPAN`, and split points are subsampled — keeping the recurrence
//! (and its memory behaviour) intact while making a software-simulated
//! full run tractable.
//!
//! Memory behaviour this reproduces (§4.3): the database is shared and
//! streamed, while each thread fills its own private DP matrix (~0.5 MB),
//! so the working set grows linearly with the thread count: 4 MB on the
//! 8-core SCMP, 8 MB on MCMP, 16 MB on LCMP — exactly the paper's
//! progression.

use crate::datagen;
use crate::mix::OpMix;
use crate::scale::Scale;
use crate::spec::{DatasetSpec, KernelTracer, ThreadKernel, Workload, WorkloadId};
use cmpsim_trace::{AddressSpace, Region};
use std::sync::{Arc, Mutex};

/// Window length scanned per work item (residues), at paper scale.
const WINDOW_PAPER: usize = 512;
/// Maximum span of the banded CYK fill, at paper scale.
const MAX_SPAN_PAPER: usize = 64;

/// Scaled window length: the per-thread DP matrix
/// (window x span x states) must shrink with the global scale knob so
/// the paper's private-working-set progression (0.5 MB per thread)
/// scales consistently with the cache sweep.
fn window_len(scale: Scale) -> usize {
    (WINDOW_PAPER >> (scale.shift() / 2)).max(64)
}

/// Scaled span band.
fn max_span(scale: Scale) -> usize {
    (MAX_SPAN_PAPER >> (scale.shift() - scale.shift() / 2)).max(8)
}
/// Nonterminal states in the reduced SCFG.
const STATES: usize = 4;
/// Split points sampled per cell (full CYK would try every split).
const SPLITS: usize = 4;
/// Paper-scale database bytes.
const DB_BYTES_PAPER: u64 = 100 << 20;

#[derive(Debug)]
struct RsearchShared {
    db: Vec<u8>,
    db_region: Region,
    window: usize,
    span: usize,
    /// Emission log-odds per (state, nucleotide) — the SCFG parameters.
    emit: [[f32; 4]; STATES],
    /// Transition log-odds per (state, state).
    trans: [[f32; STATES]; STATES],
    /// Next window index to scan.
    queue: Mutex<usize>,
    windows: usize,
}

/// The RSEARCH workload: see the module docs.
#[derive(Debug)]
pub struct Rsearch {
    scale: Scale,
    space: AddressSpace,
    db: Vec<u8>,
    db_region: Region,
    windows: usize,
    result: Arc<Mutex<(f32, usize)>>,
}

impl Rsearch {
    /// Builds the workload: a 100 MB database (scaled) scanned in
    /// `WINDOW`-residue steps.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let window = window_len(scale);
        let db_bytes = scale.bytes_floor(DB_BYTES_PAPER, (4 * window) as u64) as usize;
        let db = datagen::dna_sequence(db_bytes, seed);
        let mut space = AddressSpace::new();
        let db_region = space.alloc_pages("rsearch.db", db_bytes as u64);
        // Windows stride across the whole database. The full scan would
        // visit every position; like the real tool's filtering stage we
        // evaluate a bounded number of candidate windows, spread evenly
        // so the database is still streamed end to end.
        let windows = (scale.count(16_384) as usize).min(db_bytes / window).max(2);
        Rsearch {
            scale,
            space,
            db,
            db_region,
            windows,
            result: Arc::new(Mutex::new((f32::NEG_INFINITY, 0))),
        }
    }

    /// Best (score, window index) of the last completed run.
    pub fn best_hit(&self) -> (f32, usize) {
        *self.result.lock().expect("result lock")
    }

    /// Number of windows scanned per run.
    pub fn windows(&self) -> usize {
        self.windows
    }
}

impl Workload for Rsearch {
    fn id(&self) -> WorkloadId {
        WorkloadId::Rsearch
    }

    fn make_threads(&self, threads: usize) -> Vec<Box<dyn ThreadKernel>> {
        assert!(threads > 0, "at least one thread");
        // Deterministic SCFG parameters.
        let mut emit = [[0.0f32; 4]; STATES];
        let mut trans = [[0.0f32; STATES]; STATES];
        for s in 0..STATES {
            for (n, e) in emit[s].iter_mut().enumerate() {
                *e = datagen::mix_f32(0xE417, (s * 4 + n) as u64) * 2.0 - 1.0;
            }
            for (q, tr) in trans[s].iter_mut().enumerate() {
                *tr = datagen::mix_f32(0x7A45, (s * STATES + q) as u64) - 0.7;
            }
        }
        let shared = Arc::new(RsearchShared {
            db: self.db.clone(),
            db_region: self.db_region.clone(),
            window: window_len(self.scale),
            span: max_span(self.scale),
            emit,
            trans,
            queue: Mutex::new(0),
            windows: self.windows,
        });
        *self.result.lock().expect("result lock") = (f32::NEG_INFINITY, 0);
        let mut space = self.space.clone();
        let (window, span) = (window_len(self.scale), max_span(self.scale));
        (0..threads)
            .map(|t| {
                // Private DP matrix: window x span x STATES f32
                // (0.5 MB per thread at paper scale).
                let dp_bytes = (window * span * STATES * 4) as u64;
                let dp_region = space.alloc_pages(&format!("rsearch.dp.t{t}"), dp_bytes);
                Box::new(RsearchThread {
                    shared: Arc::clone(&shared),
                    result: Arc::clone(&self.result),
                    dp_region,
                    dp: vec![0.0f32; window * span * STATES],
                    current: None,
                    mix: OpMix::for_workload(WorkloadId::Rsearch),
                }) as Box<dyn ThreadKernel>
            })
            .collect()
    }

    fn footprint(&self) -> u64 {
        self.space.footprint()
    }

    fn dataset(&self) -> DatasetSpec {
        DatasetSpec {
            workload: WorkloadId::Rsearch,
            parameters: format!(
                "{}KB database, search window {}",
                self.db.len() >> 10,
                window_len(self.scale)
            ),
            input_bytes: self.db.len() as u64,
            provenance: "synthetic nucleotide database standing in for GenBank".to_owned(),
        }
    }
}

/// Start offset of window `w` given the database length and window count
/// (windows spread evenly across the database).
fn window_base(db_len: usize, window: usize, windows: usize, w: usize) -> usize {
    if windows <= 1 {
        return 0;
    }
    let range = db_len - window;
    (range / (windows - 1)) * w
}

#[derive(Debug)]
struct RsearchThread {
    shared: Arc<RsearchShared>,
    result: Arc<Mutex<(f32, usize)>>,
    dp_region: Region,
    dp: Vec<f32>,
    /// (window, next span) of an in-progress fill.
    current: Option<(usize, usize)>,
    mix: OpMix,
}

impl RsearchThread {
    #[inline]
    fn dp_idx(window: usize, i: usize, d: usize, s: usize) -> usize {
        (d * window + i) * STATES + s
    }

    /// Initializes span-1 cells for a window: emission scores.
    fn init_window(&mut self, t: &mut KernelTracer<'_>, w: usize) {
        let shared = Arc::clone(&self.shared);
        let base = window_base(shared.db.len(), shared.window, shared.windows, w);
        let window = shared.window;
        for i in 0..window {
            // Stream the database window (shared region).
            self.mix
                .read(t, shared.db_region.addr_at((base + i) as u64), 1);
            let nt = shared.db[base + i] as usize;
            for s in 0..STATES {
                let v = shared.emit[s][nt];
                self.dp[Self::dp_idx(window, i, 0, s)] = v;
                self.mix.write(
                    t,
                    self.dp_region
                        .addr_at((Self::dp_idx(window, i, 0, s) * 4) as u64),
                    4,
                );
            }
        }
    }

    /// Fills one span diagonal `d` (all start positions) of the banded
    /// CYK recurrence.
    fn fill_span(&mut self, t: &mut KernelTracer<'_>, w: usize, d: usize) {
        let shared = Arc::clone(&self.shared);
        let base = window_base(shared.db.len(), shared.window, shared.windows, w);
        let window = shared.window;
        for i in 0..window - d {
            // Pair emission of the outer residues (the SCFG's P state
            // consumes both ends of the span).
            self.mix
                .read(t, shared.db_region.addr_at((base + i) as u64), 1);
            self.mix
                .read(t, shared.db_region.addr_at((base + i + d) as u64), 1);
            let lo = shared.db[base + i] as usize;
            let hi = shared.db[base + i + d] as usize;
            for s in 0..STATES {
                let mut best = f32::NEG_INFINITY;
                // Sampled split points: bifurcation rules combine a left
                // child [i, i+k] and right child [i+k+1, i+d].
                for split in 1..=SPLITS {
                    let k = (d * split) / (SPLITS + 1);
                    let left = Self::dp_idx(window, i, k, (s + 1) % STATES);
                    let right = Self::dp_idx(window, i + k + 1, d - k - 1, (s + 2) % STATES);
                    self.mix
                        .read(t, self.dp_region.addr_at((left * 4) as u64), 4);
                    self.mix
                        .read(t, self.dp_region.addr_at((right * 4) as u64), 4);
                    let v = self.dp[left] + self.dp[right] + shared.trans[s][(s + 1) % STATES];
                    if v > best {
                        best = v;
                    }
                }
                // Pair rule: inner span [i+1, i+d-1] with both ends
                // emitted (canonical base pairs score higher).
                if d >= 2 {
                    let inner = Self::dp_idx(window, i + 1, d - 2, s);
                    self.mix
                        .read(t, self.dp_region.addr_at((inner * 4) as u64), 4);
                    let pair_bonus = if lo + hi == 3 || lo + hi == 5 {
                        1.0
                    } else {
                        -0.5
                    };
                    let v = self.dp[inner] + pair_bonus + shared.emit[s][lo] * 0.1;
                    if v > best {
                        best = v;
                    }
                }
                let idx = Self::dp_idx(window, i, d, s);
                self.dp[idx] = best;
                self.mix
                    .write(t, self.dp_region.addr_at((idx * 4) as u64), 4);
            }
        }
        t.ops((window - d) as u64);
    }

    /// Window score: best root-state value over all max-span cells.
    fn window_score(&self) -> f32 {
        let window = self.shared.window;
        let d = self.shared.span - 1;
        (0..window - d)
            .map(|i| self.dp[Self::dp_idx(window, i, d, 0)])
            .fold(f32::NEG_INFINITY, f32::max)
    }
}

impl ThreadKernel for RsearchThread {
    fn step(&mut self, t: &mut KernelTracer<'_>) -> bool {
        match self.current {
            None => {
                // Claim the next window.
                let mut q = self.shared.queue.lock().expect("queue lock");
                if *q >= self.shared.windows {
                    return false;
                }
                let w = *q;
                *q += 1;
                drop(q);
                self.init_window(t, w);
                self.current = Some((w, 1));
                true
            }
            Some((w, d)) => {
                self.fill_span(t, w, d);
                if d + 1 >= self.shared.span {
                    // Window complete: fold the score. Ties break toward
                    // the lower window index so the result is invariant
                    // to thread interleaving.
                    let score = self.window_score();
                    let mut res = self.result.lock().expect("result lock");
                    if score > res.0 || (score == res.0 && w < res.1) {
                        *res = (score, w);
                    }
                    drop(res);
                    self.current = None;
                } else {
                    self.current = Some((w, d + 1));
                }
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::{CountingSink, TraceSink, Tracer};

    fn run(wl: &Rsearch, threads: usize) -> CountingSink {
        let mut kernels = wl.make_threads(threads);
        let mut sink = CountingSink::new();
        let mut running = true;
        let mut guard = 0u64;
        while running {
            running = false;
            for k in &mut kernels {
                let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
                running |= k.step(&mut tr);
            }
            guard += 1;
            assert!(guard < 10_000_000, "RSEARCH did not terminate");
        }
        sink
    }

    #[test]
    fn scans_all_windows_and_scores() {
        let wl = Rsearch::new(Scale::tiny(), 1);
        assert!(wl.windows() >= 2);
        let _ = run(&wl, 2);
        let (score, window) = wl.best_hit();
        assert!(score.is_finite());
        assert!(window < wl.windows());
    }

    #[test]
    fn best_hit_invariant_to_thread_count() {
        let a = Rsearch::new(Scale::tiny(), 2);
        let _ = run(&a, 1);
        let b = Rsearch::new(Scale::tiny(), 2);
        let _ = run(&b, 4);
        assert_eq!(a.best_hit(), b.best_hit());
    }

    #[test]
    fn dp_traffic_dominates_db_traffic() {
        let wl = Rsearch::new(Scale::tiny(), 3);
        let mut kernels = wl.make_threads(1);
        let mut sink = cmpsim_trace::VecSink::new();
        let mut running = true;
        while running {
            running = false;
            for k in &mut kernels {
                let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
                running |= k.step(&mut tr);
            }
        }
        let db_refs = sink
            .records()
            .iter()
            .filter(|m| wl.db_region.contains(m.addr))
            .count();
        let total = sink.records().len();
        assert!(
            db_refs * 4 < total,
            "DP should dominate: db {db_refs} of {total}"
        );
    }

    #[test]
    fn private_dp_region_sized_half_megabyte_at_paper_scale() {
        let dp_bytes = (window_len(Scale::paper()) * max_span(Scale::paper()) * STATES * 4) as u64;
        assert_eq!(dp_bytes, 512 << 10);
        // And it shrinks with the scale knob.
        let tiny = (window_len(Scale::tiny()) * max_span(Scale::tiny()) * STATES * 4) as u64;
        assert!(tiny <= dp_bytes / 64);
    }

    #[test]
    fn work_scales_with_database() {
        let small = Rsearch::new(Scale::with_shift(12), 4);
        let large = Rsearch::new(Scale::with_shift(10), 4);
        let s = run(&small, 1);
        let l = run(&large, 1);
        assert!(l.total() > s.total() * 2, "{} vs {}", l.total(), s.total());
    }
}
