//! Workload identifiers, dataset descriptions, and the kernel traits.

use crate::scale::Scale;
use cmpsim_trace::{TraceSink, Tracer};
use std::fmt;

/// The tracer type handed to kernels: a [`Tracer`] over a dynamically
/// dispatched sink, so workloads compile once regardless of what consumes
/// the trace (a counting sink in tests, the full co-simulation platform in
/// experiments).
pub type KernelTracer<'a> = Tracer<&'a mut dyn TraceSink>;

/// One thread's share of a running workload.
///
/// Kernels are *cooperative*: [`step`](ThreadKernel::step) executes one
/// bounded unit of real work (one video frame, one mined item, one block
/// of matrix rows, ...) and returns. This mirrors the paper's DEX
/// execution model, where one physical processor runs each virtual core
/// for a time slice before switching (§3.2).
pub trait ThreadKernel: fmt::Debug + Send {
    /// Executes one unit of work, reporting memory references and
    /// instruction counts through `t`. Returns `true` while more work
    /// remains, `false` once this thread is done.
    ///
    /// A kernel waiting at an internal barrier may perform no work and
    /// still return `true`; the round-robin scheduler guarantees the
    /// threads it is waiting for will run.
    fn step(&mut self, t: &mut KernelTracer<'_>) -> bool;
}

/// A parallel data-mining workload: a synthetic dataset plus the factory
/// for per-thread kernels.
pub trait Workload: fmt::Debug + Send + Sync {
    /// Which of the eight workloads this is.
    fn id(&self) -> WorkloadId;

    /// Creates the per-thread kernels for a `threads`-way parallel run.
    /// Threads share the workload's global data structures (through the
    /// workload's internal shared state) exactly as the pthread versions
    /// in the paper share their address space.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    fn make_threads(&self, threads: usize) -> Vec<Box<dyn ThreadKernel>>;

    /// Total bytes of simulated data this workload allocated.
    fn footprint(&self) -> u64;

    /// The Table 1 row for this instantiation.
    fn dataset(&self) -> DatasetSpec;
}

/// One row of the paper's Table 1: what a workload consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Workload name as printed in the paper.
    pub workload: WorkloadId,
    /// Parameter summary (e.g. "600k sequences, each with length 50").
    pub parameters: String,
    /// Nominal input size in bytes at the chosen scale.
    pub input_bytes: u64,
    /// Description of the synthetic stand-in for the paper's dataset.
    pub provenance: String,
}

/// Identifier of one of the eight workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadId {
    /// Bayesian-network SNP analysis (hill climbing).
    Snp,
    /// Support-vector-machine recursive feature elimination.
    SvmRfe,
    /// RNA secondary-structure homology search (CYK/SCFG).
    Rsearch,
    /// Frequent-itemset mining (FP-growth).
    Fimi,
    /// Parallel linear-space sequence alignment (Smith–Waterman).
    Plsa,
    /// Multi-document summarization (graph ranking + MMR).
    Mds,
    /// Video shot-boundary detection.
    Shot,
    /// Sports-video view-type classification.
    Viewtype,
}

impl WorkloadId {
    /// All eight workloads in the paper's Table 2 order.
    pub const fn all() -> [WorkloadId; 8] {
        [
            WorkloadId::Snp,
            WorkloadId::SvmRfe,
            WorkloadId::Mds,
            WorkloadId::Shot,
            WorkloadId::Fimi,
            WorkloadId::Viewtype,
            WorkloadId::Plsa,
            WorkloadId::Rsearch,
        ]
    }

    /// Builds the workload at the given scale with a deterministic seed.
    pub fn build(self, scale: Scale, seed: u64) -> Box<dyn Workload> {
        match self {
            WorkloadId::Snp => Box::new(crate::snp::Snp::new(scale, seed)),
            WorkloadId::SvmRfe => Box::new(crate::svmrfe::SvmRfe::new(scale, seed)),
            WorkloadId::Rsearch => Box::new(crate::rsearch::Rsearch::new(scale, seed)),
            WorkloadId::Fimi => Box::new(crate::fimi::Fimi::new(scale, seed)),
            WorkloadId::Plsa => Box::new(crate::plsa::Plsa::new(scale, seed)),
            WorkloadId::Mds => Box::new(crate::mds::Mds::new(scale, seed)),
            WorkloadId::Shot => Box::new(crate::shot::Shot::new(scale, seed)),
            WorkloadId::Viewtype => Box::new(crate::viewtype::Viewtype::new(scale, seed)),
        }
    }

    /// The paper's display name.
    pub const fn name(self) -> &'static str {
        match self {
            WorkloadId::Snp => "SNP",
            WorkloadId::SvmRfe => "SVM-RFE",
            WorkloadId::Rsearch => "RSEARCH",
            WorkloadId::Fimi => "FIMI",
            WorkloadId::Plsa => "PLSA",
            WorkloadId::Mds => "MDS",
            WorkloadId::Shot => "SHOT",
            WorkloadId::Viewtype => "VIEWTYPE",
        }
    }

    /// Sharing category from §4.3: `true` when threads share a primary
    /// data structure (category (a): MDS, SVM-RFE, SNP — plus PLSA, whose
    /// small per-thread bands keep its curve flat); `false` when threads
    /// mostly grow private working sets (FIMI, RSEARCH, SHOT, VIEWTYPE).
    pub const fn shares_primary_structure(self) -> bool {
        matches!(
            self,
            WorkloadId::Mds | WorkloadId::SvmRfe | WorkloadId::Snp | WorkloadId::Plsa
        )
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for WorkloadId {
    type Err = ParseWorkloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let canon = s.to_ascii_uppercase().replace(['-', '_'], "");
        match canon.as_str() {
            "SNP" => Ok(WorkloadId::Snp),
            "SVMRFE" => Ok(WorkloadId::SvmRfe),
            "RSEARCH" => Ok(WorkloadId::Rsearch),
            "FIMI" => Ok(WorkloadId::Fimi),
            "PLSA" => Ok(WorkloadId::Plsa),
            "MDS" => Ok(WorkloadId::Mds),
            "SHOT" => Ok(WorkloadId::Shot),
            "VIEWTYPE" => Ok(WorkloadId::Viewtype),
            _ => Err(ParseWorkloadError(s.to_owned())),
        }
    }
}

/// Error parsing a workload name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError(String);

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown workload `{}`", self.0)
    }
}

impl std::error::Error for ParseWorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_eight_unique() {
        let all = WorkloadId::all();
        assert_eq!(all.len(), 8);
        let mut v = all.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(WorkloadId::SvmRfe.to_string(), "SVM-RFE");
        assert_eq!(WorkloadId::Viewtype.to_string(), "VIEWTYPE");
    }

    #[test]
    fn parse_roundtrip() {
        for id in WorkloadId::all() {
            let parsed: WorkloadId = id.name().parse().unwrap();
            assert_eq!(parsed, id);
        }
        assert_eq!("svm_rfe".parse::<WorkloadId>().unwrap(), WorkloadId::SvmRfe);
        assert!("nope".parse::<WorkloadId>().is_err());
    }

    #[test]
    fn sharing_categories_match_section_4_3() {
        assert!(WorkloadId::Mds.shares_primary_structure());
        assert!(WorkloadId::Snp.shares_primary_structure());
        assert!(WorkloadId::SvmRfe.shares_primary_structure());
        assert!(!WorkloadId::Shot.shares_primary_structure());
        assert!(!WorkloadId::Viewtype.shares_primary_structure());
        assert!(!WorkloadId::Fimi.shares_primary_structure());
        assert!(!WorkloadId::Rsearch.shares_primary_structure());
    }
}
