#![warn(missing_docs)]

//! The eight parallel data-mining workloads of the ISPASS 2007 study,
//! reimplemented as *instrumented kernels*.
//!
//! Each workload (§2, Table 1 of the paper):
//!
//! | Id | Algorithm | Input shape |
//! |----|-----------|-------------|
//! | [`WorkloadId::Snp`] | Bayesian-network structure learning by hill climbing | 600 k sequences × 50 sites |
//! | [`WorkloadId::SvmRfe`] | SVM recursive feature elimination | 253 samples × 15 k genes |
//! | [`WorkloadId::Rsearch`] | CYK/SCFG RNA homology search | 100 MB database, window 100 |
//! | [`WorkloadId::Fimi`] | FP-growth frequent-itemset mining | 990 k transactions |
//! | [`WorkloadId::Plsa`] | Smith–Waterman linear-space alignment | two 30 k sequences |
//! | [`WorkloadId::Mds`] | graph-ranking + MMR multi-document summarization | 300 MB sparse matrix |
//! | [`WorkloadId::Shot`] | color-histogram shot-boundary detection | 10-min 720×576 video |
//! | [`WorkloadId::Viewtype`] | HSV dominant-color view classification | 10-min 720×576 video |
//!
//! A workload owns a synthetic dataset generated to the paper's Table 1
//! shape and lays its data structures out in a simulated
//! [`AddressSpace`](cmpsim_trace::AddressSpace). [`Workload::make_threads`]
//! produces one [`ThreadKernel`] per virtual core; the SoftSDV-style
//! platform repeatedly calls [`ThreadKernel::step`], each call executing a
//! bounded unit of *real* algorithm work while reporting every memory
//! reference through the supplied [`Tracer`](cmpsim_trace::Tracer).
//!
//! Datasets the paper takes from proprietary or external sources (HGBASE,
//! cancer micro-arrays, GenBank, Kosarak, MPEG-2 footage) are replaced by
//! deterministic synthetic generators with matching statistics — see
//! `DESIGN.md` for the substitution argument, and [`Scale`] for how
//! footprints shrink in CI runs.
//!
//! # Example
//!
//! ```
//! use cmpsim_trace::{CountingSink, Tracer, TraceSink};
//! use cmpsim_workloads::{Scale, WorkloadId};
//!
//! let wl = WorkloadId::Plsa.build(Scale::tiny(), 42);
//! let mut threads = wl.make_threads(2);
//! let mut sink = CountingSink::new();
//! let mut running = true;
//! while running {
//!     running = false;
//!     for th in &mut threads {
//!         let mut tracer = Tracer::new(&mut sink as &mut dyn TraceSink);
//!         running |= th.step(&mut tracer);
//!     }
//! }
//! assert!(sink.total() > 0);
//! ```

pub mod datagen;
pub mod fimi;
pub mod mds;
pub mod mix;
pub mod plsa;
pub mod rsearch;
pub mod scale;
pub mod shot;
pub mod snp;
pub mod spec;
pub mod svmrfe;
pub mod viewtype;

pub use mix::OpMix;
pub use scale::Scale;
pub use spec::{DatasetSpec, KernelTracer, ThreadKernel, Workload, WorkloadId};
