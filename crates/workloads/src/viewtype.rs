//! VIEWTYPE — sports-video view-type classification (§2.6).
//!
//! For each key frame: convert RGB to HSV, train/update the dominant
//! playfield color by histogram accumulation, segment the playfield mask,
//! run connected-component analysis (two-pass union-find labeling), and
//! classify the view as global / medium / close-up / out-of-view from the
//! playfield area ratio and the largest non-field component — the
//! low-level pipeline the paper describes (playfield segmentation by HSV
//! dominant color + connected-component analysis).
//!
//! Memory behaviour this reproduces (§4.3): ~1 MB of private working set
//! per thread (HSV buffer + mask + label array for a downsampled frame),
//! scaling linearly with cores — 16 MB at 8 cores to 64 MB at 32 cores.

use crate::datagen::SyntheticVideo;
use crate::mix::OpMix;
use crate::scale::Scale;
use crate::spec::{DatasetSpec, KernelTracer, ThreadKernel, Workload, WorkloadId};
use cmpsim_trace::{AddressSpace, Region};
use std::sync::{Arc, Mutex};

/// Key-frame stride: every 4th frame is analyzed.
const KEY_STRIDE: u32 = 4;
/// Analysis passes over the key frames: one to train the dominant-color
/// model, one to classify with the settled model (§2.6: the dominant
/// color "is adaptively trained by the accumulation of the HSV color
/// histogram on a lot of frames").
const PASSES: u32 = 2;
/// HSV histogram bins per dimension (16^3 total).
const HBINS: usize = 16;
/// SIMD access width modeled for pixel passes.
const VEC: u64 = 16;

/// View-type classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViewClass {
    /// Wide view dominated by playfield.
    Global,
    /// Medium shot: field visible, large players.
    Medium,
    /// Close-up: little or no field.
    CloseUp,
    /// Out of view: crowd, bench, adverts.
    OutOfView,
}

impl ViewClass {
    fn from_features(field_ratio: f64, largest_blob_ratio: f64) -> Self {
        if field_ratio > 0.6 {
            if largest_blob_ratio < 0.05 {
                ViewClass::Global
            } else {
                ViewClass::Medium
            }
        } else if field_ratio > 0.2 {
            ViewClass::CloseUp
        } else {
            ViewClass::OutOfView
        }
    }
}

#[derive(Debug)]
struct ViewShared {
    video: SyntheticVideo,
    /// Global dominant-color histogram, trained across threads.
    hist: Mutex<Vec<u32>>,
    hist_region: Region,
}

/// The VIEWTYPE workload: see the module docs.
#[derive(Debug)]
pub struct Viewtype {
    scale: Scale,
    space: AddressSpace,
    video: SyntheticVideo,
    hist_region: Region,
    width: u32,
    height: u32,
    result: Arc<Mutex<Vec<(u32, ViewClass)>>>,
}

impl Viewtype {
    /// Builds the workload: same clip shape as SHOT but analyzed at a
    /// downsampled resolution on key frames only.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let dim_shift = scale.shift() / 2;
        let extra = scale.shift() % 2;
        // Downsampled analysis resolution (half of SHOT's decode size).
        let width = (360u32 >> dim_shift).max(32);
        let height = ((288u32 >> dim_shift) >> extra).max(24);
        let frames = scale.count(15_000).max(1024) as u32;
        let video = SyntheticVideo::generate(width, height, frames, seed);
        let mut space = AddressSpace::new();
        let hist_region =
            space.alloc_pages("viewtype.dominant_hist", (HBINS * HBINS * HBINS * 4) as u64);
        Viewtype {
            scale,
            space,
            video,
            hist_region,
            width,
            height,
            result: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Classifications of the last completed run: (key frame, class).
    pub fn classifications(&self) -> Vec<(u32, ViewClass)> {
        let mut v = self.result.lock().expect("result lock").clone();
        v.sort_unstable_by_key(|&(f, _)| f);
        v
    }

    /// Number of key frames analyzed per run.
    pub fn key_frames(&self) -> u32 {
        self.video.frames.div_ceil(KEY_STRIDE)
    }
}

impl Workload for Viewtype {
    fn id(&self) -> WorkloadId {
        WorkloadId::Viewtype
    }

    fn make_threads(&self, threads: usize) -> Vec<Box<dyn ThreadKernel>> {
        assert!(threads > 0, "at least one thread");
        let shared = Arc::new(ViewShared {
            video: self.video.clone(),
            hist: Mutex::new(vec![0u32; HBINS * HBINS * HBINS]),
            hist_region: self.hist_region.clone(),
        });
        self.result.lock().expect("result lock").clear();
        let mut space = self.space.clone();
        let pixels = u64::from(self.width) * u64::from(self.height);
        let keys = self.key_frames();
        let per = keys.div_ceil(threads as u32);
        (0..threads)
            .map(|t| {
                // Private per-thread analysis buffers: HSV (3B/px), mask
                // (1B/px), labels (4B/px) — ~1 MB at paper scale.
                let hsv = space.alloc_pages(&format!("viewtype.hsv.t{t}"), pixels * 3);
                let mask = space.alloc_pages(&format!("viewtype.mask.t{t}"), pixels);
                let labels = space.alloc_pages(&format!("viewtype.labels.t{t}"), pixels * 4);
                let start = (t as u32 * per).min(keys);
                let end = ((t as u32 + 1) * per).min(keys);
                Box::new(ViewThread {
                    shared: Arc::clone(&shared),
                    result: Arc::clone(&self.result),
                    hsv_region: hsv,
                    mask_region: mask,
                    labels_region: labels,
                    start_key: start,
                    next_key: start,
                    end_key: end,
                    pass: 0,
                    width: self.width,
                    height: self.height,
                    mix: OpMix::for_workload(WorkloadId::Viewtype),
                }) as Box<dyn ThreadKernel>
            })
            .collect()
    }

    fn footprint(&self) -> u64 {
        self.space.footprint()
    }

    fn dataset(&self) -> DatasetSpec {
        DatasetSpec {
            workload: WorkloadId::Viewtype,
            parameters: format!(
                "{} frames, {}x{} analysis resolution",
                self.video.frames, self.width, self.height
            ),
            input_bytes: self.scale.bytes(200 << 20),
            provenance: "procedural sports-like clip standing in for MPEG-2 footage".to_owned(),
        }
    }
}

#[derive(Debug)]
struct ViewThread {
    shared: Arc<ViewShared>,
    result: Arc<Mutex<Vec<(u32, ViewClass)>>>,
    hsv_region: Region,
    mask_region: Region,
    labels_region: Region,
    start_key: u32,
    next_key: u32,
    end_key: u32,
    /// 0 = dominant-color training pass, `PASSES - 1` = classification.
    pass: u32,
    width: u32,
    height: u32,
    mix: OpMix,
}

/// RGB → HSV hue/sat/val bytes (integer approximation).
fn rgb_to_hsv(p: [u8; 3]) -> [u8; 3] {
    let (r, g, b) = (i32::from(p[0]), i32::from(p[1]), i32::from(p[2]));
    let max = r.max(g).max(b);
    let min = r.min(g).min(b);
    let v = max;
    let s = if max == 0 { 0 } else { 255 * (max - min) / max };
    let h = if max == min {
        0
    } else if max == r {
        (43 * (g - b) / (max - min)).rem_euclid(256)
    } else if max == g {
        85 + 43 * (b - r) / (max - min)
    } else {
        171 + 43 * (r - g) / (max - min)
    };
    [h as u8, s as u8, (v & 0xFF) as u8]
}

impl ViewThread {
    fn process_key_frame(&mut self, t: &mut KernelTracer<'_>) {
        let frame = self.next_key * KEY_STRIDE;
        let video = &self.shared.video;
        let (w, h) = (self.width as usize, self.height as usize);
        let pixels = w * h;

        // Pass 1: RGB->HSV conversion; write the HSV buffer, accumulate
        // the dominant-color histogram (shared, trained over many
        // frames) and find this frame's modal bin.
        let mut local_hist = vec![0u32; HBINS * HBINS * HBINS];
        let mut hsv_buf = vec![[0u8; 3]; pixels];
        for y in 0..h {
            for x in 0..w {
                let hsv = rgb_to_hsv(video.pixel(frame, x as u32, y as u32));
                hsv_buf[y * w + x] = hsv;
                let bin = (usize::from(hsv[0]) >> 4) * HBINS * HBINS
                    + (usize::from(hsv[1]) >> 4) * HBINS
                    + (usize::from(hsv[2]) >> 4);
                local_hist[bin] += 1;
                let off = ((y * w + x) * 3) as u64;
                if off.is_multiple_of(VEC) {
                    self.mix.write(
                        t,
                        self.hsv_region.addr_at(off.min(pixels as u64 * 3 - VEC)),
                        VEC as u32,
                    );
                }
            }
        }
        // Fold into the shared dominant-color histogram (adaptive
        // training — §2.6: "adaptively trained by the accumulation of the
        // HSV color histogram on a lot of frames").
        let dominant_bin;
        {
            let mut hist = self.shared.hist.lock().expect("hist lock");
            for (b, &c) in local_hist.iter().enumerate() {
                if c > 0 {
                    hist[b] += c;
                    self.mix
                        .update(t, self.shared.hist_region.addr_at((b * 4) as u64), 4);
                }
            }
            dominant_bin = hist
                .iter()
                .enumerate()
                .max_by_key(|&(_, &c)| c)
                .map(|(b, _)| b)
                .expect("histogram non-empty");
        }

        // Pass 2: playfield mask = pixels whose HSV bin matches the
        // dominant bin's hue slice.
        let dom_h = dominant_bin / (HBINS * HBINS);
        let mut mask = vec![false; pixels];
        let mut field = 0u64;
        for (i, hsv) in hsv_buf.iter().enumerate() {
            let is_field = usize::from(hsv[0]) >> 4 == dom_h;
            mask[i] = is_field;
            field += u64::from(is_field);
            let off = i as u64;
            if off.is_multiple_of(VEC) {
                self.mix.read(
                    t,
                    self.hsv_region
                        .addr_at((off * 3).min(pixels as u64 * 3 - VEC)),
                    VEC as u32,
                );
                self.mix.write(
                    t,
                    self.mask_region.addr_at(off.min(pixels as u64 - VEC)),
                    VEC as u32,
                );
            }
        }

        // Pass 3: connected components over the *non-field* pixels
        // (players/objects) — two-pass labeling with union-find.
        let mut labels = vec![0u32; pixels];
        let mut parent: Vec<u32> = vec![0];
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                let up = parent[parent[x as usize] as usize];
                parent[x as usize] = up;
                x = up;
            }
            x
        }
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                let off = (i * 4) as u64;
                if off.is_multiple_of(VEC) {
                    self.mix.read(
                        t,
                        self.mask_region
                            .addr_at((i as u64).min(pixels as u64 - VEC)),
                        VEC as u32,
                    );
                }
                if mask[i] {
                    continue; // field pixel: background
                }
                let west = if x > 0 && !mask[i - 1] {
                    labels[i - 1]
                } else {
                    0
                };
                let north = if y > 0 && !mask[i - w] {
                    labels[i - w]
                } else {
                    0
                };
                let label = match (west, north) {
                    (0, 0) => {
                        let l = parent.len() as u32;
                        parent.push(l);
                        l
                    }
                    (l, 0) | (0, l) => l,
                    (a, b) => {
                        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                        if ra != rb {
                            let (lo, hi) = (ra.min(rb), ra.max(rb));
                            parent[hi as usize] = lo;
                        }
                        ra.min(rb)
                    }
                };
                labels[i] = label;
                self.mix.write(t, self.labels_region.addr_at(off), 4);
            }
        }
        // Second pass: resolve labels, find the largest component.
        let mut sizes = vec![0u64; parent.len()];
        for (i, &l) in labels.iter().enumerate() {
            let off = (i * 4) as u64;
            if off.is_multiple_of(VEC) {
                self.mix
                    .read(t, self.labels_region.addr_at(off), VEC as u32);
            }
            if l != 0 {
                sizes[find(&mut parent, l) as usize] += 1;
            }
        }
        let largest = sizes.iter().skip(1).copied().max().unwrap_or(0);

        let field_ratio = field as f64 / pixels as f64;
        let blob_ratio = largest as f64 / pixels as f64;
        let class = ViewClass::from_features(field_ratio, blob_ratio);
        if self.pass == PASSES - 1 {
            // Only the final pass (settled dominant-color model) emits
            // classifications.
            self.result
                .lock()
                .expect("result lock")
                .push((frame, class));
        }
        t.ops(32);
        self.next_key += 1;
    }
}

impl ThreadKernel for ViewThread {
    fn step(&mut self, t: &mut KernelTracer<'_>) -> bool {
        if self.next_key >= self.end_key {
            if self.pass + 1 < PASSES {
                self.pass += 1;
                self.next_key = self.start_key;
            } else {
                return false;
            }
        }
        self.process_key_frame(t);
        self.next_key < self.end_key || self.pass + 1 < PASSES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_trace::{CountingSink, TraceSink, Tracer};

    fn run(wl: &Viewtype, threads: usize) -> CountingSink {
        let mut kernels = wl.make_threads(threads);
        let mut sink = CountingSink::new();
        let mut running = true;
        let mut guard = 0u64;
        while running {
            running = false;
            for k in &mut kernels {
                let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
                running |= k.step(&mut tr);
            }
            guard += 1;
            assert!(guard < 10_000_000, "VIEWTYPE did not terminate");
        }
        sink
    }

    #[test]
    fn classifies_every_key_frame() {
        let wl = Viewtype::new(Scale::tiny(), 1);
        let _ = run(&wl, 2);
        let out = wl.classifications();
        assert_eq!(out.len() as u32, wl.key_frames());
        // Frames are key-frame aligned and unique.
        for w in out.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert!(out.iter().all(|&(f, _)| f % KEY_STRIDE == 0));
    }

    #[test]
    fn frames_in_same_shot_classified_identically() {
        let wl = Viewtype::new(Scale::tiny(), 2);
        let _ = run(&wl, 1);
        let out = wl.classifications();
        // Pixels are stationary within a shot, so consecutive key frames
        // of one shot must agree once training has settled.
        let video = &wl.video;
        let mut agree = 0;
        let mut total = 0;
        for w in out.windows(2) {
            if video.shot_of(w[0].0) == video.shot_of(w[1].0) && w[0].0 > video.frames / 4 {
                total += 1;
                agree += usize::from(w[0].1 == w[1].1);
            }
        }
        assert!(total > 0);
        assert!(agree * 10 >= total * 9, "agree {agree}/{total}");
    }

    #[test]
    fn rgb_to_hsv_grayscale_has_zero_saturation() {
        for v in [0u8, 17, 128, 255] {
            let hsv = rgb_to_hsv([v, v, v]);
            assert_eq!(hsv[1], 0);
            assert_eq!(hsv[2], v);
        }
    }

    #[test]
    fn rgb_to_hsv_primary_hues_are_distinct() {
        let r = rgb_to_hsv([255, 0, 0])[0];
        let g = rgb_to_hsv([0, 255, 0])[0];
        let b = rgb_to_hsv([0, 0, 255])[0];
        assert_ne!(r, g);
        assert_ne!(g, b);
        assert_ne!(r, b);
    }

    #[test]
    fn results_complete_under_thread_scaling() {
        let wl = Viewtype::new(Scale::tiny(), 3);
        let _ = run(&wl, 8);
        assert_eq!(wl.classifications().len() as u32, wl.key_frames());
    }

    #[test]
    fn private_buffers_scale_with_threads() {
        let wl = Viewtype::new(Scale::tiny(), 4);
        let base = wl.footprint();
        let _ = wl.make_threads(4);
        // make_threads clones the space; workload base footprint stays.
        assert_eq!(wl.footprint(), base);
    }
}
