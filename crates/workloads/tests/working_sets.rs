//! Working-set validation: each workload's measured footprint (distinct
//! 64-byte lines touched) must sit where the paper says it does, at
//! matched scale — these are the numbers behind Figure 4's knees.

use cmpsim_trace::{FnSink, Scale, TraceSink, Tracer};
use cmpsim_workloads::WorkloadId;
use std::collections::HashSet;

/// Runs a workload to completion on `threads` threads and measures the
/// distinct 64-byte lines touched.
fn measure_ws(id: WorkloadId, scale: Scale, threads: usize) -> u64 {
    let wl = id.build(scale, 99);
    let mut kernels = wl.make_threads(threads);
    let mut lines: HashSet<u64> = HashSet::new();
    let mut running = true;
    let mut guard = 0u64;
    while running {
        running = false;
        for k in &mut kernels {
            let mut sink = FnSink(|r: cmpsim_trace::MemRef| {
                lines.insert(r.addr.line(64));
            });
            let mut tracer = Tracer::new(&mut sink as &mut dyn TraceSink);
            running |= k.step(&mut tracer);
        }
        guard += 1;
        assert!(guard < 10_000_000, "{id} did not terminate");
    }
    lines.len() as u64 * 64
}

const SCALE: Scale = Scale::tiny();
/// The divisor at `Scale::tiny`.
const DIV: u64 = 256;

#[test]
fn mds_working_set_is_matrix_sized() {
    // Paper: "a sparse matrix of 300MB" dominates.
    let ws = measure_ws(WorkloadId::Mds, SCALE, 4);
    let paper_equiv = ws * DIV;
    assert!(
        (150 << 20..600 << 20).contains(&paper_equiv),
        "MDS working set {paper_equiv} bytes (paper-equivalent)"
    );
}

#[test]
fn shot_working_set_scales_linearly_with_threads() {
    // Paper: ~4 MB per thread of private frame buffers.
    let ws2 = measure_ws(WorkloadId::Shot, SCALE, 2);
    let ws8 = measure_ws(WorkloadId::Shot, SCALE, 8);
    let growth = ws8 as f64 / ws2 as f64;
    assert!(
        (2.0..6.0).contains(&growth),
        "SHOT 2->8 thread footprint growth {growth}"
    );
}

#[test]
fn svmrfe_working_set_does_not_scale_with_threads() {
    let ws1 = measure_ws(WorkloadId::SvmRfe, SCALE, 1);
    let ws8 = measure_ws(WorkloadId::SvmRfe, SCALE, 8);
    let growth = ws8 as f64 / ws1 as f64;
    assert!(
        growth < 1.2,
        "SVM-RFE footprint must be shared: growth {growth}"
    );
}

#[test]
fn rsearch_private_dp_grows_with_threads() {
    let ws1 = measure_ws(WorkloadId::Rsearch, SCALE, 1);
    let ws8 = measure_ws(WorkloadId::Rsearch, SCALE, 8);
    assert!(
        ws8 > ws1,
        "RSEARCH footprint must grow with threads: {ws1} -> {ws8}"
    );
}

#[test]
fn snp_working_set_spans_its_three_structures() {
    let ws = measure_ws(WorkloadId::Snp, SCALE, 4);
    // Data table + score cache + (touched part of) statistics table:
    // well above the data table alone, well below the full region sum.
    let wl = WorkloadId::Snp.build(SCALE, 99);
    let full = wl.footprint();
    let data_only = SCALE.count(600_000).max(1024) * 50;
    assert!(ws > data_only / 2, "SNP ws {ws} vs data {data_only}");
    assert!(ws <= full, "SNP ws {ws} vs allocated {full}");
}

#[test]
fn plsa_working_set_is_smallest() {
    // Paper Figure 4: PLSA has a 4 MB-class working set — the smallest
    // of the non-flat workloads.
    let plsa = measure_ws(WorkloadId::Plsa, SCALE, 8);
    let shot = measure_ws(WorkloadId::Shot, SCALE, 8);
    let mds = measure_ws(WorkloadId::Mds, SCALE, 8);
    assert!(plsa < shot, "PLSA {plsa} vs SHOT {shot}");
    assert!(plsa < mds, "PLSA {plsa} vs MDS {mds}");
}

#[test]
fn fimi_tree_dominates_and_private_data_is_minor() {
    let ws1 = measure_ws(WorkloadId::Fimi, SCALE, 1);
    let ws8 = measure_ws(WorkloadId::Fimi, SCALE, 8);
    let growth = ws8 as f64 / ws1 as f64;
    // Paper: "the footprint of the global working set is much larger
    // than that of the additional private per-thread data".
    assert!(
        growth < 1.5,
        "FIMI shared tree must dominate: growth {growth}"
    );
}
