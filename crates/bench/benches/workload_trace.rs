//! Workload kernel throughput: instructions simulated per second for
//! each of the eight data-mining kernels (pure trace generation, no
//! cache model).
//! Run with `cargo bench --bench workload_trace [-- <filter>]`.

use cmpsim_telemetry::BenchHarness;
use cmpsim_trace::{CountingSink, TraceSink, Tracer};
use cmpsim_workloads::{Scale, WorkloadId};

fn main() {
    let mut h = BenchHarness::from_args();
    for id in WorkloadId::all() {
        h.run(&format!("workload_trace/{id}"), 10, None, || {
            let wl = id.build(Scale::tiny(), 1);
            let mut threads = wl.make_threads(2);
            let mut sink = CountingSink::new();
            let mut running = true;
            while running {
                running = false;
                for th in &mut threads {
                    let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
                    running |= th.step(&mut tr);
                }
            }
        });
    }
}
