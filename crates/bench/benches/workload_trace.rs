//! Workload kernel throughput: instructions simulated per second for
//! each of the eight data-mining kernels (pure trace generation, no
//! cache model).

use cmpsim_trace::{CountingSink, TraceSink, Tracer};
use cmpsim_workloads::{Scale, WorkloadId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_trace");
    group.sample_size(10);
    for id in WorkloadId::all() {
        group.bench_with_input(BenchmarkId::from_parameter(id), &id, |b, &id| {
            b.iter(|| {
                let wl = id.build(Scale::tiny(), 1);
                let mut threads = wl.make_threads(2);
                let mut sink = CountingSink::new();
                let mut running = true;
                while running {
                    running = false;
                    for th in &mut threads {
                        let mut tr = Tracer::new(&mut sink as &mut dyn TraceSink);
                        running |= th.step(&mut tr);
                    }
                }
                sink.total()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
