//! Raw simulator throughput: accesses/second of the set-associative
//! cache and the banked Dragonhead LLC under different access patterns.

use cmpsim_cache::{CacheConfig, SetAssocCache};
use cmpsim_trace::Pcg32;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn streaming_trace(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

fn random_trace(n: usize, span: u64) -> Vec<u64> {
    let mut rng = Pcg32::seed(42);
    (0..n).map(|_| rng.below(span)).collect()
}

fn zipf_trace(n: usize, span: u64) -> Vec<u64> {
    let table = cmpsim_trace::ZipfTable::new(span as usize, 1.1);
    let mut rng = Pcg32::seed(43);
    (0..n).map(|_| table.sample(&mut rng) as u64).collect()
}

fn bench_cache(c: &mut Criterion) {
    let n = 1_000_000usize;
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(n as u64));
    for (name, trace) in [
        ("streaming", streaming_trace(n)),
        ("random", random_trace(n, 1 << 20)),
        ("zipf", zipf_trace(n, 1 << 16)),
    ] {
        for size_mb in [1u64, 16] {
            let cfg = CacheConfig::lru(size_mb << 20, 64, 16).unwrap();
            group.bench_with_input(
                BenchmarkId::new(name, format!("{size_mb}MB")),
                &trace,
                |b, trace| {
                    b.iter(|| {
                        let mut cache = SetAssocCache::new(cfg);
                        let mut hits = 0u64;
                        for &line in trace {
                            hits += u64::from(cache.access(line, false).is_hit());
                        }
                        hits
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
