//! Raw simulator throughput: accesses/second of the set-associative
//! cache and the banked Dragonhead LLC under different access patterns.
//! Run with `cargo bench --bench cache_throughput [-- <filter>]`.

use cmpsim_cache::{CacheConfig, SetAssocCache};
use cmpsim_telemetry::BenchHarness;
use cmpsim_trace::Pcg32;

fn streaming_trace(n: usize) -> Vec<u64> {
    (0..n as u64).collect()
}

fn random_trace(n: usize, span: u64) -> Vec<u64> {
    let mut rng = Pcg32::seed(42);
    (0..n).map(|_| rng.below(span)).collect()
}

fn zipf_trace(n: usize, span: u64) -> Vec<u64> {
    let table = cmpsim_trace::ZipfTable::new(span as usize, 1.1);
    let mut rng = Pcg32::seed(43);
    (0..n).map(|_| table.sample(&mut rng) as u64).collect()
}

fn main() {
    let mut h = BenchHarness::from_args();
    let n = 1_000_000usize;
    for (name, trace) in [
        ("streaming", streaming_trace(n)),
        ("random", random_trace(n, 1 << 20)),
        ("zipf", zipf_trace(n, 1 << 16)),
    ] {
        for size_mb in [1u64, 16] {
            let cfg = CacheConfig::lru(size_mb << 20, 64, 16).unwrap();
            let mut hits = 0u64;
            h.run(
                &format!("cache_access/{name}/{size_mb}MB"),
                5,
                Some(n as u64),
                || {
                    let mut cache = SetAssocCache::new(cfg);
                    hits = 0;
                    for &line in &trace {
                        hits += u64::from(cache.access(line, false).is_hit());
                    }
                },
            );
        }
    }
}
