//! End-to-end experiment benches: wall-clock cost of regenerating each
//! table/figure at smoke scale. (The figure *content* is produced by the
//! `src/bin` harnesses; these benches track the simulator's speed so
//! regressions in the co-simulation hot path are caught.)

use cmpsim_core::experiment::{
    CacheSizeStudy, CmpClass, LineSizeStudy, PrefetchStudy, Table2Study,
};
use cmpsim_core::{Scale, WorkloadId};
use criterion::{criterion_group, criterion_main, Criterion};

const SEED: u64 = 2007;

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    group.bench_function("table2_plsa", |b| {
        b.iter(|| Table2Study::new(Scale::tiny(), SEED).run(WorkloadId::Plsa))
    });

    group.bench_function("fig4_sweep_svmrfe", |b| {
        b.iter(|| {
            CacheSizeStudy::new(Scale::tiny(), CmpClass::Small, SEED)
                .run_with_sizes(WorkloadId::SvmRfe, &[64 << 10, 256 << 10, 1 << 20])
        })
    });

    group.bench_function("fig7_lines_shot", |b| {
        b.iter(|| {
            let mut study = LineSizeStudy::new(Scale::tiny(), SEED);
            study.cores = 4;
            study.run(WorkloadId::Shot)
        })
    });

    group.bench_function("fig8_prefetch_plsa", |b| {
        b.iter(|| {
            let mut study = PrefetchStudy::new(Scale::tiny(), SEED);
            study.parallel_threads = 4;
            study.run(WorkloadId::Plsa)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
