//! End-to-end experiment benches: wall-clock cost of regenerating each
//! table/figure at smoke scale. (The figure *content* is produced by the
//! `src/bin` harnesses; these benches track the simulator's speed so
//! regressions in the co-simulation hot path are caught.)
//! Run with `cargo bench --bench experiments [-- <filter>]`.

use cmpsim_core::experiment::{
    CacheSizeStudy, CmpClass, LineSizeStudy, PrefetchStudy, Table2Study,
};
use cmpsim_core::{Scale, WorkloadId};
use cmpsim_telemetry::BenchHarness;

const SEED: u64 = 2007;

fn main() {
    let mut h = BenchHarness::from_args();

    h.run("experiments/table2_plsa", 10, None, || {
        let _ = Table2Study::new(Scale::tiny(), SEED).run(WorkloadId::Plsa);
    });

    h.run("experiments/fig4_sweep_svmrfe", 10, None, || {
        let _ = CacheSizeStudy::new(Scale::tiny(), CmpClass::Small, SEED)
            .run_with_sizes(WorkloadId::SvmRfe, &[64 << 10, 256 << 10, 1 << 20]);
    });

    h.run("experiments/fig7_lines_shot", 10, None, || {
        let mut study = LineSizeStudy::new(Scale::tiny(), SEED);
        study.cores = 4;
        let _ = study.run(WorkloadId::Shot);
    });

    h.run("experiments/fig8_prefetch_plsa", 10, None, || {
        let mut study = PrefetchStudy::new(Scale::tiny(), SEED);
        study.parallel_threads = 4;
        let _ = study.run(WorkloadId::Plsa);
    });
}
