//! Tests for the CLI plumbing shared by the harness binaries.

use cmpsim_bench::{parse_scale, Options};
use cmpsim_workloads::Scale;

#[test]
fn scale_round_numbers() {
    assert_eq!(parse_scale("1/1"), Some(Scale::paper()));
    assert_eq!(parse_scale("1/2"), Some(Scale::with_shift(1)));
    assert_eq!(parse_scale("1/256"), Some(Scale::tiny()));
}

#[test]
fn scale_rejects_garbage() {
    for bad in ["", "1/", "1/0", "2/4", "one sixteenth"] {
        assert_eq!(parse_scale(bad), None, "{bad:?} should not parse");
    }
}

#[test]
fn default_options_are_paper_complete() {
    let o = Options::default();
    assert_eq!(o.scale, Scale::ci());
    // Every Table 2 workload present, in paper order.
    let names: Vec<String> = o.workloads.iter().map(ToString::to_string).collect();
    assert_eq!(
        names,
        ["SNP", "SVM-RFE", "MDS", "SHOT", "FIMI", "VIEWTYPE", "PLSA", "RSEARCH"]
    );
}
