//! Tests for the CLI plumbing shared by the harness binaries.

use cmpsim_bench::{parse_scale, Options};
use cmpsim_core::runner::IsolateMode;
use cmpsim_workloads::{Scale, WorkloadId};
use std::path::PathBuf;

fn parse(args: &[&str]) -> Result<Options, String> {
    Options::parse(args.iter().map(|s| s.to_string()))
}

#[test]
fn scale_round_numbers() {
    assert_eq!(parse_scale("1/1"), Some(Scale::paper()));
    assert_eq!(parse_scale("1/2"), Some(Scale::with_shift(1)));
    assert_eq!(parse_scale("1/256"), Some(Scale::tiny()));
}

#[test]
fn scale_rejects_garbage() {
    for bad in ["", "1/", "1/0", "2/4", "one sixteenth"] {
        assert_eq!(parse_scale(bad), None, "{bad:?} should not parse");
    }
}

#[test]
fn default_options_are_paper_complete() {
    let o = Options::default();
    assert_eq!(o.scale, Scale::ci());
    // Every Table 2 workload present, in paper order.
    let names: Vec<String> = o.workloads.iter().map(ToString::to_string).collect();
    assert_eq!(
        names,
        ["SNP", "SVM-RFE", "MDS", "SHOT", "FIMI", "VIEWTYPE", "PLSA", "RSEARCH"]
    );
    // Crash-safety is strictly opt-in: a plain run journals nothing.
    assert_eq!(o.journal_config("fig4_scmp"), None);
    assert_eq!(o.isolate, IsolateMode::Inline);
    assert_eq!(o.run_job, None);
}

#[test]
fn crash_safety_flags_parse() {
    let o = parse(&[
        "--journal-dir",
        "/tmp/j",
        "--run-id",
        "night42",
        "--isolate",
        "process",
        "--retries",
        "3",
    ])
    .unwrap();
    assert_eq!(o.journal_dir, Some(PathBuf::from("/tmp/j")));
    assert_eq!(o.run_id.as_deref(), Some("night42"));
    assert_eq!(o.isolate, IsolateMode::Process);
    assert_eq!(o.retries, Some(3));
    let jc = o.journal_config("fig4_scmp").expect("journalling enabled");
    assert_eq!(jc.run_id, "night42");
    assert!(!jc.resume);
    assert_eq!(jc.path(), PathBuf::from("/tmp/j/night42.jsonl"));
    let cfg = o.runner_grid("fig4_scmp");
    assert_eq!(cfg.retries, 3);
    assert_eq!(cfg.isolate, IsolateMode::Process);
    assert!(cfg.journal.is_some());
    assert!(cfg.shutdown.is_some());

    assert!(parse(&["--isolate", "vm"]).is_err());
    assert!(parse(&["--retries", "many"]).is_err());
}

#[test]
fn resume_implies_a_resuming_journal_with_the_default_dir() {
    let o = parse(&["--resume", "night42"]).unwrap();
    let jc = o
        .journal_config("fig4_scmp")
        .expect("resume enables journal");
    assert!(jc.resume);
    assert_eq!(jc.run_id, "night42");
    assert_eq!(jc.path(), PathBuf::from("results/journal/night42.jsonl"));
    // `--run-id` alone also journals, under a fresh id when omitted.
    let o = parse(&["--run-id", "n1"]).unwrap();
    assert_eq!(o.journal_config("fig4_scmp").unwrap().run_id, "n1");
}

#[test]
fn hidden_child_entry_parses_only_in_first_position() {
    let o = parse(&["__run-job", "FIMI", "--scale", "tiny", "--seed", "7"]).unwrap();
    assert_eq!(o.run_job, Some(WorkloadId::Fimi));
    assert_eq!(o.seed, 7);
    assert!(parse(&["__run-job", "BOGUS"]).is_err());
    assert!(parse(&["--seed", "7", "__run-job", "FIMI"]).is_err());
}

#[test]
fn child_args_strip_every_parent_only_concern() {
    let o = parse(&[
        "--scale",
        "tiny",
        "--seed",
        "7",
        "--workloads",
        "FIMI,MDS",
        "--jobs",
        "4",
        "--cache-dir",
        "/tmp/c",
        "--json",
        "--metrics-out",
        "/tmp/m.json",
        "--journal-dir",
        "/tmp/j",
        "--run-id",
        "n1",
        "--isolate",
        "process",
        "--retries",
        "2",
        "--job-timeout",
        "30",
    ])
    .unwrap();
    // Only the cell identity survives, and the child never caches —
    // the parent stores what the child reports. The replay shard count
    // rides along resolved (here following `--jobs 4`) so the child
    // shards its sweep replay like the parent would.
    assert_eq!(
        o.child_args(),
        [
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--no-cache",
            "--replay-shards",
            "4"
        ]
    );
}

#[test]
fn resume_command_pins_the_run_id() {
    let o = parse(&["--scale", "tiny", "--run-id", "old", "--jobs", "2"]).unwrap();
    let cmd = o.resume_command("old");
    assert!(cmd.ends_with("--scale tiny --jobs 2 --resume old"), "{cmd}");
    assert!(!cmd.contains("--run-id"), "{cmd}");
}
