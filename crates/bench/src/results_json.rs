//! Converters from study result structs to the JSON `results` payload
//! each binary writes next to its text output.
//!
//! The shapes mirror the text tables one-to-one: one array entry per
//! curve/row, numeric fields unrounded (the text output rounds for
//! alignment; the JSON twin keeps full precision for plotting).

use cmpsim_cache::ReplacementPolicy;
use cmpsim_core::experiment::{
    CacheSizeCurve, LineSizeCurve, LlcOrganizationResult, PhasePoint, PrefetchResult,
    SharingResult, Table2Row,
};
use cmpsim_core::WorkloadId;
use cmpsim_telemetry::JsonValue;

/// Figure 4/5/6 payload: per-workload MPKI-vs-size curves with the
/// derived working-set knee.
pub fn cache_size_curves(curves: &[CacheSizeCurve]) -> JsonValue {
    JsonValue::Array(
        curves
            .iter()
            .map(|c| {
                JsonValue::object([
                    ("workload", JsonValue::from(c.workload.to_string())),
                    ("cmp", JsonValue::from(c.cmp.to_string())),
                    ("cores", JsonValue::from(c.cmp.cores() as u64)),
                    (
                        "points",
                        JsonValue::Array(
                            c.points
                                .iter()
                                .map(|p| {
                                    JsonValue::object([
                                        ("llc_bytes", JsonValue::U64(p.llc_bytes)),
                                        ("mpki", JsonValue::F64(p.mpki)),
                                        ("misses", JsonValue::U64(p.misses)),
                                        ("instructions", JsonValue::U64(p.instructions)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "knee_bytes",
                        c.knee(0.5).map_or(JsonValue::Null, JsonValue::U64),
                    ),
                    ("flatness", JsonValue::F64(c.flatness())),
                ])
            })
            .collect(),
    )
}

/// Figure 7 payload: per-workload MPKI-vs-line-size curves.
pub fn line_size_curves(curves: &[LineSizeCurve]) -> JsonValue {
    JsonValue::Array(
        curves
            .iter()
            .map(|c| {
                JsonValue::object([
                    ("workload", JsonValue::from(c.workload.to_string())),
                    (
                        "points",
                        JsonValue::Array(
                            c.points
                                .iter()
                                .map(|p| {
                                    JsonValue::object([
                                        ("line_bytes", JsonValue::U64(p.line_bytes)),
                                        ("mpki", JsonValue::F64(p.mpki)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("improvement_256", JsonValue::F64(c.improvement_at(256))),
                    ("improvement_1024", JsonValue::F64(c.improvement_at(1024))),
                ])
            })
            .collect(),
    )
}

/// Figure 8 payload: prefetch speedups.
pub fn prefetch_results(results: &[PrefetchResult]) -> JsonValue {
    JsonValue::Array(
        results
            .iter()
            .map(|r| {
                JsonValue::object([
                    ("workload", JsonValue::from(r.workload.to_string())),
                    ("serial_speedup", JsonValue::F64(r.serial_speedup)),
                    ("parallel_speedup", JsonValue::F64(r.parallel_speedup)),
                    (
                        "parallel_utilization",
                        JsonValue::F64(r.parallel_utilization),
                    ),
                ])
            })
            .collect(),
    )
}

/// Table 2 payload: single-threaded characteristics.
pub fn table2_rows(rows: &[Table2Row]) -> JsonValue {
    JsonValue::Array(
        rows.iter()
            .map(|r| {
                JsonValue::object([
                    ("workload", JsonValue::from(r.workload.to_string())),
                    ("ipc", JsonValue::F64(r.ipc)),
                    ("instructions", JsonValue::U64(r.instructions)),
                    ("memory_fraction", JsonValue::F64(r.memory_fraction)),
                    ("read_fraction", JsonValue::F64(r.read_fraction)),
                    ("dl1_apki", JsonValue::F64(r.dl1_apki)),
                    ("dl1_mpki", JsonValue::F64(r.dl1_mpki)),
                    ("dl2_mpki", JsonValue::F64(r.dl2_mpki)),
                ])
            })
            .collect(),
    )
}

/// Sharing-ablation payload.
pub fn sharing_results(results: &[SharingResult]) -> JsonValue {
    JsonValue::Array(
        results
            .iter()
            .map(|r| {
                JsonValue::object([
                    ("workload", JsonValue::from(r.workload.to_string())),
                    ("miss_growth_8x", JsonValue::F64(r.miss_growth_8x)),
                    (
                        "paper_category_shared",
                        JsonValue::Bool(r.paper_category_shared),
                    ),
                ])
            })
            .collect(),
    )
}

/// Replacement-ablation payload: one entry per workload, each holding
/// the size sweep under every policy.
pub fn replacement_sweeps(
    sweeps: &[(WorkloadId, Vec<(ReplacementPolicy, CacheSizeCurve)>)],
) -> JsonValue {
    JsonValue::Array(
        sweeps
            .iter()
            .map(|(w, curves)| {
                JsonValue::object([
                    ("workload", JsonValue::from(w.to_string())),
                    (
                        "policies",
                        JsonValue::Array(
                            curves
                                .iter()
                                .map(|(p, c)| {
                                    JsonValue::object([
                                        ("policy", JsonValue::from(p.to_string())),
                                        ("curve", cache_size_curves(std::slice::from_ref(c))),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// Shared-vs-private LLC organization payload.
pub fn llc_organization_results(results: &[LlcOrganizationResult]) -> JsonValue {
    JsonValue::Array(
        results
            .iter()
            .map(|r| {
                JsonValue::object([
                    ("workload", JsonValue::from(r.workload.to_string())),
                    ("shared_mpki", JsonValue::F64(r.shared_mpki)),
                    ("private_mpki", JsonValue::F64(r.private_mpki)),
                    ("private_penalty", JsonValue::F64(r.private_penalty())),
                ])
            })
            .collect(),
    )
}

/// Core-count projection payload: one entry per workload, MPKI at each
/// core count.
pub fn projection_series(series: &[(WorkloadId, Vec<(usize, f64)>)]) -> JsonValue {
    JsonValue::Array(
        series
            .iter()
            .map(|(w, pts)| {
                JsonValue::object([
                    ("workload", JsonValue::from(w.to_string())),
                    (
                        "points",
                        JsonValue::Array(
                            pts.iter()
                                .map(|&(cores, mpki)| {
                                    JsonValue::object([
                                        ("cores", JsonValue::from(cores as u64)),
                                        ("mpki", JsonValue::F64(mpki)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// Phase-behavior payload: the per-interval MPKI series per workload,
/// as parallel `cycles` / `interval_mpki` arrays (a long sampler series
/// as one object per point would dominate the document). MPKI is
/// rounded to 1e-6, which is far below the model's fidelity.
pub fn phase_series(series: &[(WorkloadId, Vec<PhasePoint>)]) -> JsonValue {
    JsonValue::Array(
        series
            .iter()
            .map(|(w, pts)| {
                JsonValue::object([
                    ("workload", JsonValue::from(w.to_string())),
                    (
                        "cycles",
                        JsonValue::Array(pts.iter().map(|p| JsonValue::U64(p.cycle)).collect()),
                    ),
                    (
                        "interval_mpki",
                        JsonValue::Array(
                            pts.iter()
                                .map(|p| JsonValue::F64((p.interval_mpki * 1e6).round() / 1e6))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_core::experiment::{CachePoint, CmpClass};

    fn curve() -> CacheSizeCurve {
        CacheSizeCurve {
            workload: WorkloadId::Fimi,
            cmp: CmpClass::Small,
            points: vec![
                CachePoint {
                    llc_bytes: 1 << 20,
                    mpki: 4.0,
                    misses: 400,
                    instructions: 100_000,
                },
                CachePoint {
                    llc_bytes: 1 << 21,
                    mpki: 1.0,
                    misses: 100,
                    instructions: 100_000,
                },
            ],
        }
    }

    #[test]
    fn cache_size_payload_shape() {
        let j = cache_size_curves(&[curve()]);
        let entry = &j.as_array().unwrap()[0];
        assert_eq!(entry.get("workload").unwrap().as_str(), Some("FIMI"));
        assert_eq!(entry.get("cores").unwrap().as_u64(), Some(8));
        let pts = entry.get("points").unwrap().as_array().unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].get("llc_bytes").unwrap().as_u64(), Some(1 << 20));
        // The knee (MPKI halves) is at the 2 MB point.
        assert_eq!(entry.get("knee_bytes").unwrap().as_u64(), Some(1 << 21));
    }

    #[test]
    fn payloads_serialize_and_reparse() {
        let docs = [
            cache_size_curves(&[curve()]),
            projection_series(&[(WorkloadId::Mds, vec![(8, 2.0), (16, 3.0)])]),
            phase_series(&[(
                WorkloadId::Snp,
                vec![PhasePoint {
                    cycle: 50_000,
                    interval_mpki: 1.25,
                }],
            )]),
        ];
        for d in docs {
            assert_eq!(cmpsim_telemetry::parse(&d.to_json()).unwrap(), d);
        }
    }
}
