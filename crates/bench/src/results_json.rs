//! Converters between study result structs and the JSON `results`
//! payload each binary writes next to its text output.
//!
//! The shapes mirror the text tables one-to-one: one array entry per
//! curve/row, numeric fields unrounded (the text output rounds for
//! alignment; the JSON twin keeps full precision for plotting).
//!
//! Each converter has a `parse_*` inverse. The binaries run every grid
//! cell through the experiment runner, which may serve a cell from the
//! result cache as a JSON payload — so the text renderers always work
//! from *parsed payloads*, never from in-memory structs the cache would
//! bypass. `JsonValue`'s float encoding is shortest-round-trip, so the
//! parse is exact and a warm run prints the same bytes as a cold one.

use cmpsim_cache::ReplacementPolicy;
use cmpsim_core::experiment::{
    CachePoint, CacheSizeCurve, LinePoint, LineSizeCurve, LlcOrganizationResult, PhasePoint,
    PrefetchResult, SharingResult, Table2Row,
};
use cmpsim_core::WorkloadId;
use cmpsim_telemetry::JsonValue;

/// One Figure 4/5/6 entry: a per-workload MPKI-vs-size curve with the
/// derived working-set knee.
pub fn cache_size_curve(c: &CacheSizeCurve) -> JsonValue {
    JsonValue::object([
        ("workload", JsonValue::from(c.workload.to_string())),
        ("cmp", JsonValue::from(c.cmp.to_string())),
        ("cores", JsonValue::from(c.cmp.cores() as u64)),
        (
            "points",
            JsonValue::Array(
                c.points
                    .iter()
                    .map(|p| {
                        JsonValue::object([
                            ("llc_bytes", JsonValue::U64(p.llc_bytes)),
                            ("mpki", JsonValue::F64(p.mpki)),
                            ("misses", JsonValue::U64(p.misses)),
                            ("instructions", JsonValue::U64(p.instructions)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "knee_bytes",
            c.knee(0.5).map_or(JsonValue::Null, JsonValue::U64),
        ),
        ("flatness", JsonValue::F64(c.flatness())),
    ])
}

/// Figure 4/5/6 payload over many curves.
pub fn cache_size_curves(curves: &[CacheSizeCurve]) -> JsonValue {
    JsonValue::Array(curves.iter().map(cache_size_curve).collect())
}

/// Parses one [`cache_size_curve`] payload back (the derived
/// knee/flatness fields are recomputed from the points on demand).
pub fn parse_cache_size_curve(v: &JsonValue) -> Option<CacheSizeCurve> {
    Some(CacheSizeCurve {
        workload: v.get("workload")?.as_str()?.parse().ok()?,
        cmp: v.get("cmp")?.as_str()?.parse().ok()?,
        points: v
            .get("points")?
            .as_array()?
            .iter()
            .map(|p| {
                Some(CachePoint {
                    llc_bytes: p.get("llc_bytes")?.as_u64()?,
                    mpki: p.get("mpki")?.as_f64()?,
                    misses: p.get("misses")?.as_u64()?,
                    instructions: p.get("instructions")?.as_u64()?,
                })
            })
            .collect::<Option<_>>()?,
    })
}

/// One Figure 7 entry: a per-workload MPKI-vs-line-size curve.
pub fn line_size_curve(c: &LineSizeCurve) -> JsonValue {
    JsonValue::object([
        ("workload", JsonValue::from(c.workload.to_string())),
        (
            "points",
            JsonValue::Array(
                c.points
                    .iter()
                    .map(|p| {
                        JsonValue::object([
                            ("line_bytes", JsonValue::U64(p.line_bytes)),
                            ("mpki", JsonValue::F64(p.mpki)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("improvement_256", JsonValue::F64(c.improvement_at(256))),
        ("improvement_1024", JsonValue::F64(c.improvement_at(1024))),
    ])
}

/// Figure 7 payload over many curves.
pub fn line_size_curves(curves: &[LineSizeCurve]) -> JsonValue {
    JsonValue::Array(curves.iter().map(line_size_curve).collect())
}

/// Parses one [`line_size_curve`] payload back.
pub fn parse_line_size_curve(v: &JsonValue) -> Option<LineSizeCurve> {
    Some(LineSizeCurve {
        workload: v.get("workload")?.as_str()?.parse().ok()?,
        points: v
            .get("points")?
            .as_array()?
            .iter()
            .map(|p| {
                Some(LinePoint {
                    line_bytes: p.get("line_bytes")?.as_u64()?,
                    mpki: p.get("mpki")?.as_f64()?,
                })
            })
            .collect::<Option<_>>()?,
    })
}

/// One Figure 8 entry: prefetch speedups for a workload.
pub fn prefetch_result(r: &PrefetchResult) -> JsonValue {
    JsonValue::object([
        ("workload", JsonValue::from(r.workload.to_string())),
        ("serial_speedup", JsonValue::F64(r.serial_speedup)),
        ("parallel_speedup", JsonValue::F64(r.parallel_speedup)),
        (
            "parallel_utilization",
            JsonValue::F64(r.parallel_utilization),
        ),
    ])
}

/// Figure 8 payload over many workloads.
pub fn prefetch_results(results: &[PrefetchResult]) -> JsonValue {
    JsonValue::Array(results.iter().map(prefetch_result).collect())
}

/// Parses one [`prefetch_result`] payload back.
pub fn parse_prefetch_result(v: &JsonValue) -> Option<PrefetchResult> {
    Some(PrefetchResult {
        workload: v.get("workload")?.as_str()?.parse().ok()?,
        serial_speedup: v.get("serial_speedup")?.as_f64()?,
        parallel_speedup: v.get("parallel_speedup")?.as_f64()?,
        parallel_utilization: v.get("parallel_utilization")?.as_f64()?,
    })
}

/// One Table 2 entry: single-threaded characteristics of a workload.
pub fn table2_row(r: &Table2Row) -> JsonValue {
    JsonValue::object([
        ("workload", JsonValue::from(r.workload.to_string())),
        ("ipc", JsonValue::F64(r.ipc)),
        ("instructions", JsonValue::U64(r.instructions)),
        ("memory_fraction", JsonValue::F64(r.memory_fraction)),
        ("read_fraction", JsonValue::F64(r.read_fraction)),
        ("dl1_apki", JsonValue::F64(r.dl1_apki)),
        ("dl1_mpki", JsonValue::F64(r.dl1_mpki)),
        ("dl2_mpki", JsonValue::F64(r.dl2_mpki)),
    ])
}

/// Table 2 payload over many workloads.
pub fn table2_rows(rows: &[Table2Row]) -> JsonValue {
    JsonValue::Array(rows.iter().map(table2_row).collect())
}

/// Parses one [`table2_row`] payload back.
pub fn parse_table2_row(v: &JsonValue) -> Option<Table2Row> {
    Some(Table2Row {
        workload: v.get("workload")?.as_str()?.parse().ok()?,
        ipc: v.get("ipc")?.as_f64()?,
        instructions: v.get("instructions")?.as_u64()?,
        memory_fraction: v.get("memory_fraction")?.as_f64()?,
        read_fraction: v.get("read_fraction")?.as_f64()?,
        dl1_apki: v.get("dl1_apki")?.as_f64()?,
        dl1_mpki: v.get("dl1_mpki")?.as_f64()?,
        dl2_mpki: v.get("dl2_mpki")?.as_f64()?,
    })
}

/// One sharing-ablation entry.
pub fn sharing_result(r: &SharingResult) -> JsonValue {
    JsonValue::object([
        ("workload", JsonValue::from(r.workload.to_string())),
        ("miss_growth_8x", JsonValue::F64(r.miss_growth_8x)),
        (
            "paper_category_shared",
            JsonValue::Bool(r.paper_category_shared),
        ),
    ])
}

/// Sharing-ablation payload over many workloads.
pub fn sharing_results(results: &[SharingResult]) -> JsonValue {
    JsonValue::Array(results.iter().map(sharing_result).collect())
}

/// Parses one [`sharing_result`] payload back.
pub fn parse_sharing_result(v: &JsonValue) -> Option<SharingResult> {
    Some(SharingResult {
        workload: v.get("workload")?.as_str()?.parse().ok()?,
        miss_growth_8x: v.get("miss_growth_8x")?.as_f64()?,
        paper_category_shared: v.get("paper_category_shared")?.as_bool()?,
    })
}

/// One replacement-ablation entry: a workload's size sweep under every
/// policy.
pub fn replacement_sweep(
    workload: WorkloadId,
    curves: &[(ReplacementPolicy, CacheSizeCurve)],
) -> JsonValue {
    JsonValue::object([
        ("workload", JsonValue::from(workload.to_string())),
        (
            "policies",
            JsonValue::Array(
                curves
                    .iter()
                    .map(|(p, c)| {
                        JsonValue::object([
                            ("policy", JsonValue::from(p.to_string())),
                            ("curve", cache_size_curves(std::slice::from_ref(c))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Replacement-ablation payload over many workloads.
pub fn replacement_sweeps(
    sweeps: &[(WorkloadId, Vec<(ReplacementPolicy, CacheSizeCurve)>)],
) -> JsonValue {
    JsonValue::Array(
        sweeps
            .iter()
            .map(|(w, curves)| replacement_sweep(*w, curves))
            .collect(),
    )
}

fn parse_policy(s: &str) -> Option<ReplacementPolicy> {
    match s {
        "LRU" => Some(ReplacementPolicy::Lru),
        "PLRU" => Some(ReplacementPolicy::TreePlru),
        "FIFO" => Some(ReplacementPolicy::Fifo),
        "RAND" => Some(ReplacementPolicy::Random),
        _ => None,
    }
}

/// Parses one [`replacement_sweep`] payload back.
pub fn parse_replacement_sweep(
    v: &JsonValue,
) -> Option<(WorkloadId, Vec<(ReplacementPolicy, CacheSizeCurve)>)> {
    let workload = v.get("workload")?.as_str()?.parse().ok()?;
    let curves = v
        .get("policies")?
        .as_array()?
        .iter()
        .map(|e| {
            let policy = parse_policy(e.get("policy")?.as_str()?)?;
            let curve = parse_cache_size_curve(e.get("curve")?.as_array()?.first()?)?;
            Some((policy, curve))
        })
        .collect::<Option<_>>()?;
    Some((workload, curves))
}

/// One shared-vs-private LLC organization entry.
pub fn llc_organization_result(r: &LlcOrganizationResult) -> JsonValue {
    JsonValue::object([
        ("workload", JsonValue::from(r.workload.to_string())),
        ("shared_mpki", JsonValue::F64(r.shared_mpki)),
        ("private_mpki", JsonValue::F64(r.private_mpki)),
        ("private_penalty", JsonValue::F64(r.private_penalty())),
    ])
}

/// Shared-vs-private LLC organization payload over many workloads.
pub fn llc_organization_results(results: &[LlcOrganizationResult]) -> JsonValue {
    JsonValue::Array(results.iter().map(llc_organization_result).collect())
}

/// Parses one [`llc_organization_result`] payload back (the penalty
/// ratio is recomputed from the two MPKIs).
pub fn parse_llc_organization_result(v: &JsonValue) -> Option<LlcOrganizationResult> {
    Some(LlcOrganizationResult {
        workload: v.get("workload")?.as_str()?.parse().ok()?,
        shared_mpki: v.get("shared_mpki")?.as_f64()?,
        private_mpki: v.get("private_mpki")?.as_f64()?,
    })
}

/// One core-count projection entry: MPKI at each core count.
pub fn projection_entry(workload: WorkloadId, points: &[(usize, f64)]) -> JsonValue {
    JsonValue::object([
        ("workload", JsonValue::from(workload.to_string())),
        (
            "points",
            JsonValue::Array(
                points
                    .iter()
                    .map(|&(cores, mpki)| {
                        JsonValue::object([
                            ("cores", JsonValue::from(cores as u64)),
                            ("mpki", JsonValue::F64(mpki)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Core-count projection payload over many workloads.
pub fn projection_series(series: &[(WorkloadId, Vec<(usize, f64)>)]) -> JsonValue {
    JsonValue::Array(
        series
            .iter()
            .map(|(w, pts)| projection_entry(*w, pts))
            .collect(),
    )
}

/// Parses one [`projection_entry`] payload back.
pub fn parse_projection_entry(v: &JsonValue) -> Option<(WorkloadId, Vec<(usize, f64)>)> {
    let workload = v.get("workload")?.as_str()?.parse().ok()?;
    let points = v
        .get("points")?
        .as_array()?
        .iter()
        .map(|p| Some((p.get("cores")?.as_u64()? as usize, p.get("mpki")?.as_f64()?)))
        .collect::<Option<_>>()?;
    Some((workload, points))
}

/// One phase-behavior entry: the per-interval MPKI series of a
/// workload, as parallel `cycles` / `interval_mpki` arrays (a long
/// sampler series as one object per point would dominate the document).
/// MPKI is rounded to 1e-6, which is far below the model's fidelity.
/// A memory-stalled interval (zero instructions retired, NaN MPKI)
/// serializes as JSON `null` and parses back as NaN.
pub fn phase_entry(workload: WorkloadId, points: &[PhasePoint]) -> JsonValue {
    JsonValue::object([
        ("workload", JsonValue::from(workload.to_string())),
        (
            "cycles",
            JsonValue::Array(points.iter().map(|p| JsonValue::U64(p.cycle)).collect()),
        ),
        (
            "interval_mpki",
            JsonValue::Array(
                points
                    .iter()
                    .map(|p| JsonValue::F64((p.interval_mpki * 1e6).round() / 1e6))
                    .collect(),
            ),
        ),
    ])
}

/// Phase-behavior payload over many workloads.
pub fn phase_series(series: &[(WorkloadId, Vec<PhasePoint>)]) -> JsonValue {
    JsonValue::Array(series.iter().map(|(w, pts)| phase_entry(*w, pts)).collect())
}

/// Parses one [`phase_entry`] payload back (MPKI at the payload's 1e-6
/// granularity).
pub fn parse_phase_entry(v: &JsonValue) -> Option<(WorkloadId, Vec<PhasePoint>)> {
    let workload = v.get("workload")?.as_str()?.parse().ok()?;
    let cycles = v.get("cycles")?.as_array()?;
    let mpki = v.get("interval_mpki")?.as_array()?;
    if cycles.len() != mpki.len() {
        return None;
    }
    let points = cycles
        .iter()
        .zip(mpki)
        .map(|(c, m)| {
            Some(PhasePoint {
                cycle: c.as_u64()?,
                // NaN has no JSON spelling; `phase_entry` wrote it as
                // null, so null reads back as NaN — not as a lost point.
                interval_mpki: match m {
                    JsonValue::Null => f64::NAN,
                    other => other.as_f64()?,
                },
            })
        })
        .collect::<Option<_>>()?;
    Some((workload, points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_core::experiment::{CachePoint, CmpClass};

    fn curve() -> CacheSizeCurve {
        CacheSizeCurve {
            workload: WorkloadId::Fimi,
            cmp: CmpClass::Small,
            points: vec![
                CachePoint {
                    llc_bytes: 1 << 20,
                    mpki: 4.0,
                    misses: 400,
                    instructions: 100_000,
                },
                CachePoint {
                    llc_bytes: 1 << 21,
                    mpki: 1.0,
                    misses: 100,
                    instructions: 100_000,
                },
            ],
        }
    }

    #[test]
    fn cache_size_payload_shape() {
        let j = cache_size_curves(&[curve()]);
        let entry = &j.as_array().unwrap()[0];
        assert_eq!(entry.get("workload").unwrap().as_str(), Some("FIMI"));
        assert_eq!(entry.get("cores").unwrap().as_u64(), Some(8));
        let pts = entry.get("points").unwrap().as_array().unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].get("llc_bytes").unwrap().as_u64(), Some(1 << 20));
        // The knee (MPKI halves) is at the 2 MB point.
        assert_eq!(entry.get("knee_bytes").unwrap().as_u64(), Some(1 << 21));
    }

    #[test]
    fn payloads_serialize_and_reparse() {
        let docs = [
            cache_size_curves(&[curve()]),
            projection_series(&[(WorkloadId::Mds, vec![(8, 2.0), (16, 3.0)])]),
            phase_series(&[(
                WorkloadId::Snp,
                vec![PhasePoint {
                    cycle: 50_000,
                    interval_mpki: 1.25,
                }],
            )]),
        ];
        for d in docs {
            assert_eq!(cmpsim_telemetry::parse(&d.to_json()).unwrap(), d);
        }
    }

    #[test]
    fn converters_invert_exactly() {
        // Awkward floats (shortest-round-trip encoded) survive the
        // struct -> JSON -> struct round trip bit-for-bit.
        let c = CacheSizeCurve {
            points: vec![CachePoint {
                llc_bytes: 1 << 20,
                mpki: 0.1 + 0.2,
                misses: 3,
                instructions: 10_007,
            }],
            ..curve()
        };
        assert_eq!(parse_cache_size_curve(&cache_size_curve(&c)).unwrap(), c);

        let l = LineSizeCurve {
            workload: WorkloadId::Shot,
            points: vec![
                LinePoint {
                    line_bytes: 64,
                    mpki: 1.0 / 3.0,
                },
                LinePoint {
                    line_bytes: 4096,
                    mpki: 2e-7,
                },
            ],
        };
        assert_eq!(parse_line_size_curve(&line_size_curve(&l)).unwrap(), l);

        let p = PrefetchResult {
            workload: WorkloadId::Mds,
            serial_speedup: 1.07,
            parallel_speedup: 1.33,
            parallel_utilization: 0.91,
        };
        assert_eq!(parse_prefetch_result(&prefetch_result(&p)).unwrap(), p);

        let t = Table2Row {
            workload: WorkloadId::Plsa,
            ipc: 1.08,
            instructions: 123_456_789,
            memory_fraction: 0.831,
            read_fraction: 0.7,
            dl1_apki: 500.1,
            dl1_mpki: 9.9,
            dl2_mpki: 0.18,
        };
        assert_eq!(parse_table2_row(&table2_row(&t)).unwrap(), t);

        let s = SharingResult {
            workload: WorkloadId::Fimi,
            miss_growth_8x: 3.7,
            paper_category_shared: false,
        };
        assert_eq!(parse_sharing_result(&sharing_result(&s)).unwrap(), s);

        let o = LlcOrganizationResult {
            workload: WorkloadId::Snp,
            shared_mpki: 2.5,
            private_mpki: 4.25,
        };
        assert_eq!(
            parse_llc_organization_result(&llc_organization_result(&o)).unwrap(),
            o
        );

        let sweep = vec![
            (ReplacementPolicy::Lru, c.clone()),
            (ReplacementPolicy::Random, curve()),
        ];
        let parsed = parse_replacement_sweep(&replacement_sweep(WorkloadId::Viewtype, &sweep));
        assert_eq!(parsed.unwrap(), (WorkloadId::Viewtype, sweep));

        let proj = vec![(8usize, 2.0), (128, 0.125)];
        assert_eq!(
            parse_projection_entry(&projection_entry(WorkloadId::Rsearch, &proj)).unwrap(),
            (WorkloadId::Rsearch, proj)
        );

        // Phase MPKI is quantized to 1e-6 by design; use values on the
        // grid so equality is exact.
        let phase = vec![
            PhasePoint {
                cycle: 50_000,
                interval_mpki: 1.25,
            },
            PhasePoint {
                cycle: 100_000,
                interval_mpki: 0.000_001,
            },
        ];
        assert_eq!(
            parse_phase_entry(&phase_entry(WorkloadId::Snp, &phase)).unwrap(),
            (WorkloadId::Snp, phase)
        );
    }

    #[test]
    fn memory_stalled_phase_interval_survives_the_json_twin() {
        // A stalled interval's NaN MPKI has no JSON spelling: it writes
        // as null and must read back as NaN, not vanish or become 0.
        let phase = vec![
            PhasePoint {
                cycle: 50_000,
                interval_mpki: f64::NAN,
            },
            PhasePoint {
                cycle: 100_000,
                interval_mpki: 1.25,
            },
        ];
        let doc = phase_entry(WorkloadId::Fimi, &phase);
        assert!(doc.to_json().contains("null"), "{}", doc.to_json());
        let (w, parsed) = parse_phase_entry(&doc).unwrap();
        assert_eq!(w, WorkloadId::Fimi);
        assert_eq!(parsed.len(), 2);
        assert!(parsed[0].interval_mpki.is_nan());
        assert_eq!(parsed[0].cycle, 50_000);
        assert_eq!(parsed[1].interval_mpki, 1.25);
    }

    #[test]
    fn parse_rejects_malformed_payloads() {
        assert!(parse_cache_size_curve(&JsonValue::Null).is_none());
        assert!(
            parse_table2_row(&JsonValue::object([("workload", JsonValue::from("FIMI"))])).is_none()
        );
        assert!(parse_policy("MRU").is_none());
    }
}
