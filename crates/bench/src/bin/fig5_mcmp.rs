//! Regenerates Figure 5: LLC misses per 1000 instructions vs cache size
//! on the medium-scale CMP (16 cores), 64-byte lines.

use cmpsim_bench::{results_json, Options};
use cmpsim_core::experiment::{CacheSizeStudy, CmpClass};
use cmpsim_core::report::render_cache_size_figure;

fn main() {
    let opts = Options::from_args();
    let study = CacheSizeStudy::new(opts.scale, CmpClass::Medium, opts.seed);
    println!(
        "Figure 5: LLC MPKI on MCMP (16 cores), 64B lines, scale {}\n",
        opts.scale
    );
    let curves: Vec<_> = opts.workloads.iter().map(|&w| study.run(w)).collect();
    println!("{}", render_cache_size_figure(&curves));
    opts.emit_json("fig5_mcmp", results_json::cache_size_curves(&curves));
}
