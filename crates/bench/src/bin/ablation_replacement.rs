//! Ablation E-X2: replacement policy — reruns the Figure 4 sweep under
//! LRU, tree-PLRU, FIFO, and random replacement to check the paper's
//! working-set conclusions are not LRU artifacts.

use cmpsim_bench::{results_json, Options};
use cmpsim_core::experiment::ReplacementStudy;
use cmpsim_core::report::{human_bytes, TextTable};

fn main() {
    let opts = Options::from_args();
    let study = ReplacementStudy {
        scale: opts.scale,
        seed: opts.seed,
    };
    println!(
        "Ablation: replacement policy on the SCMP size sweep (scale {})\n",
        opts.scale
    );
    let mut sweeps = Vec::new();
    for &w in &opts.workloads {
        let curves = study.run(w);
        println!("{w}:");
        let mut t = TextTable::new(
            std::iter::once("LLC size".to_owned()).chain(curves.iter().map(|(p, _)| p.to_string())),
        );
        let n = curves[0].1.points.len();
        for i in 0..n {
            t.row(
                std::iter::once(human_bytes(curves[0].1.points[i].llc_bytes)).chain(
                    curves
                        .iter()
                        .map(|(_, c)| format!("{:.3}", c.points[i].mpki)),
                ),
            );
        }
        println!("{}", t.render());
        sweeps.push((w, curves));
    }
    opts.emit_json(
        "ablation_replacement",
        results_json::replacement_sweeps(&sweeps),
    );
}
