//! Ablation E-X2: replacement policy — reruns the Figure 4 sweep under
//! LRU, tree-PLRU, FIFO, and random replacement to check the paper's
//! working-set conclusions are not LRU artifacts.

use cmpsim_bench::{finish_grid, results_json, run_grid, Options};
use cmpsim_core::experiment::ReplacementStudy;
use cmpsim_core::grid::GridSpec;
use cmpsim_core::report::{human_bytes, TextTable};
use cmpsim_core::tel::JsonValue;

fn main() {
    let opts = Options::from_args();
    let study = ReplacementStudy {
        scale: opts.scale,
        seed: opts.seed,
    };
    println!(
        "Ablation: replacement policy on the SCMP size sweep (scale {})\n",
        opts.scale
    );
    let spec = GridSpec::new(
        "ablation_replacement",
        opts.scale,
        opts.seed,
        opts.workloads.clone(),
    )
    .param("policies", "LRU,PLRU,FIFO,RAND");
    let broker = opts.capture_broker();
    let cell_broker = broker.clone();
    let report = run_grid(&opts, &spec, move |w| {
        results_json::replacement_sweep(
            w,
            &match &cell_broker {
                Some(b) => study.run_captured(b, w),
                None => study.run(w),
            },
        )
    });
    for (w, curves) in report
        .payloads()
        .filter_map(results_json::parse_replacement_sweep)
    {
        println!("{w}:");
        let mut t = TextTable::new(
            std::iter::once("LLC size".to_owned()).chain(curves.iter().map(|(p, _)| p.to_string())),
        );
        let n = curves[0].1.points.len();
        for i in 0..n {
            t.row(
                std::iter::once(human_bytes(curves[0].1.points[i].llc_bytes)).chain(
                    curves
                        .iter()
                        .map(|(_, c)| format!("{:.3}", c.points[i].mpki)),
                ),
            );
        }
        println!("{}", t.render());
    }
    opts.emit_json_traced(
        "ablation_replacement",
        JsonValue::Array(report.payloads().cloned().collect()),
        &report,
        broker.map(|b| b.counters()),
    );
    finish_grid(&opts, &spec, &report);
}
