//! Ablation E-X3: thread-scaling projection to 64 and 128 cores — §4.3
//! speculates that FIMI and RSEARCH working sets keep growing with core
//! count while MDS/SVM-RFE/SNP/PLSA stay flat "even on 128 cores".

use cmpsim_bench::{results_json, Options};
use cmpsim_core::experiment::ProjectionStudy;
use cmpsim_core::report::TextTable;

fn main() {
    let opts = Options::from_args();
    let study = ProjectionStudy::new(opts.scale, opts.seed);
    let cores = [8usize, 16, 32, 64, 128];
    println!(
        "Projection: LLC MPKI at a fixed 32MB-class LLC, 8 to 128 cores (scale {})\n",
        opts.scale
    );
    let mut t = TextTable::new(
        std::iter::once("Workload".to_owned()).chain(cores.iter().map(|c| format!("{c} cores"))),
    );
    let mut all = Vec::new();
    for &w in &opts.workloads {
        let series = study.run(w, &cores);
        t.row(
            std::iter::once(w.to_string())
                .chain(series.iter().map(|(_, mpki)| format!("{mpki:.3}"))),
        );
        all.push((w, series));
    }
    println!("{}", t.render());
    opts.emit_json("projection_128core", results_json::projection_series(&all));
}
