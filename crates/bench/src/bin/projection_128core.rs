//! Ablation E-X3: thread-scaling projection to 64 and 128 cores — §4.3
//! speculates that FIMI and RSEARCH working sets keep growing with core
//! count while MDS/SVM-RFE/SNP/PLSA stay flat "even on 128 cores".

use cmpsim_bench::{finish_grid, results_json, run_grid, Options};
use cmpsim_core::experiment::ProjectionStudy;
use cmpsim_core::grid::{join_list, GridSpec};
use cmpsim_core::report::TextTable;
use cmpsim_core::tel::JsonValue;

fn main() {
    let opts = Options::from_args();
    let study = ProjectionStudy::new(opts.scale, opts.seed);
    let cores = [8usize, 16, 32, 64, 128];
    println!(
        "Projection: LLC MPKI at a fixed 32MB-class LLC, 8 to 128 cores (scale {})\n",
        opts.scale
    );
    let spec = GridSpec::new(
        "projection_128core",
        opts.scale,
        opts.seed,
        opts.workloads.clone(),
    )
    .param("cores", join_list(&cores));
    let broker = opts.capture_broker();
    let cell_broker = broker.clone();
    let report = run_grid(&opts, &spec, move |w| {
        results_json::projection_entry(
            w,
            &match &cell_broker {
                Some(b) => study.run_captured(b, w, &cores),
                None => study.run(w, &cores),
            },
        )
    });
    let mut t = TextTable::new(
        std::iter::once("Workload".to_owned()).chain(cores.iter().map(|c| format!("{c} cores"))),
    );
    for (w, series) in report
        .payloads()
        .filter_map(results_json::parse_projection_entry)
    {
        t.row(
            std::iter::once(w.to_string())
                .chain(series.iter().map(|(_, mpki)| format!("{mpki:.3}"))),
        );
    }
    println!("{}", t.render());
    opts.emit_json_traced(
        "projection_128core",
        JsonValue::Array(report.payloads().cloned().collect()),
        &report,
        broker.map(|b| b.counters()),
    );
    finish_grid(&opts, &spec, &report);
}
