//! Regenerates Figure 8: performance gain from the stride hardware
//! prefetcher, serial vs 16-thread, on a Xeon-class timing model.

use cmpsim_bench::{finish_grid, results_json, run_grid, Options};
use cmpsim_core::experiment::PrefetchStudy;
use cmpsim_core::grid::GridSpec;
use cmpsim_core::report::render_prefetch_figure;
use cmpsim_core::tel::JsonValue;

fn main() {
    let opts = Options::from_args();
    let study = PrefetchStudy::new(opts.scale, opts.seed);
    println!(
        "Figure 8: hardware-prefetch performance gain (stride prefetcher, scale {})\n",
        opts.scale
    );
    let spec = GridSpec::new(
        "fig8_prefetch",
        opts.scale,
        opts.seed,
        opts.workloads.clone(),
    )
    .param("prefetcher", "stride");
    let broker = opts.capture_broker();
    let cell_broker = broker.clone();
    let report = run_grid(&opts, &spec, move |w| {
        results_json::prefetch_result(&match &cell_broker {
            Some(b) => study.run_captured(b, w),
            None => study.run(w),
        })
    });
    let results: Vec<_> = report
        .payloads()
        .filter_map(results_json::parse_prefetch_result)
        .collect();
    println!("{}", render_prefetch_figure(&results));
    println!(
        "paper reference: all workloads gain (up to ~33%); parallel gains exceed serial\n\
         for VIEWTYPE/FIMI/PLSA/RSEARCH/SHOT/SVM-RFE, while SNP and MDS gain less in\n\
         parallel because demand misses already saturate the bus."
    );
    opts.emit_json_traced(
        "fig8_prefetch",
        JsonValue::Array(report.payloads().cloned().collect()),
        &report,
        broker.map(|b| b.counters()),
    );
    finish_grid(&opts, &spec, &report);
}
