//! Regenerates Figure 8: performance gain from the stride hardware
//! prefetcher, serial vs 16-thread, on a Xeon-class timing model.

use cmpsim_bench::{results_json, Options};
use cmpsim_core::experiment::PrefetchStudy;
use cmpsim_core::report::render_prefetch_figure;

fn main() {
    let opts = Options::from_args();
    let study = PrefetchStudy::new(opts.scale, opts.seed);
    println!(
        "Figure 8: hardware-prefetch performance gain (stride prefetcher, scale {})\n",
        opts.scale
    );
    let results: Vec<_> = opts.workloads.iter().map(|&w| study.run(w)).collect();
    println!("{}", render_prefetch_figure(&results));
    println!(
        "paper reference: all workloads gain (up to ~33%); parallel gains exceed serial\n\
         for VIEWTYPE/FIMI/PLSA/RSEARCH/SHOT/SVM-RFE, while SNP and MDS gain less in\n\
         parallel because demand misses already saturate the bus."
    );
    opts.emit_json("fig8_prefetch", results_json::prefetch_results(&results));
}
