//! Regenerates Figure 4: LLC misses per 1000 instructions vs cache size
//! on the small-scale CMP (8 cores), 64-byte lines.

use cmpsim_bench::{finish_grid, results_json, run_grid, Options};
use cmpsim_core::experiment::{CacheSizeStudy, CmpClass};
use cmpsim_core::grid::GridSpec;
use cmpsim_core::report::{human_bytes, render_ascii_chart, render_cache_size_figure};
use cmpsim_core::tel::JsonValue;

fn main() {
    let opts = Options::from_args();
    let study = CacheSizeStudy::new(opts.scale, CmpClass::Small, opts.seed);
    println!(
        "Figure 4: LLC MPKI on SCMP (8 cores), 64B lines, scale {}\n",
        opts.scale
    );
    let spec = GridSpec::new("fig4_scmp", opts.scale, opts.seed, opts.workloads.clone())
        .param("cmp", CmpClass::Small)
        .param("line", 64);
    let broker = opts.capture_broker();
    let cell_broker = broker.clone();
    let report = run_grid(&opts, &spec, move |w| {
        results_json::cache_size_curve(&match &cell_broker {
            Some(b) => study.run_captured(b, w),
            None => study.run(w),
        })
    });
    let curves: Vec<_> = report
        .payloads()
        .filter_map(results_json::parse_cache_size_curve)
        .collect();
    println!("{}", render_cache_size_figure(&curves));
    let series: Vec<(String, Vec<(u64, f64)>)> = curves
        .iter()
        .map(|c| {
            (
                c.workload.to_string(),
                c.points.iter().map(|p| (p.llc_bytes, p.mpki)).collect(),
            )
        })
        .collect();
    println!("{}", render_ascii_chart(&series, 16));
    println!("working-set knees (MPKI halves):");
    for c in &curves {
        match c.knee(0.5) {
            Some(k) => println!("  {:9} {}", c.workload.to_string(), human_bytes(k)),
            None => println!("  {:9} none (streaming)", c.workload.to_string()),
        }
    }
    opts.emit_json_traced(
        "fig4_scmp",
        JsonValue::Array(report.payloads().cloned().collect()),
        &report,
        broker.map(|b| b.counters()),
    );
    finish_grid(&opts, &spec, &report);
}
