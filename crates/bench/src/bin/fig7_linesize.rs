//! Regenerates Figure 7: line-size sensitivity on the LCMP with a 32 MB
//! LLC (scaled), lines from 64 B to 4096 B.

use cmpsim_bench::{results_json, Options};
use cmpsim_core::experiment::LineSizeStudy;
use cmpsim_core::report::render_line_size_figure;

fn main() {
    let opts = Options::from_args();
    let study = LineSizeStudy::new(opts.scale, opts.seed);
    println!(
        "Figure 7: line-size sensitivity on LCMP (32 cores), 32MB-class LLC, scale {}\n",
        opts.scale
    );
    let curves: Vec<_> = opts.workloads.iter().map(|&w| study.run(w)).collect();
    println!("{}", render_line_size_figure(&curves));
    println!("improvement factor 64B -> 256B (paper: ~3-4x for SHOT, MDS, SNP, SVM-RFE):");
    for c in &curves {
        println!(
            "  {:9} {:.2}x (64->256B), {:.2}x (64->1024B)",
            c.workload.to_string(),
            c.improvement_at(256),
            c.improvement_at(1024)
        );
    }
    opts.emit_json("fig7_linesize", results_json::line_size_curves(&curves));
}
