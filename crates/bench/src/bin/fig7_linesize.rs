//! Regenerates Figure 7: line-size sensitivity on the LCMP with a 32 MB
//! LLC (scaled), lines from 64 B to 4096 B.

use cmpsim_bench::{finish_grid, results_json, run_grid, Options};
use cmpsim_core::experiment::{paper_line_sizes, LineSizeStudy};
use cmpsim_core::grid::{join_list, GridSpec};
use cmpsim_core::report::render_line_size_figure;
use cmpsim_core::tel::JsonValue;

fn main() {
    let opts = Options::from_args();
    let study = LineSizeStudy::new(opts.scale, opts.seed);
    println!(
        "Figure 7: line-size sensitivity on LCMP (32 cores), 32MB-class LLC, scale {}\n",
        opts.scale
    );
    let spec = GridSpec::new(
        "fig7_linesize",
        opts.scale,
        opts.seed,
        opts.workloads.clone(),
    )
    .param("lines", join_list(&paper_line_sizes()));
    let broker = opts.capture_broker();
    let cell_broker = broker.clone();
    let report = run_grid(&opts, &spec, move |w| {
        results_json::line_size_curve(&match &cell_broker {
            Some(b) => study.run_captured(b, w),
            None => study.run(w),
        })
    });
    let curves: Vec<_> = report
        .payloads()
        .filter_map(results_json::parse_line_size_curve)
        .collect();
    println!("{}", render_line_size_figure(&curves));
    println!("improvement factor 64B -> 256B (paper: ~3-4x for SHOT, MDS, SNP, SVM-RFE):");
    for c in &curves {
        println!(
            "  {:9} {:.2}x (64->256B), {:.2}x (64->1024B)",
            c.workload.to_string(),
            c.improvement_at(256),
            c.improvement_at(1024)
        );
    }
    opts.emit_json_traced(
        "fig7_linesize",
        JsonValue::Array(report.payloads().cloned().collect()),
        &report,
        broker.map(|b| b.counters()),
    );
    finish_grid(&opts, &spec, &report);
}
