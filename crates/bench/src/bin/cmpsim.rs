//! The `cmpsim` command-line front end.
//!
//! ```text
//! cmpsim list
//! cmpsim run    --workload FIMI --cores 8 --llc 32MB [--line 64] [--scale ci] [--prefetch]
//! cmpsim grid   --cores 8 [--workloads FIMI,MDS] [--jobs 4] [--cache-dir DIR] [--no-cache]
//! cmpsim record --workload SHOT --cores 8 --out shot.cmpt [--scale tiny]
//! cmpsim replay --trace shot.cmpt --llc 4MB [--line 256]
//! ```
//!
//! `grid` runs the cache-size sweep for one CMP class on the experiment
//! runner: the per-workload cells fan out over `--jobs` workers and are
//! served from the content-addressed result cache when unchanged. Each
//! cell captures its FSB stream once and replays it into every LLC size
//! (`--trace-dir DIR` persists the streams content-addressed for later
//! runs; `--no-replay` restores execute-per-configuration). Within each
//! cell, `--replay-shards N` (default: follow `--jobs`, `0` = one per
//! CPU) spreads the sweep's boards over N worker threads — output bytes
//! are identical at any shard count.
//!
//! `record`/`replay` capture the FSB transaction stream once and emulate
//! it against any number of cache configurations afterwards — the same
//! decoupling the FPGA rig offered (the bus trace does not depend on the
//! emulated LLC because the emulator is passive).
//!
//! `serve`/`submit`/`status` turn the grid runner into a long-running
//! service: `serve` starts a coordinator daemon that shards submitted
//! cells over a supervised worker fleet against one shared result
//! cache; `submit` sends a grid to it (same flags as `grid`, plus
//! `--connect ADDR`) and renders byte-identical output from the
//! streamed results; `status` prints the daemon's lifetime counters.

use cmpsim_bench::{parse_scale, results_json};
use cmpsim_core::cosim::{CoSimConfig, CoSimulation};
use cmpsim_core::experiment::{CacheSizeStudy, CmpClass};
use cmpsim_core::grid::{self, run_grid_supervised, GridSpec};
use cmpsim_core::report::{human_bytes, TextTable};
use cmpsim_core::runner::{
    child_trace_requested, emit_result, emit_trace, record, shutdown, IsolateMode, JournalConfig,
    RunnerConfig, CHILD_ENTRY,
};
use cmpsim_core::tel::trace::{self as ftrace, FlightRecorder, TraceSummary};
use cmpsim_core::tel::{
    chrome_trace, scrub_path, write_json_file, JsonValue, RunManifest, SpanProfiler,
};
use cmpsim_core::{telemetry, CaptureBroker, Scale, WorkloadId};
use cmpsim_dragonhead::{Dragonhead, DragonheadConfig};
use cmpsim_service::{AgentConfig, CellSpec, Coordinator, ServeConfig, Submission};
use cmpsim_trace::file::{TraceReader, TraceWriter};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => cmd_list(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("grid") => cmd_grid(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("agent") => cmd_agent(&args[1..]),
        Some(entry) if entry == CHILD_ENTRY => cmd_child(&args[1..]),
        _ => {
            eprintln!(
                "usage: cmpsim <list|run|grid|record|replay|report|serve|submit|status|agent> [options]\n\
                 run    --workload NAME --cores N [--llc SIZE] [--line N] [--scale S] [--prefetch]\n\
                        [--json] [--metrics-out FILE]\n\
                 grid   --cores 8|16|32 [--workloads A,B,C] [--scale S] [--seed N] [--jobs N]\n\
                        [--cache-dir DIR] [--no-cache] [--json] [--metrics-out FILE]\n\
                        [--journal-dir DIR] [--run-id ID] [--resume ID]\n\
                        [--isolate inline|process] [--retries N]\n\
                        [--trace-dir DIR] [--no-replay] [--replay-shards N] [--trace-out FILE]\n\
                        [--quiet] [--connect ADDR]\n\
                 record --workload NAME --cores N --out FILE [--scale S]\n\
                 replay --trace FILE [--llc SIZE] [--line N] [--json] [--metrics-out FILE]\n\
                 report <RUN-ID> [--journal-dir DIR] [--top K]\n\
                 report --compare <RUN-A> <RUN-B> [--journal-dir DIR]\n\
                 serve  [--listen ADDR] [--workers N] [--agents-only] [--cache-dir DIR]\n\
                        [--no-cache] [--journal-dir DIR] [--retries N] [--job-timeout SECONDS]\n\
                        [--heartbeat-ms N] [--port-file FILE] [--chaos-kill-label LABEL]\n\
                        [--chaos-crash-label LABEL]\n\
                 submit --connect ADDR <grid options>\n\
                 status --connect ADDR [--json]\n\
                 agent  --connect ADDR [--slots N] [--chaos-exit-label LABEL] [--no-redial]"
            );
            2
        }
    };
    std::process::exit(code);
}

#[derive(Debug, Default)]
struct Cli {
    workload: Option<WorkloadId>,
    workloads: Vec<WorkloadId>,
    cores: usize,
    llc: u64,
    line: u64,
    scale: Scale,
    seed: u64,
    prefetch: bool,
    out: Option<String>,
    trace: Option<String>,
    json: bool,
    metrics_out: Option<PathBuf>,
    jobs: usize,
    cache_dir: Option<PathBuf>,
    journal_dir: Option<PathBuf>,
    run_id: Option<String>,
    resume: Option<String>,
    isolate: IsolateMode,
    retries: Option<u32>,
    trace_dir: Option<PathBuf>,
    no_replay: bool,
    replay_shards: Option<usize>,
    trace_out: Option<PathBuf>,
    quiet: bool,
    connect: Option<String>,
}

impl Cli {
    /// Where the telemetry JSON goes: `--metrics-out` wins, `--json`
    /// falls back to `results/<name>.json`, otherwise no JSON is
    /// written.
    fn json_path(&self, name: &str) -> Option<PathBuf> {
        match &self.metrics_out {
            Some(p) => Some(p.clone()),
            None if self.json => Some(Path::new("results").join(format!("{name}.json"))),
            None => None,
        }
    }

    /// The replay shard count the grid flags describe: an explicit
    /// `--replay-shards` wins, otherwise the sweep replay follows
    /// `--jobs`; `0` for either means one shard per CPU.
    fn effective_replay_shards(&self) -> usize {
        match self.replay_shards.unwrap_or(self.jobs) {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        workloads: WorkloadId::all().to_vec(),
        cores: 8,
        llc: 32 << 20,
        line: 64,
        scale: Scale::ci(),
        seed: 2007,
        jobs: 1,
        cache_dir: Some(PathBuf::from("results/cache")),
        ..Cli::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {a}"))
        };
        match a.as_str() {
            "--workload" => cli.workload = Some(val()?.parse().map_err(|e| format!("{e}"))?),
            "--workloads" => {
                cli.workloads = val()?
                    .split(',')
                    .map(|s| s.parse().map_err(|_| format!("unknown workload `{s}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--cores" => cli.cores = val()?.parse().map_err(|_| "bad --cores")?,
            "--llc" => cli.llc = parse_size(&val()?)?,
            "--line" => cli.line = val()?.parse().map_err(|_| "bad --line")?,
            "--scale" => cli.scale = parse_scale(&val()?).ok_or("bad --scale")?,
            "--seed" => cli.seed = val()?.parse().map_err(|_| "bad --seed")?,
            "--prefetch" => cli.prefetch = true,
            "--out" => cli.out = Some(val()?),
            "--trace" => cli.trace = Some(val()?),
            "--json" => cli.json = true,
            "--metrics-out" => {
                cli.metrics_out = Some(PathBuf::from(val()?));
                cli.json = true;
            }
            "--jobs" => cli.jobs = val()?.parse().map_err(|_| "bad --jobs")?,
            "--cache-dir" => cli.cache_dir = Some(PathBuf::from(val()?)),
            "--no-cache" => cli.cache_dir = None,
            "--journal-dir" => cli.journal_dir = Some(PathBuf::from(val()?)),
            "--run-id" => cli.run_id = Some(val()?),
            "--resume" => cli.resume = Some(val()?),
            "--isolate" => cli.isolate = val()?.parse()?,
            "--retries" => cli.retries = Some(val()?.parse().map_err(|_| "bad --retries")?),
            "--trace-dir" => cli.trace_dir = Some(PathBuf::from(val()?)),
            "--no-replay" => cli.no_replay = true,
            "--replay-shards" => {
                cli.replay_shards = Some(val()?.parse().map_err(|_| "bad --replay-shards")?);
            }
            "--trace-out" => cli.trace_out = Some(PathBuf::from(val()?)),
            "--quiet" => cli.quiet = true,
            "--connect" => cli.connect = Some(val()?),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(cli)
}

/// Parses "32MB", "256KB", or plain bytes.
fn parse_size(s: &str) -> Result<u64, String> {
    let lower = s.to_ascii_lowercase();
    let (num, mult) = if let Some(n) = lower.strip_suffix("mb") {
        (n, 1u64 << 20)
    } else if let Some(n) = lower.strip_suffix("kb") {
        (n, 1 << 10)
    } else if let Some(n) = lower.strip_suffix("b") {
        (n, 1)
    } else {
        (lower.as_str(), 1)
    };
    num.trim()
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|_| format!("bad size `{s}`"))
}

fn cmd_list(_args: &[String]) -> i32 {
    let mut t = TextTable::new(["Workload", "Algorithm", "Category"]);
    for id in WorkloadId::all() {
        let algo = match id {
            WorkloadId::Snp => "Bayesian-network hill climbing",
            WorkloadId::SvmRfe => "SVM recursive feature elimination",
            WorkloadId::Rsearch => "CYK/SCFG RNA homology search",
            WorkloadId::Fimi => "FP-growth frequent-itemset mining",
            WorkloadId::Plsa => "Smith-Waterman linear-space alignment",
            WorkloadId::Mds => "graph ranking + MMR summarization",
            WorkloadId::Shot => "shot-boundary detection",
            WorkloadId::Viewtype => "view-type classification",
        };
        t.row([
            id.to_string(),
            algo.to_owned(),
            if id.shares_primary_structure() {
                "(a) shared".to_owned()
            } else {
                "(b) private".to_owned()
            },
        ]);
    }
    println!("{}", t.render());
    0
}

fn cmd_run(args: &[String]) -> i32 {
    let cli = match parse(args) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let Some(workload) = cli.workload else {
        return fail("run requires --workload");
    };
    let llc = match cmpsim_core::experiment::llc_config(
        cli.scale.pow2_bytes(cli.llc.next_power_of_two(), 16 << 10),
        cli.line,
        16,
    ) {
        Ok(c) => c,
        Err(e) => return fail(&format!("bad LLC geometry: {e}")),
    };
    let mut cfg = match CoSimConfig::scaled(cli.cores, llc.size_bytes(), cli.scale) {
        Ok(c) => c.with_llc(llc),
        Err(e) => return fail(&e.to_string()),
    };
    if cli.prefetch {
        cfg = cfg.with_prefetch(cmpsim_prefetch::StrideConfig::default());
    }
    let wl = workload.build(cli.scale, cli.seed);
    let started = Instant::now();
    let mut spans = SpanProfiler::new();
    let r = CoSimulation::new(cfg).run_profiled(wl.as_ref(), &mut spans);
    println!(
        "{workload} on {} cores, {} LLC ({}B lines), scale {}:",
        cli.cores,
        human_bytes(r.llc_bytes),
        r.llc_line_bytes,
        cli.scale
    );
    println!("  instructions : {}", r.run.instructions);
    println!("  LLC accesses : {}", r.llc.accesses);
    println!("  LLC misses   : {}", r.llc.misses);
    println!("  LLC MPKI     : {:.3}", r.mpki);
    if cli.prefetch {
        println!("  prefetch fills: {}", r.prefetch_fills);
    }
    if let Some(path) = cli.json_path("cmpsim_run") {
        let mut manifest = telemetry::manifest("cmpsim", &cfg, workload, cli.scale, cli.seed);
        manifest.wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let doc = telemetry::telemetry_report(manifest, &r, spans);
        if let Err(e) = doc.write_json(&path) {
            return fail(&format!("cannot write {}: {e}", path.display()));
        }
        eprintln!("wrote {}", path.display());
    }
    0
}

fn cmd_grid(args: &[String]) -> i32 {
    let cli = match parse(args) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let Some(cmp) = CmpClass::all().into_iter().find(|c| c.cores() == cli.cores) else {
        return fail("grid requires --cores 8, 16, or 32 (SCMP/MCMP/LCMP)");
    };
    // Publish the shard count ambiently: the study builds its replay
    // boards far from here, inside each grid cell.
    cmpsim_core::set_replay_shards(cli.effective_replay_shards());
    let study = CacheSizeStudy::new(cli.scale, cmp, cli.seed);
    println!(
        "Grid: LLC MPKI vs size on {cmp} ({} cores), 64B lines, scale {}\n",
        cmp.cores(),
        cli.scale
    );
    let spec = GridSpec::new("cmpsim_grid", cli.scale, cli.seed, cli.workloads.clone())
        .param("cmp", cmp)
        .param("line", 64);
    // In service-client mode the coordinator owns journalling, caching,
    // isolation, and the trace sidecar — locally there is nothing to
    // record and no broker to count.
    let mut recorder = None;
    let mut broker = None;
    let report = if let Some(addr) = &cli.connect {
        match service_submit(&cli, addr, &spec, args) {
            Ok(report) => report,
            Err(e) => return fail(&e),
        }
    } else {
        let journal = journal_config(&cli);
        // Record a timeline whenever someone will consume it: an
        // explicit `--trace-out`, or a journalled run (JSONL sidecar
        // for `report`).
        recorder = (cli.trace_out.is_some() || journal.is_some())
            .then(cmpsim_core::tel::FlightRecorder::new);
        let runner = RunnerConfig {
            workers: cli.jobs,
            cache_dir: cli.cache_dir.clone(),
            retries: cli.retries.unwrap_or(1),
            progress: !cli.quiet,
            job_timeout: None,
            isolate: cli.isolate,
            shutdown: journal.as_ref().map(|_| shutdown::install()),
            journal,
            tracer: recorder.clone(),
            ..RunnerConfig::default()
        };
        // The base argv a supervised child recomputes one cell from:
        // `cmpsim __run-job <W> grid <base>` — the original grid
        // arguments minus every parent-only concern (the parent owns
        // parallelism, caching, journalling, isolation, and output).
        let child_base: Vec<String> = std::iter::once("grid".to_owned())
            .chain(strip_parent_flags(args))
            .chain(std::iter::once("--no-cache".to_owned()))
            .chain([
                // Resolved here: the default follows --jobs, which the
                // child never sees (a child must not recurse).
                "--replay-shards".to_owned(),
                cli.effective_replay_shards().to_string(),
            ])
            .collect();
        let base = (cli.isolate == IsolateMode::Process).then_some(child_base.as_slice());
        broker = capture_broker(&cli);
        let cell_broker = broker.clone();
        run_grid_supervised(&spec, &runner, base, move |w| {
            results_json::cache_size_curve(&match &cell_broker {
                Some(b) => study.run_captured(b, w),
                None => study.run(w),
            })
        })
    };
    let curves: Vec<_> = report
        .payloads()
        .filter_map(results_json::parse_cache_size_curve)
        .collect();
    println!("{}", cmpsim_core::report::render_cache_size_figure(&curves));
    if let Some(rec) = &recorder {
        let events = rec.drain_sorted();
        let lanes = rec.lane_names();
        let dropped = rec.dropped();
        let mut meta: Vec<(String, JsonValue)> = vec![
            ("experiment".to_owned(), JsonValue::from("cmpsim_grid")),
            ("seed".to_owned(), JsonValue::U64(cli.seed)),
            ("workers".to_owned(), JsonValue::U64(report.workers as u64)),
        ];
        if let Some(run_id) = &report.run_id {
            meta.push(("run_id".to_owned(), JsonValue::from(run_id.as_str())));
        }
        if let Some(path) = &cli.trace_out {
            let doc = chrome_trace(&events, &lanes, &meta, dropped);
            if let Err(e) = write_json_file(path, &doc) {
                return fail(&format!("cannot write {}: {e}", path.display()));
            }
            eprintln!("wrote {}", path.display());
        }
        if let Some(run_id) = &report.run_id {
            let path = cli
                .journal_dir
                .clone()
                .unwrap_or_else(|| PathBuf::from("results/journal"))
                .join(format!("{run_id}.trace.jsonl"));
            if let Err(e) = ftrace::write_jsonl(&path, &meta, &lanes, &events, dropped) {
                return fail(&format!("cannot write {}: {e}", path.display()));
            }
        }
    }
    if let Some(path) = cli.json_path("cmpsim_grid") {
        let mut manifest = RunManifest::new("cmpsim_grid", env!("CARGO_PKG_VERSION"))
            .with_workloads(cli.workloads.iter().copied())
            .with_scale_seed(cli.scale, cli.seed)
            .config_entry("cmp", cmp.to_string())
            .config_entry("cores", cmp.cores() as u64)
            .config_entry("runner_jobs", report.workers)
            .config_entry("runner_ok", report.ok_count())
            .config_entry("runner_cached", report.cached_count())
            .config_entry("runner_failed", report.failed_count());
        // Recovery counters appear only when the crash-safety machinery
        // did something, so a clean run's manifest is unchanged.
        if report.replayed_count() > 0 {
            manifest = manifest.config_entry("runner_replayed", report.replayed_count());
        }
        if report.recovered > 0 {
            manifest = manifest.config_entry("runner_recovered", report.recovered);
        }
        if report.skipped_count() > 0 {
            manifest = manifest.config_entry("runner_skipped", report.skipped_count());
        }
        if report.poisoned_count() > 0 {
            manifest = manifest.config_entry("runner_poisoned", report.poisoned_count());
        }
        if report.interrupted {
            manifest = manifest.config_entry("runner_interrupted", 1u64);
        }
        // Capture-pipeline counters, likewise only when nonzero.
        if let Some(b) = &broker {
            let t = b.counters();
            if t.captures > 0 {
                manifest = manifest.config_entry("trace_captures", t.captures);
            }
            if t.memory_reuses > 0 {
                manifest = manifest.config_entry("trace_reuses", t.memory_reuses);
            }
            if t.disk_loads > 0 {
                manifest = manifest.config_entry("trace_disk_loads", t.disk_loads);
            }
        }
        let doc = JsonValue::object([
            ("manifest", manifest.to_json()),
            (
                "results",
                JsonValue::Array(report.payloads().cloned().collect()),
            ),
            ("runner", report.to_json()),
        ]);
        if let Err(e) = write_json_file(&path, &doc) {
            return fail(&format!("cannot write {}: {e}", path.display()));
        }
        eprintln!("wrote {}", path.display());
    }
    if !cli.quiet {
        eprintln!("runner: {}", report.summary());
    }
    for (label, error) in report.failures() {
        eprintln!("runner: job `{label}` failed: {error}");
    }
    if report.interrupted {
        if let Some(run_id) = &report.run_id {
            let mut resume_args: Vec<String> = vec!["cmpsim".into(), "grid".into()];
            let mut it = args.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--resume" | "--run-id" => {
                        it.next();
                    }
                    other => resume_args.push(other.to_owned()),
                }
            }
            resume_args.push("--resume".to_owned());
            resume_args.push(run_id.clone());
            eprintln!(
                "runner: interrupted — resume with: {}",
                resume_args.join(" ")
            );
        }
    }
    i32::from(report.failed_count() > 0)
}

/// The capture broker the grid flags describe: `None` under
/// `--no-replay`, disk-backed under `--trace-dir`, in-memory otherwise.
fn capture_broker(cli: &Cli) -> Option<Arc<CaptureBroker>> {
    if cli.no_replay {
        return None;
    }
    Some(Arc::new(match &cli.trace_dir {
        Some(dir) => CaptureBroker::with_store(dir.clone()),
        None => CaptureBroker::in_memory(),
    }))
}

/// The journal configuration `grid` flags describe, or `None` when
/// journalling is off (the default).
fn journal_config(cli: &Cli) -> Option<JournalConfig> {
    if cli.resume.is_none() && cli.journal_dir.is_none() && cli.run_id.is_none() {
        return None;
    }
    let dir = cli
        .journal_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("results/journal"));
    Some(match &cli.resume {
        Some(id) => JournalConfig::new(dir, id.clone()).resuming(),
        None => {
            let id = cli
                .run_id
                .clone()
                .unwrap_or_else(|| grid::fresh_run_id("cmpsim_grid"));
            JournalConfig::new(dir, id)
        }
    })
}

/// Strips the flags a supervised child must not inherit: parallelism,
/// caching, journalling, isolation (a child never recurses), workload
/// selection (the cell is named by `__run-job`), and output paths.
fn strip_parent_flags(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" | "--cache-dir" | "--metrics-out" | "--journal-dir" | "--run-id"
            | "--resume" | "--isolate" | "--retries" | "--workloads" | "--trace-out"
            | "--connect" | "--replay-shards" => {
                it.next();
            }
            "--json" | "--no-cache" | "--quiet" => {}
            other => out.push(other.to_owned()),
        }
    }
    out
}

/// Submits the grid the flags describe to a `cmpsim serve` coordinator
/// and blocks until the streamed report is complete. Cells carry the
/// exact `__run-job` argv a local `--isolate process` run would use and
/// the same cache keys, so the daemon's shared cache and a local one
/// address identical results — and the caller's rendering path prints
/// byte-identical output from the returned report.
fn service_submit(
    cli: &Cli,
    addr: &str,
    spec: &GridSpec,
    args: &[String],
) -> Result<cmpsim_core::runner::RunReport, String> {
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot resolve the current executable: {e}"))?;
    let base: Vec<String> = std::iter::once("grid".to_owned())
        .chain(strip_parent_flags(args))
        .chain(std::iter::once("--no-cache".to_owned()))
        .chain([
            "--replay-shards".to_owned(),
            cli.effective_replay_shards().to_string(),
        ])
        .collect();
    let cells = spec
        .workloads
        .iter()
        .enumerate()
        .map(|(seq, &w)| {
            let mut argv = vec![CHILD_ENTRY.to_owned(), w.to_string()];
            argv.extend(base.iter().cloned());
            CellSpec {
                seq,
                key: spec.job_key(w).canonical(),
                label: w.to_string(),
                args: argv,
            }
        })
        .collect();
    let sub = Submission {
        exe,
        experiment: spec.experiment.clone(),
        run_id: cli.resume.clone().or_else(|| cli.run_id.clone()),
        resume: cli.resume.is_some(),
        cells,
    };
    let out = cmpsim_service::submit(addr, &sub)?;
    if !cli.quiet {
        eprintln!("service: run {} on {addr}", out.run_id);
    }
    Ok(out.report)
}

/// `cmpsim submit`: `cmpsim grid` executed on a coordinator. Exactly
/// the grid flags plus a mandatory `--connect ADDR`.
fn cmd_submit(args: &[String]) -> i32 {
    if !args.iter().any(|a| a == "--connect") {
        return fail("submit requires --connect ADDR (start one with `cmpsim serve`)");
    }
    cmd_grid(args)
}

/// `cmpsim serve`: run the coordinator daemon until SIGINT/SIGTERM.
fn cmd_serve(args: &[String]) -> i32 {
    let mut cfg = ServeConfig {
        workers: 2,
        cache_dir: Some(PathBuf::from("results/cache")),
        ..ServeConfig::default()
    };
    let mut port_file: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {a}"))
        };
        let parsed: Result<(), String> = (|| {
            match a.as_str() {
                "--listen" => cfg.listen = val()?,
                "--workers" => {
                    cfg.workers = val()?.parse().map_err(|_| "bad --workers")?;
                    if cfg.workers == 0 {
                        cfg.workers = std::thread::available_parallelism().map_or(2, |n| n.get());
                    }
                }
                // Schedule-only coordinator: every cell executes on a
                // remote `cmpsim agent`.
                "--agents-only" => cfg.workers = 0,
                "--cache-dir" => cfg.cache_dir = Some(PathBuf::from(val()?)),
                "--no-cache" => cfg.cache_dir = None,
                "--journal-dir" => cfg.journal_dir = PathBuf::from(val()?),
                "--retries" => cfg.retries = val()?.parse().map_err(|_| "bad --retries")?,
                "--job-timeout" => {
                    let secs: u64 = val()?.parse().map_err(|_| "bad --job-timeout")?;
                    if secs == 0 {
                        return Err("bad --job-timeout".to_owned());
                    }
                    cfg.job_timeout = Some(std::time::Duration::from_secs(secs));
                }
                "--chaos-kill-label" => cfg.chaos_kill_label = Some(val()?),
                "--chaos-crash-label" => cfg.chaos_crash_label = Some(val()?),
                "--heartbeat-ms" => {
                    let ms: u64 = val()?.parse().map_err(|_| "bad --heartbeat-ms")?;
                    if ms == 0 {
                        return Err("bad --heartbeat-ms".to_owned());
                    }
                    cfg.heartbeat = std::time::Duration::from_millis(ms);
                }
                "--port-file" => port_file = Some(PathBuf::from(val()?)),
                other => return Err(format!("unknown option {other}")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            return fail(&e);
        }
    }
    cfg.shutdown = Some(shutdown::install());
    let coord = match Coordinator::bind(cfg) {
        Ok(c) => c,
        Err(e) => return fail(&format!("cannot bind: {e}")),
    };
    let addr = match coord.local_addr() {
        Ok(a) => a.to_string(),
        Err(e) => return fail(&format!("cannot read the bound address: {e}")),
    };
    // The port file is how scripts and CI discover a `--listen :0`
    // daemon's address without parsing logs.
    if let Some(path) = &port_file {
        if let Err(e) = std::fs::write(path, &addr) {
            return fail(&format!("cannot write {}: {e}", path.display()));
        }
    }
    eprintln!("cmpsim serve: listening on {addr}");
    coord.run();
    eprintln!("cmpsim serve: drained");
    0
}

/// `cmpsim status --connect ADDR`: print the daemon's lifetime
/// counters as pretty JSON (or one machine-parsable line with
/// `--json`, for scripts and CI assertions).
fn cmd_status(args: &[String]) -> i32 {
    let cli = match parse(args) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let Some(addr) = &cli.connect else {
        return fail("status requires --connect ADDR");
    };
    match cmpsim_service::status(addr) {
        Ok(counters) => {
            if cli.json {
                println!("{}", counters.to_json());
            } else {
                println!("{}", counters.to_json_pretty());
            }
            0
        }
        Err(e) => fail(&e),
    }
}

/// `cmpsim agent --connect ADDR`: a remote worker process. Dials the
/// coordinator, registers over the versioned handshake, and executes
/// dispatched cells under the process supervisor until drained,
/// redialing a lost coordinator with capped backoff (unless
/// `--no-redial`).
fn cmd_agent(args: &[String]) -> i32 {
    let mut cfg = AgentConfig::default();
    let mut connect: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {a}"))
        };
        let parsed: Result<(), String> = (|| {
            match a.as_str() {
                "--connect" => connect = Some(val()?),
                "--slots" => cfg.slots = val()?.parse().map_err(|_| "bad --slots")?,
                "--chaos-exit-label" => cfg.chaos_exit_label = Some(val()?),
                // Exit on the first lost coordinator instead of
                // redialing — for scripts that manage the fleet.
                "--no-redial" => cfg.redial = false,
                other => return Err(format!("unknown option {other}")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            return fail(&e);
        }
    }
    let Some(connect) = connect else {
        return fail("agent requires --connect ADDR (start one with `cmpsim serve`)");
    };
    cfg.connect = connect;
    cfg.shutdown = Some(shutdown::install());
    match cmpsim_service::run_agent(&cfg) {
        Ok(report) => {
            eprintln!(
                "cmpsim agent: drained (agent {}, {} cells done)",
                report.agent_id, report.cells_done
            );
            0
        }
        Err(e) => fail(&e),
    }
}

/// Hidden single-cell child mode: `cmpsim __run-job <W> grid <args>`
/// computes exactly one grid cell and reports it over the supervisor
/// marker protocol. Spawned by `--isolate process`; not part of the
/// public CLI.
fn cmd_child(args: &[String]) -> i32 {
    let Some(w) = args.first() else {
        return fail("__run-job requires a workload");
    };
    let workload: WorkloadId = match w.parse() {
        Ok(w) => w,
        Err(_) => return fail(&format!("unknown workload `{w}`")),
    };
    let rest = match args.get(1).map(String::as_str) {
        Some("grid") => &args[2..],
        _ => &args[1..],
    };
    let cli = match parse(rest) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let Some(cmp) = CmpClass::all().into_iter().find(|c| c.cores() == cli.cores) else {
        return fail("grid requires --cores 8, 16, or 32 (SCMP/MCMP/LCMP)");
    };
    cmpsim_core::set_replay_shards(cli.effective_replay_shards());
    let study = CacheSizeStudy::new(cli.scale, cmp, cli.seed);
    let compute = || {
        Ok(results_json::cache_size_curve(
            &match capture_broker(&cli) {
                Some(b) => study.run_captured(&b, workload),
                None => study.run(workload),
            },
        ))
    };
    if child_trace_requested() {
        // The supervisor is tracing: record this cell's spans and ship
        // them over the marker protocol for grafting under the cell.
        let rec = FlightRecorder::new();
        let lane = rec.lane("child");
        let res = {
            let _ctx = ftrace::install(lane, "", 0);
            compute()
        };
        emit_trace(&rec.drain_sorted(), rec.dropped());
        emit_result(&res);
    } else {
        emit_result(&compute());
    }
    0
}

fn cmd_record(args: &[String]) -> i32 {
    let cli = match parse(args) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let (Some(workload), Some(out)) = (cli.workload, cli.out.as_ref()) else {
        return fail("record requires --workload and --out");
    };
    let file = match File::create(out) {
        Ok(f) => f,
        Err(e) => return fail(&format!("cannot create {out}: {e}")),
    };
    let mut writer = match TraceWriter::new(BufWriter::new(file)) {
        Ok(w) => w,
        Err(e) => return fail(&e.to_string()),
    };
    struct Recorder<'a, W: std::io::Write> {
        w: &'a mut TraceWriter<W>,
        err: Option<std::io::Error>,
    }
    impl<W: std::io::Write> cmpsim_softsdv::FsbListener for Recorder<'_, W> {
        fn transaction(&mut self, txn: &cmpsim_trace::FsbTransaction) {
            if self.err.is_none() {
                if let Err(e) = self.w.write(txn) {
                    self.err = Some(e);
                }
            }
        }
    }
    let wl = workload.build(cli.scale, cli.seed);
    let pcfg = {
        let mut p = cmpsim_softsdv::PlatformConfig::new(cli.cores);
        p.hierarchy = cmpsim_cache::HierarchyConfig::cmp_core_scaled(cli.scale);
        p
    };
    let mut platform = cmpsim_softsdv::VirtualPlatform::new(pcfg, wl.as_ref());
    let mut rec = Recorder {
        w: &mut writer,
        err: None,
    };
    let summary = platform.run(&mut rec);
    if let Some(e) = rec.err {
        return fail(&format!("write error: {e}"));
    }
    let n = writer.count();
    if let Err(e) = writer.finish() {
        return fail(&format!("flush error: {e}"));
    }
    println!(
        "recorded {n} transactions ({} instructions) to {out}",
        summary.instructions
    );
    0
}

fn cmd_replay(args: &[String]) -> i32 {
    let cli = match parse(args) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    let Some(path) = cli.trace.as_ref() else {
        return fail("replay requires --trace");
    };
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => return fail(&format!("cannot open {path}: {e}")),
    };
    let reader = match TraceReader::new(BufReader::new(file)) {
        Ok(r) => r,
        Err(e) => return fail(&e.to_string()),
    };
    let llc = match cmpsim_core::experiment::llc_config(cli.llc.next_power_of_two(), cli.line, 16) {
        Ok(c) => c,
        Err(e) => return fail(&format!("bad LLC geometry: {e}")),
    };
    let mut board = Dragonhead::new(DragonheadConfig::new(llc));
    let mut n = 0u64;
    for txn in reader {
        match txn {
            Ok(t) => {
                board.observe(&t);
                n += 1;
            }
            Err(e) => return fail(&format!("trace error after {n} transactions: {e}")),
        }
    }
    let s = board.stats();
    println!(
        "replayed {n} transactions against {} ({}B lines):",
        human_bytes(llc.size_bytes()),
        llc.line_bytes()
    );
    println!("  LLC accesses : {}", s.accesses);
    println!("  LLC misses   : {}", s.misses);
    println!("  miss ratio   : {:.2}%", s.miss_ratio() * 100.0);
    println!("  excluded     : {}", board.address_filter().excluded());
    println!("  MPKI         : {:.3}", board.mpki());
    if let Some(out) = cli.json_path("cmpsim_replay") {
        let mut metrics = cmpsim_core::tel::MetricRegistry::new();
        board.export_metrics(&mut metrics);
        let manifest = RunManifest::new("cmpsim_replay", env!("CARGO_PKG_VERSION"))
            .config_entry("trace", scrub_path(path))
            .config_entry("llc_bytes", llc.size_bytes())
            .config_entry("llc_line_bytes", llc.line_bytes())
            .config_entry("transactions", n);
        let doc = JsonValue::object([
            ("manifest", manifest.to_json()),
            ("metrics", metrics.to_json()),
        ]);
        if let Err(e) = write_json_file(&out, &doc) {
            return fail(&format!("cannot write {}: {e}", out.display()));
        }
        eprintln!("wrote {}", out.display());
    }
    0
}

/// One journalled run's loaded artifacts: the job outcomes from the
/// journal and the aggregated timeline from the trace sidecar.
struct RunData {
    id: String,
    /// `(label, outcome kind, attempts)` per `job_done` record.
    cells_done: Vec<(String, String, u64)>,
    summary: TraceSummary,
    lanes: Vec<(u32, String)>,
    has_trace: bool,
}

fn load_run(dir: &Path, id: &str) -> Result<RunData, String> {
    let journal = dir.join(format!("{id}.jsonl"));
    let trace = dir.join(format!("{id}.trace.jsonl"));
    let mut cells_done = Vec::new();
    let mut has_journal = false;
    if let Ok(text) = std::fs::read_to_string(&journal) {
        has_journal = true;
        for line in text.lines() {
            let Ok(doc) = cmpsim_core::tel::parse(line) else {
                continue;
            };
            let Some(rec) = record::verify(&doc, "record") else {
                continue;
            };
            if rec.get("kind").and_then(JsonValue::as_str) != Some("job_done") {
                continue;
            }
            cells_done.push((
                rec.get("label")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?")
                    .to_owned(),
                rec.get_path(&["outcome", "kind"])
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?")
                    .to_owned(),
                rec.get("attempts").and_then(JsonValue::as_u64).unwrap_or(0),
            ));
        }
    }
    let (summary, lanes, has_trace) = match ftrace::read_jsonl(&trace) {
        Ok(f) => (
            TraceSummary::from_events(&f.events, f.dropped),
            f.lanes,
            true,
        ),
        Err(_) => (TraceSummary::from_events(&[], 0), Vec::new(), false),
    };
    if !has_journal && !has_trace {
        return Err(format!(
            "run `{id}` not found under {}: neither {}.jsonl nor {}.trace.jsonl exists",
            dir.display(),
            id,
            id
        ));
    }
    Ok(RunData {
        id: id.to_owned(),
        cells_done,
        summary,
        lanes,
        has_trace,
    })
}

fn ms(ns: u64) -> String {
    format!("{:.2} ms", ns as f64 / 1e6)
}

/// Stage names sorted slowest-first (ties by name, for stable output).
fn by_duration(stages: &[(String, u64)]) -> Vec<(String, u64)> {
    let mut sorted = stages.to_vec();
    sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    sorted
}

fn render_report(run: &RunData, top: usize) {
    println!("run {}", run.id);
    if !run.cells_done.is_empty() {
        let mut by_kind: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        for (_, kind, _) in &run.cells_done {
            *by_kind.entry(kind).or_default() += 1;
        }
        let census: Vec<String> = by_kind.iter().map(|(k, n)| format!("{k} {n}")).collect();
        println!(
            "cells: {} done ({})",
            run.cells_done.len(),
            census.join(", ")
        );
        let retried: Vec<String> = run
            .cells_done
            .iter()
            .filter(|(_, _, attempts)| *attempts > 1)
            .map(|(label, kind, attempts)| format!("{label} x{attempts} ({kind})"))
            .collect();
        if !retried.is_empty() {
            println!("retried cells: {}", retried.join(", "));
        }
    }
    if !run.has_trace {
        println!(
            "no trace sidecar ({}.trace.jsonl): stage timings unavailable",
            run.id
        );
        return;
    }
    let s = &run.summary;
    println!("events: {} ({} dropped)", s.events, s.dropped);
    println!("\nstage breakdown:");
    let mut t = TextTable::new(["Stage", "Total"]);
    for (name, ns) in by_duration(&s.stage_ns) {
        t.row([name, ms(ns)]);
    }
    print!("{}", t.render());
    if !s.cells.is_empty() {
        println!("\nslowest cells (top {top}):");
        let mut t = TextTable::new(["Cell", "Total", "Breakdown"]);
        for c in s.cells.iter().take(top) {
            let breakdown: Vec<String> = by_duration(&c.stages)
                .iter()
                .take(3)
                .map(|(n, ns)| format!("{n} {}", ms(*ns)))
                .collect();
            t.row([c.label.clone(), ms(c.total_ns), breakdown.join(", ")]);
        }
        print!("{}", t.render());
    }
    if !s.markers.is_empty() {
        let markers: Vec<String> = s.markers.iter().map(|(n, c)| format!("{n} {c}")).collect();
        println!("\nmarkers: {}", markers.join(", "));
    }
    if s.journal_append.count > 0 {
        let j = &s.journal_append;
        println!(
            "journal append: {} records, p50 {}, p90 {}, max {}",
            j.count,
            ms(j.p50_ns),
            ms(j.p90_ns),
            ms(j.max_ns)
        );
    }
    if !s.utilization.is_empty() {
        let util: Vec<String> = s
            .utilization
            .iter()
            .map(|(lane, frac)| {
                let name = run
                    .lanes
                    .iter()
                    .find(|(id, _)| id == lane)
                    .map_or_else(|| format!("lane-{lane}"), |(_, n)| n.clone());
                format!("{name} {:.0}%", frac * 100.0)
            })
            .collect();
        println!("utilization: {}", util.join(", "));
    }
}

/// Cells per second, from the pool's `run` umbrella span.
fn throughput(run: &RunData) -> Option<f64> {
    let wall_ns = run.summary.stage_total_ns("run");
    let cells = run.summary.cells.len();
    (wall_ns > 0 && cells > 0).then(|| cells as f64 / (wall_ns as f64 / 1e9))
}

fn render_compare(a: &RunData, b: &RunData) {
    println!("comparing {} vs {}", a.id, b.id);
    let mut names: Vec<String> = a
        .summary
        .stage_ns
        .iter()
        .chain(b.summary.stage_ns.iter())
        .map(|(n, _)| n.clone())
        .collect();
    names.sort();
    names.dedup();
    let mut t = TextTable::new(["Stage", a.id.as_str(), b.id.as_str(), "Delta"]);
    for name in names {
        let x = a.summary.stage_total_ns(&name);
        let y = b.summary.stage_total_ns(&name);
        let delta = if x > 0 {
            format!("{:+.1}%", (y as f64 - x as f64) / x as f64 * 100.0)
        } else {
            "-".to_owned()
        };
        t.row([name, ms(x), ms(y), delta]);
    }
    print!("{}", t.render());
    if let (Some(ta), Some(tb)) = (throughput(a), throughput(b)) {
        println!(
            "\nthroughput: {} {ta:.2} cells/s, {} {tb:.2} cells/s ({:.2}x)",
            a.id,
            b.id,
            tb / ta
        );
    }
}

/// `cmpsim report <run-id>` / `cmpsim report --compare A B`: renders a
/// journalled run's flight-recorder timeline — per-stage breakdowns,
/// slowest cells, retry/poison census, journal-append latency — from
/// the `<run-id>.jsonl` journal and `<run-id>.trace.jsonl` sidecar.
fn cmd_report(args: &[String]) -> i32 {
    let mut dir = PathBuf::from("results/journal");
    let mut top = 5usize;
    let mut compare = false;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        let val = |i: usize| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("missing value for {a}"))
        };
        match a {
            "--journal-dir" => {
                match val(i) {
                    Ok(v) => dir = PathBuf::from(v),
                    Err(e) => return fail(&e),
                }
                i += 1;
            }
            "--top" => {
                match val(i).and_then(|v| v.parse().map_err(|_| "bad --top value".to_owned())) {
                    Ok(v) => top = v,
                    Err(e) => return fail(&e),
                }
                i += 1;
            }
            "--compare" => compare = true,
            flag if flag.starts_with("--") => return fail(&format!("unknown option {flag}")),
            id => ids.push(id.to_owned()),
        }
        i += 1;
    }
    if compare {
        if ids.len() != 2 {
            return fail("report --compare takes exactly two run ids");
        }
        let (a, b) = match (load_run(&dir, &ids[0]), load_run(&dir, &ids[1])) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => return fail(&e),
        };
        render_compare(&a, &b);
        return 0;
    }
    if ids.len() != 1 {
        return fail("report takes exactly one run id (or --compare A B)");
    }
    match load_run(&dir, &ids[0]) {
        Ok(run) => {
            render_report(&run, top);
            0
        }
        Err(e) => fail(&e),
    }
}

fn fail(msg: &str) -> i32 {
    eprintln!("error: {msg}");
    1
}
