//! Extension study: MPKI over time from Dragonhead's 500 µs samples —
//! the phase behavior §1 of the paper gives as the reason run-to-
//! completion co-simulation matters.

use cmpsim_bench::{finish_grid, results_json, run_grid, Options};
use cmpsim_core::experiment::PhaseStudy;
use cmpsim_core::grid::GridSpec;
use cmpsim_core::report::TextTable;
use cmpsim_core::tel::JsonValue;

fn main() {
    let opts = Options::from_args();
    let study = PhaseStudy::new(opts.scale, opts.seed);
    println!(
        "Phase behavior: interval MPKI over time, 8 cores, 32MB-class LLC (scale {})\n",
        opts.scale
    );
    let spec = GridSpec::new(
        "phase_behavior",
        opts.scale,
        opts.seed,
        opts.workloads.clone(),
    );
    let broker = opts.capture_broker();
    let cell_broker = broker.clone();
    let report = run_grid(&opts, &spec, move |w| {
        results_json::phase_entry(
            w,
            &match &cell_broker {
                Some(b) => study.run_captured(b, w),
                None => study.run(w),
            },
        )
    });
    let mut t = TextTable::new([
        "Workload",
        "Samples",
        "Stalled",
        "Mean MPKI",
        "CoV",
        "Phases?",
    ]);
    for (w, series) in report
        .payloads()
        .filter_map(results_json::parse_phase_entry)
    {
        // A memory-stalled interval (no instructions retired) has NaN
        // MPKI; it is counted, not averaged — one stalled interval must
        // not poison the mean of the whole series.
        let finite: Vec<f64> = series
            .iter()
            .map(|p| p.interval_mpki)
            .filter(|v| v.is_finite())
            .collect();
        let stalled = series.len() - finite.len();
        let mean = if finite.is_empty() {
            0.0
        } else {
            finite.iter().sum::<f64>() / finite.len() as f64
        };
        let cv = PhaseStudy::phase_variability(&series);
        t.row([
            w.to_string(),
            series.len().to_string(),
            stalled.to_string(),
            format!("{mean:.3}"),
            format!("{cv:.2}"),
            if cv > 0.5 {
                "strong".to_owned()
            } else if cv > 0.15 {
                "moderate".to_owned()
            } else {
                "steady".to_owned()
            },
        ]);
    }
    println!("{}", t.render());
    opts.emit_json_traced(
        "phase_behavior",
        JsonValue::Array(report.payloads().cloned().collect()),
        &report,
        broker.map(|b| b.counters()),
    );
    finish_grid(&opts, &spec, &report);
}
