//! Extension study: MPKI over time from Dragonhead's 500 µs samples —
//! the phase behavior §1 of the paper gives as the reason run-to-
//! completion co-simulation matters.

use cmpsim_bench::{finish_grid, results_json, run_grid, Options};
use cmpsim_core::experiment::PhaseStudy;
use cmpsim_core::grid::GridSpec;
use cmpsim_core::report::TextTable;
use cmpsim_core::tel::JsonValue;

fn main() {
    let opts = Options::from_args();
    let study = PhaseStudy::new(opts.scale, opts.seed);
    println!(
        "Phase behavior: interval MPKI over time, 8 cores, 32MB-class LLC (scale {})\n",
        opts.scale
    );
    let spec = GridSpec::new(
        "phase_behavior",
        opts.scale,
        opts.seed,
        opts.workloads.clone(),
    );
    let report = run_grid(&opts, &spec, move |w| {
        results_json::phase_entry(w, &study.run(w))
    });
    let mut t = TextTable::new(["Workload", "Samples", "Mean MPKI", "CoV", "Phases?"]);
    for (w, series) in report
        .payloads()
        .filter_map(results_json::parse_phase_entry)
    {
        let mean = if series.is_empty() {
            0.0
        } else {
            series.iter().map(|p| p.interval_mpki).sum::<f64>() / series.len() as f64
        };
        let cv = PhaseStudy::phase_variability(&series);
        t.row([
            w.to_string(),
            series.len().to_string(),
            format!("{mean:.3}"),
            format!("{cv:.2}"),
            if cv > 0.5 {
                "strong".to_owned()
            } else if cv > 0.15 {
                "moderate".to_owned()
            } else {
                "steady".to_owned()
            },
        ]);
    }
    println!("{}", t.render());
    opts.emit_json_runner(
        "phase_behavior",
        JsonValue::Array(report.payloads().cloned().collect()),
        &report,
    );
    finish_grid(&opts, &report);
}
