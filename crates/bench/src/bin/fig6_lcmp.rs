//! Regenerates Figure 6: LLC misses per 1000 instructions vs cache size
//! on the large-scale CMP (32 cores), 64-byte lines.

use cmpsim_bench::{results_json, Options};
use cmpsim_core::experiment::{CacheSizeStudy, CmpClass};
use cmpsim_core::report::render_cache_size_figure;

fn main() {
    let opts = Options::from_args();
    let study = CacheSizeStudy::new(opts.scale, CmpClass::Large, opts.seed);
    println!(
        "Figure 6: LLC MPKI on LCMP (32 cores), 64B lines, scale {}\n",
        opts.scale
    );
    let curves: Vec<_> = opts.workloads.iter().map(|&w| study.run(w)).collect();
    println!("{}", render_cache_size_figure(&curves));
    opts.emit_json("fig6_lcmp", results_json::cache_size_curves(&curves));
}
