//! Regenerates Figure 6: LLC misses per 1000 instructions vs cache size
//! on the large-scale CMP (32 cores), 64-byte lines.

use cmpsim_bench::{finish_grid, results_json, run_grid, Options};
use cmpsim_core::experiment::{CacheSizeStudy, CmpClass};
use cmpsim_core::grid::GridSpec;
use cmpsim_core::report::render_cache_size_figure;
use cmpsim_core::tel::JsonValue;

fn main() {
    let opts = Options::from_args();
    let study = CacheSizeStudy::new(opts.scale, CmpClass::Large, opts.seed);
    println!(
        "Figure 6: LLC MPKI on LCMP (32 cores), 64B lines, scale {}\n",
        opts.scale
    );
    let spec = GridSpec::new("fig6_lcmp", opts.scale, opts.seed, opts.workloads.clone())
        .param("cmp", CmpClass::Large)
        .param("line", 64);
    let broker = opts.capture_broker();
    let cell_broker = broker.clone();
    let report = run_grid(&opts, &spec, move |w| {
        results_json::cache_size_curve(&match &cell_broker {
            Some(b) => study.run_captured(b, w),
            None => study.run(w),
        })
    });
    let curves: Vec<_> = report
        .payloads()
        .filter_map(results_json::parse_cache_size_curve)
        .collect();
    println!("{}", render_cache_size_figure(&curves));
    opts.emit_json_traced(
        "fig6_lcmp",
        JsonValue::Array(report.payloads().cloned().collect()),
        &report,
        broker.map(|b| b.counters()),
    );
    finish_grid(&opts, &spec, &report);
}
