//! Ablation E-X1: sharing-category validation — MPKI growth from 1 to 8
//! threads at a fixed LLC separates §4.3's category (a) (shared primary
//! structure) from category (b) (per-thread private data).

use cmpsim_bench::{finish_grid, results_json, run_grid, Options};
use cmpsim_core::experiment::SharingStudy;
use cmpsim_core::grid::GridSpec;
use cmpsim_core::report::render_sharing;
use cmpsim_core::tel::JsonValue;

fn main() {
    let opts = Options::from_args();
    let study = SharingStudy::new(opts.scale, opts.seed);
    println!(
        "Ablation: sharing categories via thread-scaling miss growth (scale {})\n",
        opts.scale
    );
    let spec = GridSpec::new(
        "ablation_sharing",
        opts.scale,
        opts.seed,
        opts.workloads.clone(),
    );
    let broker = opts.capture_broker();
    let cell_broker = broker.clone();
    let report = run_grid(&opts, &spec, move |w| {
        results_json::sharing_result(&match &cell_broker {
            Some(b) => study.run_captured(b, w),
            None => study.run(w),
        })
    });
    let results: Vec<_> = report
        .payloads()
        .filter_map(results_json::parse_sharing_result)
        .collect();
    println!("{}", render_sharing(&results));
    opts.emit_json_traced(
        "ablation_sharing",
        JsonValue::Array(report.payloads().cloned().collect()),
        &report,
        broker.map(|b| b.counters()),
    );
    finish_grid(&opts, &spec, &report);
}
