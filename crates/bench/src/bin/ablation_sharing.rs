//! Ablation E-X1: sharing-category validation — MPKI growth from 1 to 8
//! threads at a fixed LLC separates §4.3's category (a) (shared primary
//! structure) from category (b) (per-thread private data).

use cmpsim_bench::{results_json, Options};
use cmpsim_core::experiment::SharingStudy;
use cmpsim_core::report::render_sharing;

fn main() {
    let opts = Options::from_args();
    let study = SharingStudy::new(opts.scale, opts.seed);
    println!(
        "Ablation: sharing categories via thread-scaling miss growth (scale {})\n",
        opts.scale
    );
    let results: Vec<_> = opts.workloads.iter().map(|&w| study.run(w)).collect();
    println!("{}", render_sharing(&results));
    opts.emit_json("ablation_sharing", results_json::sharing_results(&results));
}
