//! Regenerates Table 2: single-threaded workload characteristics on a
//! Pentium 4-class machine (8 KB DL1 + 512 KB L2, scaled).

use cmpsim_bench::{finish_grid, results_json, run_grid, Options};
use cmpsim_core::experiment::Table2Study;
use cmpsim_core::grid::GridSpec;
use cmpsim_core::report::render_table2;
use cmpsim_core::tel::JsonValue;

fn main() {
    let opts = Options::from_args();
    println!(
        "Table 2: workload characteristics (single-threaded, P4-class, scale {})\n",
        opts.scale
    );
    let study = Table2Study::new(opts.scale, opts.seed);
    let spec = GridSpec::new(
        "table2_characteristics",
        opts.scale,
        opts.seed,
        opts.workloads.clone(),
    );
    let broker = opts.capture_broker();
    let cell_broker = broker.clone();
    let report = run_grid(&opts, &spec, move |w| {
        results_json::table2_row(&match &cell_broker {
            Some(b) => study.run_captured(b, w),
            None => study.run(w),
        })
    });
    let rows: Vec<_> = report
        .payloads()
        .filter_map(results_json::parse_table2_row)
        .collect();
    println!("{}", render_table2(&rows));
    println!(
        "paper reference (measured on real hardware): IPC 0.06 (MDS) to 1.08 (PLSA);\n\
         %mem 42.3% (RSEARCH) to 83.1% (PLSA); DL2 MPKI 0.18 (PLSA) to 18.95 (MDS)."
    );
    opts.emit_json_traced(
        "table2_characteristics",
        JsonValue::Array(report.payloads().cloned().collect()),
        &report,
        broker.map(|b| b.counters()),
    );
    finish_grid(&opts, &spec, &report);
}
