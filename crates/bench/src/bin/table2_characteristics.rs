//! Regenerates Table 2: single-threaded workload characteristics on a
//! Pentium 4-class machine (8 KB DL1 + 512 KB L2, scaled).

use cmpsim_bench::{results_json, Options};
use cmpsim_core::experiment::Table2Study;
use cmpsim_core::report::render_table2;

fn main() {
    let opts = Options::from_args();
    println!(
        "Table 2: workload characteristics (single-threaded, P4-class, scale {})\n",
        opts.scale
    );
    let study = Table2Study::new(opts.scale, opts.seed);
    let rows: Vec<_> = opts.workloads.iter().map(|&w| study.run(w)).collect();
    println!("{}", render_table2(&rows));
    println!(
        "paper reference (measured on real hardware): IPC 0.06 (MDS) to 1.08 (PLSA);\n\
         %mem 42.3% (RSEARCH) to 83.1% (PLSA); DL2 MPKI 0.18 (PLSA) to 18.95 (MDS)."
    );
    opts.emit_json("table2_characteristics", results_json::table2_rows(&rows));
}
