//! Regenerates Table 1: input parameters and dataset sizes for every
//! workload, as instantiated at the chosen scale.

use cmpsim_bench::Options;
use cmpsim_core::report::{human_bytes, TextTable};
use cmpsim_core::tel::JsonValue;

fn main() {
    let opts = Options::from_args();
    println!(
        "Table 1: input parameters and datasets (scale {})\n",
        opts.scale
    );
    let mut t = TextTable::new(["Workload", "Parameters", "Size of Data Input", "Provenance"]);
    let mut rows = Vec::new();
    for &id in &opts.workloads {
        let wl = id.build(opts.scale, opts.seed);
        let d = wl.dataset();
        t.row([
            id.to_string(),
            d.parameters.clone(),
            human_bytes(d.input_bytes),
            d.provenance.clone(),
        ]);
        rows.push(JsonValue::object([
            ("workload", JsonValue::from(id.to_string())),
            ("parameters", JsonValue::from(d.parameters.clone())),
            ("input_bytes", JsonValue::U64(d.input_bytes)),
            ("provenance", JsonValue::from(d.provenance.clone())),
        ]));
    }
    println!("{}", t.render());
    opts.emit_json("table1_inputs", JsonValue::Array(rows));
}
