//! Regenerates Table 1: input parameters and dataset sizes for every
//! workload, as instantiated at the chosen scale.

use cmpsim_bench::Options;
use cmpsim_core::report::{human_bytes, TextTable};

fn main() {
    let opts = Options::from_args();
    println!(
        "Table 1: input parameters and datasets (scale {})\n",
        opts.scale
    );
    let mut t = TextTable::new(["Workload", "Parameters", "Size of Data Input", "Provenance"]);
    for &id in &opts.workloads {
        let wl = id.build(opts.scale, opts.seed);
        let d = wl.dataset();
        t.row([
            id.to_string(),
            d.parameters.clone(),
            human_bytes(d.input_bytes),
            d.provenance.clone(),
        ]);
    }
    println!("{}", t.render());
}
