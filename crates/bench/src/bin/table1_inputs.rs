//! Regenerates Table 1: input parameters and dataset sizes for every
//! workload, as instantiated at the chosen scale.

use cmpsim_bench::{finish_grid, run_grid, Options};
use cmpsim_core::grid::GridSpec;
use cmpsim_core::report::{human_bytes, TextTable};
use cmpsim_core::tel::JsonValue;

fn main() {
    let opts = Options::from_args();
    println!(
        "Table 1: input parameters and datasets (scale {})\n",
        opts.scale
    );
    let spec = GridSpec::new(
        "table1_inputs",
        opts.scale,
        opts.seed,
        opts.workloads.clone(),
    );
    let (scale, seed) = (opts.scale, opts.seed);
    let report = run_grid(&opts, &spec, move |id| {
        let wl = id.build(scale, seed);
        let d = wl.dataset();
        JsonValue::object([
            ("workload", JsonValue::from(id.to_string())),
            ("parameters", JsonValue::from(d.parameters.clone())),
            ("input_bytes", JsonValue::U64(d.input_bytes)),
            ("provenance", JsonValue::from(d.provenance.clone())),
        ])
    });
    let mut t = TextTable::new(["Workload", "Parameters", "Size of Data Input", "Provenance"]);
    for row in report.payloads() {
        let field = |k: &str| row.get(k).and_then(JsonValue::as_str).unwrap_or("?");
        t.row([
            field("workload").to_owned(),
            field("parameters").to_owned(),
            human_bytes(
                row.get("input_bytes")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0),
            ),
            field("provenance").to_owned(),
        ]);
    }
    println!("{}", t.render());
    opts.emit_json_runner(
        "table1_inputs",
        JsonValue::Array(report.payloads().cloned().collect()),
        &report,
    );
    finish_grid(&opts, &spec, &report);
}
