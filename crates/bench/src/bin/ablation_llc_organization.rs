//! Ablation E-X4: shared LLC vs per-core private slices of equal total
//! capacity — quantifying why the paper (and its related work: Liu et
//! al., Zhang & Asanovic, Nurvitadhi et al.) studies *shared* LLCs for
//! these workloads.

use cmpsim_bench::{finish_grid, results_json, run_grid, Options};
use cmpsim_core::experiment::LlcOrganizationStudy;
use cmpsim_core::grid::GridSpec;
use cmpsim_core::report::TextTable;
use cmpsim_core::tel::JsonValue;

fn main() {
    let opts = Options::from_args();
    let study = LlcOrganizationStudy::new(opts.scale, opts.seed);
    println!(
        "Ablation: shared vs private LLC organization, 8 cores, equal total \
         capacity (scale {})\n",
        opts.scale
    );
    let spec = GridSpec::new(
        "ablation_llc_organization",
        opts.scale,
        opts.seed,
        opts.workloads.clone(),
    );
    let broker = opts.capture_broker();
    let cell_broker = broker.clone();
    let report = run_grid(&opts, &spec, move |w| {
        results_json::llc_organization_result(&match &cell_broker {
            Some(b) => study.run_captured(b, w),
            None => study.run(w),
        })
    });
    let results: Vec<_> = report
        .payloads()
        .filter_map(results_json::parse_llc_organization_result)
        .collect();
    let mut t = TextTable::new(["Workload", "Shared MPKI", "Private MPKI", "Private/Shared"]);
    for r in &results {
        t.row([
            r.workload.to_string(),
            format!("{:.3}", r.shared_mpki),
            format!("{:.3}", r.private_mpki),
            format!("{:.2}x", r.private_penalty()),
        ]);
    }
    println!("{}", t.render());
    opts.emit_json_traced(
        "ablation_llc_organization",
        JsonValue::Array(report.payloads().cloned().collect()),
        &report,
        broker.map(|b| b.counters()),
    );
    finish_grid(&opts, &spec, &report);
}
