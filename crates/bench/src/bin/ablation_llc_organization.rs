//! Ablation E-X4: shared LLC vs per-core private slices of equal total
//! capacity — quantifying why the paper (and its related work: Liu et
//! al., Zhang & Asanovic, Nurvitadhi et al.) studies *shared* LLCs for
//! these workloads.

use cmpsim_bench::{results_json, Options};
use cmpsim_core::experiment::LlcOrganizationStudy;
use cmpsim_core::report::TextTable;

fn main() {
    let opts = Options::from_args();
    let study = LlcOrganizationStudy::new(opts.scale, opts.seed);
    println!(
        "Ablation: shared vs private LLC organization, 8 cores, equal total \
         capacity (scale {})\n",
        opts.scale
    );
    let mut t = TextTable::new(["Workload", "Shared MPKI", "Private MPKI", "Private/Shared"]);
    let results: Vec<_> = opts.workloads.iter().map(|&w| study.run(w)).collect();
    for r in &results {
        t.row([
            r.workload.to_string(),
            format!("{:.3}", r.shared_mpki),
            format!("{:.3}", r.private_mpki),
            format!("{:.2}x", r.private_penalty()),
        ]);
    }
    println!("{}", t.render());
    opts.emit_json(
        "ablation_llc_organization",
        results_json::llc_organization_results(&results),
    );
}
