#![warn(missing_docs)]

//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary in this crate regenerates one table or figure of the
//! paper (see `DESIGN.md`'s per-experiment index). They share a tiny
//! command-line convention:
//!
//! * `--scale tiny|ci|paper|1/N` — the global scale knob
//!   (default `ci`; `tiny` for smoke runs, `paper` for the full-size
//!   reproduction),
//! * `--seed N` — dataset seed (default 2007),
//! * `--workloads A,B,C` — restrict to a subset (default: all eight),
//! * `--json` — also write the results as `results/<name>.json`, a
//!   machine-readable twin of the text output,
//! * `--metrics-out FILE` — like `--json` but to an explicit path,
//! * `--jobs N` — worker threads for the experiment grid (default 1,
//!   `0` = one per CPU); output is byte-identical at any job count,
//! * `--cache-dir DIR` — content-addressed result cache root (default
//!   `results/cache`),
//! * `--no-cache` — disable the result cache for this run.
//!
//! The JSON twin carries a run manifest (producer, version, scale, seed,
//! workloads, wall time) plus a `results` payload built by the
//! [`results_json`] converters, so a plot script never has to parse the
//! aligned text tables.
//!
//! Every binary funnels its per-workload cells through
//! [`cmpsim_core::grid::run_grid`] and renders text by parsing the JSON
//! payloads back (see [`results_json`]'s `parse_*` functions) — the one
//! code path guarantees serial, parallel, cold, and warm runs print the
//! same bytes.

use cmpsim_core::runner::{RunReport, RunnerConfig};
use cmpsim_telemetry::{JsonValue, RunManifest};
use cmpsim_workloads::{Scale, WorkloadId};
use std::io::IsTerminal as _;
use std::path::PathBuf;
use std::time::Instant;

pub mod results_json;

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Global scale knob.
    pub scale: Scale,
    /// Dataset seed.
    pub seed: u64,
    /// Workloads to run.
    pub workloads: Vec<WorkloadId>,
    /// Write a `results/<name>.json` twin next to the text output.
    pub json: bool,
    /// Explicit output path for the JSON twin (implies `--json`).
    pub metrics_out: Option<PathBuf>,
    /// Worker threads for the experiment grid (`0` = one per CPU).
    pub jobs: usize,
    /// Result-cache root; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Per-job watchdog deadline in seconds; `None` waits forever.
    pub job_timeout: Option<u64>,
    started: Instant,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: Scale::ci(),
            seed: 2007,
            workloads: WorkloadId::all().to_vec(),
            json: false,
            metrics_out: None,
            jobs: 1,
            cache_dir: Some(PathBuf::from("results/cache")),
            job_timeout: None,
            started: Instant::now(),
        }
    }
}

impl Options {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    pub fn from_args() -> Self {
        match Options::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(e) => usage(&e),
        }
    }

    /// Parses an argument list. Any token that is not a recognized flag
    /// (or a recognized flag's value) is an error — a typo like
    /// `--sclae` must not silently run the default sweep.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut opts = Options::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut val = || args.next().ok_or_else(|| format!("missing {arg} value"));
            match arg.as_str() {
                "--scale" => {
                    opts.scale = parse_scale(&val()?).ok_or("bad --scale value")?;
                }
                "--seed" => {
                    opts.seed = val()?.parse().map_err(|_| "bad --seed value")?;
                }
                "--workloads" => {
                    opts.workloads = val()?
                        .split(',')
                        .map(|s| s.parse().map_err(|_| format!("unknown workload `{s}`")))
                        .collect::<Result<_, _>>()?;
                }
                "--json" => opts.json = true,
                "--metrics-out" => {
                    opts.metrics_out = Some(PathBuf::from(val()?));
                    opts.json = true;
                }
                "--jobs" => {
                    opts.jobs = val()?.parse().map_err(|_| "bad --jobs value")?;
                }
                "--cache-dir" => opts.cache_dir = Some(PathBuf::from(val()?)),
                "--no-cache" => opts.cache_dir = None,
                "--job-timeout" => {
                    let secs: u64 = val()?.parse().map_err(|_| "bad --job-timeout value")?;
                    if secs == 0 {
                        return Err("bad --job-timeout value".to_owned());
                    }
                    opts.job_timeout = Some(secs);
                }
                "--help" | "-h" => return Err(String::new()),
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(opts)
    }

    /// The runner configuration these options describe. The live
    /// progress line is only drawn when stderr is a terminal, so
    /// redirected runs (CI, tests) log clean lines.
    pub fn runner(&self) -> RunnerConfig {
        RunnerConfig {
            workers: self.jobs,
            cache_dir: self.cache_dir.clone(),
            retries: 1,
            progress: std::io::stderr().is_terminal(),
            job_timeout: self.job_timeout.map(std::time::Duration::from_secs),
        }
    }

    /// Where the JSON twin goes: `--metrics-out` wins, otherwise
    /// `results/<name>.json` under `--json`, otherwise nowhere.
    pub fn json_path(&self, name: &str) -> Option<PathBuf> {
        match (&self.metrics_out, self.json) {
            (Some(p), _) => Some(p.clone()),
            (None, true) => Some(PathBuf::from("results").join(format!("{name}.json"))),
            (None, false) => None,
        }
    }

    /// The manifest stamped into every JSON twin.
    pub fn manifest(&self, name: &str) -> RunManifest {
        let mut m = RunManifest::new(name, env!("CARGO_PKG_VERSION"))
            .with_workloads(self.workloads.iter().copied())
            .with_scale_seed(self.scale, self.seed);
        m.wall_ms = self.started.elapsed().as_secs_f64() * 1e3;
        m
    }

    /// Writes `{manifest, results}` to the JSON twin path, if one was
    /// requested. Text output on stdout is unaffected; the path note
    /// goes to stderr.
    pub fn emit_json(&self, name: &str, results: JsonValue) {
        let Some(path) = self.json_path(name) else {
            return;
        };
        let doc = JsonValue::object([
            ("manifest", self.manifest(name).to_json()),
            ("results", results),
        ]);
        match cmpsim_telemetry::write_json_file(&path, &doc) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    /// Like [`emit_json`](Options::emit_json), but for a grid run: the
    /// manifest additionally records the runner counters, and the
    /// document carries the full per-job [`RunReport`] under `runner`.
    pub fn emit_json_runner(&self, name: &str, results: JsonValue, report: &RunReport) {
        let Some(path) = self.json_path(name) else {
            return;
        };
        let manifest = self
            .manifest(name)
            .config_entry("runner_jobs", report.workers)
            .config_entry("runner_ok", report.ok_count())
            .config_entry("runner_cached", report.cached_count())
            .config_entry("runner_failed", report.failed_count());
        let doc = JsonValue::object([
            ("manifest", manifest.to_json()),
            ("results", results),
            ("runner", report.to_json()),
        ]);
        match cmpsim_telemetry::write_json_file(&path, &doc) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// Standard grid-run epilogue: prints the batch summary (and every
/// failure) to stderr, then exits non-zero if any job failed — after
/// the surviving results have been rendered and written.
pub fn finish_runner(report: &RunReport) {
    eprintln!("runner: {}", report.summary());
    for (label, error) in report.failures() {
        eprintln!("runner: job `{label}` failed: {error}");
    }
    if report.failed_count() > 0 {
        std::process::exit(1);
    }
}

/// Parses a scale spec: `tiny`, `ci`, `paper`, or `1/N` with N a power
/// of two.
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "tiny" => Some(Scale::tiny()),
        "ci" => Some(Scale::ci()),
        "paper" | "full" => Some(Scale::paper()),
        other => {
            let n: u64 = other.strip_prefix("1/")?.parse().ok()?;
            if n.is_power_of_two() {
                Some(Scale::with_shift(n.trailing_zeros()))
            } else {
                None
            }
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: <bin> [--scale tiny|ci|paper|1/N] [--seed N] [--workloads A,B,C]\n\
         \x20      [--json] [--metrics-out FILE] [--jobs N] [--cache-dir DIR] [--no-cache]\n\
         \x20      [--job-timeout SECONDS]\n\
         workloads: SNP, SVM-RFE, MDS, SHOT, FIMI, VIEWTYPE, PLSA, RSEARCH"
    );
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_specs() {
        assert_eq!(parse_scale("tiny"), Some(Scale::tiny()));
        assert_eq!(parse_scale("ci"), Some(Scale::ci()));
        assert_eq!(parse_scale("paper"), Some(Scale::paper()));
        assert_eq!(parse_scale("1/64"), Some(Scale::with_shift(6)));
        assert_eq!(parse_scale("1/3"), None);
        assert_eq!(parse_scale("bogus"), None);
    }

    #[test]
    fn default_options_cover_all_workloads() {
        let o = Options::default();
        assert_eq!(o.workloads.len(), 8);
        assert_eq!(o.seed, 2007);
        assert!(!o.json);
        assert_eq!(o.jobs, 1);
        assert_eq!(o.cache_dir, Some(PathBuf::from("results/cache")));
    }

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn unknown_flags_are_rejected() {
        // A typo must not silently run the default sweep.
        let err = parse(&["--sclae", "ci"]).unwrap_err();
        assert!(err.contains("unknown argument `--sclae`"), "{err}");
        assert!(parse(&["ci"]).is_err());
        assert!(parse(&["--workloads", "FIMI,BOGUS"])
            .unwrap_err()
            .contains("unknown workload `BOGUS`"));
        assert!(parse(&["--scale"]).unwrap_err().contains("missing"));
    }

    #[test]
    fn runner_flags_parse() {
        let o = parse(&["--jobs", "4", "--cache-dir", "/tmp/c"]).unwrap();
        assert_eq!(o.jobs, 4);
        assert_eq!(o.cache_dir, Some(PathBuf::from("/tmp/c")));
        let cfg = o.runner();
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.cache_dir, Some(PathBuf::from("/tmp/c")));
        // Last flag wins in either order.
        let o = parse(&["--cache-dir", "/tmp/c", "--no-cache"]).unwrap();
        assert_eq!(o.cache_dir, None);
        let o = parse(&["--no-cache", "--cache-dir", "/tmp/c"]).unwrap();
        assert_eq!(o.cache_dir, Some(PathBuf::from("/tmp/c")));
        assert!(parse(&["--jobs", "many"]).is_err());
    }

    #[test]
    fn json_path_resolution() {
        let mut o = Options::default();
        assert_eq!(o.json_path("fig4"), None);
        o.json = true;
        assert_eq!(
            o.json_path("fig4"),
            Some(PathBuf::from("results/fig4.json"))
        );
        o.metrics_out = Some(PathBuf::from("/tmp/x.json"));
        assert_eq!(o.json_path("fig4"), Some(PathBuf::from("/tmp/x.json")));
    }

    #[test]
    fn manifest_carries_run_identity() {
        let o = Options::default();
        let m = o.manifest("table2");
        assert_eq!(m.experiment, "table2");
        assert_eq!(m.seed, 2007);
        assert_eq!(m.workloads.len(), 8);
        assert!(m.wall_ms >= 0.0);
    }
}
