#![warn(missing_docs)]

//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary in this crate regenerates one table or figure of the
//! paper (see `DESIGN.md`'s per-experiment index). They share a tiny
//! command-line convention:
//!
//! * `--scale tiny|ci|paper|1/N` — the global scale knob
//!   (default `ci`; `tiny` for smoke runs, `paper` for the full-size
//!   reproduction),
//! * `--seed N` — dataset seed (default 2007),
//! * `--workloads A,B,C` — restrict to a subset (default: all eight).

use cmpsim_workloads::{Scale, WorkloadId};

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Global scale knob.
    pub scale: Scale,
    /// Dataset seed.
    pub seed: u64,
    /// Workloads to run.
    pub workloads: Vec<WorkloadId>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: Scale::ci(),
            seed: 2007,
            workloads: WorkloadId::all().to_vec(),
        }
    }
}

impl Options {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    pub fn from_args() -> Self {
        let mut opts = Options::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("missing --scale value"));
                    opts.scale = parse_scale(&v).unwrap_or_else(|| usage("bad --scale value"));
                }
                "--seed" => {
                    let v = args.next().unwrap_or_else(|| usage("missing --seed value"));
                    opts.seed = v.parse().unwrap_or_else(|_| usage("bad --seed value"));
                }
                "--workloads" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("missing --workloads value"));
                    opts.workloads = v
                        .split(',')
                        .map(|s| s.parse().unwrap_or_else(|_| usage("unknown workload")))
                        .collect();
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument `{other}`")),
            }
        }
        opts
    }
}

/// Parses a scale spec: `tiny`, `ci`, `paper`, or `1/N` with N a power
/// of two.
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "tiny" => Some(Scale::tiny()),
        "ci" => Some(Scale::ci()),
        "paper" | "full" => Some(Scale::paper()),
        other => {
            let n: u64 = other.strip_prefix("1/")?.parse().ok()?;
            if n.is_power_of_two() {
                Some(Scale::with_shift(n.trailing_zeros()))
            } else {
                None
            }
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: <bin> [--scale tiny|ci|paper|1/N] [--seed N] [--workloads A,B,C]\n\
         workloads: SNP, SVM-RFE, MDS, SHOT, FIMI, VIEWTYPE, PLSA, RSEARCH"
    );
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_specs() {
        assert_eq!(parse_scale("tiny"), Some(Scale::tiny()));
        assert_eq!(parse_scale("ci"), Some(Scale::ci()));
        assert_eq!(parse_scale("paper"), Some(Scale::paper()));
        assert_eq!(parse_scale("1/64"), Some(Scale::with_shift(6)));
        assert_eq!(parse_scale("1/3"), None);
        assert_eq!(parse_scale("bogus"), None);
    }

    #[test]
    fn default_options_cover_all_workloads() {
        let o = Options::default();
        assert_eq!(o.workloads.len(), 8);
        assert_eq!(o.seed, 2007);
    }
}
