#![warn(missing_docs)]

//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary in this crate regenerates one table or figure of the
//! paper (see `DESIGN.md`'s per-experiment index). They share a tiny
//! command-line convention:
//!
//! * `--scale tiny|ci|paper|1/N` — the global scale knob
//!   (default `ci`; `tiny` for smoke runs, `paper` for the full-size
//!   reproduction),
//! * `--seed N` — dataset seed (default 2007),
//! * `--workloads A,B,C` — restrict to a subset (default: all eight),
//! * `--json` — also write the results as `results/<name>.json`, a
//!   machine-readable twin of the text output,
//! * `--metrics-out FILE` — like `--json` but to an explicit path.
//!
//! The JSON twin carries a run manifest (producer, version, scale, seed,
//! workloads, wall time) plus a `results` payload built by the
//! [`results_json`] converters, so a plot script never has to parse the
//! aligned text tables.

use cmpsim_telemetry::{JsonValue, RunManifest};
use cmpsim_workloads::{Scale, WorkloadId};
use std::path::PathBuf;
use std::time::Instant;

pub mod results_json;

/// Parsed common options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Global scale knob.
    pub scale: Scale,
    /// Dataset seed.
    pub seed: u64,
    /// Workloads to run.
    pub workloads: Vec<WorkloadId>,
    /// Write a `results/<name>.json` twin next to the text output.
    pub json: bool,
    /// Explicit output path for the JSON twin (implies `--json`).
    pub metrics_out: Option<PathBuf>,
    started: Instant,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: Scale::ci(),
            seed: 2007,
            workloads: WorkloadId::all().to_vec(),
            json: false,
            metrics_out: None,
            started: Instant::now(),
        }
    }
}

impl Options {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    pub fn from_args() -> Self {
        let mut opts = Options::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("missing --scale value"));
                    opts.scale = parse_scale(&v).unwrap_or_else(|| usage("bad --scale value"));
                }
                "--seed" => {
                    let v = args.next().unwrap_or_else(|| usage("missing --seed value"));
                    opts.seed = v.parse().unwrap_or_else(|_| usage("bad --seed value"));
                }
                "--workloads" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("missing --workloads value"));
                    opts.workloads = v
                        .split(',')
                        .map(|s| s.parse().unwrap_or_else(|_| usage("unknown workload")))
                        .collect();
                }
                "--json" => opts.json = true,
                "--metrics-out" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("missing --metrics-out value"));
                    opts.metrics_out = Some(PathBuf::from(v));
                    opts.json = true;
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument `{other}`")),
            }
        }
        opts
    }

    /// Where the JSON twin goes: `--metrics-out` wins, otherwise
    /// `results/<name>.json` under `--json`, otherwise nowhere.
    pub fn json_path(&self, name: &str) -> Option<PathBuf> {
        match (&self.metrics_out, self.json) {
            (Some(p), _) => Some(p.clone()),
            (None, true) => Some(PathBuf::from("results").join(format!("{name}.json"))),
            (None, false) => None,
        }
    }

    /// The manifest stamped into every JSON twin.
    pub fn manifest(&self, name: &str) -> RunManifest {
        let mut m = RunManifest::new(name, env!("CARGO_PKG_VERSION"))
            .with_workloads(self.workloads.iter().copied())
            .with_scale_seed(self.scale, self.seed);
        m.wall_ms = self.started.elapsed().as_secs_f64() * 1e3;
        m
    }

    /// Writes `{manifest, results}` to the JSON twin path, if one was
    /// requested. Text output on stdout is unaffected; the path note
    /// goes to stderr.
    pub fn emit_json(&self, name: &str, results: JsonValue) {
        let Some(path) = self.json_path(name) else {
            return;
        };
        let doc = JsonValue::object([
            ("manifest", self.manifest(name).to_json()),
            ("results", results),
        ]);
        match cmpsim_telemetry::write_json_file(&path, &doc) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// Parses a scale spec: `tiny`, `ci`, `paper`, or `1/N` with N a power
/// of two.
pub fn parse_scale(s: &str) -> Option<Scale> {
    match s {
        "tiny" => Some(Scale::tiny()),
        "ci" => Some(Scale::ci()),
        "paper" | "full" => Some(Scale::paper()),
        other => {
            let n: u64 = other.strip_prefix("1/")?.parse().ok()?;
            if n.is_power_of_two() {
                Some(Scale::with_shift(n.trailing_zeros()))
            } else {
                None
            }
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: <bin> [--scale tiny|ci|paper|1/N] [--seed N] [--workloads A,B,C]\n\
         \x20      [--json] [--metrics-out FILE]\n\
         workloads: SNP, SVM-RFE, MDS, SHOT, FIMI, VIEWTYPE, PLSA, RSEARCH"
    );
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_specs() {
        assert_eq!(parse_scale("tiny"), Some(Scale::tiny()));
        assert_eq!(parse_scale("ci"), Some(Scale::ci()));
        assert_eq!(parse_scale("paper"), Some(Scale::paper()));
        assert_eq!(parse_scale("1/64"), Some(Scale::with_shift(6)));
        assert_eq!(parse_scale("1/3"), None);
        assert_eq!(parse_scale("bogus"), None);
    }

    #[test]
    fn default_options_cover_all_workloads() {
        let o = Options::default();
        assert_eq!(o.workloads.len(), 8);
        assert_eq!(o.seed, 2007);
        assert!(!o.json);
    }

    #[test]
    fn json_path_resolution() {
        let mut o = Options::default();
        assert_eq!(o.json_path("fig4"), None);
        o.json = true;
        assert_eq!(
            o.json_path("fig4"),
            Some(PathBuf::from("results/fig4.json"))
        );
        o.metrics_out = Some(PathBuf::from("/tmp/x.json"));
        assert_eq!(o.json_path("fig4"), Some(PathBuf::from("/tmp/x.json")));
    }

    #[test]
    fn manifest_carries_run_identity() {
        let o = Options::default();
        let m = o.manifest("table2");
        assert_eq!(m.experiment, "table2");
        assert_eq!(m.seed, 2007);
        assert_eq!(m.workloads.len(), 8);
        assert!(m.wall_ms >= 0.0);
    }
}
